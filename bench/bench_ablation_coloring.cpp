// E8 — algorithm ablation: the paper's structural algorithms versus generic
// graph-coloring baselines (first-fit greedy, DSATUR, exact B&B) on the
// same instances — colors used and time.
//
// The point the paper makes implicitly: on the equality regime the
// structural algorithm is *certifiably* optimal at combinatorial-free cost,
// while heuristics carry no certificate and exact search explodes.

#include "bench_util.hpp"
#include "conflict/coloring.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "core/theorem1.hpp"
#include "gen/family_gen.hpp"
#include "gen/instance.hpp"
#include "gen/random_dag.hpp"
#include "paths/load.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace wdag;

gen::Instance make_instance(std::uint64_t seed, std::size_t n,
                            std::size_t num_paths) {
  util::Xoshiro256 rng(seed);
  auto g = gen::random_no_internal_cycle_dag(rng, n, 0.12);
  auto inst = gen::Instance::over(std::move(g));
  inst.family = gen::random_walk_family(rng, *inst.graph, num_paths, 1, 7);
  return inst;
}

void print_table() {
  util::Table t(
      "E8 / ablation: colors (and ms) per algorithm on internal-cycle-free "
      "instances",
      {"n", "|P|", "pi", "theorem1", "greedy", "dsatur", "exact",
       "t1 ms", "greedy ms", "dsatur ms", "exact ms"});
  std::uint64_t seed = 8800;
  for (const auto& [n, num_paths] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {16, 12}, {24, 20}, {32, 28}, {48, 36}, {64, 48}}) {
    const auto inst = make_instance(seed++, n, num_paths);
    const auto pi = paths::max_load(inst.family);

    util::Timer tm1;
    const auto t1 = core::color_equal_load(inst.family);
    const double ms1 = tm1.millis();

    const conflict::ConflictGraph cg(inst.family);
    util::Timer tmg;
    const auto greedy = conflict::greedy_coloring(cg);
    const double msg = tmg.millis();
    util::Timer tmd;
    const auto dsatur = conflict::dsatur_coloring(cg);
    const double msd = tmd.millis();
    util::Timer tme;
    const auto exact = conflict::chromatic_number(cg);
    const double mse = tme.millis();

    t.add_row({static_cast<long long>(n),
               static_cast<long long>(inst.family.size()),
               static_cast<long long>(pi),
               static_cast<long long>(t1.wavelengths),
               static_cast<long long>(conflict::num_colors(greedy)),
               static_cast<long long>(conflict::num_colors(dsatur)),
               static_cast<long long>(exact.chromatic_number), ms1, msg, msd,
               mse});
  }
  bench::emit(t);
}

void BM_AblationTheorem1(benchmark::State& state) {
  const auto inst = make_instance(1, static_cast<std::size_t>(state.range(0)),
                                  static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::color_equal_load(inst.family).wavelengths);
  }
}
BENCHMARK(BM_AblationTheorem1)->Arg(24)->Arg(48)->Arg(96);

void BM_AblationDsatur(benchmark::State& state) {
  const auto inst = make_instance(1, static_cast<std::size_t>(state.range(0)),
                                  static_cast<std::size_t>(state.range(0)));
  const conflict::ConflictGraph cg(inst.family);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conflict::dsatur_coloring(cg).size());
  }
}
BENCHMARK(BM_AblationDsatur)->Arg(24)->Arg(48)->Arg(96);

void BM_AblationExact(benchmark::State& state) {
  const auto inst = make_instance(1, static_cast<std::size_t>(state.range(0)),
                                  static_cast<std::size_t>(state.range(0)));
  const conflict::ConflictGraph cg(inst.family);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conflict::chromatic_number(cg).chromatic_number);
  }
}
BENCHMARK(BM_AblationExact)->Arg(24)->Arg(48);

}  // namespace

WDAG_BENCH_MAIN(print_table)
