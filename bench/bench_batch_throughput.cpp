// Batch-solve throughput harness: how many instances per second the
// parallel batch engine sustains per workload family and thread count.
//
// The table pass emits one BENCH_batch.json-compatible line
// (`{"bench":"batch_throughput","rows":[...]}`) so the perf trajectory can
// be tracked across PRs, then google-benchmark measures the same batches
// under its timing harness.

#include "bench_util.hpp"
#include "core/batch.hpp"
#include "gen/instance.hpp"
#include "gen/workloads.hpp"
#include "util/rng.hpp"

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace wdag;
using core::BatchOptions;
using core::BatchReport;
using gen::Instance;
using util::Xoshiro256;

gen::WorkloadParams bench_params() {
  gen::WorkloadParams params;
  params.size = 32;
  params.paths = 20;
  params.rows = 4;
  params.cols = 5;
  return params;
}

BatchReport run_batch(const std::string& workload, std::size_t count,
                      std::size_t threads) {
  BatchOptions options;
  options.threads = threads;
  options.seed = 20260730;
  const gen::WorkloadParams params = bench_params();
  return core::solve_generated_batch(
      count,
      [&workload, &params](Xoshiro256& rng, std::size_t) {
        return gen::workload_instance(workload, params, rng);
      },
      core::SolveOptions{}, options);
}

void print_table() {
  const std::size_t hw = std::thread::hardware_concurrency();
  util::Table t("batch throughput (instances/sec, 512-instance batches)",
                {"workload", "threads", "inst_per_s", "p50_ms", "p99_ms",
                 "theorem1", "split_merge", "dsatur", "exact"});
  for (const std::string workload : {"tree", "random-upp", "grid"}) {
    for (const std::size_t threads : {std::size_t{1}, hw}) {
      const BatchReport report = run_batch(workload, 512, threads);
      t.add_row({workload, static_cast<long long>(report.threads_used),
                 report.instances_per_second(), report.latency.p50,
                 report.latency.p99,
                 static_cast<long long>(report.count(core::Method::kTheorem1)),
                 static_cast<long long>(
                     report.count(core::Method::kSplitMerge)),
                 static_cast<long long>(report.count(core::Method::kDsatur)),
                 static_cast<long long>(report.count(core::Method::kExact))});
    }
  }
  bench::emit(t);
  bench::emit_json("batch_throughput", t);
}

void BM_BatchSolve(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  std::size_t instances = 0;
  for (auto _ : state) {
    const BatchReport report = run_batch("random-upp", 128, threads);
    benchmark::DoNotOptimize(report.total_wavelengths);
    instances += report.entries.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instances));
}
BENCHMARK(BM_BatchSolve)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_BatchSolvePrebuilt(benchmark::State& state) {
  // Isolates solver throughput from generation: instances built once.
  Xoshiro256 rng(99);
  const gen::WorkloadParams params = bench_params();
  std::vector<Instance> instances;
  std::vector<paths::DipathFamily> families;
  for (std::size_t i = 0; i < 128; ++i) {
    instances.push_back(gen::workload_instance("grid", params, rng));
    families.push_back(instances.back().family);
  }
  BatchOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  std::size_t solved = 0;
  for (auto _ : state) {
    const BatchReport report =
        core::solve_batch(families, core::SolveOptions{}, options);
    benchmark::DoNotOptimize(report.total_wavelengths);
    solved += report.entries.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(solved));
}
BENCHMARK(BM_BatchSolvePrebuilt)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

WDAG_BENCH_MAIN(print_table)
