// Batch-solve throughput harness: the interleaved A/B matrix the perf
// regression gate watches.
//
// The table pass measures {fixed, stealing} x {uniform, skewed-family,
// exact-heavy} x threads {1, 4, ncpu} — schedulers interleaved within a
// cell (fixed rep, stealing rep, fixed rep, ...; best-of-N per arm) so
// machine drift hits both arms equally — and emits one consolidated
// BENCH_batch.json-compatible line (`{"bench":"batch_throughput",
// "rows":[...]}`). CI extracts that record and scripts/compare_bench.py
// fails the push when any cell regresses >15% against the committed
// baseline (bench/baselines/BENCH_batch.json).
//
// The three workload regimes deliberately span the dispatch spectrum
// (the IPC-benchmark lesson in PAPERS.md — perf claims need diverse,
// continuously re-run workloads):
//   uniform       homogeneous random-upp, every instance similarly cheap
//                 (its ~20% exact-certified gadgets run in ~0.1ms);
//   skewed-family >=20% exact-dispatched instances: tiny trees plus
//                 scattered odd-cycle gadgets, ending in a contiguous run
//                 of ~12ms Wagner/havet instances (the shape of a
//                 sorted-by-size sweep) — one fixed-partition chunk of
//                 those is a multi-hundred-ms straggler that idles every
//                 other worker, exactly what stealing rebalances;
//   exact-heavy   havet h=2 instances only: every solve is an exact
//                 branch-and-bound certification.
//
// WDAG_BENCH_HANDICAP_NS (debug knob): busy-wait that many nanoseconds
// per generated instance. Used to verify the CI gate actually fires on
// an injected slowdown; never set in real runs.

#include "bench_util.hpp"
#include "api/engine.hpp"
#include "core/batch.hpp"
#include "gen/instance.hpp"
#include "gen/workloads.hpp"
#include "util/rng.hpp"

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace wdag;
using core::BatchOptions;
using core::BatchReport;
using core::Schedule;
using gen::Instance;
using util::Xoshiro256;

constexpr std::uint64_t kSeed = 20260730;
constexpr int kReps = 3;  ///< interleaved repetitions per matrix cell

std::uint64_t handicap_ns() {
  static const std::uint64_t value = [] {
    const char* env = std::getenv("WDAG_BENCH_HANDICAP_NS");
    return env != nullptr ? std::strtoull(env, nullptr, 10)
                          : std::uint64_t{0};
  }();
  return value;
}

/// Busy-waits the injected per-instance handicap (gate verification only).
void burn_handicap() {
  const std::uint64_t ns = handicap_ns();
  if (ns == 0) return;
  const auto end =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < end) {
    benchmark::ClobberMemory();
  }
}

constexpr std::size_t kSkewedCount = 160;
constexpr std::size_t kSkewedHeavyTail = 16;  ///< trailing havet h=3 run

gen::WorkloadParams cheap_tree_params() {
  gen::WorkloadParams params;
  params.size = 32;
  params.paths = 20;
  return params;
}

/// The shared shape of the uniform workload — one definition for the
/// matrix, the google-benchmark batches, and the prebuilt-instance bench,
/// so they keep measuring the same instances.
gen::WorkloadParams uniform_params() {
  gen::WorkloadParams params = cheap_tree_params();
  params.rows = 4;
  params.cols = 5;
  return params;
}

Instance uniform_instance(Xoshiro256& rng, std::size_t) {
  return gen::workload_instance("random-upp", uniform_params(), rng);
}

Instance skewed_family_instance(Xoshiro256& rng, std::size_t index) {
  gen::WorkloadParams params;
  if (index >= kSkewedCount - kSkewedHeavyTail) {
    // ~12ms exact-certified Wagner instances (Theorem 7 family): one
    // 16-instance fixed chunk of these is a ~200ms straggler.
    params.h = 3;
    return gen::workload_instance("havet", params, rng);
  }
  if (index % 8 == 0) {
    // Cheap but exact-dispatched odd-cycle gadget (C_41 conflict graph):
    // together with the heavy tail, >20% of the batch lands in the exact
    // strategy.
    params.k = 20;
    return gen::workload_instance("odd-cycle", params, rng);
  }
  return gen::workload_instance("tree", cheap_tree_params(), rng);
}

Instance exact_heavy_instance(Xoshiro256& rng, std::size_t) {
  gen::WorkloadParams params;
  params.h = 2;  // ~0.2ms exact certification per instance
  return gen::workload_instance("havet", params, rng);
}

struct Workload {
  std::string name;
  std::size_t count;
  core::InstanceGenerator generate;
};

const std::vector<Workload>& workloads() {
  static const std::vector<Workload> w = {
      {"uniform", 512, uniform_instance},
      {"skewed-family", kSkewedCount, skewed_family_instance},
      {"exact-heavy", 192, exact_heavy_instance},
  };
  return w;
}

BatchReport run_cell(api::Engine& engine, const Workload& workload,
                     Schedule schedule) {
  api::BatchRequest request;
  request.generate = [&workload](Xoshiro256& rng, std::size_t i) {
    Instance inst = workload.generate(rng, i);
    burn_handicap();
    return inst;
  };
  request.count = workload.count;
  request.options.seed = kSeed;
  request.options.schedule = schedule;
  request.options.keep_entries = false;  // throughput mode
  return engine.run_batch(request);
}

void print_table() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_configs = {1, 4, hw};
  // Dedup while preserving order (hw is often 4; 1-core boxes drop to
  // {1, 4}).
  std::vector<std::size_t> threads_list;
  for (const std::size_t t : thread_configs) {
    bool seen = false;
    for (const std::size_t u : threads_list) seen = seen || u == t;
    if (!seen) threads_list.push_back(t);
  }

  util::Table t("batch A/B matrix (best of " + std::to_string(kReps) +
                    " interleaved reps per cell)",
                {"workload", "schedule", "threads", "count", "chunk",
                 "inst_per_s", "p99_ms", "exact_share"});
  for (const std::size_t threads : threads_list) {
    api::EngineOptions engine_options;
    engine_options.threads = threads;
    api::Engine engine(engine_options);
    for (const Workload& workload : workloads()) {
      BatchReport best[2];  // [fixed, stealing]
      for (int rep = 0; rep < kReps; ++rep) {
        for (const Schedule schedule :
             {Schedule::kFixed, Schedule::kStealing}) {
          BatchReport report = run_cell(engine, workload, schedule);
          const std::size_t arm = schedule == Schedule::kFixed ? 0 : 1;
          if (report.instances_per_second() >
              best[arm].instances_per_second()) {
            best[arm] = std::move(report);
          }
        }
      }
      for (const BatchReport& report : best) {
        const double solved = static_cast<double>(report.instance_count);
        t.add_row({workload.name,
                   std::string(core::schedule_name(report.schedule)),
                   static_cast<long long>(report.threads_used),
                   static_cast<long long>(report.instance_count),
                   static_cast<long long>(report.chunk_size),
                   report.instances_per_second(), report.latency.p99,
                   solved == 0 ? 0.0
                               : static_cast<double>(report.count("exact")) /
                                     solved});
      }
    }
  }
  bench::emit(t);
  bench::emit_json("batch_throughput", t);
}

BatchReport run_batch(const std::string& workload, std::size_t count,
                      std::size_t threads, Schedule schedule) {
  BatchOptions options;
  options.threads = threads;
  options.seed = kSeed;
  options.schedule = schedule;
  const gen::WorkloadParams params = uniform_params();
  return core::solve_generated_batch(
      count,
      [&workload, &params](Xoshiro256& rng, std::size_t) {
        return gen::workload_instance(workload, params, rng);
      },
      core::SolveOptions{}, options);
}

void BM_BatchSolve(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const Schedule schedule =
      state.range(1) == 0 ? Schedule::kFixed : Schedule::kStealing;
  std::size_t instances = 0;
  for (auto _ : state) {
    const BatchReport report =
        run_batch("random-upp", 128, threads, schedule);
    benchmark::DoNotOptimize(report.total_wavelengths);
    instances += report.instance_count;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instances));
}
BENCHMARK(BM_BatchSolve)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->UseRealTime();

void BM_BatchSolvePrebuilt(benchmark::State& state) {
  // Isolates solver throughput from generation: instances built once.
  Xoshiro256 rng(99);
  const gen::WorkloadParams params = uniform_params();
  std::vector<Instance> instances;
  std::vector<paths::DipathFamily> families;
  for (std::size_t i = 0; i < 128; ++i) {
    instances.push_back(gen::workload_instance("grid", params, rng));
    families.push_back(instances.back().family);
  }
  BatchOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  std::size_t solved = 0;
  for (auto _ : state) {
    const BatchReport report =
        core::solve_batch(families, core::SolveOptions{}, options);
    benchmark::DoNotOptimize(report.total_wavelengths);
    solved += report.entries.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(solved));
}
BENCHMARK(BM_BatchSolvePrebuilt)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

WDAG_BENCH_MAIN(print_table)
