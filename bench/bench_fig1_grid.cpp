// E1 — Figure 1: the pathological family where pi == 2 but w == k.
//
// Paper claim: "there are examples of topologies where there are at most 2
// dipaths using an arc (pi = 2) but where we need as many wavelengths as we
// want" — the w/pi ratio is unbounded on DAGs with internal cycles.
//
// The table regenerates the series (k, pi, w) and the ratio; the timings
// measure the exact chromatic solver on the complete conflict graphs.

#include "bench_util.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "dag/internal_cycle.hpp"
#include "gen/paper_instances.hpp"
#include "paths/load.hpp"

namespace {

using namespace wdag;

void print_table() {
  util::Table t("E1 / Figure 1: pi = 2, w = k (unbounded ratio)",
                {"k", "paths", "pi", "w (exact)", "w/pi", "internal cycles"});
  for (std::size_t k = 2; k <= 12; ++k) {
    const auto inst = gen::figure1_pathological(k);
    const auto pi = paths::max_load(inst.family);
    const auto chi =
        conflict::chromatic_number(conflict::ConflictGraph(inst.family));
    t.add_row({static_cast<long long>(k),
               static_cast<long long>(inst.family.size()),
               static_cast<long long>(pi),
               static_cast<long long>(chi.chromatic_number),
               static_cast<double>(chi.chromatic_number) / static_cast<double>(pi),
               static_cast<long long>(
                   dag::internal_cycle_count(*inst.graph))});
  }
  bench::emit(t);
}

void BM_Fig1ExactChromatic(benchmark::State& state) {
  const auto inst =
      gen::figure1_pathological(static_cast<std::size_t>(state.range(0)));
  const conflict::ConflictGraph cg(inst.family);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conflict::chromatic_number(cg).chromatic_number);
  }
}
BENCHMARK(BM_Fig1ExactChromatic)->Arg(4)->Arg(8)->Arg(12);

void BM_Fig1InstanceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gen::figure1_pathological(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_Fig1InstanceGeneration)->Arg(8)->Arg(16);

}  // namespace

WDAG_BENCH_MAIN(print_table)
