// E2 — Figure 3: the 5-dipath instance on a one-internal-cycle DAG with
// pi == 2 and w == 3 (conflict graph C5).
//
// Paper claim (§2): "The load is 2 and the conflict graph is a cycle of
// length 5 and so we need 3 colors."

#include "bench_util.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "api/strategy.hpp"
#include "core/solver.hpp"
#include "dag/classify.hpp"
#include "gen/paper_instances.hpp"
#include "paths/load.hpp"

namespace {

using namespace wdag;

void print_table() {
  const auto inst = gen::figure3_instance();
  const auto report = dag::classify(*inst.graph);
  const conflict::ConflictGraph cg(inst.family);
  const auto chi = conflict::chromatic_number(cg);
  const auto solved = api::solve_with(api::builtin_registry(), inst.family, {});

  util::Table t("E2 / Figure 3: one internal cycle, pi = 2, w = 3",
                {"quantity", "paper", "measured"});
  t.add_row({std::string("dipaths"), 5LL,
             static_cast<long long>(inst.family.size())});
  t.add_row({std::string("pi (load)"), 2LL,
             static_cast<long long>(paths::max_load(inst.family))});
  t.add_row({std::string("conflict graph edges (C5)"), 5LL,
             static_cast<long long>(cg.num_edges())});
  t.add_row({std::string("w (chromatic number)"), 3LL,
             static_cast<long long>(chi.chromatic_number)});
  t.add_row({std::string("solver wavelengths"), 3LL,
             static_cast<long long>(solved.wavelengths)});
  t.add_row({std::string("internal cycles"), 1LL,
             static_cast<long long>(report.internal_cycles)});
  t.add_row({std::string("UPP"), 0LL,
             static_cast<long long>(report.is_upp ? 1 : 0)});
  bench::emit(t);
}

void BM_Fig3Solve(benchmark::State& state) {
  const auto inst = gen::figure3_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(api::solve_with(api::builtin_registry(), inst.family, {}).wavelengths);
  }
}
BENCHMARK(BM_Fig3Solve);

void BM_Fig3Classify(benchmark::State& state) {
  const auto inst = gen::figure3_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::classify(*inst.graph).internal_cycles);
  }
}
BENCHMARK(BM_Fig3Classify);

}  // namespace

WDAG_BENCH_MAIN(print_table)
