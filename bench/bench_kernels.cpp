// Per-kernel microbenches for the runtime-dispatched SIMD tiers: every
// (kernel, bits, tier) cell is timed on its own, so a kernel-level
// regression fails the perf gate even when end-to-end batch numbers hide
// it behind other costs. Plain executable (no google-benchmark) so the
// gate runs everywhere; emits the same one-line BENCH record shape as the
// batch matrix, gated by scripts/compare_bench.py --bench kernels.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

namespace simd = wdag::util::simd;

namespace {

constexpr std::size_t kBitSizes[] = {512, 4096, 65536};
constexpr std::size_t kOrRowsCount = 64;

/// Compiler sink: keeps the measured loop from being optimized away.
void keep(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Times `op` (one kernel invocation per call) and returns calls/second.
/// Calibrates the iteration count so each cell runs ~25 ms.
template <class Op>
double ops_per_second(Op&& op) {
  std::size_t iters = 64;
  for (;;) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) op();
    const double elapsed = seconds_since(start);
    if (elapsed >= 0.025 || iters >= (std::size_t{1} << 24)) {
      return static_cast<double>(iters) / elapsed;
    }
    const double target = 0.035;
    const double scale = elapsed > 0 ? target / elapsed : 16.0;
    iters = static_cast<std::size_t>(static_cast<double>(iters) *
                                     (scale < 16.0 ? scale : 16.0)) +
            1;
  }
}

struct Buffers {
  std::vector<std::uint64_t> dst;
  std::vector<std::uint64_t> src;
  std::vector<std::uint64_t> all_ones;
  std::vector<std::uint64_t> pool;
  std::vector<std::uint32_t> ids;
  std::size_t words = 0;
  std::size_t stride = 0;

  explicit Buffers(std::size_t bits) {
    words = (bits + 63) / 64;
    stride = (words + 7) / 8 * 8;
    wdag::util::Xoshiro256 rng(0xBE7C);
    dst.resize(words);
    src.resize(words);
    for (auto& w : dst) w = rng();
    for (auto& w : src) w = rng();
    all_ones.assign(words, ~std::uint64_t{0});
    pool.resize(kOrRowsCount * stride);
    for (auto& w : pool) w = rng();
    ids.resize(kOrRowsCount);
    for (std::size_t r = 0; r < kOrRowsCount; ++r) {
      ids[r] = static_cast<std::uint32_t>(r);
    }
  }
};

}  // namespace

int main() {
  wdag::util::Table table(
      "SIMD kernel throughput (calls/s, one kernel invocation per call)",
      {"kernel", "bits", "tier", "ops_per_s"});

  for (const simd::IsaTier tier : simd::reachable_tiers()) {
    simd::set_active_tier(tier);
    const simd::Kernels& k = simd::kernels();
    const std::string tier_name = simd::tier_name(tier);
    for (const std::size_t bits : kBitSizes) {
      Buffers b(bits);
      const long long bits_cell = static_cast<long long>(bits);

      table.add_row({std::string("or_words"), bits_cell, tier_name,
                     ops_per_second([&] {
                       k.or_words(b.dst.data(), b.src.data(), b.words);
                       keep(b.dst.data());
                     })});
      table.add_row({std::string("zero_words"), bits_cell, tier_name,
                     ops_per_second([&] {
                       k.zero_words(b.dst.data(), b.words);
                       keep(b.dst.data());
                     })});
      table.add_row({std::string("find_not_ones"), bits_cell, tier_name,
                     ops_per_second([&] {
                       // All-ones buffer: the full-scan worst case.
                       const std::size_t r = k.find_not_ones(
                           b.all_ones.data(), 0, b.words);
                       keep(&r);
                     })});
      table.add_row({std::string("or_rows"), bits_cell, tier_name,
                     ops_per_second([&] {
                       k.or_rows(b.pool.data(), b.stride, b.ids.data(),
                                 b.ids.size(), b.src.data(), b.words);
                       keep(b.pool.data());
                     })});
    }
  }

  std::fputs(table.to_text().c_str(), stdout);
  std::fputs("\n", stdout);
  std::printf("{\"bench\":\"kernels\",\"rows\":%s}\n",
              table.to_json_rows().c_str());
  return 0;
}
