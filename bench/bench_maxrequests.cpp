// E9 — the concluding remark: "for a given w, the maximum number of
// satisfiable requests — our theorem shows that we have only to compute the
// load." Exact versus greedy selection on internal-cycle-free instances.

#include "bench_util.hpp"
#include "core/maxrequests.hpp"
#include "core/theorem1.hpp"
#include "gen/family_gen.hpp"
#include "gen/random_dag.hpp"
#include "paths/load.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace wdag;

void print_table() {
  util::Table t(
      "E9 / max requests under a wavelength budget w (load criterion, "
      "Main Theorem) — greedy vs exact",
      {"n", "|cand|", "w", "greedy", "exact", "proven", "colors used",
       "exact nodes"});
  util::Xoshiro256 rng(990099);
  struct Row {
    std::size_t n, cand, w;
  };
  const Row rows[] = {{14, 12, 1}, {14, 12, 2}, {18, 16, 2},
                      {18, 16, 3}, {24, 20, 2}, {24, 20, 4}};
  for (const Row& row : rows) {
    const auto g = gen::random_no_internal_cycle_dag(rng, row.n, 0.2);
    if (g.num_arcs() == 0) continue;
    const auto cand = gen::random_walk_family(rng, g, row.cand, 1, 5);
    const auto greedy = core::max_requests_greedy(cand, row.w);
    const auto exact = core::max_requests_exact(cand, row.w);
    // Main-Theorem consistency: the selected subfamily colors with <= w
    // wavelengths via Theorem 1.
    std::size_t colors = 0;
    const auto chosen = cand.filter(exact.selected);
    if (!chosen.empty()) colors = core::color_equal_load(chosen).wavelengths;
    t.add_row({static_cast<long long>(row.n),
               static_cast<long long>(cand.size()),
               static_cast<long long>(row.w),
               static_cast<long long>(greedy.count),
               static_cast<long long>(exact.count),
               std::string(exact.proven ? "yes" : "no"),
               static_cast<long long>(colors),
               static_cast<long long>(exact.nodes)});
  }
  bench::emit(t);
}

void BM_MaxRequestsGreedy(benchmark::State& state) {
  util::Xoshiro256 rng(17);
  const auto g = gen::random_no_internal_cycle_dag(rng, 24, 0.2);
  const auto cand = gen::random_walk_family(
      rng, g, static_cast<std::size_t>(state.range(0)), 1, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::max_requests_greedy(cand, 3).count);
  }
}
BENCHMARK(BM_MaxRequestsGreedy)->Arg(16)->Arg(64)->Arg(256);

void BM_MaxRequestsExact(benchmark::State& state) {
  util::Xoshiro256 rng(17);
  const auto g = gen::random_no_internal_cycle_dag(rng, 24, 0.2);
  const auto cand = gen::random_walk_family(
      rng, g, static_cast<std::size_t>(state.range(0)), 1, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::max_requests_exact(cand, 3).count);
  }
}
BENCHMARK(BM_MaxRequestsExact)->Arg(12)->Arg(16)->Arg(20);

}  // namespace

WDAG_BENCH_MAIN(print_table)
