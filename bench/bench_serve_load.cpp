// Open-loop load generator for `wdag serve`, emitting one BENCH_serve
// JSON record (stdout + --out file) and self-gating on the admission
// contract.
//
// Two phases against in-process servers over loopback TCP:
//
//   sustained  solve requests issued on a fixed open-loop schedule
//              (--rate per second for --seconds), independent of
//              completions — the arrival process does not slow down when
//              the server does, which is what makes p99 honest. Gates:
//              zero errors, zero rejections, every request answered.
//
//   overload   a burst of worker-occupying requests against a tiny
//              admission queue (capacity 4). The bounded queue must turn
//              the excess into immediate queue_full rejections while the
//              ACCEPTED requests keep a bounded p99 (<= kOverloadP99Ms) —
//              rejection instead of latency collapse, the load-shedding
//              contract stated in serve/admission.hpp.
//
// Deliberately free of the google-benchmark dependency (plain sockets
// and timers), so it builds wherever the library does.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "core/json_min.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/build_info.hpp"
#include "util/cli.hpp"
#include "util/socket.hpp"
#include "util/timer.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Tally {
  std::mutex mutex;
  std::vector<double> ok_ms;  ///< latency of every "ok" response
  std::size_t ok = 0;
  std::size_t queue_full = 0;
  std::size_t other_rejected = 0;
  std::size_t errors = 0;

  void record(const std::string& response, double ms) {
    const wdag::serve::WireReply reply = wdag::serve::parse_reply(response);
    const std::lock_guard<std::mutex> lock(mutex);
    if (reply.status == "ok") {
      ++ok;
      ok_ms.push_back(ms);
    } else if (reply.status == "rejected" && reply.detail == "queue_full") {
      ++queue_full;
    } else if (reply.status == "rejected") {
      ++other_rejected;
    } else {
      ++errors;
    }
  }

  void record_failure() {
    const std::lock_guard<std::mutex> lock(mutex);
    ++errors;
  }
};

/// One request, one connection, outcome into the tally.
void fire(int port, const std::string& line, Tally& tally) {
  wdag::util::Timer timer;
  try {
    const std::string response = wdag::serve::request_once(
        "127.0.0.1", static_cast<std::uint16_t>(port), line,
        /*timeout_ms=*/30'000);
    tally.record(response, timer.millis());
  } catch (const std::exception&) {
    tally.record_failure();
  }
}

/// The phase summary as a nested JSON object.
std::string phase_json(Tally& tally, std::size_t sent, double wall_seconds) {
  const wdag::core::LatencyStats latency =
      wdag::core::latency_stats(tally.ok_ms);
  wdag::core::minjson::JsonWriter w;
  w.field("sent", sent)
      .field("ok", tally.ok)
      .field("rejected_queue_full", tally.queue_full)
      .field("rejected_other", tally.other_rejected)
      .field("errors", tally.errors)
      .field("wall_seconds", wall_seconds)
      .field("throughput_rps",
             wall_seconds > 0 ? static_cast<double>(tally.ok) / wall_seconds
                              : 0.0)
      .field("p50_ms", latency.p50)
      .field("p90_ms", latency.p90)
      .field("p99_ms", latency.p99)
      .field("max_ms", latency.max);
  return std::move(w).str();
}

/// Accepted-request p99 ceiling under overload: queue capacity 4 jobs of
/// kSleepMs each in front of a request bounds its wait near 5 x kSleepMs;
/// the ceiling leaves generous headroom for CI scheduling noise while
/// still catching unbounded buffering (which would push p99 toward
/// burst_size x kSleepMs).
constexpr double kOverloadP99Ms = 1000.0;
constexpr double kSleepMs = 20.0;

}  // namespace

int main(int argc, char** argv) {
  wdag::util::ignore_sigpipe();
  const wdag::util::Cli cli(argc, argv);
  const double seconds = cli.get_double("seconds", 3.0);
  const double rate = cli.get_double("rate", 40.0);
  const std::string out_path = cli.get("out", "BENCH_serve.json");
  const int senders = static_cast<int>(cli.get_int("senders", 4));

  // --- sustained phase ----------------------------------------------------
  wdag::serve::ServeOptions sustained_options;
  sustained_options.port = 0;
  sustained_options.queue_capacity = 64;
  sustained_options.engine_threads = 1;
  wdag::serve::Server sustained_server(sustained_options);
  sustained_server.start();

  const std::size_t total =
      static_cast<std::size_t>(std::max(1.0, seconds * rate));
  Tally sustained;
  wdag::util::Timer sustained_timer;
  {
    const Clock::time_point start = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(senders));
    for (int t = 0; t < senders; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = static_cast<std::size_t>(t); i < total;
             i += static_cast<std::size_t>(senders)) {
          // Open loop: request i fires at its scheduled slot no matter
          // how the previous ones fared.
          std::this_thread::sleep_until(
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(i) / rate)));
          wdag::serve::WireRequest request;
          request.gen.family = (i % 3 == 0) ? "random-upp" : "tree";
          request.gen.seed = i + 1;
          fire(sustained_server.port(),
               wdag::serve::request_to_json(request), sustained);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double sustained_wall = sustained_timer.seconds();
  sustained_server.request_stop();
  sustained_server.join();

  // --- overload phase -----------------------------------------------------
  wdag::serve::ServeOptions overload_options;
  overload_options.port = 0;
  overload_options.queue_capacity = 4;
  overload_options.engine_threads = 1;
  overload_options.enable_test_hooks = true;  // sleep = deterministic cost
  wdag::serve::Server overload_server(overload_options);
  overload_server.start();

  const std::size_t burst = 96;
  Tally overload;
  wdag::util::Timer overload_timer;
  {
    char line[64];
    std::snprintf(line, sizeof(line), "{\"type\":\"sleep\",\"millis\":%g}",
                  kSleepMs);
    const std::string sleep_line = line;
    std::vector<std::thread> threads;
    threads.reserve(8);
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (std::size_t i = 0; i < burst / 8; ++i) {
          fire(overload_server.port(), sleep_line, overload);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double overload_wall = overload_timer.seconds();
  overload_server.request_stop();
  overload_server.join();

  // --- record + gates -----------------------------------------------------
  const std::string sustained_json =
      phase_json(sustained, total, sustained_wall);
  const std::string overload_json = phase_json(overload, burst, overload_wall);
  const double overload_p99 =
      wdag::core::latency_stats(overload.ok_ms).p99;

  wdag::core::minjson::JsonWriter record;
  record.field("bench", "serve_load")
      .field("version", wdag::util::version())
      .field("rate_rps", rate)
      .field("seconds", seconds)
      .field_raw("sustained", sustained_json)
      .field_raw("overload", overload_json);
  const std::string line = std::move(record).str();
  std::cout << line << "\n";
  if (!out_path.empty() && out_path != "-") {
    std::ofstream out(out_path);
    out << line << "\n";
  }

  int failures = 0;
  const auto gate = [&failures](bool pass, const char* what) {
    if (!pass) {
      std::cerr << "bench_serve_load GATE FAILED: " << what << "\n";
      ++failures;
    }
  };
  gate(sustained.errors == 0, "sustained phase had errors");
  gate(sustained.queue_full == 0 && sustained.other_rejected == 0,
       "sustained phase was rejected (queue too small for the rate)");
  gate(sustained.ok == total, "sustained phase lost requests");
  gate(overload.errors == 0, "overload phase had errors");
  gate(overload.queue_full > 0,
       "overload produced no queue_full rejections (queue not bounded?)");
  gate(overload.ok + overload.queue_full + overload.other_rejected == burst,
       "overload phase lost requests");
  gate(overload_p99 <= kOverloadP99Ms,
       "overload accepted-request p99 exceeded the bound (latency "
       "collapse instead of rejection)");
  return failures == 0 ? 0 : 1;
}
