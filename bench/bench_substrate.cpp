// E10 — substrate ablations: scaling of the structural primitives the
// DESIGN calls out (internal-cycle detection via union–find, the UPP
// path-multiplicity DP with and without the thread pool, bitset transitive
// closure) plus regime classification of classic topologies.

#include "bench_util.hpp"
#include "dag/classify.hpp"
#include "dag/internal_cycle.hpp"
#include "dag/upp.hpp"
#include "gen/random_dag.hpp"
#include "gen/topologies.hpp"
#include "graph/reachability.hpp"
#include "graph/topo.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag;

void print_table() {
  util::Table t(
      "E10 / classic topologies under the paper's taxonomy",
      {"topology", "n", "m", "DAG", "UPP", "internal cycles", "regime"});
  auto add = [&](const std::string& name, const graph::Digraph& g) {
    const auto r = dag::classify(g);
    std::string regime = r.wavelengths_equal_load() ? "w == load (Thm 1)"
                         : r.theorem6_applies()     ? "<= 4/3 load (Thm 6)"
                         : r.is_upp                 ? "UPP multi-cycle"
                                                    : "unbounded (Fig 1)";
    t.add_row({name, static_cast<long long>(r.num_vertices),
               static_cast<long long>(r.num_arcs),
               std::string(r.is_dag ? "yes" : "no"),
               std::string(r.is_upp ? "yes" : "no"),
               static_cast<long long>(r.internal_cycles), regime});
  };
  add("butterfly(1)", gen::butterfly(1));
  add("butterfly(2)", gen::butterfly(2));
  add("butterfly(3)", gen::butterfly(3));
  add("butterfly(5)", gen::butterfly(5));
  add("grid 1x8", gen::grid_dag(1, 8));
  add("grid 4x4", gen::grid_dag(4, 4));
  add("grid 8x8", gen::grid_dag(8, 8));
  add("fat_chain(4, 1)", gen::fat_chain(4, 1));
  add("fat_chain(4, 3)", gen::fat_chain(4, 3));
  add("spine(16)", gen::spine_with_leaves(16));
  bench::emit(t);
}

void BM_InternalCycleDetection(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  const auto g = gen::random_dag(
      rng, static_cast<std::size_t>(state.range(0)), 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::has_internal_cycle(g));
  }
}
BENCHMARK(BM_InternalCycleDetection)->RangeMultiplier(4)->Range(64, 4096);

void BM_InternalCycleExtraction(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  const auto g = gen::random_dag(
      rng, static_cast<std::size_t>(state.range(0)), 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::find_internal_cycle(g).has_value());
  }
}
BENCHMARK(BM_InternalCycleExtraction)->RangeMultiplier(4)->Range(64, 1024);

void BM_UppCheckParallel(benchmark::State& state) {
  // is_upp fans the per-source DP out over the thread pool.
  const auto g = gen::butterfly(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::is_upp(g));
  }
}
BENCHMARK(BM_UppCheckParallel)->Arg(3)->Arg(5)->Arg(7);

void BM_TransitiveClosure(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  const auto g = gen::random_dag(
      rng, static_cast<std::size_t>(state.range(0)), 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::transitive_closure(g).size());
  }
}
BENCHMARK(BM_TransitiveClosure)->RangeMultiplier(4)->Range(64, 1024);

void BM_TopoSort(benchmark::State& state) {
  util::Xoshiro256 rng(4);
  const auto g = gen::random_dag(
      rng, static_cast<std::size_t>(state.range(0)), 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::topological_sort(g).has_value());
  }
}
BENCHMARK(BM_TopoSort)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace

WDAG_BENCH_MAIN(print_table)
