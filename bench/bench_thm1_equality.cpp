// E4a — Theorem 1 (Main Theorem, forward direction): on random DAGs
// without internal cycle, the constructive colorer always uses exactly
// pi(G,P) wavelengths, and the exact chromatic number agrees.
//
// Paper claim: "Let G be a DAG without internal cycle. Then, for any family
// of dipaths P, w(G,P) = pi(G,P)."

#include "bench_util.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "core/theorem1.hpp"
#include "gen/family_gen.hpp"
#include "gen/random_dag.hpp"
#include "paths/load.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag;

void print_table() {
  util::Table t(
      "E4a / Theorem 1: w == pi on random internal-cycle-free DAGs "
      "(20 instances per row; exact chi cross-checked when |P| <= 32)",
      {"n", "arc p", "|P|", "instances", "w==pi (alg)", "w==chi (exact)",
       "max pi seen", "total chains"});
  struct Row {
    std::size_t n;
    double p;
    std::size_t paths;
  };
  const Row rows[] = {{12, 0.20, 10}, {16, 0.15, 16}, {24, 0.12, 24},
                      {32, 0.10, 32}, {48, 0.08, 48}, {64, 0.06, 64},
                      {96, 0.04, 96}};
  util::Xoshiro256 rng(20070326);  // IPDPS'07 seed
  for (const Row& row : rows) {
    std::size_t eq_alg = 0, eq_exact = 0, exact_tried = 0, max_pi = 0,
                chains = 0, instances = 0;
    for (int trial = 0; trial < 20; ++trial) {
      const auto g = gen::random_no_internal_cycle_dag(rng, row.n, row.p);
      if (g.num_arcs() == 0) continue;
      ++instances;
      const auto fam = gen::random_walk_family(rng, g, row.paths, 1, 6);
      const auto res = core::color_equal_load(fam);
      max_pi = std::max(max_pi, res.load);
      chains += res.chain_recolorings;
      if (res.wavelengths == res.load) ++eq_alg;
      if (fam.size() <= 32) {
        ++exact_tried;
        const auto chi =
            conflict::chromatic_number(conflict::ConflictGraph(fam));
        if (chi.proven && chi.chromatic_number == res.wavelengths) ++eq_exact;
      }
    }
    t.add_row({static_cast<long long>(row.n), row.p,
               static_cast<long long>(row.paths),
               static_cast<long long>(instances),
               std::to_string(eq_alg) + "/" + std::to_string(instances),
               std::to_string(eq_exact) + "/" + std::to_string(exact_tried),
               static_cast<long long>(max_pi),
               static_cast<long long>(chains)});
  }
  bench::emit(t);
}

void BM_Theorem1RandomInstance(benchmark::State& state) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(state.range(0)));
  const auto g = gen::random_no_internal_cycle_dag(
      rng, static_cast<std::size_t>(state.range(0)), 0.1);
  const auto fam = gen::random_walk_family(
      rng, g, static_cast<std::size_t>(state.range(0)), 1, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::color_equal_load(fam).wavelengths);
  }
}
BENCHMARK(BM_Theorem1RandomInstance)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

WDAG_BENCH_MAIN(print_table)
