// E4b — runtime scaling of the Theorem 1 constructive colorer.
//
// The paper's proof is an induction over arcs with local recolorings; this
// bench establishes the implementation's empirical scaling in the number of
// vertices, arcs and dipaths (trees and repaired random DAGs), and compares
// against the DSATUR heuristic on the same instances.

#include "bench_util.hpp"
#include "conflict/coloring.hpp"
#include "conflict/conflict_graph.hpp"
#include "core/theorem1.hpp"
#include "gen/family_gen.hpp"
#include "gen/random_dag.hpp"
#include "paths/load.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace wdag;

void print_table() {
  util::Table t(
      "E4b / Theorem 1 runtime scaling (random out-trees, 8-arc walks)",
      {"n (tree)", "|P|", "pi", "theorem1 ms", "dsatur ms", "both == pi"});
  util::Xoshiro256 rng(424242);
  for (const std::size_t n : {100u, 200u, 400u, 800u, 1600u}) {
    const auto g = gen::random_out_tree(rng, n);
    const auto fam = gen::random_walk_family(rng, g, 4 * n, 1, 8);
    util::Timer t1;
    const auto res = core::color_equal_load(fam);
    const double ms1 = t1.millis();
    util::Timer t2;
    const conflict::ConflictGraph cg(fam);
    const auto ds = conflict::dsatur_coloring(cg);
    const double ms2 = t2.millis();
    t.add_row({static_cast<long long>(n), static_cast<long long>(fam.size()),
               static_cast<long long>(res.load), ms1, ms2,
               static_cast<long long>(
                   (res.wavelengths == res.load &&
                    conflict::num_colors(ds) == res.load)
                       ? 1
                       : 0)});
  }
  bench::emit(t);
}

void BM_Theorem1Tree(benchmark::State& state) {
  util::Xoshiro256 rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = gen::random_out_tree(rng, n);
  const auto fam = gen::random_walk_family(rng, g, 4 * n, 1, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::color_equal_load(fam).wavelengths);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Theorem1Tree)->RangeMultiplier(2)->Range(64, 1024)->Complexity();

void BM_DsaturSameInstances(benchmark::State& state) {
  util::Xoshiro256 rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = gen::random_out_tree(rng, n);
  const auto fam = gen::random_walk_family(rng, g, 4 * n, 1, 8);
  const conflict::ConflictGraph cg(fam);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conflict::dsatur_coloring(cg).size());
  }
}
BENCHMARK(BM_DsaturSameInstances)->RangeMultiplier(2)->Range(64, 1024);

void BM_ConflictGraphConstruction(benchmark::State& state) {
  util::Xoshiro256 rng(9);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = gen::random_out_tree(rng, n);
  const auto fam = gen::random_walk_family(rng, g, 4 * n, 1, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conflict::ConflictGraph(fam).num_edges());
  }
}
BENCHMARK(BM_ConflictGraphConstruction)->RangeMultiplier(2)->Range(64, 1024);

}  // namespace

WDAG_BENCH_MAIN(print_table)
