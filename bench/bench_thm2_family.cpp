// E3 — Theorem 2 / Figure 5: every DAG with an internal cycle admits a
// family with pi == 2 and w == 3.
//
// Paper claim: the gadget family forms an odd conflict cycle C_{2k+1},
// forcing three wavelengths at load two for every k.

#include "bench_util.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "core/split_merge.hpp"
#include "dag/classify.hpp"
#include "gen/paper_instances.hpp"
#include "paths/load.hpp"

namespace {

using namespace wdag;

void print_table() {
  util::Table t(
      "E3 / Theorem 2 (Figure 5): internal-cycle gadget, pi = 2, w = 3",
      {"k", "paths", "pi", "conflict C_{2k+1} edges", "w (exact)",
       "split-merge w", "UPP"});
  for (std::size_t k = 1; k <= 16; ++k) {
    const auto inst = gen::theorem2_instance(k);
    const conflict::ConflictGraph cg(inst.family);
    const auto chi = conflict::chromatic_number(cg);
    long long sm = -1;
    if (k >= 2) {  // split-merge requires UPP, which needs k >= 2
      sm = static_cast<long long>(
          core::color_upp_split_merge(inst.family).wavelengths);
    }
    t.add_row({static_cast<long long>(k),
               static_cast<long long>(inst.family.size()),
               static_cast<long long>(paths::max_load(inst.family)),
               static_cast<long long>(cg.num_edges()),
               static_cast<long long>(chi.chromatic_number), sm,
               static_cast<long long>(dag::classify(*inst.graph).is_upp)});
  }
  bench::emit(t);
}

void BM_Thm2SplitMerge(benchmark::State& state) {
  const auto inst =
      gen::theorem2_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::color_upp_split_merge(inst.family).wavelengths);
  }
}
BENCHMARK(BM_Thm2SplitMerge)->Arg(2)->Arg(8)->Arg(16);

void BM_Thm2ExactChromatic(benchmark::State& state) {
  const auto inst =
      gen::theorem2_instance(static_cast<std::size_t>(state.range(0)));
  const conflict::ConflictGraph cg(inst.family);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conflict::chromatic_number(cg).chromatic_number);
  }
}
BENCHMARK(BM_Thm2ExactChromatic)->Arg(2)->Arg(8)->Arg(16);

}  // namespace

WDAG_BENCH_MAIN(print_table)
