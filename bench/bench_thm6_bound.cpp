// E6 — Theorem 6: for a UPP-DAG with one internal cycle,
// w(G,P) <= ceil(4/3 * pi(G,P)).
//
// Two series are reported:
//   * the exact chromatic number against the bound (the theorem statement),
//   * the split-merge algorithm's color count against the same bound (the
//     constructive side; see DESIGN.md on the replicated-copy subtlety).

#include "bench_util.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "core/split_merge.hpp"
#include "gen/family_gen.hpp"
#include "gen/upp_gen.hpp"
#include "paths/load.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag;

void print_table() {
  util::Table t(
      "E6 / Theorem 6: w <= ceil(4/3 pi) on UPP one-cycle instances "
      "(12 instances per row; chi exact when |P| <= 28)",
      {"gadget k", "|P|", "max pi", "chi<=bound", "alg<=bound", "alg==chi",
       "max alg extra"});
  util::Xoshiro256 rng(660066);
  struct Row {
    std::size_t k, paths;
  };
  const Row rows[] = {{2, 12}, {2, 20}, {3, 16}, {3, 24},
                      {4, 20}, {5, 24}, {6, 28}};
  for (const Row& row : rows) {
    constexpr int kTrials = 12;
    std::size_t chi_ok = 0, chi_tried = 0, alg_ok = 0, alg_eq_chi = 0,
                max_pi = 0;
    long long max_extra = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto inst = gen::random_upp_one_cycle_instance(
          rng, gen::UppCycleParams{row.k, 1, 1, 1}, row.paths);
      const auto pi = paths::max_load(inst.family);
      max_pi = std::max(max_pi, pi);
      const auto bound = bench::ceil_four_thirds(pi);
      const auto res = core::color_upp_split_merge(inst.family);
      if (res.wavelengths <= bound) ++alg_ok;
      max_extra = std::max(
          max_extra, static_cast<long long>(res.wavelengths) -
                         static_cast<long long>(pi));
      if (inst.family.size() <= 28) {
        const auto chi =
            conflict::chromatic_number(conflict::ConflictGraph(inst.family));
        if (chi.proven) {
          ++chi_tried;
          if (chi.chromatic_number <= bound) ++chi_ok;
          if (chi.chromatic_number == res.wavelengths) ++alg_eq_chi;
        }
      }
    }
    t.add_row({static_cast<long long>(row.k),
               static_cast<long long>(row.paths),
               static_cast<long long>(max_pi),
               std::to_string(chi_ok) + "/" + std::to_string(chi_tried),
               std::to_string(alg_ok) + "/" + std::to_string(kTrials),
               std::to_string(alg_eq_chi) + "/" + std::to_string(chi_tried),
               max_extra});
  }
  bench::emit(t);
}

void BM_SplitMergeRandom(benchmark::State& state) {
  util::Xoshiro256 rng(66);
  const auto inst = gen::random_upp_one_cycle_instance(
      rng, gen::UppCycleParams{3, 1, 1, 1},
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::color_upp_split_merge(inst.family).wavelengths);
  }
}
BENCHMARK(BM_SplitMergeRandom)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

WDAG_BENCH_MAIN(print_table)
