// E7 — Theorem 7 / Figure 9: the Havet gadget replicated h times attains
// the Theorem 6 bound: pi = 2h and w = ceil(8h/3) = ceil(4/3 * pi).
//
// The chromatic lower bound comes from the Wagner graph's independence
// number 3 (8h vertices / 3 per class); the exact solver certifies equality
// for small h and DSATUR witnesses achievability beyond.

#include "bench_util.hpp"
#include <array>

#include "conflict/coloring.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "core/split_merge.hpp"
#include "gen/paper_instances.hpp"
#include "paths/load.hpp"

namespace {

using namespace wdag;

/// Optimal coloring of the h-fold replicated Havet family with exactly
/// ceil(8h/3) colors, built from the Wagner graph's rotation-invariant
/// independent triples S_i = {i, i+2, i+5} (mod 8): floor(h/3) copies of
/// every rotation plus 3 (resp. 6) extra rotations when h % 3 is 1
/// (resp. 2) cover every vertex h times.
conflict::Coloring havet_replicated_coloring(std::size_t h) {
  const std::size_t k = h / 3, r = h % 3;
  std::vector<std::array<std::size_t, 3>> classes;
  auto triple = [](std::size_t i) {
    return std::array<std::size_t, 3>{i % 8, (i + 2) % 8, (i + 5) % 8};
  };
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t c = 0; c < k; ++c) classes.push_back(triple(i));
  }
  // Remainder rotations: S_0..S_2 cover every vertex once; S_0..S_5 cover
  // every vertex at least twice.
  const std::size_t extras = (r == 1) ? 3 : (r == 2) ? 6 : 0;
  for (std::size_t i = 0; i < extras; ++i) classes.push_back(triple(i));

  // Path ids: DipathFamily::replicate blocks copies of V8-vertex v at
  // [v*h, (v+1)*h).
  conflict::Coloring colors(8 * h, UINT32_MAX);
  std::vector<std::size_t> next_copy(8, 0);
  for (std::size_t cls = 0; cls < classes.size(); ++cls) {
    for (const std::size_t v : classes[cls]) {
      if (next_copy[v] < h) {
        colors[v * h + next_copy[v]++] = static_cast<std::uint32_t>(cls);
      }
    }
  }
  return colors;
}

void print_table() {
  util::Table t(
      "E7 / Theorem 7 (Figure 9): replicated Havet gadget, w = ceil(8h/3)",
      {"h", "paths", "pi = 2h", "paper w", "w lower (alpha=3)", "w upper",
       "upper witness", "w certified == paper"});
  const auto base = gen::havet_instance();
  for (std::size_t h = 1; h <= 10; ++h) {
    const auto fam = base.family.replicate(h);
    const auto pi = paths::max_load(fam);
    const auto paper_w = bench::ceil_eight_thirds(h);
    const conflict::ConflictGraph cg(fam);

    // Lower bound: V8 has independence number 3 (verified in the tests),
    // so any proper coloring needs >= ceil(8h/3) classes.
    const std::size_t lower = paper_w;
    // Upper bound: the rotation-class construction, validated here; the
    // exact solver cross-checks small h.
    const auto witness_coloring = havet_replicated_coloring(h);
    std::size_t upper = conflict::is_valid_assignment(fam, witness_coloring)
                            ? conflict::num_colors(witness_coloring)
                            : SIZE_MAX;
    std::string witness = "rotation classes";
    if (h <= 3) {
      const auto chi = conflict::chromatic_number(cg);
      if (chi.proven) {
        upper = std::min(upper, chi.chromatic_number);
        witness += "+exact";
      }
    }
    t.add_row({static_cast<long long>(h), static_cast<long long>(fam.size()),
               static_cast<long long>(pi), static_cast<long long>(paper_w),
               static_cast<long long>(lower), static_cast<long long>(upper),
               witness,
               std::string(lower == upper ? "yes" : "no")});
  }
  bench::emit(t);
}

void BM_HavetExactChromatic(benchmark::State& state) {
  const auto base = gen::havet_instance();
  const auto fam =
      base.family.replicate(static_cast<std::size_t>(state.range(0)));
  const conflict::ConflictGraph cg(fam);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conflict::chromatic_number(cg).chromatic_number);
  }
}
BENCHMARK(BM_HavetExactChromatic)->Arg(1)->Arg(2)->Arg(3);

void BM_HavetSplitMerge(benchmark::State& state) {
  const auto base = gen::havet_instance();
  const auto fam =
      base.family.replicate(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::color_upp_split_merge(fam).wavelengths);
  }
}
BENCHMARK(BM_HavetSplitMerge)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

WDAG_BENCH_MAIN(print_table)
