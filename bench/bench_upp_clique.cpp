// E5 — Property 3: on UPP-DAGs the load equals the clique number of the
// conflict graph (and by Corollary 5 the conflict graph has no K_{2,3}
// with independent sides).

#include "bench_util.hpp"
#include "conflict/clique.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/helly.hpp"
#include "gen/family_gen.hpp"
#include "gen/upp_gen.hpp"
#include "paths/load.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag;

void print_table() {
  util::Table t(
      "E5 / Property 3 + Corollary 5 on random UPP one-cycle instances "
      "(15 instances per row)",
      {"gadget k", "run len", "|P|", "clique==pi", "no K_{2,3}",
       "no K5-2e", "Helly triples"});
  util::Xoshiro256 rng(55555);
  struct Row {
    std::size_t k, run, paths;
  };
  const Row rows[] = {{2, 1, 12}, {2, 2, 18}, {3, 1, 18},
                      {3, 2, 24}, {4, 1, 24}, {5, 2, 30}};
  for (const Row& row : rows) {
    std::size_t eq = 0, nok23 = 0, nok5 = 0, helly = 0;
    constexpr int kTrials = 15;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto inst = gen::random_upp_one_cycle_instance(
          rng, gen::UppCycleParams{row.k, row.run, 1, 1}, row.paths);
      const conflict::ConflictGraph cg(inst.family);
      if (conflict::clique_number(cg) == paths::max_load(inst.family)) ++eq;
      if (!conflict::find_k23(cg)) ++nok23;
      if (!conflict::find_k5_minus_two_edges(cg)) ++nok5;
      if (conflict::triples_satisfy_helly(inst.family)) ++helly;
    }
    auto frac = [&](std::size_t x) {
      return std::to_string(x) + "/" + std::to_string(kTrials);
    };
    t.add_row({static_cast<long long>(row.k), static_cast<long long>(row.run),
               static_cast<long long>(row.paths), frac(eq), frac(nok23),
               frac(nok5), frac(helly)});
  }
  bench::emit(t);
}

void BM_ExactClique(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  const auto inst = gen::random_upp_one_cycle_instance(
      rng, gen::UppCycleParams{3, 2, 1, 1},
      static_cast<std::size_t>(state.range(0)));
  const conflict::ConflictGraph cg(inst.family);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conflict::clique_number(cg));
  }
}
BENCHMARK(BM_ExactClique)->Arg(16)->Arg(32)->Arg(64);

void BM_LoadComputation(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  const auto inst = gen::random_upp_one_cycle_instance(
      rng, gen::UppCycleParams{3, 2, 1, 1},
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(paths::max_load(inst.family));
  }
}
BENCHMARK(BM_LoadComputation)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

WDAG_BENCH_MAIN(print_table)
