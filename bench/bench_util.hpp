#pragma once
// Shared plumbing for the benchmark harness.
//
// Every bench binary does two things:
//   1. regenerates its paper table/figure as a results table on stdout
//      (the "shape" evidence recorded in EXPERIMENTS.md), then
//   2. runs google-benchmark timings for the algorithms involved.
//
// WDAG_BENCH_MAIN(print_fn) emits the table(s) first so that plain
// `./bench_x` output starts with the reproduction evidence.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "util/table.hpp"

namespace wdag::bench {

/// ceil(4/3 * pi) — Theorem 6's bound, used by several benches.
inline std::size_t ceil_four_thirds(std::size_t pi) {
  return (4 * pi + 2) / 3;
}

/// ceil(8h/3) — Theorem 7's tight value.
inline std::size_t ceil_eight_thirds(std::size_t h) {
  return (8 * h + 2) / 3;
}

inline void emit(const util::Table& table) {
  std::fputs(table.to_text().c_str(), stdout);
  std::fputs("\n", stdout);
}

/// Emits a one-line BENCH_<name>.json-compatible record: the table's rows
/// as a JSON array under a bench key, for cross-PR perf tracking.
inline void emit_json(const std::string& name, const util::Table& table) {
  std::printf("{\"bench\":\"%s\",\"rows\":%s}\n", name.c_str(),
              table.to_json_rows().c_str());
}

}  // namespace wdag::bench

#define WDAG_BENCH_MAIN(print_fn)                                   \
  int main(int argc, char** argv) {                                 \
    print_fn();                                                     \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {     \
      return 1;                                                     \
    }                                                               \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }
