file(REMOVE_RECURSE
  "CMakeFiles/test_api_engine.dir/tests/test_api_engine.cpp.o"
  "CMakeFiles/test_api_engine.dir/tests/test_api_engine.cpp.o.d"
  "test_api_engine"
  "test_api_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
