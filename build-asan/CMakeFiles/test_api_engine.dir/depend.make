# Empty dependencies file for test_api_engine.
# This may be replaced when dependencies are built.
