file(REMOVE_RECURSE
  "CMakeFiles/test_api_sinks.dir/tests/test_api_sinks.cpp.o"
  "CMakeFiles/test_api_sinks.dir/tests/test_api_sinks.cpp.o.d"
  "test_api_sinks"
  "test_api_sinks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_sinks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
