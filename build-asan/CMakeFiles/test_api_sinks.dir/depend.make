# Empty dependencies file for test_api_sinks.
# This may be replaced when dependencies are built.
