file(REMOVE_RECURSE
  "CMakeFiles/test_batch.dir/tests/test_batch.cpp.o"
  "CMakeFiles/test_batch.dir/tests/test_batch.cpp.o.d"
  "test_batch"
  "test_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
