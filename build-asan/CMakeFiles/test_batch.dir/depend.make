# Empty dependencies file for test_batch.
# This may be replaced when dependencies are built.
