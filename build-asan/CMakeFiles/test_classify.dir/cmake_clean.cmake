file(REMOVE_RECURSE
  "CMakeFiles/test_classify.dir/tests/test_classify.cpp.o"
  "CMakeFiles/test_classify.dir/tests/test_classify.cpp.o.d"
  "test_classify"
  "test_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
