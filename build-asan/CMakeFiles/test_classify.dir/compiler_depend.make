# Empty compiler generated dependencies file for test_classify.
# This may be replaced when dependencies are built.
