file(REMOVE_RECURSE
  "CMakeFiles/test_cli.dir/tests/test_cli.cpp.o"
  "CMakeFiles/test_cli.dir/tests/test_cli.cpp.o.d"
  "test_cli"
  "test_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
