# Empty dependencies file for test_cli.
# This may be replaced when dependencies are built.
