file(REMOVE_RECURSE
  "CMakeFiles/test_clique.dir/tests/test_clique.cpp.o"
  "CMakeFiles/test_clique.dir/tests/test_clique.cpp.o.d"
  "test_clique"
  "test_clique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
