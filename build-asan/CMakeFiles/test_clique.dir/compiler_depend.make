# Empty compiler generated dependencies file for test_clique.
# This may be replaced when dependencies are built.
