file(REMOVE_RECURSE
  "CMakeFiles/test_coloring.dir/tests/test_coloring.cpp.o"
  "CMakeFiles/test_coloring.dir/tests/test_coloring.cpp.o.d"
  "test_coloring"
  "test_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
