# Empty compiler generated dependencies file for test_coloring.
# This may be replaced when dependencies are built.
