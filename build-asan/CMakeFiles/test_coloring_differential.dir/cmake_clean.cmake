file(REMOVE_RECURSE
  "CMakeFiles/test_coloring_differential.dir/tests/test_coloring_differential.cpp.o"
  "CMakeFiles/test_coloring_differential.dir/tests/test_coloring_differential.cpp.o.d"
  "test_coloring_differential"
  "test_coloring_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coloring_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
