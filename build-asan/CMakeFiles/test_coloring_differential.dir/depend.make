# Empty dependencies file for test_coloring_differential.
# This may be replaced when dependencies are built.
