file(REMOVE_RECURSE
  "CMakeFiles/test_conflict_graph.dir/tests/test_conflict_graph.cpp.o"
  "CMakeFiles/test_conflict_graph.dir/tests/test_conflict_graph.cpp.o.d"
  "test_conflict_graph"
  "test_conflict_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conflict_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
