# Empty dependencies file for test_conflict_graph.
# This may be replaced when dependencies are built.
