file(REMOVE_RECURSE
  "CMakeFiles/test_cycle_basis.dir/tests/test_cycle_basis.cpp.o"
  "CMakeFiles/test_cycle_basis.dir/tests/test_cycle_basis.cpp.o.d"
  "test_cycle_basis"
  "test_cycle_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cycle_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
