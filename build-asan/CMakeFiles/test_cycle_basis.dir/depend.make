# Empty dependencies file for test_cycle_basis.
# This may be replaced when dependencies are built.
