file(REMOVE_RECURSE
  "CMakeFiles/test_digraph.dir/tests/test_digraph.cpp.o"
  "CMakeFiles/test_digraph.dir/tests/test_digraph.cpp.o.d"
  "test_digraph"
  "test_digraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_digraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
