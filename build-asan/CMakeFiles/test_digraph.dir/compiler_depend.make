# Empty compiler generated dependencies file for test_digraph.
# This may be replaced when dependencies are built.
