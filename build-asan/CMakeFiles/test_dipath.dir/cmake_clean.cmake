file(REMOVE_RECURSE
  "CMakeFiles/test_dipath.dir/tests/test_dipath.cpp.o"
  "CMakeFiles/test_dipath.dir/tests/test_dipath.cpp.o.d"
  "test_dipath"
  "test_dipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
