# Empty compiler generated dependencies file for test_dipath.
# This may be replaced when dependencies are built.
