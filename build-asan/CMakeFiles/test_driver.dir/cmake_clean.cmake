file(REMOVE_RECURSE
  "CMakeFiles/test_driver.dir/tests/test_driver.cpp.o"
  "CMakeFiles/test_driver.dir/tests/test_driver.cpp.o.d"
  "test_driver"
  "test_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
