# Empty compiler generated dependencies file for test_driver.
# This may be replaced when dependencies are built.
