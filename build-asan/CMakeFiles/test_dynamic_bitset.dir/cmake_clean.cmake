file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_bitset.dir/tests/test_dynamic_bitset.cpp.o"
  "CMakeFiles/test_dynamic_bitset.dir/tests/test_dynamic_bitset.cpp.o.d"
  "test_dynamic_bitset"
  "test_dynamic_bitset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_bitset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
