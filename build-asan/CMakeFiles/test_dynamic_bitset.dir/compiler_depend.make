# Empty compiler generated dependencies file for test_dynamic_bitset.
# This may be replaced when dependencies are built.
