file(REMOVE_RECURSE
  "CMakeFiles/test_engine_longevity.dir/tests/test_engine_longevity.cpp.o"
  "CMakeFiles/test_engine_longevity.dir/tests/test_engine_longevity.cpp.o.d"
  "test_engine_longevity"
  "test_engine_longevity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_longevity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
