# Empty dependencies file for test_engine_longevity.
# This may be replaced when dependencies are built.
