file(REMOVE_RECURSE
  "CMakeFiles/test_exact_color.dir/tests/test_exact_color.cpp.o"
  "CMakeFiles/test_exact_color.dir/tests/test_exact_color.cpp.o.d"
  "test_exact_color"
  "test_exact_color.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_color.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
