# Empty dependencies file for test_exact_color.
# This may be replaced when dependencies are built.
