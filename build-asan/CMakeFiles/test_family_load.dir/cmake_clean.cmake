file(REMOVE_RECURSE
  "CMakeFiles/test_family_load.dir/tests/test_family_load.cpp.o"
  "CMakeFiles/test_family_load.dir/tests/test_family_load.cpp.o.d"
  "test_family_load"
  "test_family_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_family_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
