# Empty dependencies file for test_family_load.
# This may be replaced when dependencies are built.
