file(REMOVE_RECURSE
  "CMakeFiles/test_familyio.dir/tests/test_familyio.cpp.o"
  "CMakeFiles/test_familyio.dir/tests/test_familyio.cpp.o.d"
  "test_familyio"
  "test_familyio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_familyio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
