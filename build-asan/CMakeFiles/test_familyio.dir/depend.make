# Empty dependencies file for test_familyio.
# This may be replaced when dependencies are built.
