file(REMOVE_RECURSE
  "CMakeFiles/test_generators.dir/tests/test_generators.cpp.o"
  "CMakeFiles/test_generators.dir/tests/test_generators.cpp.o.d"
  "test_generators"
  "test_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
