# Empty compiler generated dependencies file for test_generators.
# This may be replaced when dependencies are built.
