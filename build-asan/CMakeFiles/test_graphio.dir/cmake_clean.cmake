file(REMOVE_RECURSE
  "CMakeFiles/test_graphio.dir/tests/test_graphio.cpp.o"
  "CMakeFiles/test_graphio.dir/tests/test_graphio.cpp.o.d"
  "test_graphio"
  "test_graphio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
