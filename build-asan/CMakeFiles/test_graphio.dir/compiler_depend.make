# Empty compiler generated dependencies file for test_graphio.
# This may be replaced when dependencies are built.
