file(REMOVE_RECURSE
  "CMakeFiles/test_helly.dir/tests/test_helly.cpp.o"
  "CMakeFiles/test_helly.dir/tests/test_helly.cpp.o.d"
  "test_helly"
  "test_helly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_helly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
