# Empty dependencies file for test_helly.
# This may be replaced when dependencies are built.
