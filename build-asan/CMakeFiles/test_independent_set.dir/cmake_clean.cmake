file(REMOVE_RECURSE
  "CMakeFiles/test_independent_set.dir/tests/test_independent_set.cpp.o"
  "CMakeFiles/test_independent_set.dir/tests/test_independent_set.cpp.o.d"
  "test_independent_set"
  "test_independent_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_independent_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
