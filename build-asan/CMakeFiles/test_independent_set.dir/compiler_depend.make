# Empty compiler generated dependencies file for test_independent_set.
# This may be replaced when dependencies are built.
