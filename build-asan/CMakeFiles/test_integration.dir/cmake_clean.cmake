file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/tests/test_integration.cpp.o"
  "CMakeFiles/test_integration.dir/tests/test_integration.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
