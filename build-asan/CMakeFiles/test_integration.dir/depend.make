# Empty dependencies file for test_integration.
# This may be replaced when dependencies are built.
