file(REMOVE_RECURSE
  "CMakeFiles/test_internal_cycle.dir/tests/test_internal_cycle.cpp.o"
  "CMakeFiles/test_internal_cycle.dir/tests/test_internal_cycle.cpp.o.d"
  "test_internal_cycle"
  "test_internal_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_internal_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
