# Empty compiler generated dependencies file for test_internal_cycle.
# This may be replaced when dependencies are built.
