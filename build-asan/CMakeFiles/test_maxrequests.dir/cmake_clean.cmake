file(REMOVE_RECURSE
  "CMakeFiles/test_maxrequests.dir/tests/test_maxrequests.cpp.o"
  "CMakeFiles/test_maxrequests.dir/tests/test_maxrequests.cpp.o.d"
  "test_maxrequests"
  "test_maxrequests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxrequests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
