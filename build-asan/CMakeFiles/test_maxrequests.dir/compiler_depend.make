# Empty compiler generated dependencies file for test_maxrequests.
# This may be replaced when dependencies are built.
