file(REMOVE_RECURSE
  "CMakeFiles/test_oriented_cycle.dir/tests/test_oriented_cycle.cpp.o"
  "CMakeFiles/test_oriented_cycle.dir/tests/test_oriented_cycle.cpp.o.d"
  "test_oriented_cycle"
  "test_oriented_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oriented_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
