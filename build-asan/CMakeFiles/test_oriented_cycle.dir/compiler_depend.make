# Empty compiler generated dependencies file for test_oriented_cycle.
# This may be replaced when dependencies are built.
