file(REMOVE_RECURSE
  "CMakeFiles/test_paper_instances.dir/tests/test_paper_instances.cpp.o"
  "CMakeFiles/test_paper_instances.dir/tests/test_paper_instances.cpp.o.d"
  "test_paper_instances"
  "test_paper_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
