# Empty dependencies file for test_paper_instances.
# This may be replaced when dependencies are built.
