file(REMOVE_RECURSE
  "CMakeFiles/test_paper_properties.dir/tests/test_paper_properties.cpp.o"
  "CMakeFiles/test_paper_properties.dir/tests/test_paper_properties.cpp.o.d"
  "test_paper_properties"
  "test_paper_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
