# Empty dependencies file for test_paper_properties.
# This may be replaced when dependencies are built.
