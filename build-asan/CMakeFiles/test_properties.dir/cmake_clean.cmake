file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/tests/test_properties.cpp.o"
  "CMakeFiles/test_properties.dir/tests/test_properties.cpp.o.d"
  "test_properties"
  "test_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
