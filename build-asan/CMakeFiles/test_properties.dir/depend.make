# Empty dependencies file for test_properties.
# This may be replaced when dependencies are built.
