file(REMOVE_RECURSE
  "CMakeFiles/test_reachability.dir/tests/test_reachability.cpp.o"
  "CMakeFiles/test_reachability.dir/tests/test_reachability.cpp.o.d"
  "test_reachability"
  "test_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
