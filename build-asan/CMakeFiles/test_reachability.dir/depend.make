# Empty dependencies file for test_reachability.
# This may be replaced when dependencies are built.
