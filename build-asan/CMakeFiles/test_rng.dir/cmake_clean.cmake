file(REMOVE_RECURSE
  "CMakeFiles/test_rng.dir/tests/test_rng.cpp.o"
  "CMakeFiles/test_rng.dir/tests/test_rng.cpp.o.d"
  "test_rng"
  "test_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
