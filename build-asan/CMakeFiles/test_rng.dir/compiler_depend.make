# Empty compiler generated dependencies file for test_rng.
# This may be replaced when dependencies are built.
