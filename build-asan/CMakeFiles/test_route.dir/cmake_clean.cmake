file(REMOVE_RECURSE
  "CMakeFiles/test_route.dir/tests/test_route.cpp.o"
  "CMakeFiles/test_route.dir/tests/test_route.cpp.o.d"
  "test_route"
  "test_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
