# Empty dependencies file for test_route.
# This may be replaced when dependencies are built.
