file(REMOVE_RECURSE
  "CMakeFiles/test_rwa.dir/tests/test_rwa.cpp.o"
  "CMakeFiles/test_rwa.dir/tests/test_rwa.cpp.o.d"
  "test_rwa"
  "test_rwa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rwa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
