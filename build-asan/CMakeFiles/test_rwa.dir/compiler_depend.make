# Empty compiler generated dependencies file for test_rwa.
# This may be replaced when dependencies are built.
