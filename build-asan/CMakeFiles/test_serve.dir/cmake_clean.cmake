file(REMOVE_RECURSE
  "CMakeFiles/test_serve.dir/tests/test_serve.cpp.o"
  "CMakeFiles/test_serve.dir/tests/test_serve.cpp.o.d"
  "test_serve"
  "test_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
