# Empty dependencies file for test_serve.
# This may be replaced when dependencies are built.
