file(REMOVE_RECURSE
  "CMakeFiles/test_shard.dir/tests/test_shard.cpp.o"
  "CMakeFiles/test_shard.dir/tests/test_shard.cpp.o.d"
  "test_shard"
  "test_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
