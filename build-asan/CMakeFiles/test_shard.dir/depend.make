# Empty dependencies file for test_shard.
# This may be replaced when dependencies are built.
