file(REMOVE_RECURSE
  "CMakeFiles/test_simd_kernels.dir/tests/test_simd_kernels.cpp.o"
  "CMakeFiles/test_simd_kernels.dir/tests/test_simd_kernels.cpp.o.d"
  "test_simd_kernels"
  "test_simd_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
