# Empty dependencies file for test_simd_kernels.
# This may be replaced when dependencies are built.
