file(REMOVE_RECURSE
  "CMakeFiles/test_socket.dir/tests/test_socket.cpp.o"
  "CMakeFiles/test_socket.dir/tests/test_socket.cpp.o.d"
  "test_socket"
  "test_socket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
