# Empty compiler generated dependencies file for test_socket.
# This may be replaced when dependencies are built.
