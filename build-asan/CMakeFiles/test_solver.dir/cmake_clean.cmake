file(REMOVE_RECURSE
  "CMakeFiles/test_solver.dir/tests/test_solver.cpp.o"
  "CMakeFiles/test_solver.dir/tests/test_solver.cpp.o.d"
  "test_solver"
  "test_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
