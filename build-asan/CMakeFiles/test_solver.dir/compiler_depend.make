# Empty compiler generated dependencies file for test_solver.
# This may be replaced when dependencies are built.
