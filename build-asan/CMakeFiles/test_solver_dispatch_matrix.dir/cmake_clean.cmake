file(REMOVE_RECURSE
  "CMakeFiles/test_solver_dispatch_matrix.dir/tests/test_solver_dispatch_matrix.cpp.o"
  "CMakeFiles/test_solver_dispatch_matrix.dir/tests/test_solver_dispatch_matrix.cpp.o.d"
  "test_solver_dispatch_matrix"
  "test_solver_dispatch_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_dispatch_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
