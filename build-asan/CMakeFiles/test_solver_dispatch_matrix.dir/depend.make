# Empty dependencies file for test_solver_dispatch_matrix.
# This may be replaced when dependencies are built.
