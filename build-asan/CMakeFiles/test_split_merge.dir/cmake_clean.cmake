file(REMOVE_RECURSE
  "CMakeFiles/test_split_merge.dir/tests/test_split_merge.cpp.o"
  "CMakeFiles/test_split_merge.dir/tests/test_split_merge.cpp.o.d"
  "test_split_merge"
  "test_split_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
