# Empty compiler generated dependencies file for test_split_merge.
# This may be replaced when dependencies are built.
