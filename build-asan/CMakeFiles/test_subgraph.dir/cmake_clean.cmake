file(REMOVE_RECURSE
  "CMakeFiles/test_subgraph.dir/tests/test_subgraph.cpp.o"
  "CMakeFiles/test_subgraph.dir/tests/test_subgraph.cpp.o.d"
  "test_subgraph"
  "test_subgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
