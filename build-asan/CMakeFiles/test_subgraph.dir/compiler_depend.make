# Empty compiler generated dependencies file for test_subgraph.
# This may be replaced when dependencies are built.
