file(REMOVE_RECURSE
  "CMakeFiles/test_subprocess.dir/tests/test_subprocess.cpp.o"
  "CMakeFiles/test_subprocess.dir/tests/test_subprocess.cpp.o.d"
  "test_subprocess"
  "test_subprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
