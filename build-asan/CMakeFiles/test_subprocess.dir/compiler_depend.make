# Empty compiler generated dependencies file for test_subprocess.
# This may be replaced when dependencies are built.
