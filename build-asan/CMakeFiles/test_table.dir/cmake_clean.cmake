file(REMOVE_RECURSE
  "CMakeFiles/test_table.dir/tests/test_table.cpp.o"
  "CMakeFiles/test_table.dir/tests/test_table.cpp.o.d"
  "test_table"
  "test_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
