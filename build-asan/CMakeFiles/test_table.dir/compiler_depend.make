# Empty compiler generated dependencies file for test_table.
# This may be replaced when dependencies are built.
