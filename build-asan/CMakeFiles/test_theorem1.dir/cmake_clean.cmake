file(REMOVE_RECURSE
  "CMakeFiles/test_theorem1.dir/tests/test_theorem1.cpp.o"
  "CMakeFiles/test_theorem1.dir/tests/test_theorem1.cpp.o.d"
  "test_theorem1"
  "test_theorem1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_theorem1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
