# Empty compiler generated dependencies file for test_theorem1.
# This may be replaced when dependencies are built.
