file(REMOVE_RECURSE
  "CMakeFiles/test_thread_pool.dir/tests/test_thread_pool.cpp.o"
  "CMakeFiles/test_thread_pool.dir/tests/test_thread_pool.cpp.o.d"
  "test_thread_pool"
  "test_thread_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
