# Empty dependencies file for test_thread_pool.
# This may be replaced when dependencies are built.
