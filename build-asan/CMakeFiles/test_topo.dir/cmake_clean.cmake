file(REMOVE_RECURSE
  "CMakeFiles/test_topo.dir/tests/test_topo.cpp.o"
  "CMakeFiles/test_topo.dir/tests/test_topo.cpp.o.d"
  "test_topo"
  "test_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
