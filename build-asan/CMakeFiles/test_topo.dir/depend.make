# Empty dependencies file for test_topo.
# This may be replaced when dependencies are built.
