file(REMOVE_RECURSE
  "CMakeFiles/test_topologies.dir/tests/test_topologies.cpp.o"
  "CMakeFiles/test_topologies.dir/tests/test_topologies.cpp.o.d"
  "test_topologies"
  "test_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
