# Empty compiler generated dependencies file for test_topologies.
# This may be replaced when dependencies are built.
