file(REMOVE_RECURSE
  "CMakeFiles/test_union_find.dir/tests/test_union_find.cpp.o"
  "CMakeFiles/test_union_find.dir/tests/test_union_find.cpp.o.d"
  "test_union_find"
  "test_union_find.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_union_find.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
