# Empty compiler generated dependencies file for test_union_find.
# This may be replaced when dependencies are built.
