file(REMOVE_RECURSE
  "CMakeFiles/test_upp.dir/tests/test_upp.cpp.o"
  "CMakeFiles/test_upp.dir/tests/test_upp.cpp.o.d"
  "test_upp"
  "test_upp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
