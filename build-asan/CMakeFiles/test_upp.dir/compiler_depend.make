# Empty compiler generated dependencies file for test_upp.
# This may be replaced when dependencies are built.
