file(REMOVE_RECURSE
  "CMakeFiles/test_work_stealing.dir/tests/test_work_stealing.cpp.o"
  "CMakeFiles/test_work_stealing.dir/tests/test_work_stealing.cpp.o.d"
  "test_work_stealing"
  "test_work_stealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_work_stealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
