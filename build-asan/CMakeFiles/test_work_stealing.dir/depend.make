# Empty dependencies file for test_work_stealing.
# This may be replaced when dependencies are built.
