file(REMOVE_RECURSE
  "CMakeFiles/test_worker.dir/tests/test_worker.cpp.o"
  "CMakeFiles/test_worker.dir/tests/test_worker.cpp.o.d"
  "test_worker"
  "test_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
