# Empty dependencies file for test_worker.
# This may be replaced when dependencies are built.
