file(REMOVE_RECURSE
  "CMakeFiles/test_workloads.dir/tests/test_workloads.cpp.o"
  "CMakeFiles/test_workloads.dir/tests/test_workloads.cpp.o.d"
  "test_workloads"
  "test_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
