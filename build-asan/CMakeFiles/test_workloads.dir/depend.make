# Empty dependencies file for test_workloads.
# This may be replaced when dependencies are built.
