
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/engine.cpp" "CMakeFiles/wdag.dir/src/api/engine.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/api/engine.cpp.o.d"
  "/root/repo/src/api/sink.cpp" "CMakeFiles/wdag.dir/src/api/sink.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/api/sink.cpp.o.d"
  "/root/repo/src/api/strategy.cpp" "CMakeFiles/wdag.dir/src/api/strategy.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/api/strategy.cpp.o.d"
  "/root/repo/src/conflict/clique.cpp" "CMakeFiles/wdag.dir/src/conflict/clique.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/conflict/clique.cpp.o.d"
  "/root/repo/src/conflict/coloring.cpp" "CMakeFiles/wdag.dir/src/conflict/coloring.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/conflict/coloring.cpp.o.d"
  "/root/repo/src/conflict/conflict_graph.cpp" "CMakeFiles/wdag.dir/src/conflict/conflict_graph.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/conflict/conflict_graph.cpp.o.d"
  "/root/repo/src/conflict/exact_color.cpp" "CMakeFiles/wdag.dir/src/conflict/exact_color.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/conflict/exact_color.cpp.o.d"
  "/root/repo/src/conflict/helly.cpp" "CMakeFiles/wdag.dir/src/conflict/helly.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/conflict/helly.cpp.o.d"
  "/root/repo/src/conflict/independent_set.cpp" "CMakeFiles/wdag.dir/src/conflict/independent_set.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/conflict/independent_set.cpp.o.d"
  "/root/repo/src/core/batch.cpp" "CMakeFiles/wdag.dir/src/core/batch.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/core/batch.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "CMakeFiles/wdag.dir/src/core/cost_model.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/core/cost_model.cpp.o.d"
  "/root/repo/src/core/driver.cpp" "CMakeFiles/wdag.dir/src/core/driver.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/core/driver.cpp.o.d"
  "/root/repo/src/core/maxrequests.cpp" "CMakeFiles/wdag.dir/src/core/maxrequests.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/core/maxrequests.cpp.o.d"
  "/root/repo/src/core/rwa.cpp" "CMakeFiles/wdag.dir/src/core/rwa.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/core/rwa.cpp.o.d"
  "/root/repo/src/core/shard.cpp" "CMakeFiles/wdag.dir/src/core/shard.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/core/shard.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "CMakeFiles/wdag.dir/src/core/solver.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/core/solver.cpp.o.d"
  "/root/repo/src/core/split_merge.cpp" "CMakeFiles/wdag.dir/src/core/split_merge.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/core/split_merge.cpp.o.d"
  "/root/repo/src/core/theorem1.cpp" "CMakeFiles/wdag.dir/src/core/theorem1.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/core/theorem1.cpp.o.d"
  "/root/repo/src/core/transport.cpp" "CMakeFiles/wdag.dir/src/core/transport.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/core/transport.cpp.o.d"
  "/root/repo/src/dag/classify.cpp" "CMakeFiles/wdag.dir/src/dag/classify.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/dag/classify.cpp.o.d"
  "/root/repo/src/dag/cycle_basis.cpp" "CMakeFiles/wdag.dir/src/dag/cycle_basis.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/dag/cycle_basis.cpp.o.d"
  "/root/repo/src/dag/internal_cycle.cpp" "CMakeFiles/wdag.dir/src/dag/internal_cycle.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/dag/internal_cycle.cpp.o.d"
  "/root/repo/src/dag/oriented_cycle.cpp" "CMakeFiles/wdag.dir/src/dag/oriented_cycle.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/dag/oriented_cycle.cpp.o.d"
  "/root/repo/src/dag/upp.cpp" "CMakeFiles/wdag.dir/src/dag/upp.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/dag/upp.cpp.o.d"
  "/root/repo/src/gen/family_gen.cpp" "CMakeFiles/wdag.dir/src/gen/family_gen.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/gen/family_gen.cpp.o.d"
  "/root/repo/src/gen/paper_instances.cpp" "CMakeFiles/wdag.dir/src/gen/paper_instances.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/gen/paper_instances.cpp.o.d"
  "/root/repo/src/gen/random_dag.cpp" "CMakeFiles/wdag.dir/src/gen/random_dag.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/gen/random_dag.cpp.o.d"
  "/root/repo/src/gen/topologies.cpp" "CMakeFiles/wdag.dir/src/gen/topologies.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/gen/topologies.cpp.o.d"
  "/root/repo/src/gen/upp_gen.cpp" "CMakeFiles/wdag.dir/src/gen/upp_gen.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/gen/upp_gen.cpp.o.d"
  "/root/repo/src/gen/workloads.cpp" "CMakeFiles/wdag.dir/src/gen/workloads.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/gen/workloads.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "CMakeFiles/wdag.dir/src/graph/digraph.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/graphio.cpp" "CMakeFiles/wdag.dir/src/graph/graphio.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/graph/graphio.cpp.o.d"
  "/root/repo/src/graph/properties.cpp" "CMakeFiles/wdag.dir/src/graph/properties.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/graph/properties.cpp.o.d"
  "/root/repo/src/graph/reachability.cpp" "CMakeFiles/wdag.dir/src/graph/reachability.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/graph/reachability.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "CMakeFiles/wdag.dir/src/graph/subgraph.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/graph/subgraph.cpp.o.d"
  "/root/repo/src/graph/topo.cpp" "CMakeFiles/wdag.dir/src/graph/topo.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/graph/topo.cpp.o.d"
  "/root/repo/src/paths/dipath.cpp" "CMakeFiles/wdag.dir/src/paths/dipath.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/paths/dipath.cpp.o.d"
  "/root/repo/src/paths/family.cpp" "CMakeFiles/wdag.dir/src/paths/family.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/paths/family.cpp.o.d"
  "/root/repo/src/paths/familyio.cpp" "CMakeFiles/wdag.dir/src/paths/familyio.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/paths/familyio.cpp.o.d"
  "/root/repo/src/paths/load.cpp" "CMakeFiles/wdag.dir/src/paths/load.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/paths/load.cpp.o.d"
  "/root/repo/src/paths/route.cpp" "CMakeFiles/wdag.dir/src/paths/route.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/paths/route.cpp.o.d"
  "/root/repo/src/remote/worker.cpp" "CMakeFiles/wdag.dir/src/remote/worker.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/remote/worker.cpp.o.d"
  "/root/repo/src/serve/admission.cpp" "CMakeFiles/wdag.dir/src/serve/admission.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/serve/admission.cpp.o.d"
  "/root/repo/src/serve/client.cpp" "CMakeFiles/wdag.dir/src/serve/client.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/serve/client.cpp.o.d"
  "/root/repo/src/serve/protocol.cpp" "CMakeFiles/wdag.dir/src/serve/protocol.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/serve/protocol.cpp.o.d"
  "/root/repo/src/serve/server.cpp" "CMakeFiles/wdag.dir/src/serve/server.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/serve/server.cpp.o.d"
  "/root/repo/src/serve/stats.cpp" "CMakeFiles/wdag.dir/src/serve/stats.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/serve/stats.cpp.o.d"
  "/root/repo/src/util/build_info.cpp" "CMakeFiles/wdag.dir/src/util/build_info.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/build_info.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/wdag.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/dynamic_bitset.cpp" "CMakeFiles/wdag.dir/src/util/dynamic_bitset.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/dynamic_bitset.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/wdag.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/simd.cpp" "CMakeFiles/wdag.dir/src/util/simd.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/simd.cpp.o.d"
  "/root/repo/src/util/simd_avx2.cpp" "CMakeFiles/wdag.dir/src/util/simd_avx2.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/simd_avx2.cpp.o.d"
  "/root/repo/src/util/simd_avx512.cpp" "CMakeFiles/wdag.dir/src/util/simd_avx512.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/simd_avx512.cpp.o.d"
  "/root/repo/src/util/socket.cpp" "CMakeFiles/wdag.dir/src/util/socket.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/socket.cpp.o.d"
  "/root/repo/src/util/subprocess.cpp" "CMakeFiles/wdag.dir/src/util/subprocess.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/subprocess.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/wdag.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/wdag.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/thread_pool.cpp.o.d"
  "/root/repo/src/util/union_find.cpp" "CMakeFiles/wdag.dir/src/util/union_find.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/union_find.cpp.o.d"
  "/root/repo/src/util/work_stealing.cpp" "CMakeFiles/wdag.dir/src/util/work_stealing.cpp.o" "gcc" "CMakeFiles/wdag.dir/src/util/work_stealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
