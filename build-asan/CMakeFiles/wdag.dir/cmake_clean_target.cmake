file(REMOVE_RECURSE
  "libwdag.a"
)
