# Empty dependencies file for wdag.
# This may be replaced when dependencies are built.
