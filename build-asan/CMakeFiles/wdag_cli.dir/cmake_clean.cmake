file(REMOVE_RECURSE
  "CMakeFiles/wdag_cli.dir/src/cli_main.cpp.o"
  "CMakeFiles/wdag_cli.dir/src/cli_main.cpp.o.d"
  "wdag"
  "wdag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdag_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
