# Empty compiler generated dependencies file for wdag_cli.
# This may be replaced when dependencies are built.
