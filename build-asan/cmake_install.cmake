# Install script for directory: /root/repo

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "Debug")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/api" TYPE FILE FILES "/root/repo/src/api/engine.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/api" TYPE FILE FILES "/root/repo/src/api/request.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/api" TYPE FILE FILES "/root/repo/src/api/sink.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/api" TYPE FILE FILES "/root/repo/src/api/strategy.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/conflict" TYPE FILE FILES "/root/repo/src/conflict/coloring.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/conflict" TYPE FILE FILES "/root/repo/src/conflict/conflict_graph.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/core" TYPE FILE FILES "/root/repo/src/core/batch.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/core" TYPE FILE FILES "/root/repo/src/core/cost_model.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/core" TYPE FILE FILES "/root/repo/src/core/driver.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/core" TYPE FILE FILES "/root/repo/src/core/rwa.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/core" TYPE FILE FILES "/root/repo/src/core/shard.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/core" TYPE FILE FILES "/root/repo/src/core/solver.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/dag" TYPE FILE FILES "/root/repo/src/dag/classify.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/dag" TYPE FILE FILES "/root/repo/src/dag/internal_cycle.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/dag" TYPE FILE FILES "/root/repo/src/dag/oriented_cycle.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/dag" TYPE FILE FILES "/root/repo/src/dag/upp.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/gen" TYPE FILE FILES "/root/repo/src/gen/instance.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/gen" TYPE FILE FILES "/root/repo/src/gen/random_dag.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/gen" TYPE FILE FILES "/root/repo/src/gen/workloads.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/graph" TYPE FILE FILES "/root/repo/src/graph/digraph.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/graph" TYPE FILE FILES "/root/repo/src/graph/graphio.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/graph" TYPE FILE FILES "/root/repo/src/graph/reachability.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/paths" TYPE FILE FILES "/root/repo/src/paths/dipath.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/paths" TYPE FILE FILES "/root/repo/src/paths/family.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/paths" TYPE FILE FILES "/root/repo/src/paths/familyio.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/paths" TYPE FILE FILES "/root/repo/src/paths/load.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/paths" TYPE FILE FILES "/root/repo/src/paths/route.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/serve" TYPE FILE FILES "/root/repo/src/serve/admission.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/serve" TYPE FILE FILES "/root/repo/src/serve/client.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/serve" TYPE FILE FILES "/root/repo/src/serve/protocol.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/serve" TYPE FILE FILES "/root/repo/src/serve/server.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/serve" TYPE FILE FILES "/root/repo/src/serve/stats.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/util" TYPE FILE FILES "/root/repo/src/util/build_info.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/util" TYPE FILE FILES "/root/repo/src/util/check.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/util" TYPE FILE FILES "/root/repo/src/util/cli.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/util" TYPE FILE FILES "/root/repo/src/util/dynamic_bitset.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/util" TYPE FILE FILES "/root/repo/src/util/rng.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/util" TYPE FILE FILES "/root/repo/src/util/socket.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/util" TYPE FILE FILES "/root/repo/src/util/table.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/util" TYPE FILE FILES "/root/repo/src/util/thread_pool.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/wdag/wdag" TYPE FILE FILES "/root/repo/src/wdag/wdag.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-asan/libwdag.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/wdag" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/wdag")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/wdag"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build-asan/wdag")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/wdag" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/wdag")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/wdag")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT)
  set(CMAKE_INSTALL_MANIFEST "install_manifest_${CMAKE_INSTALL_COMPONENT}.txt")
else()
  set(CMAKE_INSTALL_MANIFEST "install_manifest.txt")
endif()

string(REPLACE ";" "\n" CMAKE_INSTALL_MANIFEST_CONTENT
       "${CMAKE_INSTALL_MANIFEST_FILES}")
file(WRITE "/root/repo/build-asan/${CMAKE_INSTALL_MANIFEST}"
     "${CMAKE_INSTALL_MANIFEST_CONTENT}")
