# api-surface check: stage ONLY the public headers (the WDAG_PUBLIC_HEADERS
# manifest in the top-level CMakeLists.txt) into an empty include dir and
# syntax-check every example against it — no src/ include path. An
# internal header leaking into the umbrella (or an example reaching past
# wdag/wdag.hpp) fails here instead of shipping.
#
# Invoked by the `api_surface` ctest entry as:
#   cmake -DWDAG_SOURCE_DIR=... -DWDAG_STAGE_DIR=... -DWDAG_CXX=...
#         -DWDAG_HEADERS=a.hpp,b.hpp,... -DWDAG_SOURCES=x.cpp,y.cpp,...
#         -P ApiSurfaceCheck.cmake
# (comma-separated lists, to survive the test-command quoting)

foreach(var WDAG_SOURCE_DIR WDAG_STAGE_DIR WDAG_CXX WDAG_HEADERS WDAG_SOURCES)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "api-surface: ${var} must be defined")
  endif()
endforeach()

string(REPLACE "," ";" headers "${WDAG_HEADERS}")
string(REPLACE "," ";" sources "${WDAG_SOURCES}")

file(REMOVE_RECURSE "${WDAG_STAGE_DIR}")
foreach(h IN LISTS headers)
  if(NOT EXISTS "${WDAG_SOURCE_DIR}/src/${h}")
    message(FATAL_ERROR "api-surface: public header src/${h} is missing")
  endif()
  get_filename_component(dir "${h}" DIRECTORY)
  file(COPY "${WDAG_SOURCE_DIR}/src/${h}"
       DESTINATION "${WDAG_STAGE_DIR}/${dir}")
endforeach()

foreach(s IN LISTS sources)
  execute_process(
    COMMAND "${WDAG_CXX}" -std=c++20 -Wall -Wextra -fsyntax-only
            "-I${WDAG_STAGE_DIR}" "${WDAG_SOURCE_DIR}/${s}"
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "api-surface: ${s} does not compile against the public headers alone."
      " Either the umbrella leaked an internal include, or a new public"
      " header is missing from WDAG_PUBLIC_HEADERS.\n${err}")
  endif()
endforeach()

message(STATUS "api-surface: every example compiles against the "
               "installed public headers alone")
