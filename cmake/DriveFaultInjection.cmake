# Drive fault-injection check, CLI level: `wdag drive` must survive an
# injected worker failure (WDAG_DRIVE_FAIL_SHARD) plus one forced
# straggler (WDAG_DRIVE_SLOW_SHARD + --speculate), log the retry and
# speculate events, and still produce bytes identical to the equivalent
# single-process `batch --stream-csv` run. Registered as one ctest entry
# per (K, T) cell of the K in {2,5} x T in {1,4} matrix (see the
# top-level CMakeLists.txt).
#
# Invoked as:
#   cmake -DWDAG_CLI=<path> -DWDAG_WORK_DIR=<dir> -DWDAG_SHARDS=K
#         -DWDAG_THREADS=T -P DriveFaultInjection.cmake

foreach(var WDAG_CLI WDAG_WORK_DIR WDAG_SHARDS WDAG_THREADS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "drive-fault-injection: ${var} must be defined")
  endif()
endforeach()

set(gen random-upp)
set(count 120)
set(seed 4242)
set(fail_shard 1)
set(slow_shard 0)

file(REMOVE_RECURSE "${WDAG_WORK_DIR}")
file(MAKE_DIRECTORY "${WDAG_WORK_DIR}")

function(run_or_die)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc ERROR_VARIABLE err
                  OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "drive-fault-injection: '${ARGN}' failed (${rc}):\n${err}")
  endif()
endfunction()

# The unsharded reference bytes.
run_or_die("${WDAG_CLI}" batch --gen ${gen} --count ${count} --seed ${seed}
           --threads ${WDAG_THREADS} --stream-csv "${WDAG_WORK_DIR}/ref.csv")

# The drive under fault injection: attempt 0 of shard ${fail_shard}
# crashes after writing a truncated output; attempt 0 of shard
# ${slow_shard} sleeps long enough to trip the --speculate 3 straggler
# threshold once the other shards have completed. Extra worker slots keep
# the speculative attempt from queueing behind the straggler itself.
math(EXPR workers "${WDAG_SHARDS} + 1")
run_or_die(${CMAKE_COMMAND} -E env
           "WDAG_DRIVE_FAIL_SHARD=${fail_shard}"
           "WDAG_DRIVE_SLOW_SHARD=${slow_shard}:1500"
           "${WDAG_CLI}" drive --gen ${gen} --count ${count} --seed ${seed}
           --shards ${WDAG_SHARDS} --threads ${WDAG_THREADS}
           --workers ${workers} --backoff 0.05 --speculate 3
           --work-dir "${WDAG_WORK_DIR}/scratch"
           --events "${WDAG_WORK_DIR}/events.jsonl"
           --out "${WDAG_WORK_DIR}/drive.csv")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WDAG_WORK_DIR}/drive.csv" "${WDAG_WORK_DIR}/ref.csv"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "drive-fault-injection: drive output differs from the unsharded "
    "--stream-csv bytes (shards=${WDAG_SHARDS}, threads=${WDAG_THREADS})")
endif()

# The event log must record the injected failure's retry and the forced
# speculation.
file(READ "${WDAG_WORK_DIR}/events.jsonl" events)
foreach(needle "\"ev\":\"retry\"" "\"ev\":\"speculate\"" "\"ev\":\"done\"")
  string(FIND "${events}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
      "drive-fault-injection: event log is missing ${needle} "
      "(shards=${WDAG_SHARDS}, threads=${WDAG_THREADS}):\n${events}")
  endif()
endforeach()

message(STATUS "drive-fault-injection: byte-identical with retry + "
               "speculation at shards=${WDAG_SHARDS} threads=${WDAG_THREADS}")
