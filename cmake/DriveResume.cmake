# Drive crash-resume check, CLI level: a `wdag drive` whose DRIVER is
# SIGKILLed mid-run (WDAG_DRIVE_KILL_DRIVER_AFTER) must leave a durable
# journal plus atomically committed shard outputs behind, and a second
# run with `--resume` must skip the journaled shards (event-log proof)
# and still produce bytes identical to the equivalent single-process
# `batch --stream-csv` run. A third `--resume` run over the finished
# work dir must skip everything and append (not truncate) the shared
# event log. Registered as one ctest entry per (K, T) cell of the
# K in {2,5} x T in {1,4} matrix (see the top-level CMakeLists.txt).
#
# Invoked as:
#   cmake -DWDAG_CLI=<path> -DWDAG_WORK_DIR=<dir> -DWDAG_SHARDS=K
#         -DWDAG_THREADS=T -P DriveResume.cmake

foreach(var WDAG_CLI WDAG_WORK_DIR WDAG_SHARDS WDAG_THREADS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "drive-resume: ${var} must be defined")
  endif()
endforeach()

set(gen random-upp)
set(count 120)
set(seed 3131)

file(REMOVE_RECURSE "${WDAG_WORK_DIR}")
file(MAKE_DIRECTORY "${WDAG_WORK_DIR}")

function(run_or_die)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc ERROR_VARIABLE err
                  OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "drive-resume: '${ARGN}' failed (${rc}):\n${err}")
  endif()
endfunction()

# The unsharded reference bytes.
run_or_die("${WDAG_CLI}" batch --gen ${gen} --count ${count} --seed ${seed}
           --threads ${WDAG_THREADS} --stream-csv "${WDAG_WORK_DIR}/ref.csv")

# Phase 1 — the crash: the driver SIGKILLs itself after committing half
# the shards (rounded up, so at least one is journaled and, with K >= 2,
# at least one is not). workers=1 serializes completions so the count is
# deterministic.
math(EXPR kill_after "(${WDAG_SHARDS} + 1) / 2")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "WDAG_DRIVE_KILL_DRIVER_AFTER=${kill_after}"
          "${WDAG_CLI}" drive --gen ${gen} --count ${count} --seed ${seed}
          --shards ${WDAG_SHARDS} --threads ${WDAG_THREADS}
          --workers 1 --backoff 0.05
          --work-dir "${WDAG_WORK_DIR}/scratch"
          --events "${WDAG_WORK_DIR}/ev-crash.jsonl"
          --out "${WDAG_WORK_DIR}/crash.csv"
  RESULT_VARIABLE crash_rc OUTPUT_QUIET ERROR_QUIET)
if(crash_rc EQUAL 0)
  message(FATAL_ERROR
    "drive-resume: the SIGKILLed driver reported success "
    "(shards=${WDAG_SHARDS}, threads=${WDAG_THREADS})")
endif()
if(NOT EXISTS "${WDAG_WORK_DIR}/scratch/drive.journal")
  message(FATAL_ERROR
    "drive-resume: the killed drive left no journal behind "
    "(shards=${WDAG_SHARDS}, threads=${WDAG_THREADS})")
endif()
file(READ "${WDAG_WORK_DIR}/ev-crash.jsonl" crash_events)
string(FIND "${crash_events}" "\"ev\":\"complete\"" at)
if(at EQUAL -1)
  message(FATAL_ERROR
    "drive-resume: no shard completed before the injected driver kill:\n"
    "${crash_events}")
endif()

# Phase 2 — the resume: journaled shards must be revived (a "resume"
# event each), none of them re-dispatched, and the merged bytes must
# match the unsharded reference.
run_or_die("${WDAG_CLI}" drive --gen ${gen} --count ${count} --seed ${seed}
           --shards ${WDAG_SHARDS} --threads ${WDAG_THREADS}
           --workers 2 --backoff 0.05 --resume --keep-work
           --work-dir "${WDAG_WORK_DIR}/scratch"
           --events "${WDAG_WORK_DIR}/ev-resume.jsonl"
           --out "${WDAG_WORK_DIR}/resume.csv")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WDAG_WORK_DIR}/resume.csv" "${WDAG_WORK_DIR}/ref.csv"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "drive-resume: resumed output differs from the unsharded --stream-csv "
    "bytes (shards=${WDAG_SHARDS}, threads=${WDAG_THREADS})")
endif()

file(READ "${WDAG_WORK_DIR}/ev-resume.jsonl" resume_events)
string(REGEX MATCH "\"ev\":\"resume\",\"shard\":([0-9]+)" m
       "${resume_events}")
if(NOT m)
  message(FATAL_ERROR
    "drive-resume: no journaled shard was skipped on --resume "
    "(shards=${WDAG_SHARDS}, threads=${WDAG_THREADS}):\n${resume_events}")
endif()
set(revived ${CMAKE_MATCH_1})
string(FIND "${resume_events}" "\"ev\":\"dispatch\",\"shard\":${revived},"
       redispatched)
if(NOT redispatched EQUAL -1)
  message(FATAL_ERROR
    "drive-resume: shard ${revived} was journaled yet re-dispatched "
    "(shards=${WDAG_SHARDS}, threads=${WDAG_THREADS}):\n${resume_events}")
endif()

# Phase 3 — resume over a finished work dir: every shard revives, bytes
# still match, and the events file (same path as phase 2) grows by
# appending rather than being truncated.
run_or_die("${WDAG_CLI}" drive --gen ${gen} --count ${count} --seed ${seed}
           --shards ${WDAG_SHARDS} --threads ${WDAG_THREADS}
           --workers 2 --backoff 0.05 --resume --keep-work
           --work-dir "${WDAG_WORK_DIR}/scratch"
           --events "${WDAG_WORK_DIR}/ev-resume.jsonl"
           --out "${WDAG_WORK_DIR}/resume2.csv")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WDAG_WORK_DIR}/resume2.csv" "${WDAG_WORK_DIR}/ref.csv"
  RESULT_VARIABLE diff2)
if(NOT diff2 EQUAL 0)
  message(FATAL_ERROR
    "drive-resume: second resume's output differs from the reference "
    "(shards=${WDAG_SHARDS}, threads=${WDAG_THREADS})")
endif()

file(READ "${WDAG_WORK_DIR}/ev-resume.jsonl" appended_events)
string(REGEX MATCHALL "\"ev\":\"done\"" dones "${appended_events}")
list(LENGTH dones done_count)
if(done_count LESS 2)
  message(FATAL_ERROR
    "drive-resume: --events was truncated instead of appended "
    "(${done_count} done events):\n${appended_events}")
endif()
string(FIND "${appended_events}" "${WDAG_SHARDS} resumed" all_resumed)
if(all_resumed EQUAL -1)
  message(FATAL_ERROR
    "drive-resume: second resume did not revive all ${WDAG_SHARDS} "
    "shards:\n${appended_events}")
endif()

message(STATUS "drive-resume: byte-identical after driver kill + resume "
               "at shards=${WDAG_SHARDS} threads=${WDAG_THREADS}")
