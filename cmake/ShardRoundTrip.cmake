# Shard round-trip check, CLI level: `shard plan --shards K` + K x
# `shard run --threads T` + `shard merge` must produce bytes identical to
# the equivalent single-process `batch --stream-csv` run. Registered as
# one ctest entry per (K, T) cell of the K in {1,2,5} x T in {1,4} matrix
# (see the top-level CMakeLists.txt).
#
# Invoked as:
#   cmake -DWDAG_CLI=<path> -DWDAG_WORK_DIR=<dir> -DWDAG_SHARDS=K
#         -DWDAG_THREADS=T -P ShardRoundTrip.cmake

foreach(var WDAG_CLI WDAG_WORK_DIR WDAG_SHARDS WDAG_THREADS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "shard-round-trip: ${var} must be defined")
  endif()
endforeach()

set(gen random-upp)
set(count 120)
set(seed 4242)

file(REMOVE_RECURSE "${WDAG_WORK_DIR}")
file(MAKE_DIRECTORY "${WDAG_WORK_DIR}")

function(run_or_die)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc ERROR_VARIABLE err
                  OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "shard-round-trip: '${ARGN}' failed (${rc}):\n${err}")
  endif()
endfunction()

# The unsharded reference bytes.
run_or_die("${WDAG_CLI}" batch --gen ${gen} --count ${count} --seed ${seed}
           --threads ${WDAG_THREADS} --stream-csv "${WDAG_WORK_DIR}/ref.csv")

# plan -> run xK -> merge.
run_or_die("${WDAG_CLI}" shard plan --gen ${gen} --count ${count}
           --seed ${seed} --shards ${WDAG_SHARDS}
           --out "${WDAG_WORK_DIR}/plan")
math(EXPR last "${WDAG_SHARDS} - 1")
set(shard_files "")
foreach(i RANGE ${last})
  run_or_die("${WDAG_CLI}" shard run
             --manifest "${WDAG_WORK_DIR}/plan.${i}.json"
             --out "${WDAG_WORK_DIR}/out.${i}.csv"
             --threads ${WDAG_THREADS})
  list(APPEND shard_files "${WDAG_WORK_DIR}/out.${i}.csv")
endforeach()
run_or_die("${WDAG_CLI}" shard merge --out "${WDAG_WORK_DIR}/merged.csv"
           ${shard_files})

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WDAG_WORK_DIR}/merged.csv" "${WDAG_WORK_DIR}/ref.csv"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "shard-round-trip: merged shard CSV differs from the unsharded "
    "--stream-csv bytes (shards=${WDAG_SHARDS}, threads=${WDAG_THREADS})")
endif()

message(STATUS "shard-round-trip: byte-identical at shards=${WDAG_SHARDS} "
               "threads=${WDAG_THREADS}")
