// Example: drive the parallel batch engine through the public API.
//
// One wdag::Engine owns the pool and the per-worker arenas for the whole
// process. A BatchRequest names a generated workload; result sinks
// receive every per-instance row in strict instance order — here an
// AggregateSink folds per-strategy totals while a CsvStreamSink captures
// the deterministic row bytes, both in one pass over the batch.

#include <cstddef>
#include <iostream>
#include <sstream>

#include "wdag/wdag.hpp"

int main() {
  using namespace wdag;

  Engine engine;  // hardware-concurrency pool

  BatchRequest request = BatchRequest::generated("random-upp", 400);
  request.options.seed = 42;
  request.options.chunk = 16;

  // Sinks see rows in instance order at any thread count.
  AggregateSink aggregate;
  std::ostringstream csv;
  CsvStreamSink csv_sink(csv);
  request.sinks = {&aggregate, &csv_sink};

  const core::BatchReport report = engine.run_batch(request);

  std::cout << report.histogram_table();
  std::cout << aggregate.table();
  std::cout << "throughput: " << report.instances_per_second()
            << " instances/sec on " << report.threads_used << " threads\n";
  std::cout << report.to_json() << "\n";

  // The streamed rows are reproducible: the same seed gives byte-identical
  // CSV on any machine and thread count.
  std::ostringstream again;
  CsvStreamSink again_sink(again);
  BatchRequest rerun = BatchRequest::generated("random-upp", 400);
  rerun.options.seed = 42;
  rerun.options.chunk = 16;
  rerun.options.keep_entries = false;  // constant memory: sinks only
  rerun.sinks = {&again_sink};
  (void)engine.run_batch(rerun);

  std::cout << "deterministic: "
            << (csv.str() == again.str() ? "yes" : "NO — this is a bug")
            << "\n";
  return 0;
}
