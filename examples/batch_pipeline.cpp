// Example: drive the parallel batch engine from code.
//
// Generates a mixed UPP workload with the shared workload factory, fans it
// out over the thread pool with deterministic per-chunk seeding, and
// prints the dispatch histogram plus the aggregate JSON report — the
// library-level equivalent of `wdag batch --gen random-upp`.

#include <cstddef>
#include <iostream>

#include "core/batch.hpp"
#include "gen/workloads.hpp"
#include "util/rng.hpp"

int main() {
  using namespace wdag;

  const gen::WorkloadParams params;  // defaults; tune like the CLI flags
  core::BatchOptions batch_options;
  batch_options.seed = 42;
  batch_options.chunk = 16;
  batch_options.threads = 0;  // hardware concurrency

  const core::BatchReport report = core::solve_generated_batch(
      400,
      [&params](util::Xoshiro256& rng, std::size_t) {
        return gen::workload_instance("random-upp", params, rng);
      },
      core::SolveOptions{}, batch_options);

  std::cout << report.histogram_table();
  std::cout << "throughput: " << report.instances_per_second()
            << " instances/sec on " << report.threads_used << " threads\n";
  std::cout << report.to_json() << "\n";

  // The per-instance rows (without latency) are reproducible: the same
  // seed gives byte-identical CSV on any machine and thread count.
  const core::BatchReport again = core::solve_generated_batch(
      400,
      [&params](util::Xoshiro256& rng, std::size_t) {
        return gen::workload_instance("random-upp", params, rng);
      },
      core::SolveOptions{}, batch_options);
  std::cout << "deterministic: "
            << (report.rows_table(false).to_csv() ==
                        again.rows_table(false).to_csv()
                    ? "yes"
                    : "NO — this is a bug")
            << "\n";
  return 0;
}
