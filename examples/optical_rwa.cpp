// optical_rwa — a WDM backbone provisioning scenario (the paper's §1
// motivation).
//
// Generates a layered optical backbone, draws a random traffic matrix,
// routes every request on a shortest path, solves the wavelength
// assignment, and prints per-arc load, the wavelength table and the
// optimality verdict. When the generated topology happens to contain an
// internal cycle the solver falls back to the heuristic/exact pipeline and
// says so — exactly the dichotomy of the Main Theorem.
//
// Flags:
//   --layers N   backbone stages              (default 5)
//   --width N    PoPs per stage               (default 4)
//   --p X        inter-stage link probability (default 0.35)
//   --requests N traffic matrix size          (default 24)
//   --seed N     RNG seed                     (default 1)
//   --dot        also dump the topology as Graphviz DOT

#include <algorithm>
#include <iostream>

#include "wdag/wdag.hpp"

int main(int argc, char** argv) {
  using namespace wdag;
  const util::Cli cli(argc, argv);
  const auto layers = static_cast<std::size_t>(cli.get_int("layers", 5));
  const auto width = static_cast<std::size_t>(cli.get_int("width", 4));
  const double p = cli.get_double("p", 0.35);
  const auto n_requests = static_cast<std::size_t>(cli.get_int("requests", 24));
  util::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  // --- Topology ---------------------------------------------------------
  const auto g = gen::random_layered_dag(rng, layers, width, p);
  std::cout << "== topology ==\n"
            << dag::report_to_string(dag::classify(g)) << '\n';
  if (cli.has("dot")) std::cout << graph::to_dot(g, "backbone") << '\n';

  // --- Traffic matrix: random reachable ingress/egress pairs -------------
  const auto closure = graph::transitive_closure(g);
  std::vector<paths::Request> requests;
  std::vector<std::pair<graph::VertexId, graph::VertexId>> pairs;
  for (graph::VertexId u = 0; u < width; ++u) {
    for (graph::VertexId v = static_cast<graph::VertexId>((layers - 1) * width);
         v < g.num_vertices(); ++v) {
      if (closure[u].test(v)) pairs.emplace_back(u, v);
    }
  }
  if (pairs.empty()) {
    std::cerr << "generated topology has no ingress->egress pair; "
                 "try a larger --p\n";
    return 1;
  }
  for (std::size_t i = 0; i < n_requests; ++i) {
    const auto [u, v] = pairs[rng.index(pairs.size())];
    requests.push_back({u, v});
  }

  // --- Solve --------------------------------------------------------------
  const auto rwa = core::solve_rwa(g, requests, paths::RoutePolicy::kShortest);
  std::cout << "== assignment ==\n" << core::rwa_report(rwa) << '\n';

  // --- Per-arc utilization table ------------------------------------------
  util::Table t("per-arc load (top 10)", {"arc", "load"});
  const auto loads = paths::arc_loads(rwa.routed);
  std::vector<graph::ArcId> ids(loads.size());
  for (graph::ArcId a = 0; a < ids.size(); ++a) ids[a] = a;
  std::sort(ids.begin(), ids.end(),
            [&](graph::ArcId a, graph::ArcId b) { return loads[a] > loads[b]; });
  for (std::size_t i = 0; i < std::min<std::size_t>(10, ids.size()); ++i) {
    const auto a = ids[i];
    if (loads[a] == 0) break;
    t.add_row({g.vertex_label(g.tail(a)) + " -> " + g.vertex_label(g.head(a)),
               static_cast<long long>(loads[a])});
  }
  std::cout << t.to_text();

  std::cout << "\nsummary: " << rwa.routed.size() << " lightpaths, load "
            << rwa.assignment.load << ", " << rwa.assignment.wavelengths
            << " wavelengths ("
            << (rwa.assignment.optimal ? "provably minimum"
                                       : "upper bound, optimality unproven")
            << ", strategy " << rwa.assignment.strategy_name
            << ")\n";
  return 0;
}
