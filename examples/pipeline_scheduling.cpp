// pipeline_scheduling — the paper's second motivation: "scheduling complex
// operations on pipelined operators" / precedence graphs of programs.
//
// Model: a program's data-flow DAG of pipelined operators. Each value
// produced by one operator and consumed by another streams along the unique
// operator chain between them; two streams that share a pipeline stage
// (an arc) must occupy different channel registers. Channels are exactly
// wavelengths; the minimum channel count of a stage-conflict-free schedule
// is w(G,P), and the busiest stage is the load pi(G,P).
//
// The demo builds a blocked-reduction pipeline (an in-tree: leaves feed
// partial sums towards the root accumulator) plus a chain of post-processing
// stages, streams every leaf's contribution to the final stage, and shows
// that the channel count equals the busiest stage's occupancy (Theorem 1 —
// in-trees have no internal cycle).
//
// Flags: --fanin N (default 3), --depth N (default 3), --post N (default 4)

#include <iostream>
#include <string>
#include <vector>

#include "wdag/wdag.hpp"

int main(int argc, char** argv) {
  using namespace wdag;
  const util::Cli cli(argc, argv);
  const auto fanin = static_cast<std::size_t>(cli.get_int("fanin", 3));
  const auto depth = static_cast<std::size_t>(cli.get_int("depth", 3));
  const auto post = static_cast<std::size_t>(cli.get_int("post", 4));

  // --- Build the reduction in-tree + post-processing chain ---------------
  graph::DigraphBuilder b;
  const auto root = b.add_vertex("acc");
  std::vector<graph::VertexId> frontier = {root};
  std::vector<graph::VertexId> leaves;
  for (std::size_t level = 0; level < depth; ++level) {
    std::vector<graph::VertexId> next;
    for (const auto parent : frontier) {
      for (std::size_t c = 0; c < fanin; ++c) {
        const auto v = b.add_vertex("op_" + std::to_string(level) + "_" +
                                    std::to_string(next.size()));
        b.add_arc(v, parent);  // data flows towards the accumulator
        next.push_back(v);
      }
    }
    frontier = std::move(next);
    if (level + 1 == depth) leaves = frontier;
  }
  graph::VertexId stage = root;
  for (std::size_t s = 0; s < post; ++s) {
    const auto v = b.add_vertex("post" + std::to_string(s));
    b.add_arc(stage, v);
    stage = v;
  }
  const auto g = b.build();

  std::cout << "== pipeline precedence graph ==\n"
            << dag::report_to_string(dag::classify(g)) << '\n';

  // --- Streams: every leaf contribution flows to the last post stage -----
  paths::DipathFamily streams(g);
  for (const auto leaf : leaves) {
    const auto route = paths::unique_route(g, leaf, stage);
    if (route) streams.add(*route);
  }
  // Plus intermediate telemetry taps: each level-0 operator also streams
  // into the accumulator only.
  for (const auto op : std::vector<graph::VertexId>(leaves.begin(),
                                                    leaves.begin() +
                                                        std::min<std::size_t>(
                                                            leaves.size(), fanin))) {
    const auto route = paths::unique_route(g, op, root);
    if (route) streams.add(*route);
  }

  Engine engine;
  const SolveResponse res = engine.submit(SolveRequest::of(streams));

  util::Table t("channel allocation", {"quantity", "value"});
  t.add_row({std::string("streams"), static_cast<long long>(streams.size())});
  t.add_row({std::string("busiest stage occupancy (pi)"),
             static_cast<long long>(res.load)});
  t.add_row({std::string("channels required (w)"),
             static_cast<long long>(res.wavelengths)});
  t.add_row({std::string("strategy"), res.strategy_name});
  t.add_row({std::string("provably minimal"),
             std::string(res.optimal ? "yes (Theorem 1)" : "no")});
  std::cout << t.to_text() << '\n';

  // Channel plan for the first few streams.
  util::Table plan("channel plan (first 8 streams)", {"stream", "channel"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, streams.size()); ++i) {
    plan.add_row(
        {paths::path_to_string(g, streams.path(static_cast<paths::PathId>(i))),
         static_cast<long long>(res.coloring[i])});
  }
  std::cout << plan.to_text();
  return 0;
}
