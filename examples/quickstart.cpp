// Quickstart: the public API in ~60 lines.
//
// Builds a small optical DAG, routes three requests, hands the family to
// a wdag::Engine, and prints the certificate: since the topology has no
// internal cycle, the engine dispatches to the Theorem-1 strategy and the
// number of wavelengths provably equals the load (Bermond & Cosnard,
// IPDPS 2007, Theorem 1).
//
// Everything comes from the single umbrella header. Run: ./quickstart

#include <iostream>

#include "wdag/wdag.hpp"

int main() {
  using namespace wdag;

  // 1. Describe the topology. Vertices are created on first use.
  graph::DigraphBuilder builder;
  builder.add_arc("ingressA", "mux");
  builder.add_arc("ingressB", "mux");
  builder.add_arc("mux", "core");
  builder.add_arc("core", "egressX");
  builder.add_arc("core", "egressY");
  const graph::Digraph g = builder.build();

  // 2. Route three requests along their (unique) dipaths.
  paths::DipathFamily family(g);
  const std::pair<const char*, const char*> requests[] = {
      {"ingressA", "egressX"},
      {"ingressB", "egressY"},
      {"ingressA", "egressY"},
  };
  for (const auto& [from, to] : requests) {
    const auto route =
        paths::unique_route(g, *g.vertex_by_name(from), *g.vertex_by_name(to));
    family.add(*route);
  }

  // 3. One Engine per process: it owns the thread pool, the per-worker
  //    scratch arenas and the strategy registry (Theorem 1, split-merge,
  //    DSATUR, exact — plus anything you register).
  Engine engine;
  const SolveResponse response = engine.submit(SolveRequest::of(family));

  // 4. Inspect the result. All three requests cross the arc mux -> core,
  //    so the load is 3 — and Theorem 1 guarantees 3 wavelengths suffice.
  std::cout << dag::report_to_string(response.report) << '\n';
  std::cout << "strategy:    " << response.strategy_name << '\n'
            << "load:        " << response.load << '\n'
            << "wavelengths: " << response.wavelengths << '\n';
  for (std::size_t i = 0; i < family.size(); ++i) {
    std::cout << "  request " << i << " ("
              << requests[i].first << " -> " << requests[i].second
              << ") on wavelength " << response.coloring[i] << '\n';
  }
  if (response.optimal) {
    std::cout << "\ncertificate: wavelengths == load == " << response.load
              << " (Theorem 1: optimal)\n";
  }
  return 0;
}
