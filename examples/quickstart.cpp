// Quickstart: the library in ~60 lines.
//
// Builds a small optical DAG, routes three requests, asks the solver for a
// wavelength assignment, and prints the certificate: since the topology has
// no internal cycle, the number of wavelengths provably equals the load
// (Bermond & Cosnard, IPDPS 2007, Theorem 1).
//
// Run: ./quickstart

#include <cstdio>
#include <iostream>

#include "core/rwa.hpp"
#include "dag/classify.hpp"
#include "graph/digraph.hpp"

int main() {
  using namespace wdag;

  // 1. Describe the topology. Vertices are created on first use.
  graph::DigraphBuilder builder;
  builder.add_arc("ingressA", "mux");
  builder.add_arc("ingressB", "mux");
  builder.add_arc("mux", "core");
  builder.add_arc("core", "egressX");
  builder.add_arc("core", "egressY");
  const graph::Digraph g = builder.build();

  // 2. Classify: which of the paper's regimes are we in?
  const auto report = dag::classify(g);
  std::cout << dag::report_to_string(report) << '\n';

  // 3. Route three requests and assign wavelengths.
  const std::vector<paths::Request> requests = {
      {*g.vertex_by_name("ingressA"), *g.vertex_by_name("egressX")},
      {*g.vertex_by_name("ingressB"), *g.vertex_by_name("egressY")},
      {*g.vertex_by_name("ingressA"), *g.vertex_by_name("egressY")},
  };
  const auto rwa = core::solve_rwa(g, requests, paths::RoutePolicy::kUnique);

  // 4. Inspect the result. All three requests cross the arc mux -> core,
  //    so the load is 3 — and Theorem 1 guarantees 3 wavelengths suffice.
  std::cout << core::rwa_report(rwa);
  if (rwa.assignment.optimal) {
    std::cout << "\ncertificate: wavelengths == load == "
              << rwa.assignment.load << " (Theorem 1: optimal)\n";
  }
  return 0;
}
