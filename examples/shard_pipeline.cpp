// Sharded batch execution through the public API (wdag/wdag.hpp only):
// split one workload into K shards with a ShardPlan, run each shard
// through its own Engine — in real deployments each shard runs on its own
// machine from a JSON manifest (`wdag shard plan|run|merge`) — and merge
// the shard CSVs back into bytes identical to the unsharded run.

#include <cstddef>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "wdag/wdag.hpp"

int main() {
  constexpr std::size_t kCount = 200;
  constexpr std::size_t kShards = 4;

  // The plan: a deterministic split of the request into contiguous
  // global index ranges. The plan id is a pure function of the request,
  // so independently-built plans agree without any coordination service.
  wdag::ShardSpec spec;
  spec.family = "random-upp";
  spec.count = kCount;
  spec.seed = 99;
  const wdag::ShardPlan plan(spec, kShards);
  std::cout << "plan " << std::hex << plan.id() << std::dec << ": "
            << kCount << " instances over " << plan.shards() << " shards\n";

  // Run every shard. Each shard gets its own engine (its own pool and
  // arenas) to mimic separate processes; the manifest JSON is what a
  // remote runner would receive on disk.
  std::vector<wdag::core::ShardCsv> shard_csvs;
  for (std::size_t i = 0; i < plan.shards(); ++i) {
    const wdag::ShardManifest manifest =
        wdag::core::parse_manifest(wdag::core::manifest_to_json(
            plan.manifest(i)));  // round-trip, as a real runner would

    wdag::EngineOptions options;
    options.threads = 2;
    options.solve = manifest.spec.solve;
    wdag::Engine engine(options);

    std::ostringstream out;
    out << wdag::core::shard_csv_header(manifest);
    wdag::CsvStreamSink csv(out);

    wdag::BatchRequest request = wdag::BatchRequest::generated(
        manifest.spec.family, manifest.spec.count, manifest.spec.params);
    request.options.seed = manifest.spec.seed;
    request.options.keep_entries = false;
    request.sinks = {&csv};

    const auto report =
        engine.run_shard(request, manifest.shard, manifest.shards);
    std::cout << "  shard " << manifest.shard << " ["
              << manifest.range.begin << ", " << manifest.range.end
              << "): " << report.instance_count << " instances, "
              << report.failure_count << " failures\n";

    std::istringstream in(out.str());
    shard_csvs.push_back(
        wdag::core::read_shard_csv(in, "shard" + std::to_string(i)));
  }

  // Merge: validated concatenation. The result is byte-identical to the
  // unsharded streaming run of the same request.
  const std::string merged = wdag::core::merge_shard_csv(shard_csvs);

  std::ostringstream reference;
  {
    wdag::Engine engine;
    wdag::CsvStreamSink csv(reference);
    wdag::BatchRequest request =
        wdag::BatchRequest::generated(spec.family, spec.count, spec.params);
    request.options.seed = spec.seed;
    request.options.keep_entries = false;
    request.sinks = {&csv};
    (void)engine.run_batch(request);
  }

  std::cout << (merged == reference.str()
                    ? "merged == unsharded: byte-identical\n"
                    : "MISMATCH between merged and unsharded output\n");
  return merged == reference.str() ? 0 : 1;
}
