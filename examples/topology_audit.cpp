// topology_audit — inspect a network topology with the paper's taxonomy.
//
// Reads an edge list (file argument or stdin), then reports:
//   * whether the digraph is a DAG,
//   * the number of internal cycles, with one cycle spelled out — the
//     exact obstruction to "wavelengths == load" (Main Theorem),
//   * whether the unique-dipath property holds, with a violating vertex
//     pair and its two routes when it does not (Theorem 6's hypothesis),
//   * the applicable solver regime and guarantee,
//   * optionally (--dot) a Graphviz rendering.
//
// Usage: ./topology_audit topology.txt
//        echo "a b\nb c" | ./topology_audit

#include <fstream>
#include <iostream>
#include <sstream>

#include "wdag/wdag.hpp"

int main(int argc, char** argv) {
  using namespace wdag;
  const util::Cli cli(argc, argv);

  std::string text;
  if (!cli.positional().empty()) {
    std::ifstream in(cli.positional().front());
    if (!in) {
      std::cerr << "cannot open " << cli.positional().front() << '\n';
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  }

  graph::Digraph g;
  try {
    g = graph::parse_edge_list(text);
  } catch (const std::exception& e) {
    std::cerr << "parse error: " << e.what() << '\n';
    return 1;
  }

  const auto report = dag::classify(g);
  std::cout << "== audit ==\n" << dag::report_to_string(report);

  if (report.is_dag && report.internal_cycles > 0) {
    const auto cycle = dag::find_internal_cycle(g);
    if (cycle) {
      std::cout << "\nwitness internal cycle:\n  "
                << dag::cycle_to_string(g, *cycle) << '\n'
                << "(every family of dipaths through it can be forced to "
                   "need more wavelengths than the load — Theorem 2)\n";
    }
  }

  if (report.is_dag && !report.is_upp) {
    if (const auto viol = dag::find_upp_violation(g)) {
      std::cout << "\nUPP violation: two routes from "
                << g.vertex_label(viol->from) << " to "
                << g.vertex_label(viol->to) << ":\n  "
                << paths::path_to_string(g, paths::Dipath(viol->path1))
                << "\n  "
                << paths::path_to_string(g, paths::Dipath(viol->path2)) << '\n';
    }
  }

  std::cout << "\nguarantee: ";
  if (!report.is_dag) {
    std::cout << "none — the digraph has a directed cycle; the paper's "
                 "theory targets DAGs.\n";
  } else if (report.wavelengths_equal_load()) {
    std::cout << "wavelengths == load for EVERY family of dipaths "
                 "(Main Theorem); use the constructive Theorem-1 solver.\n";
  } else if (report.is_upp && report.internal_cycles == 1) {
    std::cout << "wavelengths <= ceil(4/3 load) (Theorem 6); the bound is "
                 "tight (Theorem 7).\n";
  } else if (report.is_upp) {
    std::cout << "recursive split-merge bound ceil((4/3)^"
              << report.internal_cycles
              << " load); the unbounded-ratio conjecture is open.\n";
  } else {
    std::cout << "no load-based bound exists in general: families with "
                 "load 2 can require arbitrarily many wavelengths "
                 "(Figure 1).\n";
  }

  if (cli.has("dot")) std::cout << '\n' << graph::to_dot(g, "audit");
  return 0;
}
