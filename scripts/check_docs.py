#!/usr/bin/env python3
"""Docs drift gate (the CI `docs` job).

Checks, over the markdown files passed on the command line:

1. Links: every relative markdown link resolves to an existing file, and
   every `#anchor` (same-file or cross-file) resolves to a real heading.
   External (http/https/mailto) targets are skipped — no network here.
2. CLI flag tables vs --help: every `--flag` documented in a table row
   (a line whose first cell is a backticked flag) must appear in the
   help text of `wdag solve|batch|sweep|shard|drive|worker|serve|request`,
   and
   every flag the help
   mentions must be documented in some table — drift in either
   direction fails.
3. Required links (--require-link PATH, repeatable): at least one of the
   given files must link to PATH — how CI pins "ARCHITECTURE.md and
   WORKLOADS.md exist and are linked from the README".

Exit status 0 = docs in sync, 1 = drift (every finding is printed).

Usage:
  python3 scripts/check_docs.py --binary ./build/wdag \
      --require-link docs/ARCHITECTURE.md --require-link docs/WORKLOADS.md \
      README.md CONTRIBUTING.md docs/*.md
"""

import argparse
import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
DOC_FLAG_ROW_RE = re.compile(r"^\|\s*`(--[a-z][a-z0-9-]*)`")
HELP_FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CLI_COMMANDS = ["solve", "batch", "sweep", "shard", "drive", "worker",
                "serve", "request"]


def slugify(heading):
    """GitHub-style anchor slug of a markdown heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text.strip())


def headings_of(path):
    slugs = set()
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = HEADING_RE.match(line)
            if m:
                slugs.add(slugify(m.group(1)))
    return slugs


def check_links(files, require_links):
    problems = []
    linked_targets = set()  # normalized repo-relative targets seen
    heading_cache = {}

    for md in files:
        base = os.path.dirname(md)
        with open(md, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if path_part:
                resolved = os.path.normpath(os.path.join(base, path_part))
                linked_targets.add(resolved)
                if not os.path.exists(resolved):
                    problems.append(
                        f"{md}: broken link '{target}' "
                        f"({resolved} does not exist)")
                    continue
                anchor_file = resolved
            else:
                anchor_file = md  # same-file anchor
            if anchor and anchor_file.endswith(".md"):
                if anchor_file not in heading_cache:
                    heading_cache[anchor_file] = headings_of(anchor_file)
                if anchor not in heading_cache[anchor_file]:
                    problems.append(
                        f"{md}: link '{target}' names anchor '#{anchor}' "
                        f"not found in {anchor_file}")

    for required in require_links:
        if os.path.normpath(required) not in linked_targets:
            problems.append(
                f"required link missing: no given file links to {required}")
    return problems


def documented_flags(files):
    flags = {}
    for md in files:
        with open(md, encoding="utf-8") as f:
            for line in f:
                m = DOC_FLAG_ROW_RE.match(line)
                if m:
                    flags.setdefault(m.group(1), md)
    return flags


def help_flags(binary):
    flags = set()
    for command in CLI_COMMANDS:
        out = subprocess.run(
            [binary, command, "--help"],
            capture_output=True, text=True, check=False)
        if out.returncode != 0:
            raise RuntimeError(
                f"'{binary} {command} --help' exited {out.returncode}")
        flags.update(HELP_FLAG_RE.findall(out.stdout + out.stderr))
    flags.discard("--help")
    return flags


def check_flags(binary, files):
    problems = []
    documented = documented_flags(files)
    in_help = help_flags(binary)
    for flag, where in sorted(documented.items()):
        if flag not in in_help:
            problems.append(
                f"{where}: documents '{flag}' which --help does not "
                f"mention (stale table row?)")
    for flag in sorted(in_help - set(documented)):
        problems.append(
            f"--help mentions '{flag}' but no flag table documents it "
            f"(add it to the README CLI reference)")
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="markdown files to check")
    parser.add_argument("--binary", help="wdag binary for the --help check")
    parser.add_argument("--require-link", action="append", default=[],
                        help="path some given file must link to (repeatable)")
    args = parser.parse_args()

    for md in args.files:
        if not os.path.exists(md):
            print(f"docs-check: no such file {md}", file=sys.stderr)
            return 1

    problems = check_links(args.files, args.require_link)
    if args.binary:
        problems += check_flags(args.binary, args.files)
    else:
        print("docs-check: no --binary given, skipping the flag-table check")

    for p in problems:
        print(f"DRIFT: {p}")
    if problems:
        print(f"docs-check: {len(problems)} problem(s)")
        return 1
    print(f"docs-check: OK ({len(args.files)} files"
          + (", links + flag tables in sync)" if args.binary
             else ", links in sync)"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
