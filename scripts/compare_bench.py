#!/usr/bin/env python3
"""Perf regression gate over BENCH_batch.json records.

Compares a freshly measured batch-throughput matrix against the committed
baseline (bench/baselines/BENCH_batch.json) cell by cell, where a cell is
one (workload, schedule, threads) combination and the metric is
inst_per_s. The gate fails (exit 1) when any cell's fresh throughput
drops more than --threshold (default 15%) below the baseline.

Both inputs may be a bare JSON record or a full bench log; the first line
containing `"bench":"batch_throughput"` is used. Cells present on only
one side are reported but never fail the gate (CI machines differ in
core count, so e.g. a threads=ncpu row may not match).

Usage:
  scripts/compare_bench.py BASELINE FRESH [--threshold 0.15]
  scripts/compare_bench.py --update FRESH   # rewrite the baseline in place

Override: pushes whose head commit message contains [perf-override] skip
the gate in CI (see .github/workflows/ci.yml and CONTRIBUTING.md) — use
it for commits that knowingly trade batch throughput for something else.
"""

import argparse
import json
import pathlib
import sys

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "bench/baselines/BENCH_batch.json"
)
RECORD_MARK = '"bench":"batch_throughput"'


def load_record(path):
    """Returns the parsed batch_throughput record found in `path`."""
    text = pathlib.Path(path).read_text()
    for line in text.splitlines():
        if RECORD_MARK in line:
            return json.loads(line[line.index("{"):])
    raise SystemExit(f"{path}: no {RECORD_MARK} record found")


def cell_key(row):
    return (row["workload"], row["schedule"], int(row["threads"]))


def cells_of(record):
    cells = {}
    for row in record.get("rows", []):
        cells[cell_key(row)] = float(row["inst_per_s"])
    return cells


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline (or FRESH with --update)")
    parser.add_argument("fresh", nargs="?", help="freshly measured record")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated relative drop per cell (default 0.15)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite bench/baselines/BENCH_batch.json from the record")
    args = parser.parse_args()

    if args.update:
        record = load_record(args.baseline)
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(record, separators=(",", ":")) + "\n")
        print(f"baseline updated: {BASELINE_PATH} ({len(record['rows'])} cells)")
        return 0

    if args.fresh is None:
        parser.error("FRESH is required unless --update is given")
    base = cells_of(load_record(args.baseline))
    fresh = cells_of(load_record(args.fresh))

    regressions = []
    matched = 0
    print(f"{'cell':<40} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
    for key in sorted(base):
        name = f"{key[0]}/{key[1]}/t{key[2]}"
        if key not in fresh:
            print(f"{name:<40} {base[key]:>12.0f} {'missing':>12} {'-':>7}")
            continue
        matched += 1
        ratio = fresh[key] / base[key] if base[key] > 0 else float("inf")
        flag = ""
        if ratio < 1.0 - args.threshold:
            regressions.append((name, ratio))
            flag = "  << REGRESSION"
        print(f"{name:<40} {base[key]:>12.0f} {fresh[key]:>12.0f} "
              f"{ratio:>7.3f}{flag}")
    for key in sorted(set(fresh) - set(base)):
        name = f"{key[0]}/{key[1]}/t{key[2]}"
        print(f"{name:<40} {'missing':>12} {fresh[key]:>12.0f} {'-':>7}  (new cell)")

    # Only the threads dimension legitimately differs across machines
    # (core counts); a (workload, schedule) pair that vanished entirely
    # means the matrix was renamed/reshaped, and tolerating it would
    # silently disarm the gate for those cells forever. Refresh the
    # baseline deliberately instead.
    missing_pairs = sorted({(w, s) for (w, s, _) in base} -
                           {(w, s) for (w, s, _) in fresh})
    if missing_pairs or matched == 0:
        what = (", ".join(f"{w}/{s}" for w, s in missing_pairs)
                if missing_pairs else "every cell")
        print(f"\nFAIL: baseline (workload, schedule) pairs absent from "
              f"the fresh record: {what} — the matrix shape changed; "
              f"refresh bench/baselines via compare_bench.py --update "
              f"(see CONTRIBUTING.md).")
        return 1
    if regressions:
        worst = min(regressions, key=lambda r: r[1])
        print(f"\nFAIL: {len(regressions)} cell(s) regressed more than "
              f"{args.threshold:.0%} (worst: {worst[0]} at {worst[1]:.3f}x). "
              f"If intentional, push with [perf-override] in the commit "
              f"message (see CONTRIBUTING.md).")
        return 1
    print(f"\nOK: no cell regressed more than {args.threshold:.0%} "
          f"({len(base)} baseline cells).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
