#!/usr/bin/env python3
"""Perf regression gate over BENCH_*.json records.

Compares a freshly measured matrix against the committed baseline cell by
cell. Two record shapes are known, selected with --bench:

  batch   (default)  BENCH_batch.json    cell = (workload, schedule, threads)
                                         metric = inst_per_s
  kernels            BENCH_kernels.json  cell = (kernel, bits, tier)
                                         metric = ops_per_s

The gate fails (exit 1) when any cell's fresh metric drops more than
--threshold (default 15%) below the baseline.

Both inputs may be a bare JSON record or a full bench log; the first line
containing the record mark (`"bench":"batch_throughput"` or
`"bench":"kernels"`) is used. Cells present on only one side are reported
but never fail the gate — only along the machine-dependent dimension
(threads for batch: core counts differ; tier for kernels: a runner
without AVX-512 has no avx512 cells). A (workload, schedule) or
(kernel, bits) pair that vanished entirely means the matrix was
renamed/reshaped, and is a hard failure: tolerating it would silently
disarm the gate for those cells forever. Zero matching cells likewise
fails.

Usage:
  scripts/compare_bench.py BASELINE FRESH [--threshold 0.15] [--bench kernels]
  scripts/compare_bench.py --update FRESH [--bench kernels]   # rewrite baseline

Override: pushes whose head commit message contains [perf-override] skip
the gate in CI (see .github/workflows/ci.yml and CONTRIBUTING.md) — use
it for commits that knowingly trade throughput for something else.
"""

import argparse
import json
import pathlib
import sys

BASELINE_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench/baselines"

# dims: cell key fields in order; the LAST one is the machine-dependent
# dimension whose missing cells are tolerated (see module docstring).
BENCHES = {
    "batch": {
        "mark": '"bench":"batch_throughput"',
        "baseline": "BENCH_batch.json",
        "dims": ("workload", "schedule", "threads"),
        "metric": "inst_per_s",
    },
    "kernels": {
        "mark": '"bench":"kernels"',
        "baseline": "BENCH_kernels.json",
        "dims": ("kernel", "bits", "tier"),
        "metric": "ops_per_s",
    },
}


def load_record(path, mark):
    """Returns the parsed record found in `path`."""
    text = pathlib.Path(path).read_text()
    for line in text.splitlines():
        if mark in line:
            return json.loads(line[line.index("{"):])
    raise SystemExit(f"{path}: no {mark} record found")


def cell_key(row, dims):
    return tuple(int(row[d]) if isinstance(row[d], (int, float)) else row[d]
                 for d in dims)


def cells_of(record, spec):
    cells = {}
    for row in record.get("rows", []):
        cells[cell_key(row, spec["dims"])] = float(row[spec["metric"]])
    return cells


def cell_name(key):
    return "/".join(str(k) for k in key)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline (or FRESH with --update)")
    parser.add_argument("fresh", nargs="?", help="freshly measured record")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated relative drop per cell (default 0.15)")
    parser.add_argument("--bench", choices=sorted(BENCHES), default="batch",
                        help="record shape to compare (default batch)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline from the record")
    args = parser.parse_args()
    spec = BENCHES[args.bench]
    baseline_path = BASELINE_DIR / spec["baseline"]

    if args.update:
        record = load_record(args.baseline, spec["mark"])
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(record, separators=(",", ":")) + "\n")
        print(f"baseline updated: {baseline_path} ({len(record['rows'])} cells)")
        return 0

    if args.fresh is None:
        parser.error("FRESH is required unless --update is given")
    base = cells_of(load_record(args.baseline, spec["mark"]), spec)
    fresh = cells_of(load_record(args.fresh, spec["mark"]), spec)

    regressions = []
    matched = 0
    print(f"{'cell':<40} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
    for key in sorted(base, key=cell_name):
        name = cell_name(key)
        if key not in fresh:
            print(f"{name:<40} {base[key]:>12.0f} {'missing':>12} {'-':>7}")
            continue
        matched += 1
        ratio = fresh[key] / base[key] if base[key] > 0 else float("inf")
        flag = ""
        if ratio < 1.0 - args.threshold:
            regressions.append((name, ratio))
            flag = "  << REGRESSION"
        print(f"{name:<40} {base[key]:>12.0f} {fresh[key]:>12.0f} "
              f"{ratio:>7.3f}{flag}")
    for key in sorted(set(fresh) - set(base), key=cell_name):
        print(f"{cell_name(key):<40} {'missing':>12} {fresh[key]:>12.0f} "
              f"{'-':>7}  (new cell)")

    # Only the final dimension legitimately differs across machines; a
    # pair over the leading dimensions that vanished entirely means the
    # matrix was renamed/reshaped, and tolerating it would silently
    # disarm the gate for those cells forever. Refresh the baseline
    # deliberately instead.
    missing_pairs = sorted({k[:-1] for k in base} - {k[:-1] for k in fresh})
    if missing_pairs or matched == 0:
        what = (", ".join(cell_name(p) for p in missing_pairs)
                if missing_pairs else "every cell")
        lead = "/".join(spec["dims"][:-1])
        print(f"\nFAIL: baseline ({lead}) pairs absent from "
              f"the fresh record: {what} — the matrix shape changed; "
              f"refresh bench/baselines via compare_bench.py --update "
              f"(see CONTRIBUTING.md).")
        return 1
    if regressions:
        worst = min(regressions, key=lambda r: r[1])
        print(f"\nFAIL: {len(regressions)} cell(s) regressed more than "
              f"{args.threshold:.0%} (worst: {worst[0]} at {worst[1]:.3f}x). "
              f"If intentional, push with [perf-override] in the commit "
              f"message (see CONTRIBUTING.md).")
        return 1
    print(f"\nOK: no cell regressed more than {args.threshold:.0%} "
          f"({len(base)} baseline cells).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
