#!/usr/bin/env bash
# End-to-end smoke for remote shard dispatch (`wdag drive --workers
# host:port,...` against `wdag worker` peers) — the CI remote-drive job.
#
#   1. starts two workers with fault hooks armed:
#        worker1 — drops the connection mid-payload on its first shard,
#                  corrupts one payload after checksumming, and answers
#                  its first ping slower than the probe timeout (one
#                  probe miss -> unhealthy -> next fast ping -> recovery)
#        worker2 — stalls its first shard attempt indefinitely and
#                  answers EVERY ping slowly (it goes unhealthy and
#                  stays out of rotation, so its stalled in-flight
#                  attempt must be re-dispatched elsewhere)
#   2. drives a k-shard plan over both workers with tight probe knobs,
#      SIGKILLing worker2 mid-drive,
#   3. asserts the merged bytes are IDENTICAL to the unsharded
#      `wdag batch --stream-csv` run,
#   4. asserts the event log recorded the whole story: the injected
#      faults' retries, both unhealthy transitions, the re-dispatch off
#      the dead worker, worker1's probe recovery, and a clean done.
#
# Usage: scripts/remote_drive_smoke.sh [path/to/wdag] [shards]
#        (defaults: ./build/wdag, 5)

set -euo pipefail

WDAG="${1:-./build/wdag}"
SHARDS="${2:-5}"
# Per-shard work is what the fault choreography is timed against (the
# drop + corrupt retries must settle before worker1's ~0.6s unhealthy
# transition), so the instance count scales with the shard count to keep
# each shard's runtime constant across matrix cells.
COUNT=$((6000 * SHARDS))
SEED=4242
TMP="$(mktemp -d)"
W1_PID=""
W2_PID=""
cleanup() {
  [ -n "$W1_PID" ] && kill -9 "$W1_PID" 2>/dev/null || true
  [ -n "$W2_PID" ] && kill -9 "$W2_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "remote_drive_smoke: FAIL: $*" >&2; exit 1; }

# --- 1. workers up, faults armed ------------------------------------------
# worker1: one slow heartbeat (1.5s > the 600ms probe timeout) burns the
# miss budget of 1 -> unhealthy at ~0.6s; the next (fast) ping recovers
# it. Its drop-conn and corrupt hooks each force one validated retry —
# both aim at shard 0 (each fires once, so the drop hits attempt 0 and
# the corruption hits the retry, both resolved well before the 0.6s
# unhealthy transition can kill the attempt mid-read).
WDAG_WORKER_DROP_CONN=0 \
WDAG_WORKER_CORRUPT_PAYLOAD=0 \
WDAG_WORKER_SLOW_HEARTBEAT=1:1500 \
  "$WDAG" worker --port 0 --threads 1 --port-file "$TMP/w1.port" \
  > "$TMP/w1.log" 2>&1 &
W1_PID=$!
disown "$W1_PID"

# worker2: permanently slow heartbeats -> unhealthy for good; the first
# shard request it receives stalls far past the drive, so the drive MUST
# notice the sick worker and re-dispatch that in-flight attempt.
WDAG_WORKER_STALL_MS=120000 \
WDAG_WORKER_SLOW_HEARTBEAT=9999:9999 \
  "$WDAG" worker --port 0 --threads 1 --port-file "$TMP/w2.port" \
  > "$TMP/w2.log" 2>&1 &
W2_PID=$!
disown "$W2_PID"

for f in w1.port w2.port; do
  for _ in $(seq 1 100); do [ -s "$TMP/$f" ] && break; sleep 0.1; done
  [ -s "$TMP/$f" ] || fail "worker never wrote $f"
done
P1="$(cat "$TMP/w1.port")"
P2="$(cat "$TMP/w2.port")"
echo "remote_drive_smoke: worker1 pid $W1_PID port $P1, worker2 pid $W2_PID port $P2"

# --- 2. the reference bytes and the drive ---------------------------------
"$WDAG" batch --gen random-upp --count "$COUNT" --seed "$SEED" --threads 1 \
  --stream-csv "$TMP/ref.csv" > /dev/null

# Kill worker2 mid-drive: by then it is already unhealthy and out of
# rotation — the drive must shrug off the vanished process entirely.
( sleep 1.0; kill -9 "$W2_PID" 2>/dev/null || true ) &
KILLER_PID=$!

"$WDAG" drive --gen random-upp --count "$COUNT" --seed "$SEED" \
  --shards "$SHARDS" --threads 1 \
  --workers "127.0.0.1:$P1,127.0.0.1:$P2" \
  --max-retries 6 --backoff 0.05 \
  --connect-timeout-ms 1000 --probe-interval 0.1 \
  --probe-timeout-ms 600 --probe-miss-budget 1 \
  --work-dir "$TMP/scratch" \
  --events "$TMP/events.jsonl" \
  --out "$TMP/drive.csv" > "$TMP/drive.log" 2>&1 \
  || fail "drive exited nonzero:
$(cat "$TMP/drive.log")
$(cat "$TMP/events.jsonl")"
wait "$KILLER_PID" 2>/dev/null || true
W2_PID=""

# --- 3. byte identity ------------------------------------------------------
cmp "$TMP/ref.csv" "$TMP/drive.csv" \
  || fail "drive output differs from the unsharded --stream-csv bytes"
echo "remote_drive_smoke: merged bytes identical to wdag batch --stream-csv"

# --- 4. the event log tells the whole story -------------------------------
for needle in \
    '"ev":"retry"' \
    '"ev":"probe-miss"' \
    '"ev":"unhealthy"' \
    '"ev":"redispatch"' \
    '"ev":"recovered"' \
    '"ev":"done"'; do
  grep -q "$needle" "$TMP/events.jsonl" \
    || fail "event log is missing $needle:
$(cat "$TMP/events.jsonl")"
done
# The injected faults must surface with their own diagnostics.
grep -q "closed mid-payload" "$TMP/events.jsonl" \
  || fail "event log never saw the dropped connection"
grep -q "checksum mismatch" "$TMP/events.jsonl" \
  || fail "event log never saw the corrupted payload"
# Shards must be attributed to the transports that ran them.
grep -q "\"ev\":\"complete\".*\"worker\":\"127.0.0.1:$P1\"" "$TMP/events.jsonl" \
  || fail "no completion was attributed to worker1"

echo "remote_drive_smoke: OK (drop + corrupt + dead worker absorbed; re-dispatch and recovery logged)"
