#!/usr/bin/env bash
# End-to-end smoke for `wdag serve` / `wdag request` (the CI serve job).
#
#   1. starts a server with a small admission queue and a --port-file,
#   2. fires CONCURRENT `wdag request` solves and field-compares each
#      response against `wdag solve --json -` with the same flags+seed
#      (timing stripped — everything else must match byte for byte),
#   3. parks the worker with sleep requests (WDAG_SERVE_TEST_HOOKS) and
#      overflows the queue, asserting immediate queue_full rejections
#      and that the stats endpoint — still answering mid-overload —
#      reports the reject counters,
#   4. SIGTERMs the server and asserts a graceful drain: exit status 0
#      and the drain summary line.
#
# Usage: scripts/serve_smoke.sh [path/to/wdag]   (default ./build/wdag)

set -euo pipefail

WDAG="${1:-./build/wdag}"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

# Timing is the one legitimately nondeterministic field in a solve
# response; everything before/after it is pinned.
strip_timing() { sed -E 's/,"millis":[0-9.eE+-]+//'; }

# --- 1. server up ---------------------------------------------------------
# Queue 4: big enough that four concurrent solves all admit even if the
# worker has not popped yet, small enough to overflow on cue in step 3.
WDAG_SERVE_TEST_HOOKS=1 "$WDAG" serve --port 0 --queue 4 \
  --port-file "$TMP/port" > "$TMP/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do [ -s "$TMP/port" ] && break; sleep 0.1; done
[ -s "$TMP/port" ] || fail "server never wrote its --port-file"
PORT="$(cat "$TMP/port")"
echo "serve_smoke: server pid $SERVER_PID on port $PORT"

# --- 2. concurrent served solves == local solves --------------------------
SEEDS="3 5 7 11"
REQ_PIDS=""
for seed in $SEEDS; do
  "$WDAG" request --port "$PORT" --type solve \
    --gen tree --seed "$seed" > "$TMP/served.$seed" &
  REQ_PIDS="$REQ_PIDS $!"
done
for pid in $REQ_PIDS; do
  wait "$pid" || fail "a concurrent solve request exited nonzero"
done

for seed in $SEEDS; do
  "$WDAG" solve --gen tree --seed "$seed" \
    --json "$TMP/local-raw.$seed" > /dev/null
  strip_timing < "$TMP/local-raw.$seed" > "$TMP/local.$seed"
  strip_timing < "$TMP/served.$seed" > "$TMP/served-stripped.$seed"
  cmp "$TMP/local.$seed" "$TMP/served-stripped.$seed" \
    || fail "served solve (seed $seed) differs from local wdag solve"
done
echo "serve_smoke: served responses field-match local solves ($SEEDS)"

# A served batch answers ok too (same engine path as `wdag batch`).
"$WDAG" request --port "$PORT" --type batch \
  --gen random-upp --count 20 --seed 7 > "$TMP/batch.json" \
  || fail "served batch request did not answer ok"
grep -q '"instances":20' "$TMP/batch.json" \
  || fail "served batch response missing instance count"

# --- 3. overload: bounded queue rejects, stats stays live -----------------
# One sleep occupies the single worker, four fill the queue, the other
# three must bounce IMMEDIATELY with `rejected: queue_full` (exit 3).
SLEEP_PIDS=""
for _ in 1 2 3 4 5 6 7 8; do
  "$WDAG" request --port "$PORT" --type sleep --millis 400 \
    > /dev/null 2>&1 &
  SLEEP_PIDS="$SLEEP_PIDS $!"
done
sleep 0.3   # everyone connected: worker busy, queue full, rest bounced

rejects=0
"$WDAG" request --port "$PORT" --type sleep --millis 1 \
  > "$TMP/bounced.json" 2>&1 || rejects=$?
[ "$rejects" -eq 3 ] || fail "expected exit 3 (rejected) under overload, got $rejects"
grep -q '"reason":"queue_full"' "$TMP/bounced.json" \
  || fail "overflow request was not rejected with queue_full"

# Stats answers out-of-band while the worker is parked.
"$WDAG" request --port "$PORT" --type stats > "$TMP/stats.json" \
  || fail "stats request failed during overload"
grep -q '"version":' "$TMP/stats.json" || fail "stats missing version"
grep -q '"queue-capacity":4' "$TMP/stats.json" \
  || fail "stats missing queue capacity"
full="$(sed -E 's/.*"rejected-queue-full":([0-9]+).*/\1/' "$TMP/stats.json")"
[ "$full" -ge 1 ] || fail "stats rejected-queue-full is $full, expected >= 1"
echo "serve_smoke: bounded queue rejected $full overflow request(s), stats live"
for pid in $SLEEP_PIDS; do   # let the parked sleeps finish before the drain
  wait "$pid" || true        # the bounced ones exited 3 — that's the point
done

# --- 4. graceful drain on SIGTERM -----------------------------------------
# Park one more sleep so the drain has admitted work to finish.
"$WDAG" request --port "$PORT" --type sleep --millis 300 > /dev/null 2>&1 &
PARKED_PID=$!
sleep 0.1
kill -TERM "$SERVER_PID"
rc=0
wait "$SERVER_PID" || rc=$?
SERVER_PID=""
[ "$rc" -eq 0 ] || fail "server exited $rc on SIGTERM, expected a clean 0"
grep -q "drained and stopped" "$TMP/server.log" \
  || fail "server log has no drain summary line"
wait "$PARKED_PID" \
  || fail "in-flight request was abandoned by the drain instead of answered"

echo "serve_smoke: OK"
