#include "api/engine.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/shard.hpp"
#include "gen/workloads.hpp"
#include "paths/familyio.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace wdag::api {

namespace {

/// Rejects unknown workload names up front, before a batch fans out and
/// records the same error once per instance.
void require_known_workload(const std::string& name) {
  const auto& names = gen::workload_names();
  WDAG_REQUIRE(!name.empty(), "GeneratorSpec: family name must be set");
  if (std::find(names.begin(), names.end(), name) == names.end()) {
    throw InvalidArgument("unknown generator '" + name +
                          "' (see gen::workload_names())");
  }
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      pool_(options_.threads),
      arenas_(pool_.size()) {
  // First-cut NUMA-aware arena placement: warm each worker's arena ON
  // that worker, so the backing pages are first-touched (and under
  // WDAG_AFFINITY pinning, NUMA-placed) where the worker will use them.
  pool_.for_each_worker([this](std::size_t w) { arenas_[w].first_touch(); });
}

StrategyId Engine::register_strategy(std::unique_ptr<SolverStrategy> strategy) {
  return registry_.add(std::move(strategy));
}

SolveResponse Engine::submit(const SolveRequest& request) {
  const int sources = (request.family != nullptr ? 1 : 0) +
                      (request.generator.has_value() ? 1 : 0) +
                      (request.file.empty() ? 0 : 1);
  WDAG_REQUIRE(sources == 1,
               "SolveRequest: set exactly one of family/generator/file");
  const core::SolveOptions& options =
      request.options.has_value() ? *request.options : options_.solve;
  std::optional<StrategyId> force;
  if (request.force_strategy.has_value()) {
    force = registry_.find(*request.force_strategy);
    WDAG_REQUIRE(force.has_value(), "unknown strategy '" +
                                        *request.force_strategy +
                                        "' (see Engine::strategies())");
  }

  if (request.family != nullptr) {
    return solve_with(registry_, *request.family, options, force);
  }
  if (request.generator.has_value()) {
    require_known_workload(request.generator->family);
    util::Xoshiro256 rng(request.generator->seed);
    const gen::Instance inst = gen::workload_instance(
        request.generator->family, request.generator->params, rng);
    return solve_with(registry_, inst.family, options, force);
  }
  std::ifstream in(request.file);
  WDAG_REQUIRE(in.good(),
               "cannot open instance file '" + request.file + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const paths::ParsedInstance parsed = paths::parse_instance_text(buf.str());
  return solve_with(registry_, parsed.family, options, force);
}

core::BatchReport Engine::run_batch(const BatchRequest& request) {
  WDAG_REQUIRE(!(request.generator.has_value() && request.generate != nullptr),
               "BatchRequest: set only one of generator/generate");
  WDAG_REQUIRE(request.families.empty() ||
                   (!request.generator.has_value() &&
                    request.generate == nullptr),
               "BatchRequest: set only one of families/generator/generate");
  const core::SolveOptions base =
      request.solve.has_value() ? *request.solve : options_.solve;
  std::optional<StrategyId> force;
  if (request.force_strategy.has_value()) {
    force = registry_.find(*request.force_strategy);
    WDAG_REQUIRE(force.has_value(), "unknown strategy '" +
                                        *request.force_strategy +
                                        "' (see Engine::strategies())");
  }
  const bool keep_coloring = request.options.keep_colorings;

  std::size_t count;
  core::BatchItemSolver item;
  if (request.generator.has_value() || request.generate != nullptr) {
    if (request.generator.has_value()) {
      require_known_workload(request.generator->family);
    }
    count = request.count;
    item = [this, &request, base, force, keep_coloring](
               util::Xoshiro256& rng, std::size_t i, core::BatchEntry& entry,
               core::SolveScratch& scratch) {
      try {
        const gen::Instance inst =
            request.generator.has_value()
                ? gen::workload_instance(request.generator->family,
                                         request.generator->params, rng)
                : request.generate(rng, i);
        solve_into_entry(entry, registry_, inst.family, base, force, scratch,
                         keep_coloring);
      } catch (const std::exception& e) {
        entry.failed = true;
        entry.error = e.what();
      }
    };
  } else {
    count = request.families.size();
    item = [this, &request, base, force, keep_coloring](
               util::Xoshiro256& /*rng*/, std::size_t i,
               core::BatchEntry& entry, core::SolveScratch& scratch) {
      // i is global (shards offset it); the span holds this run's slice.
      solve_into_entry(entry, registry_,
                       request.families[i - request.options.index_base],
                       base, force, scratch, keep_coloring);
    };
  }

  // The engine pool runs the batch; options.threads is advisory only.
  // Unless the request brings its own cost model, the engine's
  // persistent one sizes stealing chunks — so sweeps and repeated
  // batches keep refining the same per-strategy estimates.
  core::BatchOptions batch_options = request.options;
  if (batch_options.cost_model == nullptr) {
    batch_options.cost_model = &cost_model_;
  }
  return core::run_batch_items(count, item, batch_options,
                               registry_.names(), request.sinks, &pool_,
                               arenas_);
}

core::BatchReport Engine::run_shard(const BatchRequest& request,
                                    std::size_t shard, std::size_t shards,
                                    core::ShardLayout layout) {
  WDAG_REQUIRE(shards >= 1, "run_shard: shards must be >= 1");
  WDAG_REQUIRE(shard < shards,
               "run_shard: shard " + std::to_string(shard) +
                   " out of range for " + std::to_string(shards) +
                   " shards");
  WDAG_REQUIRE(request.options.index_base == 0 &&
                   request.options.index_stride == 1,
               "run_shard: the request must describe the FULL batch "
               "(options.index_base/index_stride are set by run_shard "
               "itself)");
  const std::size_t total =
      request.families.empty() ? request.count : request.families.size();

  // The shard is the same request narrowed to its global index set: the
  // index base (and, striped, the stride) keys every instance's RNG/row
  // by its global index, so the bytes this run streams are exactly the
  // unsharded run's rows at those indices.
  BatchRequest slice = request;
  if (layout == core::ShardLayout::kStriped) {
    // A striped index set cannot be expressed as a subspan.
    WDAG_REQUIRE(request.families.empty(),
                 "run_shard: striped layouts need a generated workload, "
                 "not an explicit families span");
    slice.options.index_base = shard;
    slice.options.index_stride = shards;
    slice.count = shard < total ? (total - shard + shards - 1) / shards : 0;
    return run_batch(slice);
  }
  const core::ShardRange range = core::shard_range(total, shards, shard);
  slice.options.index_base = range.begin;
  if (!request.families.empty()) {
    slice.families = request.families.subspan(range.begin, range.size());
  } else {
    slice.count = range.size();
  }
  return run_batch(slice);
}

}  // namespace wdag::api
