#pragma once
// wdag::api::Engine — the stable session object of the public API.
//
// An Engine owns the worker thread pool, one SolveScratch arena per
// worker, and a StrategyRegistry seeded with the four built-ins
// (Theorem 1 / split-merge / DSATUR / exact). Construct one per process
// (or per isolation domain), register any custom SolverStrategy backends,
// then drive it:
//
//   wdag::api::Engine engine;
//   auto resp  = engine.submit(SolveRequest::of(family));
//   auto report = engine.run_batch(BatchRequest::generated("random-upp", 1000));
//
// submit() solves one instance on the calling thread; run_batch() fans a
// workload out over the pool through the chunked-deterministic batch
// engine, streaming rows into any ResultSinks in strict instance order.
// Reports key per-strategy stats by StrategyId against the registry, so
// registered backends show up in histograms automatically.
//
// Thread-safety: submit() may be called concurrently; run_batch() runs
// one batch at a time per engine; register_strategy() must happen before
// concurrent use (typically right after construction).

#include <cstddef>
#include <memory>
#include <vector>

#include "api/request.hpp"
#include "api/sink.hpp"
#include "api/strategy.hpp"
#include "core/batch.hpp"
#include "core/cost_model.hpp"
#include "core/shard.hpp"
#include "core/solver.hpp"
#include "util/thread_pool.hpp"

namespace wdag::api {

/// Engine construction knobs.
struct EngineOptions {
  /// Worker threads of the owned pool; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Default solver knobs applied to every request that does not carry
  /// its own.
  core::SolveOptions solve;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Worker threads of the owned pool.
  [[nodiscard]] std::size_t threads() const { return pool_.size(); }

  /// The strategy registry (built-ins plus anything registered).
  [[nodiscard]] const StrategyRegistry& strategies() const {
    return registry_;
  }

  /// Registers a custom backend; it takes dispatch precedence over every
  /// earlier strategy on the hosts it declares applicable. Returns its
  /// id. Not thread-safe with respect to concurrent solves.
  StrategyId register_strategy(std::unique_ptr<SolverStrategy> strategy);

  /// Solves one request on the calling thread. Throws
  /// wdag::InvalidArgument on malformed requests (no source, two sources,
  /// unknown generator/strategy names) and wdag::DomainError for hosts
  /// outside the solvable domain (non-DAGs).
  [[nodiscard]] SolveResponse submit(const SolveRequest& request);

  /// Fans a workload out over the engine pool with deterministic
  /// per-instance seeding; per-instance failures are captured into
  /// entries, not thrown. Rows reach request.sinks in strict instance
  /// order. BatchRequest::options.schedule picks the fixed or the
  /// cost-aware work-stealing scheduler; the engine's persistent cost
  /// model (refined by every batch this engine runs) sizes the stealing
  /// chunks unless the request wires in its own.
  [[nodiscard]] core::BatchReport run_batch(const BatchRequest& request);

  /// Runs ONE shard of `request`: the global index set the plan layout
  /// assigns to `shard` — the contiguous core::shard_range slice, or
  /// every shards-th index starting at `shard` for the striped layout —
  /// with every instance keyed by its GLOBAL index: RNG stream, entry
  /// index, sink rows. Reassembling the K shards' sink outputs (see
  /// core::merge_shard_csv / merge_shard_json) therefore reproduces the
  /// unsharded run_batch bytes exactly, whatever thread count or
  /// schedule each shard picked. `request` describes the FULL batch
  /// (global count / full families span); sinks attached to it receive
  /// only this shard's rows. Striped layouts require a generated
  /// workload (an explicit families span cannot be strided).
  [[nodiscard]] core::BatchReport run_shard(
      const BatchRequest& request, std::size_t shard, std::size_t shards,
      core::ShardLayout layout = core::ShardLayout::kContiguous);

  /// The engine's persistent solve-cost model: consulted for stealing
  /// chunk sizes and updated with every batch's observed costs.
  [[nodiscard]] const core::CostModel& cost_model() const {
    return cost_model_;
  }

 private:
  EngineOptions options_;
  StrategyRegistry registry_;
  util::ThreadPool pool_;
  std::vector<core::SolveScratch> arenas_;  ///< one per pool worker
  core::CostModel cost_model_;              ///< shared across batches
};

}  // namespace wdag::api
