#pragma once
// Request/response types of the public wdag API (api/engine.hpp).
//
// A SolveRequest describes ONE instance three interchangeable ways — an
// inline (borrowed) dipath family, a named generator spec, or an instance
// file — so callers, services and tests all speak the same contract. A
// BatchRequest describes a workload of instances for the deterministic
// chunked batch engine plus the sinks its per-instance rows stream into.
// This stable instance/request seam is what lets workloads and backends
// multiply without churning every call site (cf. the IPC benchmark
// lesson in PAPERS.md).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/batch.hpp"
#include "core/solver.hpp"
#include "dag/classify.hpp"
#include "gen/workloads.hpp"
#include "paths/family.hpp"

namespace wdag::api {

class ResultSink;

/// A named generated workload: one of gen::workload_names() plus its
/// knobs. submit() draws the single instance from Xoshiro256(seed);
/// batches ignore `seed` and use BatchRequest::options.seed with the
/// engine's deterministic per-instance derivation.
struct GeneratorSpec {
  std::string family;              ///< workload name, e.g. "random-upp"
  gen::WorkloadParams params{};    ///< generator knobs (unused ones ignored)
  std::uint64_t seed = 1;          ///< RNG seed for single-instance solves
};

/// One solve. Exactly one of `family`, `generator`, `file` must be set;
/// Engine::submit rejects ambiguous or empty requests.
struct SolveRequest {
  /// Borrowed inline instance (not owned; must outlive the call).
  const paths::DipathFamily* family = nullptr;
  /// Generated instance.
  std::optional<GeneratorSpec> generator;
  /// Instance file in the paths::to_instance_text format.
  std::string file;

  /// Bypass dispatch: run the named registered strategy (built-in or
  /// user-registered). Structural strategies still check their domain.
  std::optional<std::string> force_strategy;
  /// Per-request solver knobs; engine defaults when absent.
  std::optional<core::SolveOptions> options;

  static SolveRequest of(const paths::DipathFamily& f) {
    SolveRequest r;
    r.family = &f;
    return r;
  }
  static SolveRequest generated(std::string family_name,
                                gen::WorkloadParams params = {},
                                std::uint64_t seed = 1) {
    SolveRequest r;
    r.generator = GeneratorSpec{std::move(family_name), params, seed};
    return r;
  }
  static SolveRequest from_file(std::string path) {
    SolveRequest r;
    r.file = std::move(path);
    return r;
  }
};

/// A solved request.
struct SolveResponse {
  conflict::Coloring coloring;   ///< wavelength per path id
  std::size_t paths = 0;         ///< family size
  std::size_t wavelengths = 0;   ///< colors used
  std::size_t load = 0;          ///< pi(G,P), always a lower bound on w
  bool optimal = false;          ///< wavelengths provably equals w(G,P)
  core::StrategyId strategy = 0; ///< registry id of the winning strategy
  std::string strategy_name;     ///< its display name
  dag::DagReport report;         ///< structural classification of the host
  double millis = 0.0;           ///< wall-clock solve latency
  std::string diagnostics;       ///< optional strategy note
};

/// A workload for Engine::run_batch. Exactly one source must be set:
/// `families` (pre-built, borrowed), `generator` (named workload), or
/// `generate` (custom callback). Generated sources additionally need
/// `count`.
struct BatchRequest {
  /// Pre-built instances (borrowed; host graphs must outlive the call).
  std::span<const paths::DipathFamily> families{};
  /// Named generated workload (instances drawn per chunk, deterministic
  /// in options.seed at any thread count).
  std::optional<GeneratorSpec> generator;
  /// Custom generator callback; same determinism contract.
  core::InstanceGenerator generate;
  /// Instances to generate (ignored for `families`).
  std::size_t count = 0;

  /// Chunking, seeding and entry/coloring retention. `threads` is
  /// ignored: the engine's own pool runs the batch.
  core::BatchOptions options{};
  /// Borrowed sinks; each receives every per-instance row in strict
  /// instance order, then the aggregate report (api/sink.hpp).
  std::vector<ResultSink*> sinks;

  /// Bypass dispatch for every instance, by registered strategy name.
  std::optional<std::string> force_strategy;
  /// Batch-wide solver knobs; engine defaults when absent.
  std::optional<core::SolveOptions> solve;

  static BatchRequest of(std::span<const paths::DipathFamily> fams) {
    BatchRequest r;
    r.families = fams;
    return r;
  }
  static BatchRequest generated(std::string family_name, std::size_t n,
                                gen::WorkloadParams params = {}) {
    BatchRequest r;
    r.generator = GeneratorSpec{std::move(family_name), params, 1};
    r.count = n;
    return r;
  }
};

}  // namespace wdag::api
