#include "api/sink.hpp"

#include <iostream>
#include <ostream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace wdag::api {

namespace {

/// Appends one entry as a CSV row, byte-identical to the corresponding
/// BatchReport::rows_table(/*with_latency=*/false).to_csv() row.
void append_csv_row(std::string& out, const core::BatchEntry& e,
                    std::string_view strategy) {
  out += std::to_string(e.index);
  out += ',';
  if (e.failed) {
    out += "error";
  } else {
    out += strategy;
  }
  out += ',';
  out += std::to_string(e.paths);
  out += ',';
  out += std::to_string(e.load);
  out += ',';
  out += std::to_string(e.wavelengths);
  out += ',';
  out += e.optimal ? '1' : '0';
  out += '\n';
}

using util::append_json_string;

/// Opens `path` for writing ('-' = stdout); returns the stream to use.
std::ostream* open_output(const std::string& path, std::ofstream& file,
                          const char* what) {
  if (path == "-") return &std::cout;
  file.open(path);
  WDAG_REQUIRE(file.good(), std::string(what) + ": cannot open output file '" +
                                path + "'");
  return &file;
}

}  // namespace

std::string_view ResultSink::strategy_name(core::StrategyId id) const {
  if (id < names_.size()) return names_[id];
  return core::builtin_strategy_name(id);
}

// --------------------------------------------------------------------------
// CsvStreamSink
// --------------------------------------------------------------------------

CsvStreamSink::CsvStreamSink(const std::string& path)
    : out_(open_output(path, file_, "CsvStreamSink")) {}

CsvStreamSink::CsvStreamSink(std::ostream& out) : out_(&out) {}

void CsvStreamSink::on_begin(const BatchStreamInfo&) {
  *out_ << "index,method,paths,load,wavelengths,optimal\n";
}

void CsvStreamSink::row(const core::BatchEntry& entry) {
  // Format into the sink's reused buffer and write once: no per-row
  // string allocation at million-row batch sizes (the bytes are
  // unchanged).
  buf_.clear();
  append_csv_row(buf_, entry, strategy_name(entry.strategy));
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
}

void CsvStreamSink::on_end(const core::BatchReport&) { out_->flush(); }

// --------------------------------------------------------------------------
// JsonSink
// --------------------------------------------------------------------------

JsonSink::JsonSink(const std::string& path)
    : out_(open_output(path, file_, "JsonSink")) {}

JsonSink::JsonSink(std::ostream& out) : out_(&out) {}

void JsonSink::row(const core::BatchEntry& entry) {
  std::string& line = buf_;  // reused across rows; bytes unchanged
  line.clear();
  line += "{\"index\":";
  line += std::to_string(entry.index);
  if (entry.failed) {
    line += ",\"error\":";
    append_json_string(line, entry.error);
  } else {
    line += ",\"strategy\":";
    append_json_string(line, strategy_name(entry.strategy));
    line += ",\"paths\":";
    line += std::to_string(entry.paths);
    line += ",\"load\":";
    line += std::to_string(entry.load);
    line += ",\"wavelengths\":";
    line += std::to_string(entry.wavelengths);
    line += ",\"optimal\":";
    line += entry.optimal ? "true" : "false";
  }
  line += "}\n";
  out_->write(line.data(), static_cast<std::streamsize>(line.size()));
}

void JsonSink::on_end(const core::BatchReport& report) {
  *out_ << report.to_json() << "\n";
  out_->flush();
}

// --------------------------------------------------------------------------
// AggregateSink
// --------------------------------------------------------------------------

void AggregateSink::on_begin(const BatchStreamInfo& info) {
  totals_ = Totals{};
  totals_.strategy_counts.assign(
      info.strategy_names != nullptr ? info.strategy_names->size()
                                     : core::kBuiltinStrategyCount,
      0);
}

void AggregateSink::row(const core::BatchEntry& entry) {
  ++totals_.instances;
  if (entry.failed) {
    ++totals_.failures;
    return;
  }
  if (entry.strategy < totals_.strategy_counts.size()) {
    ++totals_.strategy_counts[entry.strategy];
  }
  if (entry.optimal) ++totals_.optimal;
  totals_.total_wavelengths += entry.wavelengths;
  totals_.total_load += entry.load;
}

util::Table AggregateSink::table() const {
  util::Table t("aggregate", {"strategy", "count", "share"});
  const double total = static_cast<double>(totals_.instances);
  for (core::StrategyId id = 0; id < totals_.strategy_counts.size(); ++id) {
    const std::size_t c = totals_.strategy_counts[id];
    t.add_row({std::string(strategy_name(id)), static_cast<long long>(c),
               total == 0 ? 0.0 : static_cast<double>(c) / total});
  }
  if (totals_.failures > 0) {
    t.add_row({std::string("error"), static_cast<long long>(totals_.failures),
               total == 0 ? 0.0 : static_cast<double>(totals_.failures) / total});
  }
  return t;
}

}  // namespace wdag::api
