#pragma once
// Result sinks: where a batch's per-instance rows go.
//
// The batch engine delivers every row in STRICT instance order, whatever
// the thread count — chunks finish out of order but drain through the
// deterministic reorder window (core/batch.cpp) — so a sink writing bytes
// produces identical output for identical seeds on any machine. Calls are
// serialized by the engine; sinks need no locking of their own.
//
// Lifecycle per batch:   begin(info)  ->  row(entry) x N  ->  end(report)
//
// CsvStreamSink streams the canonical per-instance CSV (byte-identical
// at any thread count for a fixed seed), JsonSink streams JSON-lines rows
// plus the final aggregate report, and AggregateSink folds rows into
// in-memory per-strategy totals for callers that never materialize
// entries.

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch.hpp"
#include "util/table.hpp"

namespace wdag::api {

/// Metadata handed to ResultSink::begin before the first row. The
/// strategy_names pointer stays valid for the duration of the batch call
/// only; ResultSink keeps its own copy so sinks may be queried after the
/// batch returns.
struct BatchStreamInfo {
  std::size_t instance_count = 0;
  std::uint64_t seed = 0;
  /// Strategy display names, index-aligned with BatchEntry::strategy.
  const std::vector<std::string>* strategy_names = nullptr;
};

/// Interface every sink implements. Override row() (required) and the
/// on_begin/on_end hooks (optional).
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once by the engine before the first row.
  void begin(const BatchStreamInfo& info) {
    info_ = info;
    // Own the names: the report the pointer aims at may be destroyed
    // before the caller reads the sink (e.g. a discarded run_batch
    // return), so strategy_name() must not rely on it afterwards.
    names_.clear();
    if (info.strategy_names != nullptr) names_ = *info.strategy_names;
    info_.strategy_names = &names_;
    on_begin(info_);
  }

  /// One per-instance row, in instance order.
  virtual void row(const core::BatchEntry& entry) = 0;

  /// Called once after the last row with the aggregate report.
  void end(const core::BatchReport& report) { on_end(report); }

 protected:
  virtual void on_begin(const BatchStreamInfo& info) { (void)info; }
  virtual void on_end(const core::BatchReport& report) { (void)report; }

  /// Display name of a row's strategy id (built-in names before begin()).
  [[nodiscard]] std::string_view strategy_name(core::StrategyId id) const;
  [[nodiscard]] const BatchStreamInfo& info() const { return info_; }

 private:
  BatchStreamInfo info_;
  std::vector<std::string> names_;  ///< owned copy of *info.strategy_names
};

/// Streams per-instance CSV rows, byte-identical to
/// BatchReport::rows_table(/*with_latency=*/false).to_csv() — and, for a
/// fixed seed, identical at any thread count.
class CsvStreamSink final : public ResultSink {
 public:
  /// Writes to `path`; '-' means stdout.
  explicit CsvStreamSink(const std::string& path);
  /// Writes to a caller-owned stream (not owned; must outlive the sink).
  explicit CsvStreamSink(std::ostream& out);

  void row(const core::BatchEntry& entry) override;

 protected:
  void on_begin(const BatchStreamInfo& info) override;
  void on_end(const core::BatchReport& report) override;

 private:
  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::string buf_;  ///< per-row format buffer, reused across rows
};

/// Streams JSON-lines: one object per instance row, then one final line
/// holding the aggregate report (BatchReport::to_json).
class JsonSink final : public ResultSink {
 public:
  /// Writes to `path`; '-' means stdout.
  explicit JsonSink(const std::string& path);
  /// Writes to a caller-owned stream (not owned; must outlive the sink).
  explicit JsonSink(std::ostream& out);

  void row(const core::BatchEntry& entry) override;

 protected:
  void on_end(const core::BatchReport& report) override;

 private:
  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::string buf_;  ///< per-row format buffer, reused across rows
};

/// Folds rows into in-memory totals — the sink equivalent of the report
/// aggregates, usable with keep_entries == false for constant-memory
/// sweeps that still need per-strategy stats at the end.
class AggregateSink final : public ResultSink {
 public:
  struct Totals {
    std::size_t instances = 0;
    std::size_t failures = 0;
    std::size_t optimal = 0;
    std::size_t total_wavelengths = 0;
    std::size_t total_load = 0;
    /// Solve count per strategy, indexed by StrategyId (registry-sized).
    std::vector<std::size_t> strategy_counts;
  };

  void row(const core::BatchEntry& entry) override;

  [[nodiscard]] const Totals& totals() const { return totals_; }
  /// One row per strategy (name, count, share) plus failures.
  [[nodiscard]] util::Table table() const;

 protected:
  void on_begin(const BatchStreamInfo& info) override;

 private:
  Totals totals_;
};

}  // namespace wdag::api
