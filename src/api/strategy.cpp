#include "api/strategy.hpp"

#include <algorithm>
#include <utility>

#include "conflict/coloring.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "core/split_merge.hpp"
#include "core/theorem1.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace wdag::api {

namespace {

/// Theorem 1: hosts without internal cycle get the constructive w == pi.
class Theorem1Strategy final : public SolverStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "theorem1"; }
  [[nodiscard]] bool applicable(const dag::DagReport& r) const override {
    return r.wavelengths_equal_load();
  }
  [[nodiscard]] bool self_validating() const override { return true; }
  [[nodiscard]] StrategyResult solve(const paths::DipathFamily& family,
                                     const StrategyContext& ctx) const override {
    auto r = core::color_equal_load(family, ctx.preverified);
    StrategyResult out;
    out.coloring = std::move(r.coloring);
    out.wavelengths = r.wavelengths;
    out.load = r.load;
    out.optimal = true;  // w == pi by Theorem 1
    return out;
  }
};

/// UPP hosts with internal cycles: Theorem 6's split-merge recursion.
class SplitMergeStrategy final : public SolverStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "split-merge"; }
  [[nodiscard]] bool applicable(const dag::DagReport& r) const override {
    return r.is_dag && r.is_upp;
  }
  [[nodiscard]] bool self_validating() const override { return true; }
  [[nodiscard]] StrategyResult solve(const paths::DipathFamily& family,
                                     const StrategyContext& ctx) const override {
    auto r = core::color_upp_split_merge(family, ctx.preverified);
    StrategyResult out;
    out.coloring = std::move(r.coloring);
    out.wavelengths = r.wavelengths;
    out.load = r.load;
    return out;
  }
};

/// The conflict graph of `family`, built into the caller's arena.
const conflict::ConflictGraph& conflict_graph_for(
    const paths::DipathFamily& family, core::SolveScratch& scratch) {
  scratch.conflict_graph.rebuild(family);
  return scratch.conflict_graph;
}

/// General DAGs: DSATUR heuristic on the conflict graph.
class DsaturStrategy final : public SolverStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "dsatur"; }
  [[nodiscard]] bool applicable(const dag::DagReport& r) const override {
    return r.is_dag;  // the catch-all
  }
  [[nodiscard]] StrategyResult solve(const paths::DipathFamily& family,
                                     const StrategyContext& ctx) const override {
    const conflict::ConflictGraph& cg = conflict_graph_for(family, ctx.scratch);
    StrategyResult out;
    out.coloring = conflict::dsatur_coloring(cg);
    out.wavelengths = conflict::normalize_colors(out.coloring);
    return out;
  }
};

/// Exact branch-and-bound chromatic number; never dispatched (force /
/// certification only).
class ExactStrategy final : public SolverStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "exact"; }
  [[nodiscard]] bool applicable(const dag::DagReport&) const override {
    return false;
  }
  [[nodiscard]] bool self_validating() const override { return true; }
  [[nodiscard]] StrategyResult solve(const paths::DipathFamily& family,
                                     const StrategyContext& ctx) const override {
    const conflict::ConflictGraph& cg = conflict_graph_for(family, ctx.scratch);
    auto r = conflict::chromatic_number(cg, ctx.options.exact_node_budget);
    StrategyResult out;
    out.coloring = std::move(r.coloring);
    out.wavelengths = r.chromatic_number;
    out.optimal = r.proven;
    return out;
  }
};

}  // namespace

StrategyRegistry::StrategyRegistry() {
  strategies_.push_back(std::make_unique<Theorem1Strategy>());
  strategies_.push_back(std::make_unique<SplitMergeStrategy>());
  strategies_.push_back(std::make_unique<DsaturStrategy>());
  strategies_.push_back(std::make_unique<ExactStrategy>());
  dispatch_order_ = {core::kStrategyTheorem1, core::kStrategySplitMerge,
                     core::kStrategyDsatur, core::kStrategyExact};
}

StrategyId StrategyRegistry::add(std::unique_ptr<SolverStrategy> strategy) {
  WDAG_REQUIRE(strategy != nullptr, "StrategyRegistry::add: null strategy");
  const std::string name = strategy->name();
  WDAG_REQUIRE(!name.empty(), "StrategyRegistry::add: empty strategy name");
  WDAG_REQUIRE(!find(name).has_value(),
               "StrategyRegistry::add: duplicate strategy name '" + name + "'");
  const auto id = static_cast<StrategyId>(strategies_.size());
  strategies_.push_back(std::move(strategy));
  // Newest strategies dispatch first, so a user backend can shadow the
  // built-ins on exactly the hosts it declares applicable.
  dispatch_order_.insert(dispatch_order_.begin(), id);
  return id;
}

const SolverStrategy& StrategyRegistry::at(StrategyId id) const {
  WDAG_REQUIRE(id < strategies_.size(),
               "StrategyRegistry::at: unknown strategy id");
  return *strategies_[id];
}

std::optional<StrategyId> StrategyRegistry::find(std::string_view name) const {
  for (StrategyId id = 0; id < strategies_.size(); ++id) {
    if (strategies_[id]->name() == name) return id;
  }
  return std::nullopt;
}

std::vector<std::string> StrategyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(strategies_.size());
  for (const auto& s : strategies_) out.push_back(s->name());
  return out;
}

StrategyId StrategyRegistry::dispatch(const dag::DagReport& report) const {
  for (const StrategyId id : dispatch_order_) {
    if (strategies_[id]->applicable(report)) return id;
  }
  WDAG_DOMAIN(false, "StrategyRegistry::dispatch: no applicable strategy "
                     "(is the host a DAG?)");
  return 0;  // unreachable
}

const StrategyRegistry& builtin_registry() {
  static const StrategyRegistry registry;
  return registry;
}

SolveResponse solve_with(const StrategyRegistry& registry,
                         const paths::DipathFamily& family,
                         const core::SolveOptions& options,
                         std::optional<StrategyId> force,
                         core::SolveScratch* scratch) {
  const util::Timer timer;
  SolveResponse resp;
  resp.paths = family.size();
  resp.report = dag::classify(family.graph());
  WDAG_DOMAIN(resp.report.is_dag, "solve: the host graph must be a DAG");

  core::SolveScratch* arena = scratch != nullptr ? scratch : options.scratch;
  if (arena == nullptr) {
    thread_local core::SolveScratch fallback;
    arena = &fallback;
  }

  if (force.has_value()) {
    WDAG_REQUIRE(*force < registry.size(),
                 "solve: forced strategy id is not registered");
  }
  const StrategyId chosen = force.value_or(registry.dispatch(resp.report));
  // When dispatch (not force) picked a strategy, its applicability
  // predicate over the classification already proved the preconditions —
  // structural strategies skip their own re-verification then.
  const StrategyContext ctx{resp.report, options, *arena,
                            /*preverified=*/!force.has_value()};

  const SolverStrategy& strategy = registry.at(chosen);
  StrategyResult r = strategy.solve(family, ctx);
  resp.coloring = std::move(r.coloring);
  resp.wavelengths = r.wavelengths;
  resp.load = r.load.has_value() ? *r.load : paths::max_load(family);
  resp.strategy = chosen;
  resp.strategy_name = strategy.name();
  // pi is a lower bound on w, so matching it is a proof of minimality
  // whatever the strategy claims.
  resp.optimal = r.optimal || resp.wavelengths == resp.load;
  resp.diagnostics = std::move(r.note);

  bool validated = strategy.self_validating();

  // Optional exact certification / improvement for small instances.
  if (!resp.optimal && options.exact_threshold > 0 &&
      family.size() <= options.exact_threshold &&
      chosen != core::kStrategyExact) {
    const SolverStrategy& exact = registry.at(core::kStrategyExact);
    StrategyResult e = exact.solve(family, ctx);
    if (e.optimal && e.wavelengths <= resp.wavelengths) {
      resp.coloring = std::move(e.coloring);
      resp.wavelengths = e.wavelengths;
      resp.strategy = core::kStrategyExact;
      resp.strategy_name = exact.name();
      resp.optimal = true;
      validated = exact.self_validating();
    }
  }

  if (!validated) {
    WDAG_ASSERT(conflict::is_valid_assignment(family, resp.coloring),
                "solve: strategy '" + resp.strategy_name +
                    "' returned an invalid assignment");
    // The claimed wavelength count must match the coloring, or the
    // optimality verdict (w == pi) above could certify a lie.
    WDAG_ASSERT(conflict::num_colors(resp.coloring) == resp.wavelengths,
                "solve: strategy '" + resp.strategy_name +
                    "' claimed a wavelength count its coloring does not use");
  }
  resp.millis = timer.millis();
  return resp;
}

void solve_into_entry(core::BatchEntry& entry,
                      const StrategyRegistry& registry,
                      const paths::DipathFamily& family,
                      const core::SolveOptions& options,
                      std::optional<StrategyId> force,
                      core::SolveScratch& scratch, bool keep_coloring) {
  const util::Timer timer;
  try {
    SolveResponse r = solve_with(registry, family, options, force, &scratch);
    entry.strategy = r.strategy;
    entry.paths = r.paths;
    entry.load = r.load;
    entry.wavelengths = r.wavelengths;
    entry.optimal = r.optimal;
    if (keep_coloring) entry.coloring = std::move(r.coloring);
  } catch (const std::exception& e) {
    entry.failed = true;
    entry.error = e.what();
    entry.paths = family.size();
  }
  entry.millis = timer.millis();
}

}  // namespace wdag::api
