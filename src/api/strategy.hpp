#pragma once
// Pluggable solver strategies — the open-ended dispatch surface of the
// public API.
//
// A SolverStrategy couples a stable name, a structural applicability
// predicate over dag::DagReport, and the solve itself. A StrategyRegistry
// owns an ordered collection of strategies: the four built-ins (Theorem 1,
// split-merge, DSATUR, exact) always occupy ids 0..3, user strategies are
// appended after them, and dispatch picks the first applicable strategy
// scanning user strategies newest-first before the built-ins — so a
// registered backend can take over exactly the hosts it declares itself
// applicable to, without touching the dispatch code.
//
// solve_with() is the canonical solve pipeline shared by every entry
// point (api::Engine, core::solve_rwa, the batch drivers): classify,
// dispatch (or force), run the strategy, optionally certify with the
// exact solver, validate.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/request.hpp"
#include "core/solver.hpp"
#include "dag/classify.hpp"
#include "paths/family.hpp"

namespace wdag::api {

using core::StrategyId;

/// What a strategy hands back to the pipeline. `coloring` must be a valid
/// wavelength assignment of the family using `wavelengths` colors.
struct StrategyResult {
  conflict::Coloring coloring;
  std::size_t wavelengths = 0;
  /// pi(G,P) when the strategy computed it as a byproduct (the structural
  /// colorers do); solve_with computes it otherwise.
  std::optional<std::size_t> load;
  /// True when the strategy itself proves minimality. solve_with
  /// additionally upgrades the verdict whenever wavelengths == load.
  bool optimal = false;
  /// Optional diagnostic surfaced as SolveResponse::diagnostics.
  std::string note;
};

/// Per-call context handed to SolverStrategy::solve.
struct StrategyContext {
  /// Classification of family.graph(), computed once by the pipeline.
  const dag::DagReport& report;
  /// Solver knobs of the request.
  const core::SolveOptions& options;
  /// Per-worker scratch arena; reuse its buffers instead of allocating.
  core::SolveScratch& scratch;
  /// True when dispatch (not force) chose this strategy, i.e. the
  /// classification above already proved its preconditions — structural
  /// strategies may skip their own re-verification.
  bool preverified = false;
};

/// A wavelength-assignment backend. Implementations must be stateless or
/// internally synchronized: the batch engine calls solve() concurrently
/// from many workers (per-call mutable state belongs in ctx.scratch).
class SolverStrategy {
 public:
  virtual ~SolverStrategy() = default;

  /// Stable display name, unique within a registry; appears in reports,
  /// CSV rows and --force.
  [[nodiscard]] virtual std::string name() const = 0;

  /// True when this strategy can solve hosts matching `report`. dispatch()
  /// runs the first applicable strategy; strategies reachable only by
  /// force or certification (like the built-in exact solver) return false.
  [[nodiscard]] virtual bool applicable(const dag::DagReport& report) const = 0;

  /// Solves `family`; see StrategyResult for the contract.
  [[nodiscard]] virtual StrategyResult solve(const paths::DipathFamily& family,
                                             const StrategyContext& ctx) const = 0;

  /// True when solve() already validates its colorings before returning;
  /// the pipeline then skips its own re-validation. Defaults to false, so
  /// user strategies are always cross-checked.
  [[nodiscard]] virtual bool self_validating() const { return false; }
};

/// Ordered, name-unique collection of strategies with dispatch.
class StrategyRegistry {
 public:
  /// Starts with the four built-ins at their fixed ids 0..3.
  StrategyRegistry();
  StrategyRegistry(StrategyRegistry&&) = default;
  StrategyRegistry& operator=(StrategyRegistry&&) = default;

  /// Registers a strategy and returns its id (dense, in registration
  /// order after the built-ins). Newly added strategies take dispatch
  /// precedence over everything registered before them. Throws
  /// wdag::InvalidArgument on a duplicate or empty name.
  StrategyId add(std::unique_ptr<SolverStrategy> strategy);

  [[nodiscard]] std::size_t size() const { return strategies_.size(); }
  [[nodiscard]] const SolverStrategy& at(StrategyId id) const;
  /// Id of the strategy with the given name, if registered.
  [[nodiscard]] std::optional<StrategyId> find(std::string_view name) const;
  /// Display names, indexed by StrategyId.
  [[nodiscard]] std::vector<std::string> names() const;

  /// First applicable strategy in dispatch order: user strategies newest
  /// first, then theorem1 / split-merge / dsatur. Throws wdag::DomainError
  /// when nothing applies (non-DAG hosts).
  [[nodiscard]] StrategyId dispatch(const dag::DagReport& report) const;

 private:
  std::vector<std::unique_ptr<SolverStrategy>> strategies_;
  std::vector<StrategyId> dispatch_order_;
};

/// The shared registry holding only the built-ins; backs the core batch
/// drivers and core::solve_rwa.
const StrategyRegistry& builtin_registry();

/// The canonical solve pipeline over a registry: classify, dispatch (or
/// run `force`), solve, certify small non-optimal results with the exact
/// strategy, validate non-self-validating outcomes. `scratch` may be null
/// (a thread-local arena is used).
SolveResponse solve_with(const StrategyRegistry& registry,
                         const paths::DipathFamily& family,
                         const core::SolveOptions& options,
                         std::optional<StrategyId> force = std::nullopt,
                         core::SolveScratch* scratch = nullptr);

/// solve_with into a pre-allocated batch entry slot; never throws
/// (failures are captured into the entry). The single entry-filling
/// implementation shared by the legacy batch entry points and
/// Engine::run_batch.
void solve_into_entry(core::BatchEntry& entry,
                      const StrategyRegistry& registry,
                      const paths::DipathFamily& family,
                      const core::SolveOptions& options,
                      std::optional<StrategyId> force,
                      core::SolveScratch& scratch, bool keep_coloring);

}  // namespace wdag::api
