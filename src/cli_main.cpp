// The wdag command-line driver — a thin shell over the public API
// (wdag/wdag.hpp): every command builds requests for an api::Engine.
//
//   wdag solve  — build (or load) one instance, solve it, print the verdict
//   wdag batch  — fan a generated workload out over the engine's pool and
//                 report the dispatch histogram, latency percentiles and
//                 throughput; optionally stream per-instance CSV / JSON
//   wdag sweep  — run a batch per point of a parameter range and print one
//                 summary row per point
//   wdag shard  — plan/run/merge a batch split across machines: `plan`
//                 writes K JSON shard manifests, `run` executes one
//                 manifest into a shard CSV (or JSON-lines), `merge`
//                 validates the shard set and reassembles it to the exact
//                 bytes of the unsharded --stream-csv run
//   wdag drive  — execute a whole shard plan through a pool of attempt
//                 slots (local worker subprocesses and/or remote `wdag
//                 worker` endpoints) with per-shard timeout, bounded
//                 retry + backoff, speculative re-execution of
//                 stragglers, health-probed remote workers, and a
//                 streaming validated merge
//   wdag worker — long-lived remote executor of drive attempts: accepts
//                 a shard manifest as one JSON line over TCP, runs it
//                 through the embedded engine, validates the output and
//                 streams it back length-prefixed with an FNV-1a
//                 checksum; answers health pings while shards run
//   wdag serve  — persistent solve service on TCP: newline-delimited JSON
//                 requests through a bounded admission queue (overload
//                 rejects, never buffers) into one warm engine, with
//                 per-request deadlines, a live /stats endpoint and
//                 graceful SIGINT/SIGTERM drain
//   wdag request — client for wdag serve: send one request (from flags
//                 or a file), print the response line, exit 0/3/4 for
//                 ok/rejected/error
//
// Every generated workload is a deterministic function of --seed: the batch
// engine seeds each instance from (seed, GLOBAL index), so identical seeds
// give identical CSV output no matter how many threads run the batch, which
// scheduler (--schedule fixed|stealing) distributes the work, or how many
// shards the index range was split into.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "wdag/wdag.hpp"

#include "core/transport.hpp"  // internal: drive endpoint parsing
#include "remote/worker.hpp"   // internal: the `wdag worker` process
#include "util/simd.hpp"       // internal: --version reports the ISA tier

namespace {

using wdag::core::BatchOptions;
using wdag::core::BatchReport;
using wdag::core::SolveOptions;
using wdag::util::Cli;

int usage(std::ostream& os) {
  os << "wdag — wavelength assignment on DAGs (Bermond & Coudert)\n"
        "\n"
        "usage:\n"
        "  wdag solve --gen NAME [generator flags] [solver flags]\n"
        "  wdag solve --file INSTANCE.txt [solver flags]\n"
        "  wdag batch --gen NAME --count N [--threads T] [--seed S]\n"
        "             [--csv PATH|-] [--json PATH|-] [--rows]\n"
        "  wdag sweep --gen NAME --count N --param NAME --from A --to B\n"
        "             [--step S] [--threads T] [--seed S]\n"
        "  wdag shard plan --gen NAME --count N --shards K --out PREFIX\n"
        "             [--layout L] [--seed S] [generator flags] [solver flags]\n"
        "  wdag shard run --manifest FILE.json --out PATH|- [--threads T]\n"
        "             [--schedule S] [--json PATH] [--quiet]\n"
        "  wdag shard merge --out PATH|- SHARD.csv [SHARD.csv ...]\n"
        "  wdag drive --gen NAME --count N --shards K --work-dir DIR\n"
        "             [--layout L] [--workers W|HOST:PORT,...]\n"
        "             [--max-retries R] [--timeout SEC] [--backoff SEC]\n"
        "             [--speculate F] [--fail-fast N] [--resume]\n"
        "             [--events PATH] [--progress] [--out PATH|-]\n"
        "             [--connect-timeout-ms MS] [--probe-interval SEC]\n"
        "             [--probe-timeout-ms MS] [--probe-miss-budget N]\n"
        "  wdag worker [--host H] [--port P] [--threads T] [--schedule S]\n"
        "             [--idle-timeout-ms MS] [--port-file PATH]\n"
        "  wdag serve [--host H] [--port P] [--queue N] [--deadline-ms D]\n"
        "             [--threads T] [--port-file PATH]\n"
        "             [--max-connections N] [--idle-timeout-ms MS]\n"
        "             [solver flags]\n"
        "  wdag request --port P [--host H] [--type T] [--id ID]\n"
        "             [--gen NAME ...] [--count N] [--deadline-ms D]\n"
        "             [--req-file FILE] [--timeout-ms MS] [solver flags]\n"
        "  wdag --version\n"
        "\n"
        "generators (--gen):\n"
        "  random-upp   mixed random UPP workload: trees, one- and\n"
        "               multi-cycle skeletons, odd-cycle gadgets\n"
        "               (--k, --run-len, --chain, --paths, --size)\n"
        "  random-dag   random DAG + random walks (--size, --density, --paths)\n"
        "  no-internal  random DAG repaired to zero internal cycles\n"
        "               (--size, --density, --paths)\n"
        "  layered      layered DAG + random walks (--layers, --width-l,\n"
        "               --density, --paths)\n"
        "  tree         random out-tree + random requests (--size, --paths)\n"
        "  grid         rows x cols grid + random requests (--rows-g, --cols,\n"
        "               --paths)\n"
        "  butterfly    k-dimensional butterfly + random requests (--dim,\n"
        "               --paths)\n"
        "  fat-chain    stage chain with fiber bundles + random walks\n"
        "               (--stages, --width-l, --paths)\n"
        "  spine        spine with leaves + random requests (--size, --paths)\n"
        "  odd-cycle    Theorem 2 gadget, conflict graph C_{2k+1} (--k)\n"
        "  c5 | c7      odd-cycle with k=2 / k=3\n"
        "  figure1      Figure 1 pathological family (--k)\n"
        "  figure3      Figure 3 instance (pi=2, w=3)\n"
        "  havet        Theorem 7 / Wagner-graph instance (--h replication)\n"
        "\n"
        "solver flags:\n"
        "  --exact-threshold N   exact certification cutoff (default 48)\n"
        "  --exact-budget N      exact solver node budget\n"
        "  --force NAME          registered strategy name: theorem1 |\n"
        "                        split-merge | dsatur | exact\n"
        "\n"
        "solve flags:\n"
        "  --file PATH    solve an instance file instead of --gen\n"
        "  --show-coloring    print the wavelength of every path\n"
        "  --dump         print the solved instance in instance-text form\n"
        "  solve --json PATH    also write the verdict as one JSON line\n"
        "                 ('-' = stdout) — the same object a served solve\n"
        "                 request returns, for field-level comparison\n"
        "\n"
        "batch flags:\n"
        "  --count N      instances in the batch (default 100)\n"
        "  --threads T    worker threads; 0 = hardware concurrency\n"
        "                 (default 0, negatives rejected)\n"
        "  --schedule S   fixed | stealing (default fixed): fixed is the\n"
        "                 static contiguous partition; stealing rebalances\n"
        "                 skewed workloads over per-worker deques with\n"
        "                 cost-aware chunk sizing. Output bytes are\n"
        "                 identical either way for a fixed seed\n"
        "  --chunk C      instances per chunk of the fixed schedule\n"
        "                 (default 16; seeding is per instance, so this\n"
        "                 never changes results)\n"
        "  --min-chunk A  lower bound on the stealing chunk size (default 1)\n"
        "  --max-chunk B  upper bound on the stealing chunk size (default 256)\n"
        "  --seed S       base seed (default 1)\n"
        "  --csv PATH     write per-instance rows as CSV ('-' = stdout);\n"
        "                 deterministic for a fixed seed\n"
        "  --stream-csv PATH   stream the same CSV as chunks finish, at\n"
        "                 near-constant memory (million-instance sweeps);\n"
        "                 byte-identical to --csv for a fixed seed\n"
        "  --json PATH    write the aggregate report as JSON ('-' = stdout)\n"
        "  --rows         also print the per-instance table to stdout\n"
        "  --keep-colorings    retain every instance's coloring in memory\n"
        "                 (incompatible with --stream-csv)\n"
        "\n"
        "sweep flags:\n"
        "  --param NAME   paths | size | density | k (generator knob to vary)\n"
        "  --from A --to B --step S   inclusive range of the parameter\n"
        "\n"
        "shard flags:\n"
        "  --shards K     shards to split the index range into (plan/drive;\n"
        "                 every shard must get >= 1 instance)\n"
        "  --layout L     contiguous | striped (default contiguous): how the\n"
        "                 plan distributes global indices — one balanced\n"
        "                 range per shard, or round-robin striping that\n"
        "                 spreads an index-correlated cost tail evenly\n"
        "  --out P        plan: manifest path prefix, writes PREFIX.<i>.json;\n"
        "                 run/merge/drive: output CSV path ('-' = stdout)\n"
        "  --manifest F   the shard manifest to execute (run); the workload,\n"
        "                 seed and index range come from the manifest —\n"
        "                 only execution knobs (--threads, --schedule, ...)\n"
        "                 are read from the command line\n"
        "  --quiet        suppress the shard run summary line on stdout\n"
        "                 (the drive workers pass this)\n"
        "  merge accepts shard CSVs or shard JSON-lines files (shard run\n"
        "  --json); the format is detected from the file contents and the\n"
        "  merged output matches it\n"
        "\n"
        "drive flags:\n"
        "  --work-dir D   scratch directory for manifests and per-attempt\n"
        "                 shard outputs (created if missing; required)\n"
        "  --workers SPEC comma list mixing an integer (local subprocess\n"
        "                 slots) and HOST:PORT endpoints of remote `wdag\n"
        "                 worker` processes, e.g. '4', 'h1:9100,h2:9100'\n"
        "                 or '2,h1:9100'. Default 0 local = min(shards,\n"
        "                 hardware threads) when no remotes are given;\n"
        "                 with remotes, 0 local means remote-only (the\n"
        "                 drive degrades back to local slots if EVERY\n"
        "                 remote goes unhealthy)\n"
        "  --connect-timeout-ms MS   dial timeout of every remote attempt\n"
        "                 (default 1000)\n"
        "  --probe-interval SEC   seconds between health pings of each\n"
        "                 remote worker (default 2)\n"
        "  --probe-timeout-ms MS   per-ping timeout (default 500)\n"
        "  --probe-miss-budget N   consecutive missed pings before a\n"
        "                 remote worker leaves rotation; its in-flight\n"
        "                 attempts re-dispatch elsewhere without burning\n"
        "                 retry budget, and a later successful ping\n"
        "                 returns it (default 3)\n"
        "  --max-retries R   retries per shard after its first attempt\n"
        "                 (default 2); exceeding R fails the drive\n"
        "  --timeout SEC  per-attempt timeout; a late worker is killed and\n"
        "                 retried (default 0 = off)\n"
        "  --backoff SEC  base retry backoff, doubled per consecutive\n"
        "                 failure of the same shard (default 0.25)\n"
        "  --speculate F  re-execute a shard still running after F x the\n"
        "                 median completed-shard time; the first validated\n"
        "                 result wins (default 0 = off)\n"
        "  --fail-fast N  abort after N consecutive failed attempts spanning\n"
        "                 distinct shards — a systemic fault, not one bad\n"
        "                 shard (default 8, 0 = off)\n"
        "  --resume       reuse the validated shard outputs journaled in\n"
        "                 --work-dir by a crashed or interrupted drive of\n"
        "                 the SAME plan: each journaled output is\n"
        "                 re-validated, verified shards are skipped, only\n"
        "                 the remainder runs; merged bytes stay identical\n"
        "                 to an uninterrupted run\n"
        "  --events PATH  append one JSON line per lifecycle event\n"
        "                 (dispatch/exit/timeout/retry/speculate/complete/\n"
        "                 resume/quarantine/interrupt/done) to PATH\n"
        "                 ('-' = stderr); opened in append mode, flushed\n"
        "                 per line\n"
        "  --progress     print the per-shard attempts/retries/timing table\n"
        "                 after the drive\n"
        "  --keep-work    keep the manifests, committed shard files and the\n"
        "                 journal in --work-dir after a successful drive\n"
        "  --wdag-bin P   worker binary to execute (default: this binary)\n"
        "\n"
        "worker flags (a long-lived remote executor of drive attempts;\n"
        "shares --host/--port/--port-file/--threads/--schedule semantics):\n"
        "  --idle-timeout-ms MS   close a session after MS without a\n"
        "                 complete request line (worker and serve;\n"
        "                 default 0 = never)\n"
        "\n"
        "serve flags:\n"
        "  --max-connections N   live session cap; a connection accepted\n"
        "                 at the cap is answered 'rejected:\n"
        "                 max_connections' and closed (default 0 = off)\n"
        "  --host H       listen / connect address (default 127.0.0.1)\n"
        "  --port P       TCP port; serve: 0 picks an ephemeral port\n"
        "                 (default 0), request: required\n"
        "  --queue N      admission queue capacity (default 64); a full\n"
        "                 queue answers 'rejected: queue_full' immediately\n"
        "                 instead of buffering without bound\n"
        "  --deadline-ms D   serve: default deadline for requests that\n"
        "                 carry none; request: this request's deadline.\n"
        "                 A request whose deadline expires while queued is\n"
        "                 answered 'rejected: deadline' without solving\n"
        "                 (default 0 = none)\n"
        "  --port-file PATH   write the bound port to PATH once listening\n"
        "                 (scripts wait for the file, then connect)\n"
        "\n"
        "request flags:\n"
        "  --type T       solve | batch | stats (default solve)\n"
        "  --id ID        client tag echoed in the response\n"
        "  --req-file F   send the first line of F verbatim instead of\n"
        "                 building the request from the flags\n"
        "  --timeout-ms MS   give up when no response arrives within MS\n"
        "                 (default 30000)\n"
        "\n"
        "global flags:\n"
        "  --help         print this help and exit 0\n"
        "  --version      print 'wdag VERSION (build-type, arch) [simd:\n"
        "                 tier]' and exit; fails on a bad WDAG_FORCE_ISA,\n"
        "                 so it doubles as an ISA reachability probe\n"
        "\n"
        "environment:\n"
        "  WDAG_FORCE_ISA pin the SIMD kernel dispatch to one ISA tier\n"
        "                 (scalar | sse2 | avx2 | avx512) instead of the\n"
        "                 highest the CPU supports; an unreachable tier is\n"
        "                 a usage error, never a silent fallback\n"
        "  WDAG_AFFINITY  pin pool workers to CPUs (Linux): 'on' pins\n"
        "                 worker i to cpu i, a comma list '0,2,4' cycles\n"
        "                 through those CPUs; unset/'off' leaves the OS free\n"
        "  WDAG_SERVE_TEST_HOOKS   when set, wdag serve also honors 'sleep'\n"
        "                 requests that occupy the worker for a fixed time\n"
        "                 (deterministic backpressure in tests)\n"
        "  WDAG_WORKER_FAIL_SHARD / WDAG_WORKER_DROP_CONN /\n"
        "  WDAG_WORKER_CORRUPT_PAYLOAD / WDAG_WORKER_SLOW_HEARTBEAT /\n"
        "  WDAG_WORKER_STALL_MS   one-shot fault hooks of wdag worker\n"
        "                 (fail a shard, drop the connection mid-payload,\n"
        "                 corrupt the payload after checksumming, delay\n"
        "                 'count:ms' heartbeats, stall the first request)\n"
        "                 — the remote-drive fault-injection test rig\n";
  return 2;
}

/// Everything solve/batch/sweep read from the command line, parsed once —
/// one code path for generator knobs, solver knobs and batch knobs.
struct CommonArgs {
  wdag::GeneratorSpec gen;                ///< --gen + knobs + --seed
  SolveOptions solve;                     ///< --exact-threshold/--exact-budget
  BatchOptions batch;                     ///< --threads/--chunk/--seed/...
  std::optional<std::string> force;       ///< --force strategy name
  std::size_t count = 0;                  ///< --count
  std::string stream_csv;                 ///< --stream-csv path; empty = off
};

CommonArgs read_common_args(const Cli& cli, std::size_t default_count) {
  CommonArgs a;

  a.gen.family = cli.get("gen", "");
  a.gen.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  auto& p = a.gen.params;
  p.paths = static_cast<std::size_t>(cli.get_int("paths", 32));
  p.size = static_cast<std::size_t>(cli.get_int("size", 24));
  p.density = cli.get_double("density", 0.2);
  p.k = static_cast<std::size_t>(cli.get_int("k", 3));
  p.run_len = static_cast<std::size_t>(cli.get_int("run-len", 1));
  p.chain = static_cast<std::size_t>(cli.get_int("chain", 1));
  p.layers = static_cast<std::size_t>(cli.get_int("layers", 5));
  p.width = static_cast<std::size_t>(cli.get_int("width-l", 4));
  p.rows = static_cast<std::size_t>(cli.get_int("rows-g", 4));
  p.cols = static_cast<std::size_t>(cli.get_int("cols", 6));
  p.dim = static_cast<std::size_t>(cli.get_int("dim", 3));
  p.stages = static_cast<std::size_t>(cli.get_int("stages", 4));
  p.h = static_cast<std::size_t>(cli.get_int("h", 2));

  a.solve.exact_threshold =
      static_cast<std::size_t>(cli.get_int("exact-threshold", 48));
  a.solve.exact_node_budget =
      static_cast<std::size_t>(cli.get_int("exact-budget", 20'000'000));
  if (cli.has("force")) a.force = cli.get("force", "");

  // --threads 0 means hardware concurrency (the ThreadPool contract);
  // reject negatives instead of letting the size_t cast wrap them into
  // an absurd worker count.
  const std::int64_t threads = cli.get_int("threads", 0);
  WDAG_REQUIRE(threads >= 0,
               "--threads must be >= 0 (0 = hardware concurrency), got " +
                   std::to_string(threads));
  a.batch.threads = static_cast<std::size_t>(threads);
  const std::int64_t chunk = cli.get_int("chunk", 16);
  WDAG_REQUIRE(chunk >= 1,
               "--chunk must be >= 1, got " + std::to_string(chunk));
  a.batch.chunk = static_cast<std::size_t>(chunk);
  const std::string schedule = cli.get("schedule", "fixed");
  if (schedule == "stealing") {
    a.batch.schedule = wdag::core::Schedule::kStealing;
  } else {
    WDAG_REQUIRE(schedule == "fixed",
                 "--schedule must be 'fixed' or 'stealing', got '" +
                     schedule + "'");
  }
  const std::int64_t min_chunk = cli.get_int("min-chunk", 1);
  const std::int64_t max_chunk = cli.get_int("max-chunk", 256);
  WDAG_REQUIRE(min_chunk >= 1 && max_chunk >= min_chunk,
               "--min-chunk/--max-chunk need 1 <= min <= max");
  a.batch.min_chunk = static_cast<std::size_t>(min_chunk);
  a.batch.max_chunk = static_cast<std::size_t>(max_chunk);
  a.batch.seed = a.gen.seed;
  a.batch.keep_colorings = cli.has("keep-colorings");
  if (cli.has("stream-csv")) {
    // Streaming exists for constant-memory sweeps; holding every coloring
    // contradicts it, so reject the combination instead of silently
    // preferring one flag.
    WDAG_REQUIRE(!a.batch.keep_colorings,
                 "--stream-csv and --keep-colorings conflict: streaming "
                 "runs at constant memory, keeping colorings does not");
    a.stream_csv = cli.get("stream-csv", "-");
    // Do not also hold the per-instance entries unless another flag
    // needs them.
    a.batch.keep_entries = cli.has("rows") || cli.has("csv");
  }

  a.count = static_cast<std::size_t>(cli.get_int("count",
      static_cast<std::int64_t>(default_count)));
  return a;
}

/// Writes `text` to the path, with '-' meaning stdout.
void write_output(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return;
  }
  std::ofstream out(path);
  WDAG_REQUIRE(out.good(), "cannot open output file '" + path + "'");
  out << text;
}

/// An engine configured from the parsed flags (pool size, solver knobs).
wdag::Engine make_engine(const CommonArgs& args, std::size_t threads) {
  wdag::EngineOptions options;
  options.threads = threads;
  options.solve = args.solve;
  return wdag::Engine(options);
}

int cmd_solve(const Cli& cli) {
  const CommonArgs args = read_common_args(cli, 100);
  // One instance solves on the calling thread; no pool needed.
  wdag::Engine engine = make_engine(args, 1);

  // Materialize the instance here (rather than via SolveRequest::from_file
  // / ::generated) so --dump can render exactly what was solved.
  std::shared_ptr<const wdag::graph::Digraph> graph;  // keeps the host alive
  wdag::paths::DipathFamily family;
  if (cli.has("file")) {
    const std::string path = cli.get("file", "");
    std::ifstream in(path);
    WDAG_REQUIRE(in.good(), "cannot open instance file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = wdag::paths::parse_instance_text(buf.str());
    graph = parsed.graph;
    family = std::move(parsed.family);
  } else {
    wdag::util::Xoshiro256 rng(args.gen.seed);
    auto inst =
        wdag::gen::workload_instance(args.gen.family, args.gen.params, rng);
    graph = inst.graph;
    family = std::move(inst.family);
  }

  wdag::SolveRequest request = wdag::SolveRequest::of(family);
  request.force_strategy = args.force;

  const wdag::SolveResponse response = engine.submit(request);
  std::cout << wdag::dag::report_to_string(response.report) << "\n";
  wdag::util::Table verdict("solve verdict",
                            {"method", "paths", "load", "wavelengths",
                             "optimal"});
  verdict.add_row({response.strategy_name,
                   static_cast<long long>(response.paths),
                   static_cast<long long>(response.load),
                   static_cast<long long>(response.wavelengths),
                   static_cast<long long>(response.optimal ? 1 : 0)});
  std::cout << verdict;
  if (cli.has("show-coloring")) {
    std::cout << "coloring:";
    for (const auto c : response.coloring) std::cout << ' ' << c;
    std::cout << "\n";
  }
  if (cli.has("dump")) {
    std::cout << wdag::paths::to_instance_text(family);
  }
  if (cli.has("json")) {
    // The serve wire object, so `wdag solve --json` output is
    // field-comparable with a served solve of the same flags + seed.
    write_output(cli.get("json", "-"),
                 wdag::serve::solve_response_json("", response) + "\n");
  }
  return 0;
}

int cmd_batch(const Cli& cli) {
  const CommonArgs args = read_common_args(cli, 100);
  WDAG_REQUIRE(!args.gen.family.empty(), "batch requires --gen NAME");
  wdag::Engine engine = make_engine(args, args.batch.threads);

  wdag::BatchRequest request;
  request.generator = args.gen;
  request.count = args.count;
  request.options = args.batch;
  request.force_strategy = args.force;

  // --stream-csv: a CsvStreamSink on the request — rows reach the file in
  // strict instance order as chunks finish, at near-constant memory.
  std::ofstream stream_file;
  std::optional<wdag::CsvStreamSink> stream_sink;
  if (!args.stream_csv.empty()) {
    std::ostream* stream_out = &std::cout;
    if (args.stream_csv != "-") {
      stream_file.open(args.stream_csv);
      WDAG_REQUIRE(stream_file.good(),
                   "cannot open output file '" + args.stream_csv + "'");
      stream_out = &stream_file;
    }
    stream_sink.emplace(*stream_out);
    request.sinks.push_back(&*stream_sink);
  }

  const BatchReport report = engine.run_batch(request);

  if (cli.has("rows")) std::cout << report.rows_table();
  std::cout << report.histogram_table();
  wdag::util::Table summary(
      "batch summary",
      {"instances", "failures", "optimal", "wall_s", "inst_per_s", "p50_ms",
       "p99_ms"});
  summary.add_row({static_cast<long long>(report.instance_count),
                   static_cast<long long>(report.failure_count),
                   static_cast<long long>(report.optimal_count),
                   report.wall_seconds, report.instances_per_second(),
                   report.latency.p50, report.latency.p99});
  std::cout << summary;

  if (cli.has("csv")) {
    write_output(cli.get("csv", "-"),
                 report.rows_table(/*with_latency=*/false).to_csv());
  }
  if (cli.has("json")) {
    write_output(cli.get("json", "-"), report.to_json() + "\n");
  }
  return report.failure_count == 0 ? 0 : 1;
}

int cmd_sweep(const Cli& cli) {
  CommonArgs args = read_common_args(cli, 64);
  WDAG_REQUIRE(!args.gen.family.empty(), "sweep requires --gen NAME");
  // Each sweep point opens (and truncates) the stream path, so all but
  // the last point's rows would be lost — reject rather than surprise.
  WDAG_REQUIRE(args.stream_csv.empty(),
               "sweep does not support --stream-csv (each point would "
               "overwrite the file); use --csv for the sweep table");
  const std::string param = cli.get("param", "paths");
  const double from = cli.get_double("from", 8);
  const double to = cli.get_double("to", 64);
  const double step = cli.get_double("step", param == "density" ? 0.1 : 8);
  WDAG_REQUIRE(step > 0, "sweep --step must be positive");
  WDAG_REQUIRE(from <= to, "sweep needs --from <= --to");

  // One engine for the whole sweep: the pool and per-worker arenas
  // persist across points.
  wdag::Engine engine = make_engine(args, args.batch.threads);

  wdag::util::Table table(
      "sweep over --" + param + " (" + args.gen.family + ")",
      {param, "instances", "theorem1", "split-merge", "dsatur", "exact",
       "failures", "avg_load", "avg_w", "inst_per_s"});
  for (double value = from; value <= to + 1e-9; value += step) {
    auto& knobs = args.gen.params;
    if (param == "paths") knobs.paths = static_cast<std::size_t>(value);
    else if (param == "size") knobs.size = static_cast<std::size_t>(value);
    else if (param == "density") knobs.density = value;
    else if (param == "k") knobs.k = static_cast<std::size_t>(value);
    else throw wdag::InvalidArgument("unknown sweep --param '" + param + "'");

    wdag::BatchRequest request;
    request.generator = args.gen;
    request.count = args.count;
    request.options = args.batch;
    request.force_strategy = args.force;
    const BatchReport report = engine.run_batch(request);

    const double solved = static_cast<double>(report.instance_count -
                                              report.failure_count);
    std::vector<wdag::util::Cell> row;
    row.emplace_back(value);
    row.emplace_back(static_cast<long long>(report.instance_count));
    row.emplace_back(static_cast<long long>(report.count("theorem1")));
    row.emplace_back(static_cast<long long>(report.count("split-merge")));
    row.emplace_back(static_cast<long long>(report.count("dsatur")));
    row.emplace_back(static_cast<long long>(report.count("exact")));
    row.emplace_back(static_cast<long long>(report.failure_count));
    row.emplace_back(
        solved > 0 ? static_cast<double>(report.total_load) / solved : 0.0);
    row.emplace_back(
        solved > 0 ? static_cast<double>(report.total_wavelengths) / solved
                   : 0.0);
    row.emplace_back(report.instances_per_second());
    table.add_row(std::move(row));
  }
  std::cout << table;
  if (cli.has("csv")) write_output(cli.get("csv", "-"), table.to_csv());
  if (cli.has("json")) {
    write_output(cli.get("json", "-"), table.to_json_rows() + "\n");
  }
  return 0;
}

/// The ShardSpec the common flags describe (plan side).
wdag::ShardSpec spec_from_args(const CommonArgs& args) {
  wdag::ShardSpec spec;
  spec.family = args.gen.family;
  spec.params = args.gen.params;
  spec.count = args.count;
  spec.seed = args.gen.seed;
  spec.solve = args.solve;
  if (args.force.has_value()) spec.force_strategy = *args.force;
  return spec;
}

/// The full-batch request a manifest describes (run side). The request
/// carries the GLOBAL count; Engine::run_shard narrows it to the shard's
/// index range.
wdag::BatchRequest request_from_manifest(const wdag::ShardManifest& m,
                                         const BatchOptions& exec) {
  wdag::BatchRequest request;
  request.generator =
      wdag::GeneratorSpec{m.spec.family, m.spec.params, m.spec.seed};
  request.count = m.spec.count;
  request.options = exec;        // execution knobs from the command line
  request.options.seed = m.spec.seed;  // bytes are the manifest's business
  request.options.index_base = 0;
  request.options.keep_entries = false;  // shards stream; no entry table
  request.solve = m.spec.solve;
  if (!m.spec.force_strategy.empty()) {
    request.force_strategy = m.spec.force_strategy;
  }
  return request;
}

int cmd_shard_plan(const Cli& cli) {
  const CommonArgs args = read_common_args(cli, 100);
  WDAG_REQUIRE(!args.gen.family.empty(), "shard plan requires --gen NAME");
  const std::int64_t shards = cli.get_int("shards", 0);
  WDAG_REQUIRE(shards >= 1, "shard plan requires --shards K (K >= 1)");
  const std::string prefix = cli.get("out", "");
  WDAG_REQUIRE(!prefix.empty(), "shard plan requires --out PREFIX");
  const wdag::core::ShardLayout layout =
      wdag::core::parse_layout(cli.get("layout", "contiguous"));

  const wdag::ShardPlan plan(spec_from_args(args),
                             static_cast<std::size_t>(shards), layout);
  wdag::util::Table table("shard plan " + plan.spec().family + " x " +
                              std::to_string(plan.spec().count) + " (" +
                              std::string(wdag::core::layout_name(layout)) +
                              ")",
                          {"shard", "begin", "end", "manifest"});
  for (std::size_t i = 0; i < plan.shards(); ++i) {
    const wdag::ShardManifest manifest = plan.manifest(i);
    const std::string path = prefix + "." + std::to_string(i) + ".json";
    write_output(path, wdag::core::manifest_to_json(manifest) + "\n");
    table.add_row({static_cast<long long>(i),
                   static_cast<long long>(manifest.range.begin),
                   static_cast<long long>(manifest.range.end), path});
  }
  std::cout << table;
  return 0;
}

int cmd_shard_run(const Cli& cli) {
  // The manifest is the single source of truth for everything that
  // affects bytes; reject workload AND solver flags instead of silently
  // ignoring them (only execution knobs stay on the command line).
  for (const char* flag :
       {"gen", "seed", "count", "force", "exact-threshold", "exact-budget"}) {
    WDAG_REQUIRE(!cli.has(flag),
                 std::string("shard run reads the workload from the "
                             "manifest; drop --") + flag);
  }
  const std::string manifest_path = cli.get("manifest", "");
  WDAG_REQUIRE(!manifest_path.empty(), "shard run requires --manifest FILE");
  const std::string out_path = cli.get("out", "");
  WDAG_REQUIRE(!out_path.empty(), "shard run requires --out PATH ('-' = stdout)");

  std::ifstream in(manifest_path);
  WDAG_REQUIRE(in.good(),
               "cannot open shard manifest '" + manifest_path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const wdag::ShardManifest manifest = wdag::core::parse_manifest(buf.str());

  const CommonArgs exec = read_common_args(cli, 100);
  wdag::Engine engine = make_engine(exec, exec.batch.threads);
  wdag::BatchRequest request = request_from_manifest(manifest, exec.batch);

  // Fault-injection hooks for the drive test suite. Both are scoped to
  // one shard index by the driver (which forwards them only to attempt 0
  // of that shard), so a drive hits exactly one injected fault.
  if (const char* slow = std::getenv("WDAG_DRIVE_SLOW_SHARD")) {
    char* colon = nullptr;
    const unsigned long long target = std::strtoull(slow, &colon, 10);
    if (target == manifest.shard && colon != nullptr && *colon == ':') {
      const long ms = std::strtol(colon + 1, nullptr, 10);
      std::this_thread::sleep_for(std::chrono::milliseconds(ms > 0 ? ms : 0));
    }
  }
  const char* fail = std::getenv("WDAG_DRIVE_FAIL_SHARD");
  const bool inject_failure =
      fail != nullptr && std::strtoull(fail, nullptr, 10) == manifest.shard;

  // The shard CSV: the manifest as a comment line, then the same column
  // header + rows the unsharded --stream-csv run emits for this range.
  std::ofstream file;
  std::ostream* out = &std::cout;
  if (out_path != "-") {
    file.open(out_path);
    WDAG_REQUIRE(file.good(), "cannot open output file '" + out_path + "'");
    out = &file;
  }
  *out << wdag::core::shard_csv_header(manifest);
  if (inject_failure) {
    // Simulate a worker dying mid-write: a truncated (row-less) shard
    // file plus a crash-style exit code.
    *out << wdag::core::shard_csv_column_header() << "\n";
    out->flush();
    return 70;
  }
  wdag::CsvStreamSink csv(*out);
  request.sinks.push_back(&csv);

  std::ofstream json_file;
  std::optional<wdag::JsonSink> json;
  if (cli.has("json")) {
    const std::string json_path = cli.get("json", "-");
    std::ostream* json_out = &std::cout;
    if (json_path != "-") {
      json_file.open(json_path);
      WDAG_REQUIRE(json_file.good(),
                   "cannot open output file '" + json_path + "'");
      json_out = &json_file;
    }
    // The shard header here is the bare manifest object — NOT the CSV's
    // '#' comment form — so the file stays valid JSON-lines: manifest,
    // then one object per row, then the aggregate report.
    *json_out << wdag::core::manifest_to_json(manifest) << "\n";
    json.emplace(*json_out);
    request.sinks.push_back(&*json);
  }

  const BatchReport report = engine.run_shard(request, manifest.shard,
                                              manifest.shards,
                                              manifest.layout);

  if (out_path != "-" && !cli.has("quiet")) {
    // Keep stdout clean when the CSV streams to it (or --quiet asks for
    // it, as the drive workers do); otherwise summarize.
    std::cout << "shard " << manifest.shard << "/" << manifest.shards
              << " [" << manifest.range.begin << ", " << manifest.range.end
              << ") -> " << out_path << ": " << report.instance_count
              << " instances, " << report.failure_count << " failures\n";
  }
  return report.failure_count == 0 ? 0 : 1;
}

int cmd_shard_merge(const Cli& cli) {
  const std::string out_path = cli.get("out", "-");
  // positional: ["shard", "merge", file...]
  const std::vector<std::string>& pos = cli.positional();
  WDAG_REQUIRE(pos.size() > 2,
               "shard merge needs at least one shard output file argument");

  // A shard CSV opens with the '# wdag-shard' comment; a shard JSON-lines
  // file (shard run --json) opens with the bare manifest object. Peek the
  // first byte of the first file to pick the merge, instead of a flag the
  // files themselves can contradict.
  char first = '\0';
  {
    std::ifstream probe(pos[2]);
    WDAG_REQUIRE(probe.good(), "cannot open shard output '" + pos[2] + "'");
    probe.get(first);
  }

  std::string merged;
  if (first == '{') {
    std::vector<wdag::core::ShardJson> shards;
    shards.reserve(pos.size() - 2);
    for (std::size_t i = 2; i < pos.size(); ++i) {
      std::ifstream in(pos[i]);
      WDAG_REQUIRE(in.good(), "cannot open shard output '" + pos[i] + "'");
      shards.push_back(wdag::core::read_shard_json(in, pos[i]));
    }
    merged = wdag::core::merge_shard_json(shards);
  } else {
    std::vector<wdag::core::ShardCsv> shards;
    shards.reserve(pos.size() - 2);
    for (std::size_t i = 2; i < pos.size(); ++i) {
      shards.push_back(wdag::core::read_shard_csv_file(pos[i]));
    }
    merged = wdag::core::merge_shard_csv(shards);
  }
  write_output(out_path, merged);
  if (out_path != "-") {
    std::cout << "merged " << (pos.size() - 2) << " shards -> " << out_path
              << "\n";
  }
  return 0;
}

int cmd_drive(const Cli& cli) {
  const CommonArgs args = read_common_args(cli, 100);
  WDAG_REQUIRE(!args.gen.family.empty(), "drive requires --gen NAME");
  const std::int64_t shards = cli.get_int("shards", 0);
  WDAG_REQUIRE(shards >= 1, "drive requires --shards K (K >= 1)");
  const wdag::core::ShardLayout layout =
      wdag::core::parse_layout(cli.get("layout", "contiguous"));
  const wdag::ShardPlan plan(spec_from_args(args),
                             static_cast<std::size_t>(shards), layout);

  wdag::core::DriveOptions options;
  // --workers is a comma list mixing ONE local slot count (a bare
  // integer) and any number of HOST:PORT remote endpoints; '4',
  // 'h1:9100,h2:9100' and '2,h1:9100' are all valid.
  {
    const std::string spec = cli.get("workers", "0");
    std::size_t begin = 0;
    bool saw_local = false;
    while (begin <= spec.size()) {
      const std::size_t comma = spec.find(',', begin);
      const std::string token = spec.substr(
          begin, comma == std::string::npos ? std::string::npos
                                            : comma - begin);
      if (!token.empty()) {
        if (token.find(':') != std::string::npos) {
          // Parsed strictly right away: a typo should die as a usage
          // error here, not as a dial failure mid-drive.
          (void)wdag::core::TcpTransport::parse_endpoint(token);
          options.remote_workers.push_back(token);
        } else {
          WDAG_REQUIRE(
              token.find_first_not_of("0123456789") == std::string::npos,
              "--workers: '" + token +
                  "' is neither a slot count nor a HOST:PORT endpoint");
          WDAG_REQUIRE(!saw_local,
                       "--workers: more than one local slot count in '" +
                           spec + "'");
          saw_local = true;
          options.workers = static_cast<std::size_t>(
              std::strtoull(token.c_str(), nullptr, 10));
        }
      }
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
  }
  const std::int64_t connect_timeout = cli.get_int("connect-timeout-ms", 1000);
  WDAG_REQUIRE(connect_timeout >= 1, "--connect-timeout-ms must be >= 1");
  options.connect_timeout_ms = static_cast<int>(connect_timeout);
  options.probe_interval_seconds = cli.get_double("probe-interval", 2.0);
  WDAG_REQUIRE(options.probe_interval_seconds > 0.0,
               "--probe-interval must be > 0 seconds");
  const std::int64_t probe_timeout = cli.get_int("probe-timeout-ms", 500);
  WDAG_REQUIRE(probe_timeout >= 1, "--probe-timeout-ms must be >= 1");
  options.probe_timeout_ms = static_cast<int>(probe_timeout);
  const std::int64_t miss_budget = cli.get_int("probe-miss-budget", 3);
  WDAG_REQUIRE(miss_budget >= 1, "--probe-miss-budget must be >= 1");
  options.probe_miss_budget = static_cast<std::size_t>(miss_budget);
  const std::int64_t retries = cli.get_int("max-retries", 2);
  WDAG_REQUIRE(retries >= 0, "--max-retries must be >= 0, got " +
                                 std::to_string(retries));
  options.max_retries = static_cast<std::size_t>(retries);
  // Numeric schedule knobs are rejected HERE, at parse time, with a
  // usage error — a negative timeout/backoff/speculate would otherwise
  // surface as an internal drive failure long after parsing.
  options.timeout_seconds = cli.get_double("timeout", 0.0);
  WDAG_REQUIRE(options.timeout_seconds >= 0.0,
               "--timeout must be >= 0 seconds (0 = off)");
  options.backoff_seconds = cli.get_double("backoff", 0.25);
  WDAG_REQUIRE(options.backoff_seconds >= 0.0,
               "--backoff must be >= 0 seconds");
  options.speculate_factor = cli.get_double("speculate", 0.0);
  WDAG_REQUIRE(options.speculate_factor >= 0.0,
               "--speculate must be >= 0 (0 = off)");
  const std::int64_t fail_fast = cli.get_int("fail-fast", 8);
  WDAG_REQUIRE(fail_fast >= 0, "--fail-fast must be >= 0 (0 = off), got " +
                                   std::to_string(fail_fast));
  options.fail_fast = static_cast<std::size_t>(fail_fast);
  options.resume = cli.has("resume");
  options.worker_threads = args.batch.threads;
  options.worker_schedule = args.batch.schedule;
  options.keep_outputs = cli.has("keep-work");

  options.work_dir = cli.get("work-dir", "");
  WDAG_REQUIRE(!options.work_dir.empty(), "drive requires --work-dir DIR");
  std::filesystem::create_directories(options.work_dir);

  options.wdag_binary = cli.get("wdag-bin", "");
  if (options.wdag_binary.empty()) {
    // The workers run this very binary; /proc/self/exe survives PATH-less
    // invocations and cwd changes, argv[0] is the portable fallback.
    std::error_code ec;
    const std::filesystem::path self =
        std::filesystem::read_symlink("/proc/self/exe", ec);
    options.wdag_binary = ec ? cli.program() : self.string();
  }

  // --events: one JSON line per lifecycle event, as they happen.
  std::ofstream events_file;
  std::ostream* events_out = nullptr;
  if (cli.has("events")) {
    const std::string events_path = cli.get("events", "-");
    if (events_path == "-") {
      events_out = &std::cerr;
    } else {
      // Append, never truncate: a resumed drive's log continues the
      // crashed run's, and the per-line flush below means the tail
      // survives a crash — exactly when the log matters.
      events_file.open(events_path, std::ios::app);
      WDAG_REQUIRE(events_file.good(),
                   "cannot open events file '" + events_path + "'");
      events_out = &events_file;
    }
  }
  wdag::core::DriveEventFn on_event;
  if (events_out != nullptr) {
    on_event = [events_out](const wdag::core::DriveEvent& ev) {
      *events_out << ev.to_json() << "\n";
      events_out->flush();  // the log must survive a killed/failed drive
    };
  }

  const std::string out_path = cli.get("out", "-");
  std::ofstream file;
  std::ostream* out = &std::cout;
  if (out_path != "-") {
    file.open(out_path);
    WDAG_REQUIRE(file.good(), "cannot open output file '" + out_path + "'");
    out = &file;
  }

  wdag::core::DriveReport report;
  try {
    report = wdag::core::drive(plan, options, *out, on_event);
  } catch (const wdag::core::DriveInterrupted& e) {
    // Graceful shutdown: the work dir is resumable; exit like a shell
    // child killed by the signal so wrappers see the interruption.
    std::cerr << "wdag: " << e.what() << "\n";
    return 128 + e.signal();
  }

  // Keep stdout clean when the merged CSV streamed to it.
  std::ostream& info = out_path == "-" ? std::cerr : std::cout;
  if (cli.has("progress")) info << report.progress_table();
  info << "drive: " << plan.shards() << " shards ("
       << wdag::core::layout_name(plan.layout()) << ") -> " << out_path
       << ": " << report.retries << " retries, " << report.speculations
       << " speculations, " << report.resumed << " resumed, "
       << report.redispatches << " redispatches, " << report.wall_seconds
       << "s\n";
  return 0;
}

// SIGINT/SIGTERM flag of `wdag worker` (the serve pattern: flip a flag,
// the accept loop polls it every tick and exits cleanly).
volatile std::sig_atomic_t g_worker_stop = 0;

void worker_signal_handler(int) { g_worker_stop = 1; }

int cmd_worker(const Cli& cli) {
  wdag::remote::ShardWorkerOptions options;
  options.host = cli.get("host", "127.0.0.1");
  const std::int64_t port = cli.get_int("port", 0);
  WDAG_REQUIRE(port >= 0 && port <= 65535,
               "--port must be in [0, 65535] (0 = ephemeral), got " +
                   std::to_string(port));
  options.port = static_cast<std::uint16_t>(port);
  const std::int64_t threads = cli.get_int("threads", 0);
  WDAG_REQUIRE(threads >= 0,
               "--threads must be >= 0 (0 = hardware concurrency), got " +
                   std::to_string(threads));
  options.engine_threads = static_cast<std::size_t>(threads);
  const std::string schedule = cli.get("schedule", "fixed");
  if (schedule == "stealing") {
    options.schedule = wdag::core::Schedule::kStealing;
  } else {
    WDAG_REQUIRE(schedule == "fixed",
                 "--schedule must be 'fixed' or 'stealing', got '" +
                     schedule + "'");
  }
  options.idle_timeout_ms = cli.get_double("idle-timeout-ms", 0.0);
  WDAG_REQUIRE(options.idle_timeout_ms >= 0.0,
               "--idle-timeout-ms must be >= 0 (0 = never)");
  options.hooks = wdag::remote::ShardWorkerHooks::from_env();

  g_worker_stop = 0;
  std::signal(SIGINT, worker_signal_handler);
  std::signal(SIGTERM, worker_signal_handler);
  options.external_stop = [] { return g_worker_stop != 0; };

  const std::string host = options.host;
  wdag::remote::ShardWorker worker(std::move(options));
  if (cli.has("port-file")) {
    // Write-then-rename so a script that saw the file appear never reads
    // a half-written port number.
    const std::string path = cli.get("port-file", "");
    WDAG_REQUIRE(!path.empty(), "--port-file requires a path");
    const std::string tmp = path + ".tmp";
    write_output(tmp, std::to_string(worker.port()) + "\n");
    std::filesystem::rename(tmp, path);
  }
  std::cout << "wdag worker: listening on " << host << ":" << worker.port()
            << std::endl;
  worker.run();
  std::cout << "wdag worker: stopped (" << worker.shards_served()
            << " shards served, " << worker.shards_failed() << " failed, "
            << worker.pings_answered() << " pings)" << std::endl;
  return 0;
}

// SIGINT/SIGTERM flag of `wdag serve` (the PR 7 drive pattern): the
// handler only flips the flag; the accept loop polls it every tick and
// then DRAINS — in-flight and admitted work completes, new work is
// refused, and serve exits 0. Contrast with drive, which exits
// 128+signal: a served drain is the intended shutdown, not an abort.
volatile std::sig_atomic_t g_serve_stop = 0;

void serve_signal_handler(int) { g_serve_stop = 1; }

int cmd_serve(const Cli& cli) {
  wdag::ServeOptions options;
  options.host = cli.get("host", "127.0.0.1");
  const std::int64_t port = cli.get_int("port", 0);
  WDAG_REQUIRE(port >= 0 && port <= 65535,
               "--port must be in [0, 65535] (0 = ephemeral), got " +
                   std::to_string(port));
  options.port = static_cast<std::uint16_t>(port);
  const std::int64_t queue = cli.get_int("queue", 64);
  WDAG_REQUIRE(queue >= 1, "--queue must be >= 1, got " +
                               std::to_string(queue));
  options.queue_capacity = static_cast<std::size_t>(queue);
  options.default_deadline_ms = cli.get_double("deadline-ms", 0.0);
  WDAG_REQUIRE(options.default_deadline_ms >= 0.0,
               "--deadline-ms must be >= 0 (0 = none)");
  const std::int64_t threads = cli.get_int("threads", 0);
  WDAG_REQUIRE(threads >= 0,
               "--threads must be >= 0 (0 = hardware concurrency), got " +
                   std::to_string(threads));
  options.engine_threads = static_cast<std::size_t>(threads);
  const std::int64_t max_connections = cli.get_int("max-connections", 0);
  WDAG_REQUIRE(max_connections >= 0,
               "--max-connections must be >= 0 (0 = unlimited), got " +
                   std::to_string(max_connections));
  options.max_connections = static_cast<std::size_t>(max_connections);
  options.idle_timeout_ms = cli.get_double("idle-timeout-ms", 0.0);
  WDAG_REQUIRE(options.idle_timeout_ms >= 0.0,
               "--idle-timeout-ms must be >= 0 (0 = never)");
  options.solve.exact_threshold =
      static_cast<std::size_t>(cli.get_int("exact-threshold", 48));
  options.solve.exact_node_budget =
      static_cast<std::size_t>(cli.get_int("exact-budget", 20'000'000));
  options.enable_test_hooks =
      std::getenv("WDAG_SERVE_TEST_HOOKS") != nullptr;

  g_serve_stop = 0;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  options.external_stop = [] { return g_serve_stop != 0; };

  const std::string host = options.host;
  const std::size_t capacity = options.queue_capacity;
  wdag::Server server(std::move(options));
  if (cli.has("port-file")) {
    // Write-then-rename so a script that saw the file appear never reads
    // a half-written port number.
    const std::string path = cli.get("port-file", "");
    WDAG_REQUIRE(!path.empty(), "--port-file requires a path");
    const std::string tmp = path + ".tmp";
    write_output(tmp, std::to_string(server.port()) + "\n");
    std::filesystem::rename(tmp, path);
  }
  std::cout << "wdag serve: listening on " << host << ":" << server.port()
            << " (queue " << capacity << ")" << std::endl;
  server.run();
  std::cout << "wdag serve: drained and stopped ("
            << server.stats().solved() << " solves, "
            << server.stats().batches() << " batches, "
            << (server.stats().rejected_queue_full() +
                server.stats().rejected_deadline() +
                server.stats().rejected_shutdown())
            << " rejected)" << std::endl;
  return 0;
}

int cmd_request(const Cli& cli) {
  const std::string host = cli.get("host", "127.0.0.1");
  const std::int64_t port = cli.get_int("port", 0);
  WDAG_REQUIRE(port >= 1 && port <= 65535,
               "request requires --port P (1..65535)");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms", 30'000);
  WDAG_REQUIRE(timeout_ms >= 1, "--timeout-ms must be >= 1, got " +
                                    std::to_string(timeout_ms));

  std::string line;
  if (cli.has("req-file")) {
    const std::string path = cli.get("req-file", "");
    std::ifstream in(path);
    WDAG_REQUIRE(in.good(), "cannot open request file '" + path + "'");
    while (std::getline(in, line) && line.empty()) {
    }
    WDAG_REQUIRE(!line.empty(),
                 "request file '" + path + "' has no request line");
    // Parse locally first so a malformed file fails here with a usage
    // error, not as a served 'error' response.
    (void)wdag::serve::parse_request(line);
  } else {
    wdag::serve::WireRequest request;
    const std::string type = cli.get("type", "solve");
    if (type == "solve") request.kind = wdag::serve::RequestKind::kSolve;
    else if (type == "batch") request.kind = wdag::serve::RequestKind::kBatch;
    else if (type == "stats") request.kind = wdag::serve::RequestKind::kStats;
    else if (type == "sleep") request.kind = wdag::serve::RequestKind::kSleep;
    else throw wdag::InvalidArgument("--type must be solve | batch | stats, got '" +
                                     type + "'");
    request.id = cli.get("id", "");
    request.deadline_ms = cli.get_double("deadline-ms", 0.0);
    WDAG_REQUIRE(request.deadline_ms >= 0.0,
                 "--deadline-ms must be >= 0 (0 = none)");
    if (request.kind == wdag::serve::RequestKind::kSolve ||
        request.kind == wdag::serve::RequestKind::kBatch) {
      const CommonArgs args = read_common_args(cli, 100);
      WDAG_REQUIRE(!args.gen.family.empty(),
                   "request --type " + type + " requires --gen NAME");
      request.gen = args.gen;
      request.count = args.count;
      request.force = args.force;
      if (cli.has("exact-threshold") || cli.has("exact-budget")) {
        request.solve = args.solve;
      }
    } else if (request.kind == wdag::serve::RequestKind::kSleep) {
      request.sleep_ms = cli.get_double("millis", 0.0);
    }
    line = wdag::serve::request_to_json(request);
  }

  const std::string response = wdag::serve::request_once(
      host, static_cast<std::uint16_t>(port), line,
      static_cast<int>(timeout_ms));
  std::cout << response << "\n";
  const wdag::serve::WireReply reply = wdag::serve::parse_reply(response);
  if (reply.status == "ok") return 0;
  if (reply.status == "rejected") return 3;
  return 4;
}

int cmd_shard(const Cli& cli) {
  const std::vector<std::string>& pos = cli.positional();
  if (pos.size() < 2) {
    std::cerr << "shard needs a subcommand: plan | run | merge\n";
    return usage(std::cerr);
  }
  const std::string& sub = pos[1];
  if (sub == "plan") return cmd_shard_plan(cli);
  if (sub == "run") return cmd_shard_run(cli);
  if (sub == "merge") return cmd_shard_merge(cli);
  std::cerr << "unknown shard subcommand '" << sub << "'\n";
  return usage(std::cerr);
}

}  // namespace

int main(int argc, char** argv) {
  // Process-wide, before anything can write to a socket or pipe: a peer
  // that disappears mid-write must surface as a failed write, never kill
  // the process (regression-tested by serve_sigpipe).
  wdag::util::ignore_sigpipe();
  try {
    const Cli cli(argc, argv);
    if (cli.has("help")) {
      usage(std::cout);
      return 0;
    }
    if (cli.has("version")) {
      // active_tier() resolves the SIMD dispatch (and validates
      // WDAG_FORCE_ISA, exiting via the catch below when it names an
      // unknown or unreachable tier) — so `WDAG_FORCE_ISA=x wdag
      // --version` doubles as the reachability probe CI loops over.
      // Resolve BEFORE streaming so a rejected override never leaves a
      // half-printed version line on stdout.
      const char* tier =
          wdag::util::simd::tier_name(wdag::util::simd::active_tier());
      std::cout << wdag::util::build_info_line() << " [simd: " << tier
                << "]\n";
      return 0;
    }
    if (cli.positional().empty()) return usage(std::cerr);
    const std::string& command = cli.positional().front();
    if (command == "solve") return cmd_solve(cli);
    if (command == "batch") return cmd_batch(cli);
    if (command == "sweep") return cmd_sweep(cli);
    if (command == "shard") return cmd_shard(cli);
    if (command == "drive") return cmd_drive(cli);
    if (command == "worker") return cmd_worker(cli);
    if (command == "serve") return cmd_serve(cli);
    if (command == "request") return cmd_request(cli);
    std::cerr << "unknown command '" << command << "'\n";
    return usage(std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "wdag: " << e.what() << "\n";
    return 2;
  }
}
