// The wdag command-line driver.
//
//   wdag solve  — build (or load) one instance, solve it, print the verdict
//   wdag batch  — fan a generated workload out over the thread pool and
//                 report the dispatch histogram, latency percentiles and
//                 throughput; optionally stream per-instance CSV / JSON
//   wdag sweep  — run a batch per point of a parameter range and print one
//                 summary row per point
//
// Every generated workload is a deterministic function of --seed: the batch
// engine seeds each chunk independently, so identical seeds give identical
// CSV output no matter how many threads run the batch.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/solver.hpp"
#include "dag/classify.hpp"
#include "gen/instance.hpp"
#include "gen/workloads.hpp"
#include "paths/familyio.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using wdag::core::BatchOptions;
using wdag::core::BatchReport;
using wdag::core::Method;
using wdag::core::SolveOptions;
using wdag::gen::Instance;
using wdag::util::Cli;
using wdag::util::Xoshiro256;

int usage(std::ostream& os) {
  os << "wdag — wavelength assignment on DAGs (Bermond & Coudert)\n"
        "\n"
        "usage:\n"
        "  wdag solve --gen NAME [generator flags] [solver flags]\n"
        "  wdag solve --file INSTANCE.txt [solver flags]\n"
        "  wdag batch --gen NAME --count N [--threads T] [--seed S]\n"
        "             [--csv PATH|-] [--json PATH|-] [--rows]\n"
        "  wdag sweep --gen NAME --count N --param NAME --from A --to B\n"
        "             [--step S] [--threads T] [--seed S]\n"
        "\n"
        "generators (--gen):\n"
        "  random-upp   mixed random UPP workload: trees, one- and\n"
        "               multi-cycle skeletons, odd-cycle gadgets\n"
        "               (--k, --run-len, --chain, --paths, --size)\n"
        "  random-dag   random DAG + random walks (--size, --density, --paths)\n"
        "  no-internal  random DAG repaired to zero internal cycles\n"
        "               (--size, --density, --paths)\n"
        "  layered      layered DAG + random walks (--layers, --width-l,\n"
        "               --density, --paths)\n"
        "  tree         random out-tree + random requests (--size, --paths)\n"
        "  grid         rows x cols grid + random requests (--rows-g, --cols,\n"
        "               --paths)\n"
        "  butterfly    k-dimensional butterfly + random requests (--dim,\n"
        "               --paths)\n"
        "  fat-chain    stage chain with fiber bundles + random walks\n"
        "               (--stages, --width-l, --paths)\n"
        "  spine        spine with leaves + random requests (--size, --paths)\n"
        "  odd-cycle    Theorem 2 gadget, conflict graph C_{2k+1} (--k)\n"
        "  c5 | c7      odd-cycle with k=2 / k=3\n"
        "  figure1      Figure 1 pathological family (--k)\n"
        "  figure3      Figure 3 instance (pi=2, w=3)\n"
        "  havet        Theorem 7 / Wagner-graph instance (--h replication)\n"
        "\n"
        "solver flags:\n"
        "  --exact-threshold N   exact certification cutoff (default 48)\n"
        "  --exact-budget N      exact solver node budget\n"
        "  --force METHOD        theorem1 | split-merge | dsatur | exact\n"
        "\n"
        "batch flags:\n"
        "  --count N      instances in the batch (default 100)\n"
        "  --threads T    worker threads, 0 = hardware (default 0)\n"
        "  --chunk C      instances per deterministic chunk (default 16)\n"
        "  --seed S       base seed (default 1)\n"
        "  --csv PATH     write per-instance rows as CSV ('-' = stdout);\n"
        "                 deterministic for a fixed seed\n"
        "  --stream-csv PATH   stream the same CSV as chunks finish, at\n"
        "                 near-constant memory (million-instance sweeps);\n"
        "                 byte-identical to --csv for a fixed seed\n"
        "  --json PATH    write the aggregate report as JSON ('-' = stdout)\n"
        "  --rows         also print the per-instance table to stdout\n"
        "\n"
        "sweep flags:\n"
        "  --param NAME   paths | size | density | k (generator knob to vary)\n"
        "  --from A --to B --step S   inclusive range of the parameter\n";
  return 2;
}

/// The generator family name plus its knobs, read once from the CLI.
struct GenParams {
  std::string name;
  wdag::gen::WorkloadParams knobs;
};

/// Rejects unknown --gen names up front, before a batch fans out and
/// records the same error once per instance.
void require_known_workload(const std::string& name) {
  const auto& names = wdag::gen::workload_names();
  if (std::find(names.begin(), names.end(), name) == names.end()) {
    throw wdag::InvalidArgument("unknown generator '" + name +
                                "' (see `wdag --help` for the list)");
  }
}

GenParams read_gen_params(const Cli& cli) {
  GenParams g;
  g.name = cli.get("gen", "");
  auto& p = g.knobs;
  p.paths = static_cast<std::size_t>(cli.get_int("paths", 32));
  p.size = static_cast<std::size_t>(cli.get_int("size", 24));
  p.density = cli.get_double("density", 0.2);
  p.k = static_cast<std::size_t>(cli.get_int("k", 3));
  p.run_len = static_cast<std::size_t>(cli.get_int("run-len", 1));
  p.chain = static_cast<std::size_t>(cli.get_int("chain", 1));
  p.layers = static_cast<std::size_t>(cli.get_int("layers", 5));
  p.width = static_cast<std::size_t>(cli.get_int("width-l", 4));
  p.rows = static_cast<std::size_t>(cli.get_int("rows-g", 4));
  p.cols = static_cast<std::size_t>(cli.get_int("cols", 6));
  p.dim = static_cast<std::size_t>(cli.get_int("dim", 3));
  p.stages = static_cast<std::size_t>(cli.get_int("stages", 4));
  p.h = static_cast<std::size_t>(cli.get_int("h", 2));
  return g;
}

/// Builds one instance of the named family from `rng` (gen/workloads.hpp;
/// paper instances ignore the RNG, random families consume it).
Instance make_instance(const GenParams& g, Xoshiro256& rng) {
  return wdag::gen::workload_instance(g.name, g.knobs, rng);
}

SolveOptions read_solve_options(const Cli& cli) {
  SolveOptions opt;
  opt.exact_threshold =
      static_cast<std::size_t>(cli.get_int("exact-threshold", 48));
  opt.exact_node_budget =
      static_cast<std::size_t>(cli.get_int("exact-budget", 20'000'000));
  if (cli.has("force")) {
    const std::string f = cli.get("force", "");
    if (f == "theorem1") opt.force = Method::kTheorem1;
    else if (f == "split-merge") opt.force = Method::kSplitMerge;
    else if (f == "dsatur") opt.force = Method::kDsatur;
    else if (f == "exact") opt.force = Method::kExact;
    else throw wdag::InvalidArgument("unknown --force method '" + f + "'");
  }
  return opt;
}

BatchOptions read_batch_options(const Cli& cli) {
  BatchOptions opt;
  opt.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  opt.chunk = static_cast<std::size_t>(cli.get_int("chunk", 16));
  opt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  if (cli.has("stream-csv")) {
    opt.stream_csv = cli.get("stream-csv", "-");
    // Streaming exists for constant-memory sweeps; do not also hold the
    // per-instance entries unless another flag needs them.
    opt.keep_entries = cli.has("rows") || cli.has("csv");
  }
  return opt;
}

/// Writes `text` to the path, with '-' meaning stdout.
void write_output(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return;
  }
  std::ofstream out(path);
  WDAG_REQUIRE(out.good(), "cannot open output file '" + path + "'");
  out << text;
}

int cmd_solve(const Cli& cli) {
  const SolveOptions solve_options = read_solve_options(cli);
  Instance inst;
  if (cli.has("file")) {
    const std::string path = cli.get("file", "");
    std::ifstream in(path);
    WDAG_REQUIRE(in.good(), "cannot open instance file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = wdag::paths::parse_instance_text(buf.str());
    inst.graph = parsed.graph;
    inst.family = std::move(parsed.family);
  } else {
    Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
    inst = make_instance(read_gen_params(cli), rng);
  }

  const auto result = wdag::core::solve(inst.family, solve_options);
  std::cout << wdag::dag::report_to_string(result.report) << "\n";
  wdag::util::Table verdict("solve verdict",
                            {"method", "paths", "load", "wavelengths",
                             "optimal"});
  verdict.add_row({wdag::core::method_name(result.method),
                   static_cast<long long>(inst.family.size()),
                   static_cast<long long>(result.load),
                   static_cast<long long>(result.wavelengths),
                   static_cast<long long>(result.optimal ? 1 : 0)});
  std::cout << verdict;
  if (cli.has("show-coloring")) {
    std::cout << "coloring:";
    for (const auto c : result.coloring) std::cout << ' ' << c;
    std::cout << "\n";
  }
  if (cli.has("dump")) {
    std::cout << wdag::paths::to_instance_text(inst.family);
  }
  return 0;
}

int cmd_batch(const Cli& cli) {
  const GenParams params = read_gen_params(cli);
  WDAG_REQUIRE(!params.name.empty(), "batch requires --gen NAME");
  require_known_workload(params.name);
  const SolveOptions solve_options = read_solve_options(cli);
  const BatchOptions batch_options = read_batch_options(cli);
  const std::size_t count =
      static_cast<std::size_t>(cli.get_int("count", 100));

  const BatchReport report = wdag::core::solve_generated_batch(
      count,
      [&params](Xoshiro256& rng, std::size_t) {
        return make_instance(params, rng);
      },
      solve_options, batch_options);

  if (cli.has("rows")) std::cout << report.rows_table();
  std::cout << report.histogram_table();
  wdag::util::Table summary(
      "batch summary",
      {"instances", "failures", "optimal", "wall_s", "inst_per_s", "p50_ms",
       "p99_ms"});
  summary.add_row({static_cast<long long>(report.instance_count),
                   static_cast<long long>(report.failure_count),
                   static_cast<long long>(report.optimal_count),
                   report.wall_seconds, report.instances_per_second(),
                   report.latency.p50, report.latency.p99});
  std::cout << summary;

  if (cli.has("csv")) {
    write_output(cli.get("csv", "-"),
                 report.rows_table(/*with_latency=*/false).to_csv());
  }
  if (cli.has("json")) {
    write_output(cli.get("json", "-"), report.to_json() + "\n");
  }
  return report.failure_count == 0 ? 0 : 1;
}

int cmd_sweep(const Cli& cli) {
  GenParams params = read_gen_params(cli);
  WDAG_REQUIRE(!params.name.empty(), "sweep requires --gen NAME");
  require_known_workload(params.name);
  const SolveOptions solve_options = read_solve_options(cli);
  const BatchOptions batch_options = read_batch_options(cli);
  // Each sweep point opens (and truncates) the stream path, so all but
  // the last point's rows would be lost — reject rather than surprise.
  WDAG_REQUIRE(batch_options.stream_csv.empty(),
               "sweep does not support --stream-csv (each point would "
               "overwrite the file); use --csv for the sweep table");
  const std::size_t count = static_cast<std::size_t>(cli.get_int("count", 64));
  const std::string param = cli.get("param", "paths");
  const double from = cli.get_double("from", 8);
  const double to = cli.get_double("to", 64);
  const double step = cli.get_double("step", param == "density" ? 0.1 : 8);
  WDAG_REQUIRE(step > 0, "sweep --step must be positive");
  WDAG_REQUIRE(from <= to, "sweep needs --from <= --to");

  wdag::util::Table table(
      "sweep over --" + param + " (" + params.name + ")",
      {param, "instances", "theorem1", "split-merge", "dsatur", "exact",
       "failures", "avg_load", "avg_w", "inst_per_s"});
  for (double value = from; value <= to + 1e-9; value += step) {
    if (param == "paths") params.knobs.paths = static_cast<std::size_t>(value);
    else if (param == "size") params.knobs.size = static_cast<std::size_t>(value);
    else if (param == "density") params.knobs.density = value;
    else if (param == "k") params.knobs.k = static_cast<std::size_t>(value);
    else throw wdag::InvalidArgument("unknown sweep --param '" + param + "'");

    const BatchReport report = wdag::core::solve_generated_batch(
        count,
        [&params](Xoshiro256& rng, std::size_t) {
          return make_instance(params, rng);
        },
        solve_options, batch_options);
    const double solved = static_cast<double>(report.instance_count -
                                              report.failure_count);
    std::vector<wdag::util::Cell> row;
    row.emplace_back(value);
    row.emplace_back(static_cast<long long>(report.instance_count));
    row.emplace_back(static_cast<long long>(report.count(Method::kTheorem1)));
    row.emplace_back(
        static_cast<long long>(report.count(Method::kSplitMerge)));
    row.emplace_back(static_cast<long long>(report.count(Method::kDsatur)));
    row.emplace_back(static_cast<long long>(report.count(Method::kExact)));
    row.emplace_back(static_cast<long long>(report.failure_count));
    row.emplace_back(
        solved > 0 ? static_cast<double>(report.total_load) / solved : 0.0);
    row.emplace_back(
        solved > 0 ? static_cast<double>(report.total_wavelengths) / solved
                   : 0.0);
    row.emplace_back(report.instances_per_second());
    table.add_row(std::move(row));
  }
  std::cout << table;
  if (cli.has("csv")) write_output(cli.get("csv", "-"), table.to_csv());
  if (cli.has("json")) {
    write_output(cli.get("json", "-"), table.to_json_rows() + "\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Cli cli(argc, argv);
    if (cli.has("help")) {
      usage(std::cout);
      return 0;
    }
    if (cli.positional().empty()) return usage(std::cerr);
    const std::string& command = cli.positional().front();
    if (command == "solve") return cmd_solve(cli);
    if (command == "batch") return cmd_batch(cli);
    if (command == "sweep") return cmd_sweep(cli);
    std::cerr << "unknown command '" << command << "'\n";
    return usage(std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "wdag: " << e.what() << "\n";
    return 2;
  }
}
