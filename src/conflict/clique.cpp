#include "conflict/clique.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wdag::conflict {

namespace {

using util::DynamicBitset;

/// Greedy coloring of the candidate set; returns for each candidate (in a
/// branching-friendly order) the color index + 1 as an upper bound on the
/// clique extension possible within the candidates up to that point.
void color_sort(const ConflictGraph& cg, const DynamicBitset& cand,
                std::vector<std::size_t>& order, std::vector<std::size_t>& bound) {
  order.clear();
  bound.clear();
  std::vector<DynamicBitset> classes;  // independent sets
  for (std::size_t v = cand.find_first(); v < cg.size();
       v = cand.find_next(v)) {
    bool placed = false;
    for (std::size_t k = 0; k < classes.size() && !placed; ++k) {
      if (!classes[k].intersects(cg.neighbors(v))) {
        classes[k].set(v);  // no neighbor of v in class k: stays independent
        placed = true;
      }
    }
    if (!placed) {
      classes.emplace_back(cg.size());
      classes.back().set(v);
    }
  }
  for (std::size_t k = 0; k < classes.size(); ++k) {
    for (std::size_t v = classes[k].find_first(); v < cg.size();
         v = classes[k].find_next(v)) {
      order.push_back(v);
      bound.push_back(k + 1);
    }
  }
}

struct CliqueSearch {
  const ConflictGraph& cg;
  std::vector<std::size_t> best;
  std::vector<std::size_t> current;

  void expand(const DynamicBitset& cand) {
    std::vector<std::size_t> order, bound;
    color_sort(cg, cand, order, bound);
    for (std::size_t i = order.size(); i-- > 0;) {
      if (current.size() + bound[i] <= best.size()) return;  // pruned
      const std::size_t v = order[i];
      current.push_back(v);
      DynamicBitset next = cand;
      next &= cg.neighbors(v);
      // Restrict to candidates earlier in the color order to avoid
      // revisiting: clear v and all later-visited vertices.
      for (std::size_t j = i; j < order.size(); ++j) next.reset(order[j]);
      if (next.none()) {
        if (current.size() > best.size()) best = current;
      } else {
        expand(next);
      }
      current.pop_back();
    }
  }
};

}  // namespace

std::vector<std::size_t> greedy_clique(const ConflictGraph& cg) {
  const std::size_t n = cg.size();
  std::vector<std::size_t> best;
  std::vector<std::size_t> verts(n);
  for (std::size_t i = 0; i < n; ++i) verts[i] = i;
  std::sort(verts.begin(), verts.end(), [&](std::size_t a, std::size_t b) {
    return cg.degree(a) > cg.degree(b);
  });
  for (std::size_t seed : verts) {
    std::vector<std::size_t> clique = {seed};
    DynamicBitset cand(cg.neighbors(seed));
    for (std::size_t v = cand.find_first(); v < n; v = cand.find_next(v)) {
      bool ok = true;
      for (std::size_t u : clique) {
        if (!cg.adjacent(u, v)) {
          ok = false;
          break;
        }
      }
      if (ok) clique.push_back(v);
    }
    if (clique.size() > best.size()) best = clique;
  }
  return best;
}

std::vector<std::size_t> max_clique(const ConflictGraph& cg) {
  if (cg.size() == 0) return {};
  CliqueSearch search{cg, greedy_clique(cg), {}};
  DynamicBitset all(cg.size());
  all.set_all();
  search.expand(all);
  WDAG_ASSERT(is_clique(cg, search.best), "max_clique: result is not a clique");
  return search.best;
}

std::size_t clique_number(const ConflictGraph& cg) {
  return max_clique(cg).size();
}

bool is_clique(const ConflictGraph& cg, const std::vector<std::size_t>& vs) {
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t j = i + 1; j < vs.size(); ++j) {
      if (!cg.adjacent(vs[i], vs[j])) return false;
    }
  }
  return true;
}

}  // namespace wdag::conflict
