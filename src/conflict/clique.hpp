#pragma once
// Max-clique search on conflict graphs.
//
// pi(G,P) is always a lower bound on the clique number (the pi dipaths
// through a max-load arc are pairwise in conflict); Property 3 upgrades
// this to equality on UPP-DAGs. The exact solver below lets the benches
// verify that equality empirically.

#include <vector>

#include "conflict/conflict_graph.hpp"

namespace wdag::conflict {

/// A greedy clique (lower bound): grow from each vertex by highest degree.
std::vector<std::size_t> greedy_clique(const ConflictGraph& cg);

/// Exact maximum clique via Tomita-style branch and bound with greedy
/// coloring upper bounds. Exponential worst case; intended for the
/// conflict-graph sizes used in tests and benches (hundreds of vertices).
std::vector<std::size_t> max_clique(const ConflictGraph& cg);

/// Size of a maximum clique.
std::size_t clique_number(const ConflictGraph& cg);

/// True when `vs` is a clique of cg.
bool is_clique(const ConflictGraph& cg, const std::vector<std::size_t>& vs);

}  // namespace wdag::conflict
