#include "conflict/coloring.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace wdag::conflict {

namespace {

constexpr std::uint32_t kUncolored = UINT32_MAX;
constexpr std::uint32_t kNoEntry = UINT32_MAX;

/// Lazy-deletion entry of the DSATUR saturation queue.
struct SatEntry {
  std::uint32_t sat;
  std::uint32_t deg;
  std::uint32_t v;
};

/// Max-heap order: higher saturation first, then higher degree, then lower
/// vertex id — exactly the scalar argmax's tie-breaking.
bool operator<(const SatEntry& a, const SatEntry& b) {
  if (a.sat != b.sat) return a.sat < b.sat;
  if (a.deg != b.deg) return a.deg < b.deg;
  return a.v > b.v;
}

/// Reusable buffers for the coloring kernels and validators. One instance
/// per thread, so batch workers sweep a whole chunk of instances through
/// the hot path without reallocating.
struct Scratch {
  util::DynamicBitset color_mask;        ///< first-fit neighbor-color mask
  std::vector<std::uint32_t> stamps;     ///< color -> remap / group stamp
  std::vector<std::uint32_t> offsets;    ///< CSR arc incidence
  std::vector<paths::PathId> ids;
  std::vector<std::uint32_t> sorted;     ///< fallback for sparse color ids
  std::vector<std::uint64_t> sat_words;  ///< flat DSATUR saturation masks
  std::vector<std::uint32_t> sat_count;
  std::vector<SatEntry> heap;
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

std::uint32_t max_color_of(const Coloring& c) {
  std::uint32_t m = 0;
  for (const auto col : c) m = std::max(m, col);
  return m;
}

/// Flat color-indexed tables are only worth it while ids stay near-dense;
/// adversarially sparse ids (e.g. {0, 4'000'000'000}) fall back to
/// sorting so no call allocates O(max_id) memory.
bool ids_near_dense(std::uint32_t max_color, std::size_t n) {
  return static_cast<std::size_t>(max_color) <= 4 * n + 1024;
}

}  // namespace

std::size_t num_colors(const Coloring& c) {
  if (c.empty()) return 0;
  const std::uint32_t maxc = max_color_of(c);
  Scratch& s = scratch();
  if (ids_near_dense(maxc, c.size())) {
    s.stamps.assign(static_cast<std::size_t>(maxc) + 1, 0);
    std::size_t distinct = 0;
    for (const auto col : c) {
      if (s.stamps[col] == 0) {
        s.stamps[col] = 1;
        ++distinct;
      }
    }
    return distinct;
  }
  s.sorted.assign(c.begin(), c.end());
  std::sort(s.sorted.begin(), s.sorted.end());
  return static_cast<std::size_t>(
      std::unique(s.sorted.begin(), s.sorted.end()) - s.sorted.begin());
}

std::size_t normalize_colors(Coloring& c) {
  if (c.empty()) return 0;
  const std::uint32_t maxc = max_color_of(c);
  if (ids_near_dense(maxc, c.size())) {
    Scratch& s = scratch();
    s.stamps.assign(static_cast<std::size_t>(maxc) + 1, kNoEntry);
    std::uint32_t next = 0;
    for (auto& col : c) {
      if (s.stamps[col] == kNoEntry) s.stamps[col] = next++;
      col = s.stamps[col];
    }
    return next;
  }
  // Sparse ids: the original first-appearance scan (rare, small k).
  std::vector<std::uint32_t> remap;
  for (auto& col : c) {
    const auto it = std::find(remap.begin(), remap.end(), col);
    if (it == remap.end()) {
      remap.push_back(col);
      col = static_cast<std::uint32_t>(remap.size() - 1);
    } else {
      col = static_cast<std::uint32_t>(it - remap.begin());
    }
  }
  return remap.size();
}

bool is_valid_coloring(const ConflictGraph& cg, const Coloring& c) {
  if (c.size() != cg.size()) return false;
  for (std::size_t u = 0; u < cg.size(); ++u) {
    const auto& row = cg.neighbors(u);
    // Only v > u needs checking; start at u's word and mask off <= u.
    std::size_t w = u / 64;
    std::uint64_t bits = row.word(w) & (~std::uint64_t{0} << (u % 64) << 1);
    while (true) {
      while (bits != 0) {
        const std::size_t v =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (c[u] == c[v]) return false;
      }
      if (++w >= row.num_words()) break;
      bits = row.word(w);
    }
  }
  return true;
}

bool is_valid_assignment(const paths::DipathFamily& family, const Coloring& c) {
  if (c.size() != family.size()) return false;
  Scratch& s = scratch();
  paths::arc_incidence_csr(family, s.offsets, s.ids);
  const std::uint32_t maxc = max_color_of(c);
  if (ids_near_dense(maxc, c.size())) {
    // stamps[col] records the last arc group that saw col; a repeat within
    // one group is a monochromatic shared arc.
    s.stamps.assign(static_cast<std::size_t>(maxc) + 1, kNoEntry);
    for (std::size_t a = 0; a + 1 < s.offsets.size(); ++a) {
      const std::uint32_t tag = static_cast<std::uint32_t>(a);
      for (std::uint32_t i = s.offsets[a]; i < s.offsets[a + 1]; ++i) {
        const std::uint32_t col = c[s.ids[i]];
        if (s.stamps[col] == tag) return false;
        s.stamps[col] = tag;
      }
    }
    return true;
  }
  for (std::size_t a = 0; a + 1 < s.offsets.size(); ++a) {
    s.sorted.clear();
    for (std::uint32_t i = s.offsets[a]; i < s.offsets[a + 1]; ++i) {
      s.sorted.push_back(c[s.ids[i]]);
    }
    std::sort(s.sorted.begin(), s.sorted.end());
    if (std::adjacent_find(s.sorted.begin(), s.sorted.end()) !=
        s.sorted.end()) {
      return false;
    }
  }
  return true;
}

Coloring greedy_coloring(const ConflictGraph& cg,
                         const std::vector<std::size_t>& order) {
  WDAG_REQUIRE(order.size() == cg.size(),
               "greedy_coloring: order size mismatch");
  Coloring colors(cg.size(), kUncolored);
  util::DynamicBitset& mask = scratch().color_mask;
  for (const std::size_t u : order) {
    WDAG_REQUIRE(u < cg.size(), "greedy_coloring: bad vertex in order");
    // At most degree(u) neighbors are colored, so the first-fit color is
    // at most degree(u): colors beyond the cap cannot block it.
    mask.reset_to_zero(cg.degree(u) + 1);
    const auto& row = cg.neighbors(u);
    for (std::size_t w = 0; w < row.num_words(); ++w) {
      std::uint64_t bits = row.word(w);
      while (bits != 0) {
        const std::size_t v =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint32_t cv = colors[v];
        if (cv != kUncolored && cv < mask.size()) mask.set_unchecked(cv);
      }
    }
    colors[u] = static_cast<std::uint32_t>(mask.find_first_zero());
  }
  return colors;
}

Coloring greedy_coloring(const ConflictGraph& cg) {
  std::vector<std::size_t> order(cg.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  return greedy_coloring(cg, order);
}

Coloring dsatur_coloring(const ConflictGraph& cg) {
  const std::size_t n = cg.size();
  Coloring colors(n, kUncolored);
  if (n == 0) return colors;
  Scratch& s = scratch();

  // Saturation masks are capped at max_degree + 1 bits: every assigned
  // color is at most its vertex's degree, so no neighbor color exceeds
  // max_degree. One flat buffer with a uniform word stride per vertex.
  const std::size_t stride = (cg.max_degree() + 1 + 63) / 64;
  s.sat_words.assign(n * stride, 0);
  s.sat_count.assign(n, 0);

  // Saturation queue with lazy deletion: a vertex is re-pushed whenever
  // its saturation grows, and stale entries (already colored, or an old
  // saturation value) are discarded on pop. Total work is
  // O((n + m) log n) instead of the scalar argmax's O(n) per step.
  std::vector<SatEntry>& heap = s.heap;
  heap.clear();
  heap.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    heap.push_back(SatEntry{0, static_cast<std::uint32_t>(cg.degree(v)),
                            static_cast<std::uint32_t>(v)});
  }
  std::make_heap(heap.begin(), heap.end());

  for (std::size_t step = 0; step < n; ++step) {
    SatEntry top{};
    while (true) {
      WDAG_ASSERT(!heap.empty(), "dsatur: saturation queue exhausted");
      top = heap.front();
      std::pop_heap(heap.begin(), heap.end());
      heap.pop_back();
      if (colors[top.v] == kUncolored && top.sat == s.sat_count[top.v]) break;
    }
    const std::size_t best = top.v;

    // First color absent from the saturation mask: one zero-scan.
    const std::uint64_t* words = s.sat_words.data() + best * stride;
    std::uint32_t c = kUncolored;
    for (std::size_t w = 0; w < stride; ++w) {
      if (words[w] != ~std::uint64_t{0}) {
        c = static_cast<std::uint32_t>(
            w * 64 + static_cast<std::size_t>(std::countr_one(words[w])));
        break;
      }
    }
    WDAG_ASSERT(c != kUncolored, "dsatur: no free color within the cap");
    colors[best] = c;

    const auto& row = cg.neighbors(best);
    const std::uint64_t color_bit = std::uint64_t{1} << (c % 64);
    for (std::size_t w = 0; w < row.num_words(); ++w) {
      std::uint64_t bits = row.word(w);
      while (bits != 0) {
        const std::size_t q =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (colors[q] != kUncolored) continue;
        std::uint64_t& qword = s.sat_words[q * stride + c / 64];
        if ((qword & color_bit) == 0) {
          qword |= color_bit;
          heap.push_back(SatEntry{++s.sat_count[q],
                                  static_cast<std::uint32_t>(cg.degree(q)),
                                  static_cast<std::uint32_t>(q)});
          std::push_heap(heap.begin(), heap.end());
        }
      }
    }
  }
  return colors;
}

}  // namespace wdag::conflict
