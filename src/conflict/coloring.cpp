#include "conflict/coloring.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace wdag::conflict {

std::size_t num_colors(const Coloring& c) {
  return std::set<std::uint32_t>(c.begin(), c.end()).size();
}

std::size_t normalize_colors(Coloring& c) {
  std::vector<std::uint32_t> remap;
  for (auto& col : c) {
    auto it = std::find(remap.begin(), remap.end(), col);
    if (it == remap.end()) {
      remap.push_back(col);
      col = static_cast<std::uint32_t>(remap.size() - 1);
    } else {
      col = static_cast<std::uint32_t>(it - remap.begin());
    }
  }
  return remap.size();
}

bool is_valid_coloring(const ConflictGraph& cg, const Coloring& c) {
  if (c.size() != cg.size()) return false;
  for (std::size_t u = 0; u < cg.size(); ++u) {
    const auto& row = cg.neighbors(u);
    for (std::size_t v = row.find_first(); v < cg.size();
         v = row.find_next(v)) {
      if (v > u && c[u] == c[v]) return false;
    }
  }
  return true;
}

bool is_valid_assignment(const paths::DipathFamily& family, const Coloring& c) {
  if (c.size() != family.size()) return false;
  for (const auto& on_arc : paths::arc_incidence(family)) {
    std::set<std::uint32_t> seen;
    for (const paths::PathId id : on_arc) {
      if (!seen.insert(c[id]).second) return false;
    }
  }
  return true;
}

Coloring greedy_coloring(const ConflictGraph& cg,
                         const std::vector<std::size_t>& order) {
  WDAG_REQUIRE(order.size() == cg.size(),
               "greedy_coloring: order size mismatch");
  constexpr std::uint32_t kUncolored = UINT32_MAX;
  Coloring colors(cg.size(), kUncolored);
  std::vector<bool> used;
  for (const std::size_t u : order) {
    WDAG_REQUIRE(u < cg.size(), "greedy_coloring: bad vertex in order");
    used.assign(cg.size() + 1, false);
    const auto& row = cg.neighbors(u);
    for (std::size_t v = row.find_first(); v < cg.size();
         v = row.find_next(v)) {
      if (colors[v] != kUncolored) used[colors[v]] = true;
    }
    std::uint32_t c = 0;
    while (used[c]) ++c;
    colors[u] = c;
  }
  return colors;
}

Coloring greedy_coloring(const ConflictGraph& cg) {
  std::vector<std::size_t> order(cg.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  return greedy_coloring(cg, order);
}

Coloring dsatur_coloring(const ConflictGraph& cg) {
  const std::size_t n = cg.size();
  constexpr std::uint32_t kUncolored = UINT32_MAX;
  Coloring colors(n, kUncolored);
  // saturation[v] = set of neighbor colors (as bitset over color ids).
  std::vector<util::DynamicBitset> sat;
  sat.reserve(n);
  for (std::size_t i = 0; i < n; ++i) sat.emplace_back(n + 1);

  for (std::size_t step = 0; step < n; ++step) {
    // Pick uncolored vertex with max saturation, tie-break by degree, id.
    std::size_t best = n;
    std::size_t best_sat = 0, best_deg = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (colors[v] != kUncolored) continue;
      const std::size_t s = sat[v].count();
      const std::size_t d = cg.degree(v);
      if (best == n || s > best_sat || (s == best_sat && d > best_deg)) {
        best = v;
        best_sat = s;
        best_deg = d;
      }
    }
    WDAG_ASSERT(best < n, "dsatur: no vertex selected");
    std::uint32_t c = 0;
    while (sat[best].test(c)) ++c;
    colors[best] = c;
    const auto& row = cg.neighbors(best);
    for (std::size_t v = row.find_first(); v < n; v = row.find_next(v)) {
      sat[v].set(c);
    }
  }
  return colors;
}

}  // namespace wdag::conflict
