#pragma once
// Wavelength assignments (proper colorings of the conflict graph) and the
// heuristic baselines the benches compare against the paper's constructive
// algorithms.

#include <cstdint>
#include <vector>

#include "conflict/conflict_graph.hpp"
#include "paths/family.hpp"

namespace wdag::conflict {

/// A color (wavelength) per path id.
using Coloring = std::vector<std::uint32_t>;

/// Number of distinct colors used (assumes colors are arbitrary ids).
std::size_t num_colors(const Coloring& c);

/// Renumbers colors to 0..k-1 preserving classes; returns k.
std::size_t normalize_colors(Coloring& c);

/// True when no conflict-graph edge is monochromatic.
bool is_valid_coloring(const ConflictGraph& cg, const Coloring& c);

/// Independent validity check straight from the family: for every arc, all
/// dipaths through it have pairwise distinct colors. Used to cross-check
/// the conflict-graph path.
bool is_valid_assignment(const paths::DipathFamily& family, const Coloring& c);

/// First-fit greedy in the given vertex order.
Coloring greedy_coloring(const ConflictGraph& cg,
                         const std::vector<std::size_t>& order);

/// First-fit greedy in natural order 0..n-1.
Coloring greedy_coloring(const ConflictGraph& cg);

/// DSATUR heuristic (Brélaz): repeatedly color the vertex with the highest
/// color-saturation, breaking ties by degree then index.
Coloring dsatur_coloring(const ConflictGraph& cg);

}  // namespace wdag::conflict
