#include "conflict/conflict_graph.hpp"

#include <bit>

#include "util/check.hpp"
#include "util/simd.hpp"

namespace wdag::conflict {

namespace {

/// Thread-local group mask reused across builds: one n-bit membership mask
/// per arc group is cheaper to OR into rows than quadratic pairwise sets,
/// but only worth materializing once per build, not once per group.
util::DynamicBitset& group_mask_scratch() {
  thread_local util::DynamicBitset mask;
  return mask;
}

}  // namespace

ConflictGraph::ConflictGraph(const paths::DipathFamily& family) {
  rebuild(family);
}

void ConflictGraph::rebuild(const paths::DipathFamily& family) {
  const std::size_t n = family.size();
  reset_rows(n);
  const std::size_t words = (n + 63) / 64;
  util::DynamicBitset& mask = group_mask_scratch();
  bool mask_live = false;
  paths::for_each_arc_group(family, [&](const paths::PathId* ids,
                                        std::size_t g) {
    if (g < 2) return;
    // Pairwise sets touch g*(g-1) bits; the mask route costs ~g OR-sweeps
    // of `words` words plus building the mask. Pick whichever is fewer
    // word operations — the resulting graph is identical either way.
    if (g * (g - 1) <= (g + 2) * words) {
      for (std::size_t i = 0; i < g; ++i) {
        for (std::size_t j = i + 1; j < g; ++j) add_edge(ids[i], ids[j]);
      }
      return;
    }
    if (!mask_live) {
      mask.reset_to_zero(n);
      mask_live = true;
    } else {
      mask.clear_all();
    }
    for (std::size_t i = 0; i < g; ++i) mask.set_unchecked(ids[i]);
    const util::ConstBitsetView mask_view = mask;
    util::simd::or_rows(pool_.data(), stride_, ids, g, mask_view.data(),
                        words);
    // The OR splat put every member on its own row; clear the diagonal.
    for (std::size_t i = 0; i < g; ++i) {
      const std::size_t u = ids[i];
      row(u)[u / 64] &= ~(std::uint64_t{1} << (u % 64));
    }
  });
  finalize();
}

ConflictGraph::ConflictGraph(
    std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  reset_rows(n);
  for (const auto& [u, v] : edges) {
    WDAG_REQUIRE(u < n && v < n && u != v,
                 "ConflictGraph: bad edge in explicit edge list");
    add_edge(u, v);
  }
  finalize();
}

void ConflictGraph::reset_rows(std::size_t n) {
  const std::size_t words = (n + 63) / 64;
  // Round each row up to a whole 64-byte cache line so every row starts
  // at the pool's alignment; padding words stay zero forever.
  const std::size_t stride =
      (words + (util::kBitsetAlignment / 8 - 1)) &
      ~(util::kBitsetAlignment / 8 - 1);
  const std::size_t need = n * stride;
  if (need > pool_.size()) {
    pool_ = util::AlignedWords(need);  // freshly zeroed
  } else {
    util::simd::zero_words(pool_.data(), need);
  }
  n_ = n;
  stride_ = stride;
}

void ConflictGraph::finalize() {
  degrees_.resize(n_);
  max_degree_ = 0;
  std::size_t twice = 0;
  const std::size_t words = (n_ + 63) / 64;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t* r = row(i);
    std::size_t d = 0;
    for (std::size_t w = 0; w < words; ++w) {
      d += static_cast<std::size_t>(std::popcount(r[w]));
    }
    degrees_[i] = static_cast<std::uint32_t>(d);
    max_degree_ = std::max(max_degree_, d);
    twice += d;
  }
  num_edges_ = twice / 2;
}

void ConflictGraph::add_edge(std::size_t u, std::size_t v) {
  row(u)[v / 64] |= std::uint64_t{1} << (v % 64);
  row(v)[u / 64] |= std::uint64_t{1} << (u % 64);
}

bool ConflictGraph::adjacent(std::size_t u, std::size_t v) const {
  WDAG_REQUIRE(u < size() && v < size(), "ConflictGraph::adjacent: out of range");
  return u != v && ((row(u)[v / 64] >> (v % 64)) & 1) != 0;
}

}  // namespace wdag::conflict
