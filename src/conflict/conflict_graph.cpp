#include "conflict/conflict_graph.hpp"

#include "util/check.hpp"

namespace wdag::conflict {

ConflictGraph::ConflictGraph(const paths::DipathFamily& family) {
  const std::size_t n = family.size();
  rows_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rows_.emplace_back(n);
  for (const auto& on_arc : paths::arc_incidence(family)) {
    for (std::size_t i = 0; i < on_arc.size(); ++i) {
      for (std::size_t j = i + 1; j < on_arc.size(); ++j) {
        add_edge(on_arc[i], on_arc[j]);
      }
    }
  }
}

ConflictGraph::ConflictGraph(
    std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  rows_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rows_.emplace_back(n);
  for (const auto& [u, v] : edges) {
    WDAG_REQUIRE(u < n && v < n && u != v,
                 "ConflictGraph: bad edge in explicit edge list");
    add_edge(u, v);
  }
}

void ConflictGraph::add_edge(std::size_t u, std::size_t v) {
  rows_[u].set(v);
  rows_[v].set(u);
}

bool ConflictGraph::adjacent(std::size_t u, std::size_t v) const {
  WDAG_REQUIRE(u < size() && v < size(), "ConflictGraph::adjacent: out of range");
  return u != v && rows_[u].test(v);
}

const util::DynamicBitset& ConflictGraph::neighbors(std::size_t u) const {
  WDAG_REQUIRE(u < size(), "ConflictGraph::neighbors: out of range");
  return rows_[u];
}

std::size_t ConflictGraph::degree(std::size_t u) const {
  return neighbors(u).count();
}

std::size_t ConflictGraph::num_edges() const {
  std::size_t twice = 0;
  for (const auto& row : rows_) twice += row.count();
  return twice / 2;
}

}  // namespace wdag::conflict
