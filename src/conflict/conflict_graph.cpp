#include "conflict/conflict_graph.hpp"

#include "util/check.hpp"

namespace wdag::conflict {

namespace {

/// Thread-local group mask reused across builds: one n-bit membership mask
/// per arc group is cheaper to OR into rows than quadratic pairwise sets,
/// but only worth materializing once per build, not once per group.
util::DynamicBitset& group_mask_scratch() {
  thread_local util::DynamicBitset mask;
  return mask;
}

}  // namespace

ConflictGraph::ConflictGraph(const paths::DipathFamily& family) {
  rebuild(family);
}

void ConflictGraph::rebuild(const paths::DipathFamily& family) {
  const std::size_t n = family.size();
  reset_rows(n);
  const std::size_t words = (n + 63) / 64;
  util::DynamicBitset& mask = group_mask_scratch();
  bool mask_live = false;
  paths::for_each_arc_group(family, [&](const paths::PathId* ids,
                                        std::size_t g) {
    if (g < 2) return;
    // Pairwise sets touch g*(g-1) bits; the mask route costs ~g OR-sweeps
    // of `words` words plus building the mask. Pick whichever is fewer
    // word operations — the resulting graph is identical either way.
    if (g * (g - 1) <= (g + 2) * words) {
      for (std::size_t i = 0; i < g; ++i) {
        for (std::size_t j = i + 1; j < g; ++j) add_edge(ids[i], ids[j]);
      }
      return;
    }
    if (!mask_live) {
      mask.reset_to_zero(n);
      mask_live = true;
    } else {
      mask.clear_all();
    }
    for (std::size_t i = 0; i < g; ++i) mask.set_unchecked(ids[i]);
    for (std::size_t i = 0; i < g; ++i) mask.or_into(rows_[ids[i]]);
    // The OR splat put every member on its own row; clear the diagonal.
    for (std::size_t i = 0; i < g; ++i) rows_[ids[i]].reset(ids[i]);
  });
  finalize();
}

ConflictGraph::ConflictGraph(
    std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  reset_rows(n);
  for (const auto& [u, v] : edges) {
    WDAG_REQUIRE(u < n && v < n && u != v,
                 "ConflictGraph: bad edge in explicit edge list");
    add_edge(u, v);
  }
  finalize();
}

void ConflictGraph::reset_rows(std::size_t n) {
  if (rows_.size() > n) rows_.resize(n);
  for (auto& row : rows_) row.reset_to_zero(n);
  while (rows_.size() < n) rows_.emplace_back(n);
}

void ConflictGraph::finalize() {
  degrees_.resize(rows_.size());
  max_degree_ = 0;
  std::size_t twice = 0;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const std::size_t d = rows_[i].count();
    degrees_[i] = static_cast<std::uint32_t>(d);
    max_degree_ = std::max(max_degree_, d);
    twice += d;
  }
  num_edges_ = twice / 2;
}

void ConflictGraph::add_edge(std::size_t u, std::size_t v) {
  rows_[u].set_unchecked(v);
  rows_[v].set_unchecked(u);
}

bool ConflictGraph::adjacent(std::size_t u, std::size_t v) const {
  WDAG_REQUIRE(u < size() && v < size(), "ConflictGraph::adjacent: out of range");
  return u != v && rows_[u].test_unchecked(v);
}

}  // namespace wdag::conflict
