#pragma once
// The conflict graph of a dipath family (paper §2): one vertex per dipath,
// an edge when two dipaths share an arc. w(G,P) is its chromatic number;
// pi(G,P) is at most its clique number, with equality on UPP-DAGs
// (Property 3).
//
// Construction exploits the group structure of the instance: the dipaths
// through one arc form a clique, so each arc-incidence group is splatted
// into its members' adjacency rows with word-parallel ORs instead of
// per-pair bit sets (large groups), falling back to pairwise sets when the
// group is smaller than a handful of words. Degrees are cached at build
// time, so degree() and max_degree() are O(1).
//
// Adjacency rows live in one contiguous 64-byte-aligned word pool
// (structure-of-arrays): row u is the `stride_` words starting at
// u * stride_, with the stride rounded up to a whole cache line so every
// row starts aligned and the SIMD OR/scan kernels stream full lines.
// neighbors() hands out non-owning ConstBitsetViews into the pool; they
// are invalidated by rebuild(), like iterators on a reused container.

#include <cstdint>
#include <vector>

#include "paths/family.hpp"
#include "util/check.hpp"
#include "util/dynamic_bitset.hpp"

namespace wdag::conflict {

/// Undirected graph over path ids with bitset adjacency rows.
class ConflictGraph {
 public:
  ConflictGraph() = default;

  /// Builds the conflict graph of `family` via its arc incidence index:
  /// all dipaths through a common arc are pairwise adjacent.
  explicit ConflictGraph(const paths::DipathFamily& family);

  /// Builds from an explicit edge list over n vertices (used by tests).
  ConflictGraph(std::size_t n,
                const std::vector<std::pair<std::size_t, std::size_t>>& edges);

  /// Rebuilds in place for a new family, reusing the row pool. The batch
  /// engine's per-worker scratch arena calls this so consecutive
  /// instances in a chunk do not reallocate the adjacency pool each.
  void rebuild(const paths::DipathFamily& family);

  /// Number of vertices (dipaths).
  [[nodiscard]] std::size_t size() const { return n_; }

  /// True when u and v conflict. u == v returns false.
  [[nodiscard]] bool adjacent(std::size_t u, std::size_t v) const;

  /// Adjacency row of u: a view into the shared row pool, valid until the
  /// next rebuild().
  [[nodiscard]] util::ConstBitsetView neighbors(std::size_t u) const {
    WDAG_REQUIRE(u < size(), "ConflictGraph::neighbors: out of range");
    return {pool_.data() + u * stride_, n_};
  }

  /// Degree of u (cached at build time).
  [[nodiscard]] std::size_t degree(std::size_t u) const {
    WDAG_REQUIRE(u < size(), "ConflictGraph::degree: out of range");
    return degrees_[u];
  }

  /// Largest vertex degree, 0 for an empty graph (cached at build time).
  [[nodiscard]] std::size_t max_degree() const { return max_degree_; }

  /// Number of edges (cached at build time).
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

 private:
  void add_edge(std::size_t u, std::size_t v);

  /// Re-targets the pool to n zeroed rows of n bits, reusing storage.
  void reset_rows(std::size_t n);

  /// Computes the cached degrees / max degree / edge count from the rows.
  void finalize();

  [[nodiscard]] std::uint64_t* row(std::size_t u) {
    return pool_.data() + u * stride_;
  }
  [[nodiscard]] const std::uint64_t* row(std::size_t u) const {
    return pool_.data() + u * stride_;
  }

  util::AlignedWords pool_;
  std::size_t n_ = 0;       ///< vertices; each row is n_ bits wide
  std::size_t stride_ = 0;  ///< words per row, a multiple of 8 (cache line)
  std::vector<std::uint32_t> degrees_;
  std::size_t max_degree_ = 0;
  std::size_t num_edges_ = 0;
};

}  // namespace wdag::conflict
