#pragma once
// The conflict graph of a dipath family (paper §2): one vertex per dipath,
// an edge when two dipaths share an arc. w(G,P) is its chromatic number;
// pi(G,P) is at most its clique number, with equality on UPP-DAGs
// (Property 3).

#include <vector>

#include "paths/family.hpp"
#include "util/dynamic_bitset.hpp"

namespace wdag::conflict {

/// Undirected graph over path ids with bitset adjacency rows.
class ConflictGraph {
 public:
  ConflictGraph() = default;

  /// Builds the conflict graph of `family` via its arc incidence index:
  /// all dipaths through a common arc are pairwise adjacent.
  explicit ConflictGraph(const paths::DipathFamily& family);

  /// Builds from an explicit edge list over n vertices (used by tests).
  ConflictGraph(std::size_t n,
                const std::vector<std::pair<std::size_t, std::size_t>>& edges);

  /// Number of vertices (dipaths).
  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// True when u and v conflict. u == v returns false.
  [[nodiscard]] bool adjacent(std::size_t u, std::size_t v) const;

  /// Adjacency row of u as a bitset.
  [[nodiscard]] const util::DynamicBitset& neighbors(std::size_t u) const;

  /// Degree of u.
  [[nodiscard]] std::size_t degree(std::size_t u) const;

  /// Number of edges.
  [[nodiscard]] std::size_t num_edges() const;

 private:
  void add_edge(std::size_t u, std::size_t v);

  std::vector<util::DynamicBitset> rows_;
};

}  // namespace wdag::conflict
