#include "conflict/exact_color.hpp"

#include <algorithm>

#include "conflict/clique.hpp"
#include "util/check.hpp"

namespace wdag::conflict {

namespace {

constexpr std::uint32_t kUncolored = UINT32_MAX;

/// Backtracking k-colorability with DSATUR vertex selection.
struct KColorSearch {
  const ConflictGraph& cg;
  std::size_t k;
  std::size_t budget;
  std::size_t nodes = 0;
  bool budget_hit = false;
  Coloring colors;
  // sat[v]: bitset of colors used by v's neighbors.
  std::vector<util::DynamicBitset> sat;
  std::size_t colored = 0;
  std::uint32_t max_used = 0;  // highest color index assigned so far + 1

  explicit KColorSearch(const ConflictGraph& g, std::size_t kk, std::size_t b)
      : cg(g), k(kk), budget(b), colors(g.size(), kUncolored) {
    sat.reserve(g.size());
    for (std::size_t i = 0; i < g.size(); ++i) sat.emplace_back(kk + 1);
  }

  /// Pre-colors a clique 0..|clique|-1 (requires |clique| <= k).
  void seed(const std::vector<std::size_t>& clique) {
    for (std::size_t i = 0; i < clique.size(); ++i) {
      assign(clique[i], static_cast<std::uint32_t>(i));
    }
  }

  void assign(std::size_t v, std::uint32_t c) {
    colors[v] = c;
    ++colored;
    max_used = std::max(max_used, c + 1);
    const auto& row = cg.neighbors(v);
    for (std::size_t u = row.find_first(); u < cg.size();
         u = row.find_next(u)) {
      sat[u].set(c);
    }
  }

  void unassign(std::size_t v, std::uint32_t c, std::uint32_t prev_max) {
    colors[v] = kUncolored;
    --colored;
    max_used = prev_max;
    const auto& row = cg.neighbors(v);
    for (std::size_t u = row.find_first(); u < cg.size();
         u = row.find_next(u)) {
      // Recompute membership: another neighbor may still use c.
      bool still = false;
      const auto& urow = cg.neighbors(u);
      for (std::size_t w = urow.find_first(); w < cg.size();
           w = urow.find_next(w)) {
        if (colors[w] == c) {
          still = true;
          break;
        }
      }
      if (!still) sat[u].reset(c);
    }
  }

  /// Most saturated uncolored vertex (ties: degree, then id); n when done.
  std::size_t pick() const {
    std::size_t best = cg.size(), bs = 0, bd = 0;
    for (std::size_t v = 0; v < cg.size(); ++v) {
      if (colors[v] != kUncolored) continue;
      const std::size_t s = sat[v].count();
      const std::size_t d = cg.degree(v);
      if (best == cg.size() || s > bs || (s == bs && d > bd)) {
        best = v;
        bs = s;
        bd = d;
      }
    }
    return best;
  }

  bool solve() {
    if (colored == cg.size()) return true;
    if (++nodes > budget) {
      budget_hit = true;
      return false;
    }
    const std::size_t v = pick();
    // Forward check: if v has no admissible color, fail fast.
    // Symmetry break: allow at most one brand-new color (max_used), never a
    // color beyond it.
    const std::uint32_t limit =
        static_cast<std::uint32_t>(std::min<std::size_t>(k, max_used + 1));
    for (std::uint32_t c = 0; c < limit; ++c) {
      if (sat[v].test(c)) continue;
      const std::uint32_t prev_max = max_used;
      assign(v, c);
      if (solve()) return true;
      unassign(v, c, prev_max);
      if (budget_hit) return false;
    }
    return false;
  }
};

}  // namespace

std::optional<Coloring> try_color_with(const ConflictGraph& cg, std::size_t k,
                                       std::size_t node_budget) {
  if (cg.size() == 0) return Coloring{};
  const auto clique = greedy_clique(cg);
  if (clique.size() > k) return std::nullopt;  // clique certifies infeasible
  KColorSearch search(cg, k, node_budget);
  search.seed(clique);
  // Seeded clique vertices could already be in conflict with the bound k
  // through saturation; solve() handles it.
  if (search.solve()) {
    WDAG_ASSERT(is_valid_coloring(cg, search.colors),
                "try_color_with: produced an invalid coloring");
    WDAG_ASSERT(num_colors(search.colors) <= k,
                "try_color_with: used more than k colors");
    return search.colors;
  }
  WDAG_ASSERT(!search.budget_hit,
              "try_color_with: node budget exhausted; result would be unsound");
  return std::nullopt;
}

ChromaticResult chromatic_number(const ConflictGraph& cg,
                                 std::size_t node_budget) {
  ChromaticResult res;
  if (cg.size() == 0) {
    res.chromatic_number = 0;
    return res;
  }
  // Bounds: exact clique below, DSATUR above.
  const std::size_t lb = max_clique(cg).size();
  Coloring best = dsatur_coloring(cg);
  std::size_t ub = num_colors(best);

  // Tighten from below: first satisfiable k in [lb, ub] is chi.
  for (std::size_t k = lb; k < ub; ++k) {
    KColorSearch search(cg, k, node_budget);
    search.seed(greedy_clique(cg));
    const bool ok = search.solve();
    res.nodes += search.nodes;
    if (search.budget_hit) {
      res.proven = false;
      break;
    }
    if (ok) {
      best = search.colors;
      ub = k;
      break;
    }
  }
  res.chromatic_number = ub;
  res.coloring = std::move(best);
  WDAG_ASSERT(is_valid_coloring(cg, res.coloring),
              "chromatic_number: invalid optimal coloring");
  return res;
}

}  // namespace wdag::conflict
