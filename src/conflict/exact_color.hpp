#pragma once
// Exact chromatic number of a conflict graph.
//
// w(G,P) is NP-hard in general (paper §1), so "w equals ..." claims in the
// benches are certified by this exact branch-and-bound solver on instance
// sizes where it is fast. The search is DSATUR-ordered backtracking with a
// clique seed (its vertices are pre-colored, fixing color symmetry) and the
// usual "at most one new color per step" symmetry break.

#include <cstddef>
#include <optional>

#include "conflict/coloring.hpp"
#include "conflict/conflict_graph.hpp"

namespace wdag::conflict {

/// Result of an exact chromatic computation.
struct ChromaticResult {
  std::size_t chromatic_number = 0;
  Coloring coloring;        ///< an optimal proper coloring
  std::size_t nodes = 0;    ///< search-tree nodes explored
  bool proven = true;       ///< false when the node budget was exhausted
};

/// Computes the chromatic number exactly.
/// `node_budget` bounds the search; when exhausted, `proven` is false and
/// the best coloring found so far is returned (still valid).
ChromaticResult chromatic_number(const ConflictGraph& cg,
                                 std::size_t node_budget = 50'000'000);

/// Decision variant: can cg be colored with at most k colors?
/// Returns a coloring when satisfiable, nullopt otherwise (within budget;
/// throws wdag::InternalError when the budget is hit, since a wrong answer
/// would poison the benches).
std::optional<Coloring> try_color_with(const ConflictGraph& cg, std::size_t k,
                                       std::size_t node_budget = 50'000'000);

}  // namespace wdag::conflict
