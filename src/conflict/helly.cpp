#include "conflict/helly.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace wdag::conflict {

using paths::Dipath;
using paths::DipathFamily;
using paths::PathId;

std::optional<Dipath> conflict_interval(const DipathFamily& family, PathId p,
                                        PathId q) {
  const Dipath& P = family.path(p);
  const Dipath& Q = family.path(q);
  const std::set<graph::ArcId> qset(Q.arcs.begin(), Q.arcs.end());

  // Positions of shared arcs along P.
  std::vector<std::size_t> pos;
  for (std::size_t i = 0; i < P.arcs.size(); ++i) {
    if (qset.count(P.arcs[i])) pos.push_back(i);
  }
  if (pos.empty()) return std::nullopt;
  WDAG_DOMAIN(pos.back() - pos.front() + 1 == pos.size(),
              "conflict_interval: intersection is not contiguous along the "
              "first dipath (host graph cannot be UPP)");

  Dipath inter;
  for (std::size_t i = pos.front(); i <= pos.back(); ++i) {
    inter.arcs.push_back(P.arcs[i]);
  }
  // The same arcs must be contiguous and identically ordered along Q.
  auto it = std::find(Q.arcs.begin(), Q.arcs.end(), inter.arcs.front());
  WDAG_DOMAIN(it != Q.arcs.end() &&
                  static_cast<std::size_t>(Q.arcs.end() - it) >= inter.arcs.size() &&
                  std::equal(inter.arcs.begin(), inter.arcs.end(), it),
              "conflict_interval: intersection is not a common interval "
              "(host graph cannot be UPP)");
  return inter;
}

bool pairwise_intersections_are_intervals(const DipathFamily& family) {
  const ConflictGraph cg(family);
  for (std::size_t p = 0; p < family.size(); ++p) {
    for (std::size_t q = p + 1; q < family.size(); ++q) {
      if (!cg.adjacent(p, q)) continue;
      try {
        (void)conflict_interval(family, static_cast<PathId>(p),
                                static_cast<PathId>(q));
      } catch (const DomainError&) {
        return false;
      }
    }
  }
  return true;
}

bool triples_satisfy_helly(const DipathFamily& family) {
  const ConflictGraph cg(family);
  const std::size_t n = family.size();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (!cg.adjacent(a, b)) continue;
      for (std::size_t c = b + 1; c < n; ++c) {
        if (!cg.adjacent(a, c) || !cg.adjacent(b, c)) continue;
        // Common arc of all three?
        const std::set<graph::ArcId> sa(family.path(static_cast<PathId>(a)).arcs.begin(),
                                        family.path(static_cast<PathId>(a)).arcs.end());
        const std::set<graph::ArcId> sb(family.path(static_cast<PathId>(b)).arcs.begin(),
                                        family.path(static_cast<PathId>(b)).arcs.end());
        bool common = false;
        for (graph::ArcId arc : family.path(static_cast<PathId>(c)).arcs) {
          if (sa.count(arc) && sb.count(arc)) {
            common = true;
            break;
          }
        }
        if (!common) return false;
      }
    }
  }
  return true;
}

std::optional<std::vector<std::size_t>> find_k23(const ConflictGraph& cg) {
  const std::size_t n = cg.size();
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (cg.adjacent(u, v)) continue;
      util::DynamicBitset common(cg.neighbors(u));
      common &= cg.neighbors(v);
      const auto cand = common.to_indices();
      if (cand.size() < 3) continue;
      // Look for an independent triple among the common neighbors.
      for (std::size_t i = 0; i < cand.size(); ++i) {
        for (std::size_t j = i + 1; j < cand.size(); ++j) {
          if (cg.adjacent(cand[i], cand[j])) continue;
          for (std::size_t k = j + 1; k < cand.size(); ++k) {
            if (!cg.adjacent(cand[i], cand[k]) &&
                !cg.adjacent(cand[j], cand[k])) {
              return std::vector<std::size_t>{u, v, cand[i], cand[j], cand[k]};
            }
          }
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<std::vector<std::size_t>> find_k5_minus_two_edges(
    const ConflictGraph& cg) {
  // K5 minus two independent edges: vertices {a,b,c,d,e} with non-edges
  // exactly {a,b} and {c,d} (e adjacent to everyone, all other pairs
  // adjacent). Search over the two independent non-edges.
  const std::size_t n = cg.size();
  std::vector<std::pair<std::size_t, std::size_t>> nonedges;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (!cg.adjacent(u, v)) nonedges.emplace_back(u, v);
    }
  }
  for (std::size_t i = 0; i < nonedges.size(); ++i) {
    const auto [a, b] = nonedges[i];
    for (std::size_t j = i + 1; j < nonedges.size(); ++j) {
      const auto [c, d] = nonedges[j];
      if (a == c || a == d || b == c || b == d) continue;
      // Need all of a,b adjacent to all of c,d.
      if (!cg.adjacent(a, c) || !cg.adjacent(a, d) || !cg.adjacent(b, c) ||
          !cg.adjacent(b, d)) {
        continue;
      }
      // Need a fifth vertex adjacent to all four (and the subgraph induced
      // on the five must miss only the two chosen edges -> e adjacent to
      // all, which it is by construction).
      for (std::size_t e = 0; e < n; ++e) {
        if (e == a || e == b || e == c || e == d) continue;
        if (cg.adjacent(e, a) && cg.adjacent(e, b) && cg.adjacent(e, c) &&
            cg.adjacent(e, d)) {
          return std::vector<std::size_t>{a, b, c, d, e};
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace wdag::conflict
