#pragma once
// Structural properties of UPP conflict graphs (paper §4):
//
//  * Property 3 (Helly): pairwise-intersecting dipaths of a UPP-DAG share a
//    common sub-dipath; hence clique number == max load.
//  * Lemma 4 (crossing lemma) and Corollary 5: the conflict graph of a
//    UPP-DAG contains no K_{2,3} with independent sides, nor a K5 minus two
//    independent edges.
//
// These checkers are used by property tests and by the E5 bench to verify
// the claims on randomly generated UPP instances.

#include <optional>
#include <vector>

#include "conflict/conflict_graph.hpp"
#include "paths/family.hpp"

namespace wdag::conflict {

/// The intersection of two dipaths as the arc set shared by both, verified
/// to be a contiguous interval of each; nullopt when they do not conflict.
/// Throws wdag::DomainError when the intersection is not an interval
/// (impossible on UPP-DAGs by Property 3).
std::optional<paths::Dipath> conflict_interval(const paths::DipathFamily& family,
                                               paths::PathId p, paths::PathId q);

/// Checks Property 3 on every pairwise-conflicting *triple*: the three
/// dipaths must share at least one common arc. (For interval systems on a
/// path, pairwise + triple-wise Helly implies the general property; the
/// tests exercise exactly this consequence.)
bool triples_satisfy_helly(const paths::DipathFamily& family);

/// Checks that every conflicting pair intersects in a single contiguous
/// interval of arcs (the two-path consequence of Property 3).
bool pairwise_intersections_are_intervals(const paths::DipathFamily& family);

/// A K_{2,3} with independent sides: vertices u, v non-adjacent and three
/// pairwise non-adjacent common neighbors. Returns one witness
/// {u, v, w1, w2, w3} or nullopt. Corollary 5: never present for UPP-DAGs.
std::optional<std::vector<std::size_t>> find_k23(const ConflictGraph& cg);

/// A K5 minus two independent edges as an induced subgraph; returns the 5
/// vertices or nullopt. Also impossible for UPP-DAGs (paper §4).
std::optional<std::vector<std::size_t>> find_k5_minus_two_edges(
    const ConflictGraph& cg);

}  // namespace wdag::conflict
