#include "conflict/independent_set.hpp"

#include "conflict/clique.hpp"
#include "util/check.hpp"

namespace wdag::conflict {

ConflictGraph complement(const ConflictGraph& cg) {
  const std::size_t n = cg.size();
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (!cg.adjacent(u, v)) edges.emplace_back(u, v);
    }
  }
  return ConflictGraph(n, edges);
}

std::vector<std::size_t> max_independent_set(const ConflictGraph& cg) {
  const auto set = max_clique(complement(cg));
  WDAG_ASSERT(is_independent_set(cg, set),
              "max_independent_set: complement clique is not independent");
  return set;
}

std::size_t independence_number(const ConflictGraph& cg) {
  return max_independent_set(cg).size();
}

bool is_independent_set(const ConflictGraph& cg,
                        const std::vector<std::size_t>& vs) {
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t j = i + 1; j < vs.size(); ++j) {
      if (cg.adjacent(vs[i], vs[j])) return false;
    }
  }
  return true;
}

std::size_t replication_lower_bound(const ConflictGraph& cg, std::size_t h) {
  WDAG_REQUIRE(h >= 1, "replication_lower_bound: h must be >= 1");
  if (cg.size() == 0) return 0;
  const std::size_t alpha = independence_number(cg);
  const std::size_t total = cg.size() * h;
  return (total + alpha - 1) / alpha;
}

}  // namespace wdag::conflict
