#pragma once
// Exact maximum independent set on conflict graphs.
//
// Independent sets of the conflict graph are groups of pairwise
// arc-disjoint dipaths — i.e. sets of requests one wavelength can carry.
// The independence number yields the replication lower bound used by
// Theorem 7: h-fold replication of a family needs at least
// ceil(|P| * h / alpha) wavelengths.

#include <vector>

#include "conflict/conflict_graph.hpp"

namespace wdag::conflict {

/// Exact maximum independent set, computed as a maximum clique of the
/// complement graph (Tomita-style branch and bound). Intended for the
/// gadget-sized graphs in tests and benches.
std::vector<std::size_t> max_independent_set(const ConflictGraph& cg);

/// Size of a maximum independent set.
std::size_t independence_number(const ConflictGraph& cg);

/// True when vs is pairwise non-adjacent in cg.
bool is_independent_set(const ConflictGraph& cg,
                        const std::vector<std::size_t>& vs);

/// The complement conflict graph (same vertices, inverted adjacency).
ConflictGraph complement(const ConflictGraph& cg);

/// Lower bound on the wavelength number of the h-fold replicated family
/// whose conflict graph is cg: ceil(n * h / alpha(cg)). This is the
/// counting argument behind Theorem 7's tightness.
std::size_t replication_lower_bound(const ConflictGraph& cg, std::size_t h);

}  // namespace wdag::conflict
