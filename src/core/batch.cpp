#include "core/batch.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include "api/sink.hpp"
#include "api/strategy.hpp"
#include "conflict/coloring.hpp"
#include "core/cost_model.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/work_stealing.hpp"

namespace wdag::core {

namespace {

/// Mixes the batch seed with an instance index into an independent RNG
/// stream. Keyed by instance (not chunk, not worker), so the stream — and
/// therefore every generated instance — is identical whatever the chunk
/// geometry or scheduler.
util::Xoshiro256 instance_rng(std::uint64_t seed, std::size_t index) {
  util::SplitMix64 mix(seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
  return util::Xoshiro256(mix.next());
}

/// Solves one instance into its pre-allocated entry slot over the
/// built-in registry; never throws. One shared implementation with the
/// Engine path (api::solve_into_entry).
void solve_into(BatchEntry& entry, const paths::DipathFamily& family,
                const SolveOptions& solve_options, SolveScratch& scratch,
                bool keep_coloring) {
  api::solve_into_entry(entry, api::builtin_registry(), family,
                        solve_options, solve_options.force, scratch,
                        keep_coloring);
}

/// A sink-bound copy of an entry: everything a row renders, minus the
/// (potentially large) coloring.
BatchEntry row_copy(const BatchEntry& e) {
  BatchEntry copy;
  copy.index = e.index;
  copy.strategy = e.strategy;
  copy.paths = e.paths;
  copy.load = e.load;
  copy.wavelengths = e.wavelengths;
  copy.optimal = e.optimal;
  copy.failed = e.failed;
  copy.error = e.error;
  copy.millis = e.millis;
  return copy;
}

/// In-order sink dispatcher: chunks may finish in any order on any number
/// of workers, but rows reach every sink strictly in instance order
/// through a reorder window keyed by chunk index — so sink output is
/// identical for a fixed seed at any thread count.
///
/// The window is BOUNDED: a worker submitting an out-of-order chunk while
/// kMaxPendingChunks are already buffered blocks until the straggler
/// drains, so a streaming (keep_entries = false) million-instance batch
/// stays at bounded memory even when one early chunk is orders of
/// magnitude slower than the rest (the skewed workloads the stealing
/// scheduler targets). Deadlock-free: both schedulers execute chunks in
/// ascending order per worker, so the next-undelivered chunk is always
/// running (or about to run) on some worker that cannot itself be blocked
/// here — its submit is in order and is never made to wait.
class InOrderDispatcher {
 public:
  /// Out-of-order chunks buffered before submitters are backpressured.
  static constexpr std::size_t kMaxPendingChunks = 256;

  explicit InOrderDispatcher(std::span<api::ResultSink* const> sinks)
      : sinks_(sinks) {}

  void submit(std::size_t chunk_index, std::vector<BatchEntry> rows) {
    std::unique_lock<std::mutex> lock(mu_);
    // While this submitter waited, next_ may have advanced up to its own
    // chunk — in which case it must deliver, not buffer, or the rows
    // would be stranded in pending_ behind an already-passed next_.
    drained_.wait(lock, [this, chunk_index] {
      return failed_ || chunk_index == next_ ||
             pending_.size() < kMaxPendingChunks;
    });
    if (failed_) return;  // poisoned: drop rows, never block
    if (chunk_index != next_) {
      pending_.emplace(chunk_index, std::move(rows));
      return;
    }
    try {
      deliver(rows);
      ++next_;
      while (!pending_.empty() && pending_.begin()->first == next_) {
        deliver(pending_.begin()->second);
        pending_.erase(pending_.begin());
        ++next_;
      }
    } catch (...) {
      // A sink threw mid-delivery: next_ can never advance past this
      // chunk, so without poisoning every later submitter would block
      // forever once the window fills. Fail the whole stream instead.
      poison_locked();
      throw;  // recorded as the chunk's error by the scheduler
    }
    drained_.notify_all();
  }

  /// Marks the stream failed: wakes and releases every blocked
  /// submitter, drops buffered rows. Called when a chunk dies before it
  /// could submit its ordinal — the window would otherwise wait for a
  /// chunk that is never coming.
  void poison() {
    const std::lock_guard<std::mutex> lock(mu_);
    poison_locked();
  }

  void finish() {
    const std::lock_guard<std::mutex> lock(mu_);
    WDAG_ASSERT(failed_ || pending_.empty(),
                "batch sinks: chunks missing at finish");
  }

 private:
  void deliver(const std::vector<BatchEntry>& rows) {
    for (const BatchEntry& e : rows) {
      for (api::ResultSink* sink : sinks_) sink->row(e);
    }
  }

  void poison_locked() {
    failed_ = true;
    pending_.clear();
    drained_.notify_all();
  }

  std::span<api::ResultSink* const> sinks_;
  std::mutex mu_;
  std::condition_variable drained_;
  std::size_t next_ = 0;
  bool failed_ = false;
  std::map<std::size_t, std::vector<BatchEntry>> pending_;
};

/// Aggregates folded in under a mutex when entries are not kept
/// (keep_entries == false): exact counts and one latency sample per
/// successful instance instead of a full BatchEntry.
struct StreamAccum {
  std::mutex mu;
  std::vector<std::size_t> strategy_counts;
  std::size_t optimal = 0;
  std::size_t failures = 0;
  std::size_t wavelengths = 0;
  std::size_t load = 0;
  std::vector<double> latencies;

  explicit StreamAccum(std::size_t strategies)
      : strategy_counts(strategies, 0) {}

  void fold(const StreamAccum& part) {
    const std::lock_guard<std::mutex> lock(mu);
    for (std::size_t s = 0; s < strategy_counts.size(); ++s) {
      strategy_counts[s] += part.strategy_counts[s];
    }
    optimal += part.optimal;
    failures += part.failures;
    wavelengths += part.wavelengths;
    load += part.load;
    latencies.insert(latencies.end(), part.latencies.begin(),
                     part.latencies.end());
  }

  void add(const BatchEntry& e) {
    if (e.failed) {
      ++failures;
      return;
    }
    if (e.strategy < strategy_counts.size()) ++strategy_counts[e.strategy];
    if (e.optimal) ++optimal;
    wavelengths += e.wavelengths;
    load += e.load;
    latencies.push_back(e.millis);
  }
};

/// Nearest-rank 0-based index of quantile q in an n-element sample.
std::size_t rank_index(std::size_t n, double q) {
  const double rank = std::ceil(q * static_cast<double>(n));
  return std::min(n - 1,
                  static_cast<std::size_t>(std::max(rank - 1.0, 0.0)));
}

/// Fills the latency summary from an unsorted sample, partially
/// reordering it in place (core::latency_stats, the shared selection
/// machinery).
void fill_latency(BatchReport& report, std::vector<double>& latencies) {
  report.latency = latency_stats(latencies);
}

/// Fills the aggregate fields of a report whose entries are complete.
void aggregate_entries(BatchReport& report) {
  // Reused across reports: repeated batches (sweeps) stop reallocating
  // a fresh 100k-sample vector per point.
  thread_local std::vector<double> latencies;
  latencies.clear();
  latencies.reserve(report.entries.size());
  for (const BatchEntry& e : report.entries) {
    if (e.failed) {
      ++report.failure_count;
      continue;
    }
    if (e.strategy < report.strategy_counts.size()) {
      ++report.strategy_counts[e.strategy];
    }
    if (e.optimal) ++report.optimal_count;
    report.total_wavelengths += e.wavelengths;
    report.total_load += e.load;
    latencies.push_back(e.millis);
  }
  fill_latency(report, latencies);
}

/// Display name of strategy `id` under `names`, with the built-in names as
/// a fallback so default-constructed reports still render.
std::string_view name_of(const std::vector<std::string>& names,
                         StrategyId id) {
  if (id < names.size()) return names[id];
  return builtin_strategy_name(id);
}

}  // namespace

LatencyStats latency_stats(std::vector<double>& samples) {
  LatencyStats stats;
  if (samples.empty()) return stats;
  double sum = 0.0;
  for (const double l : samples) sum += l;
  const std::size_t n = samples.size();
  stats.mean = sum / static_cast<double>(n);
  const std::size_t i50 = rank_index(n, 0.50);
  const std::size_t i90 = rank_index(n, 0.90);
  const std::size_t i99 = rank_index(n, 0.99);
  const auto begin = samples.begin();
  // After each selection the pivot slot holds its exact order statistic
  // and everything right of it is >=, so the next (strictly larger) rank
  // only needs the tail past the pivot — which also leaves the already-
  // selected slots untouched for the reads below.
  std::nth_element(begin, begin + static_cast<std::ptrdiff_t>(i50),
                   samples.end());
  if (i90 > i50) {
    std::nth_element(begin + static_cast<std::ptrdiff_t>(i50) + 1,
                     begin + static_cast<std::ptrdiff_t>(i90), samples.end());
  }
  if (i99 > i90) {
    std::nth_element(begin + static_cast<std::ptrdiff_t>(i90) + 1,
                     begin + static_cast<std::ptrdiff_t>(i99), samples.end());
  }
  stats.p50 = samples[i50];
  stats.p90 = samples[i90];
  stats.p99 = samples[i99];
  stats.max = *std::max_element(begin + static_cast<std::ptrdiff_t>(i99),
                                samples.end());
  return stats;
}

std::string_view schedule_name(Schedule schedule) {
  return schedule == Schedule::kStealing ? "stealing" : "fixed";
}

double BatchReport::instances_per_second() const {
  if (instance_count == 0 || wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(instance_count) / wall_seconds;
}

std::size_t BatchReport::count(std::string_view name) const {
  for (StrategyId id = 0; id < strategy_names.size(); ++id) {
    if (strategy_names[id] == name) return count(id);
  }
  return 0;
}

util::Table BatchReport::rows_table(bool with_latency) const {
  std::vector<std::string> header = {"index",       "method",  "paths",
                                     "load",        "wavelengths", "optimal"};
  if (with_latency) header.push_back("millis");
  util::Table table("batch results", std::move(header));
  for (const BatchEntry& e : entries) {
    std::vector<util::Cell> row = {
        static_cast<long long>(e.index),
        e.failed ? std::string("error")
                 : std::string(name_of(strategy_names, e.strategy)),
        static_cast<long long>(e.paths),
        static_cast<long long>(e.load),
        static_cast<long long>(e.wavelengths),
        static_cast<long long>(e.optimal ? 1 : 0)};
    if (with_latency) row.push_back(e.millis);
    table.add_row(std::move(row));
  }
  return table;
}

util::Table BatchReport::histogram_table() const {
  util::Table table("dispatch histogram", {"method", "count", "share"});
  // One denominator for every row (total instances) so the column sums to
  // 1 even when some instances failed.
  const double total = static_cast<double>(instance_count);
  for (StrategyId id = 0; id < strategy_counts.size(); ++id) {
    const std::size_t c = strategy_counts[id];
    const double share = total == 0 ? 0.0 : static_cast<double>(c) / total;
    table.add_row({std::string(name_of(strategy_names, id)),
                   static_cast<long long>(c), share});
  }
  if (failure_count > 0) {
    table.add_row({std::string("error"),
                   static_cast<long long>(failure_count),
                   static_cast<double>(failure_count) / total});
  }
  return table;
}

std::string BatchReport::to_json() const {
  std::ostringstream os;
  os.precision(6);
  os << "{";
  os << "\"instances\":" << instance_count;
  os << ",\"seed\":" << seed;
  os << ",\"threads\":" << threads_used;
  os << ",\"schedule\":\"" << schedule_name(schedule) << "\"";
  os << ",\"chunk\":" << chunk_size;
  os << ",\"failures\":" << failure_count;
  os << ",\"optimal\":" << optimal_count;
  os << ",\"total_load\":" << total_load;
  os << ",\"total_wavelengths\":" << total_wavelengths;
  os << ",\"wall_seconds\":" << wall_seconds;
  os << ",\"instances_per_second\":" << instances_per_second();
  os << ",\"methods\":{";
  for (StrategyId id = 0; id < strategy_counts.size(); ++id) {
    if (id != 0) os << ",";
    os << "\"" << name_of(strategy_names, id) << "\":" << strategy_counts[id];
  }
  os << "}";
  os << ",\"latency_ms\":{";
  os << "\"mean\":" << latency.mean;
  os << ",\"p50\":" << latency.p50;
  os << ",\"p90\":" << latency.p90;
  os << ",\"p99\":" << latency.p99;
  os << ",\"max\":" << latency.max;
  os << "}";
  os << "}";
  return os.str();
}

BatchReport run_batch_items(std::size_t count, const BatchItemSolver& item,
                            const BatchOptions& options,
                            std::vector<std::string> strategy_names,
                            std::span<api::ResultSink* const> sinks,
                            util::ThreadPool* pool,
                            std::span<SolveScratch> arenas) {
  WDAG_REQUIRE(options.chunk >= 1, "BatchOptions::chunk must be >= 1");
  WDAG_REQUIRE(options.min_chunk >= 1 &&
                   options.min_chunk <= options.max_chunk,
               "BatchOptions: need 1 <= min_chunk <= max_chunk");
  WDAG_REQUIRE(item != nullptr, "run_batch_items: item solver must be set");
  WDAG_REQUIRE(options.index_stride >= 1,
               "BatchOptions::index_stride must be >= 1");
  BatchReport report;
  report.instance_count = count;
  report.strategy_names = std::move(strategy_names);
  report.strategy_counts.assign(report.strategy_names.size(), 0);
  const bool keep = options.keep_entries;
  if (keep) report.entries.resize(count);

  std::vector<api::ResultSink*> all_sinks(sinks.begin(), sinks.end());

  api::BatchStreamInfo info;
  info.instance_count = count;
  info.seed = options.seed;
  info.strategy_names = &report.strategy_names;
  for (api::ResultSink* sink : all_sinks) sink->begin(info);
  InOrderDispatcher dispatcher(all_sinks);
  const bool sinking = !all_sinks.empty();
  StreamAccum accum(report.strategy_names.size());

  const util::Timer timer;
  std::optional<util::ThreadPool> own_pool;
  if (pool == nullptr) {
    own_pool.emplace(options.threads);
    pool = &*own_pool;
  }
  WDAG_REQUIRE(arenas.empty() || arenas.size() >= pool->size(),
               "run_batch_items: arenas must cover every pool worker");
  report.threads_used = pool->size();
  report.schedule = options.schedule;
  const bool stealing = options.schedule == Schedule::kStealing;
  CostModel* const model = options.cost_model;

  // The effective chunk size: the fixed schedule partitions exactly as
  // asked; the stealing schedule sizes chunks from the cost model so a
  // chunk holds ~constant expected work (a cold model falls back to the
  // built-in priors). Either way the partition is contiguous and
  // ascending, so the reorder window below works unchanged — and since
  // seeding is per instance, the choice never alters output bytes.
  std::size_t chunk = options.chunk;
  if (stealing) {
    const CostModel cold;
    chunk = (model != nullptr ? *model : cold)
                .suggest_chunk(count, pool->size(), options.min_chunk,
                               options.max_chunk);
  }
  report.chunk_size = count == 0 ? 0 : chunk;

  const auto chunk_body = [&](std::size_t chunk_index, std::size_t lo,
                              std::size_t hi) {
    // The per-worker scratch arena: either the caller's (indexed by
    // pool worker, e.g. api::Engine's persistent arenas) or a
    // thread-local fallback — pool threads persist across chunks, so
    // every instance this worker touches reuses the same
    // conflict-graph rows and entry buffers either way.
    SolveScratch* scratch;
    const int worker = util::ThreadPool::current_worker_index();
    if (!arenas.empty() && worker >= 0 &&
        static_cast<std::size_t>(worker) < arenas.size()) {
      scratch = &arenas[static_cast<std::size_t>(worker)];
    } else {
      thread_local SolveScratch fallback;
      scratch = &fallback;
    }

    try {
      StreamAccum part(accum.strategy_counts.size());
      std::vector<BatchEntry> rows;
      if (sinking) rows.reserve(hi - lo);
      thread_local std::vector<CostSample> samples;  // reused across chunks
      samples.clear();
      BatchEntry local;
      for (std::size_t i = lo; i < hi; ++i) {
        // Everything observable about an instance is keyed by its GLOBAL
        // index: RNG stream, reported index, item callback — so a shard
        // run (index_base > 0 and/or index_stride > 1) reproduces the
        // unsharded run's bytes for its slice of the range.
        const std::size_t global =
            options.index_base + i * options.index_stride;
        BatchEntry& entry = keep ? report.entries[i] : local;
        if (!keep) entry = BatchEntry{};
        entry.index = global;
        util::Xoshiro256 rng = instance_rng(options.seed, global);
        item(rng, global, entry, *scratch);
        if (model != nullptr && !entry.failed) {
          samples.push_back({entry.strategy, entry.paths,
                             entry.millis * 1000.0});
        }
        if (!keep) part.add(entry);
        if (sinking) rows.push_back(row_copy(entry));
      }
      if (model != nullptr) model->observe(samples);
      if (!keep) accum.fold(part);
      if (sinking) dispatcher.submit(chunk_index, std::move(rows));
    } catch (...) {
      // This chunk's ordinal will never reach the dispatcher (the item
      // contract makes this rare: a throwing sink or bad_alloc); poison
      // the bounded window so waiting submitters fail fast instead of
      // blocking on a chunk that is not coming.
      if (sinking) dispatcher.poison();
      throw;  // the scheduler records it as the batch's first error
    }
  };

  if (stealing) {
    std::vector<util::ChunkRange> ranges;
    ranges.reserve(count / chunk + 1);
    for (std::size_t lo = 0; lo < count; lo += chunk) {
      ranges.push_back({ranges.size(), lo, std::min(count, lo + chunk)});
    }
    util::parallel_stealing_chunks(*pool, ranges, chunk_body,
                                   &report.worker_chunks);
  } else {
    // Per-pool-worker chunk counts, folded into the report for parity
    // with the stealing scheduler's per-driver counts.
    std::vector<std::atomic<std::size_t>> executed(pool->size());
    util::parallel_fixed_chunks(
        *pool, 0, count, chunk,
        [&](std::size_t chunk_index, std::size_t lo, std::size_t hi) {
          const int worker = util::ThreadPool::current_worker_index();
          if (worker >= 0 &&
              static_cast<std::size_t>(worker) < executed.size()) {
            executed[static_cast<std::size_t>(worker)].fetch_add(
                1, std::memory_order_relaxed);
          }
          chunk_body(chunk_index, lo, hi);
        });
    report.worker_chunks.reserve(executed.size());
    for (const auto& c : executed) {
      report.worker_chunks.push_back(c.load(std::memory_order_relaxed));
    }
  }
  dispatcher.finish();

  if (keep) {
    aggregate_entries(report);
  } else {
    report.strategy_counts = accum.strategy_counts;
    report.optimal_count = accum.optimal;
    report.failure_count = accum.failures;
    report.total_wavelengths = accum.wavelengths;
    report.total_load = accum.load;
    fill_latency(report, accum.latencies);
  }
  report.wall_seconds = timer.seconds();
  report.seed = options.seed;
  for (api::ResultSink* sink : all_sinks) sink->end(report);
  return report;
}

BatchReport solve_batch(std::span<const paths::DipathFamily> families,
                        const SolveOptions& solve_options,
                        const BatchOptions& batch_options) {
  // A striped index set cannot be expressed as a subspan of the caller's
  // families; striping is a generated-workload feature.
  WDAG_REQUIRE(batch_options.index_stride == 1,
               "solve_batch: explicit families require index_stride == 1 "
               "(striped layouts need a generated workload)");
  return run_batch_items(
      families.size(),
      [&families, &solve_options, &batch_options](
          util::Xoshiro256& /*rng*/, std::size_t i, BatchEntry& entry,
          SolveScratch& scratch) {
        // i is global; the span holds this run's slice only.
        solve_into(entry, families[i - batch_options.index_base],
                   solve_options, scratch, batch_options.keep_colorings);
      },
      batch_options, builtin_strategy_names());
}

BatchReport solve_generated_batch(std::size_t count,
                                  const InstanceGenerator& generate,
                                  const SolveOptions& solve_options,
                                  const BatchOptions& batch_options) {
  WDAG_REQUIRE(generate != nullptr, "generator must be callable");
  return run_batch_items(
      count,
      [&generate, &solve_options, &batch_options](
          util::Xoshiro256& rng, std::size_t i, BatchEntry& entry,
          SolveScratch& scratch) {
        try {
          const gen::Instance inst = generate(rng, i);
          solve_into(entry, inst.family, solve_options, scratch,
                     batch_options.keep_colorings);
        } catch (const std::exception& e) {
          entry.failed = true;
          entry.error = e.what();
        }
      },
      batch_options, builtin_strategy_names());
}

}  // namespace wdag::core
