#include "core/batch.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "conflict/coloring.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace wdag::core {

namespace {

/// Mixes the batch seed with a chunk index into an independent RNG stream.
util::Xoshiro256 chunk_rng(std::uint64_t seed, std::size_t chunk_index) {
  util::SplitMix64 mix(seed ^ (0x9E3779B97F4A7C15ULL * (chunk_index + 1)));
  return util::Xoshiro256(mix.next());
}

/// Solves one instance into its pre-allocated entry slot; never throws.
void solve_into(BatchEntry& entry, const paths::DipathFamily& family,
                const SolveOptions& solve_options, bool keep_coloring) {
  const util::Timer timer;
  try {
    SolveResult result = solve(family, solve_options);
    entry.method = result.method;
    entry.paths = family.size();
    entry.load = result.load;
    entry.wavelengths = result.wavelengths;
    entry.optimal = result.optimal;
    if (keep_coloring) entry.coloring = std::move(result.coloring);
  } catch (const std::exception& e) {
    entry.failed = true;
    entry.error = e.what();
    entry.paths = family.size();
  }
  entry.millis = timer.millis();
}

/// Nearest-rank percentile of an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t idx =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(std::max(rank - 1.0, 0.0)));
  return sorted[idx];
}

/// Fills the aggregate fields of a report whose entries are complete.
void aggregate(BatchReport& report, double wall_seconds,
               std::size_t threads_used, std::uint64_t seed) {
  std::vector<double> latencies;
  latencies.reserve(report.entries.size());
  double latency_sum = 0.0;
  for (const BatchEntry& e : report.entries) {
    if (e.failed) {
      ++report.failure_count;
      continue;
    }
    ++report.method_counts[static_cast<std::size_t>(e.method)];
    if (e.optimal) ++report.optimal_count;
    report.total_wavelengths += e.wavelengths;
    report.total_load += e.load;
    latencies.push_back(e.millis);
    latency_sum += e.millis;
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    report.latency.mean = latency_sum / static_cast<double>(latencies.size());
    report.latency.p50 = percentile(latencies, 0.50);
    report.latency.p90 = percentile(latencies, 0.90);
    report.latency.p99 = percentile(latencies, 0.99);
    report.latency.max = latencies.back();
  }
  report.wall_seconds = wall_seconds;
  report.threads_used = threads_used;
  report.seed = seed;
}

/// Runs body(chunk_index, lo, hi) over fixed chunks of `options.chunk`
/// instances on a dedicated pool sized by `options.threads`.
void run_chunked(std::size_t count, const BatchOptions& options,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)>& body,
                 std::size_t& threads_used) {
  WDAG_REQUIRE(options.chunk >= 1, "BatchOptions::chunk must be >= 1");
  util::ThreadPool pool(options.threads);
  threads_used = pool.size();
  util::parallel_fixed_chunks(pool, 0, count, options.chunk, body);
}

}  // namespace

double BatchReport::instances_per_second() const {
  if (entries.empty() || wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(entries.size()) / wall_seconds;
}

util::Table BatchReport::rows_table(bool with_latency) const {
  std::vector<std::string> header = {"index",       "method",  "paths",
                                     "load",        "wavelengths", "optimal"};
  if (with_latency) header.push_back("millis");
  util::Table table("batch results", std::move(header));
  for (const BatchEntry& e : entries) {
    std::vector<util::Cell> row = {
        static_cast<long long>(e.index),
        e.failed ? std::string("error") : method_name(e.method),
        static_cast<long long>(e.paths),
        static_cast<long long>(e.load),
        static_cast<long long>(e.wavelengths),
        static_cast<long long>(e.optimal ? 1 : 0)};
    if (with_latency) row.push_back(e.millis);
    table.add_row(std::move(row));
  }
  return table;
}

util::Table BatchReport::histogram_table() const {
  util::Table table("dispatch histogram", {"method", "count", "share"});
  // One denominator for every row (total entries) so the column sums to 1
  // even when some instances failed.
  const double total = static_cast<double>(entries.size());
  for (const Method m : {Method::kTheorem1, Method::kSplitMerge,
                         Method::kDsatur, Method::kExact}) {
    const std::size_t c = count(m);
    const double share = total == 0 ? 0.0 : static_cast<double>(c) / total;
    table.add_row({method_name(m), static_cast<long long>(c), share});
  }
  if (failure_count > 0) {
    table.add_row({std::string("error"),
                   static_cast<long long>(failure_count),
                   static_cast<double>(failure_count) / total});
  }
  return table;
}

std::string BatchReport::to_json() const {
  std::ostringstream os;
  os.precision(6);
  os << "{";
  os << "\"instances\":" << entries.size();
  os << ",\"seed\":" << seed;
  os << ",\"threads\":" << threads_used;
  os << ",\"failures\":" << failure_count;
  os << ",\"optimal\":" << optimal_count;
  os << ",\"total_load\":" << total_load;
  os << ",\"total_wavelengths\":" << total_wavelengths;
  os << ",\"wall_seconds\":" << wall_seconds;
  os << ",\"instances_per_second\":" << instances_per_second();
  os << ",\"methods\":{";
  bool first = true;
  for (const Method m : {Method::kTheorem1, Method::kSplitMerge,
                         Method::kDsatur, Method::kExact}) {
    if (!first) os << ",";
    first = false;
    os << "\"" << method_name(m) << "\":" << count(m);
  }
  os << "}";
  os << ",\"latency_ms\":{";
  os << "\"mean\":" << latency.mean;
  os << ",\"p50\":" << latency.p50;
  os << ",\"p90\":" << latency.p90;
  os << ",\"p99\":" << latency.p99;
  os << ",\"max\":" << latency.max;
  os << "}";
  os << "}";
  return os.str();
}

BatchReport solve_batch(std::span<const paths::DipathFamily> families,
                        const SolveOptions& solve_options,
                        const BatchOptions& batch_options) {
  BatchReport report;
  report.entries.resize(families.size());
  const util::Timer timer;
  std::size_t threads_used = 0;
  run_chunked(
      families.size(), batch_options,
      [&](std::size_t /*chunk_index*/, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          report.entries[i].index = i;
          solve_into(report.entries[i], families[i], solve_options,
                     batch_options.keep_colorings);
        }
      },
      threads_used);
  aggregate(report, timer.seconds(), threads_used, batch_options.seed);
  return report;
}

BatchReport solve_generated_batch(std::size_t count,
                                  const InstanceGenerator& generate,
                                  const SolveOptions& solve_options,
                                  const BatchOptions& batch_options) {
  WDAG_REQUIRE(generate != nullptr, "generator must be callable");
  BatchReport report;
  report.entries.resize(count);
  const util::Timer timer;
  std::size_t threads_used = 0;
  run_chunked(
      count, batch_options,
      [&](std::size_t chunk_index, std::size_t lo, std::size_t hi) {
        util::Xoshiro256 rng = chunk_rng(batch_options.seed, chunk_index);
        for (std::size_t i = lo; i < hi; ++i) {
          report.entries[i].index = i;
          try {
            const gen::Instance inst = generate(rng, i);
            solve_into(report.entries[i], inst.family, solve_options,
                       batch_options.keep_colorings);
          } catch (const std::exception& e) {
            report.entries[i].failed = true;
            report.entries[i].error = e.what();
          }
        }
      },
      threads_used);
  aggregate(report, timer.seconds(), threads_used, batch_options.seed);
  return report;
}

}  // namespace wdag::core
