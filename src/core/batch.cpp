#include "core/batch.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "conflict/coloring.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace wdag::core {

namespace {

/// Mixes the batch seed with a chunk index into an independent RNG stream.
util::Xoshiro256 chunk_rng(std::uint64_t seed, std::size_t chunk_index) {
  util::SplitMix64 mix(seed ^ (0x9E3779B97F4A7C15ULL * (chunk_index + 1)));
  return util::Xoshiro256(mix.next());
}

/// Solves one instance into its pre-allocated entry slot; never throws.
void solve_into(BatchEntry& entry, const paths::DipathFamily& family,
                const SolveOptions& solve_options, bool keep_coloring) {
  const util::Timer timer;
  try {
    SolveResult result = solve(family, solve_options);
    entry.method = result.method;
    entry.paths = family.size();
    entry.load = result.load;
    entry.wavelengths = result.wavelengths;
    entry.optimal = result.optimal;
    if (keep_coloring) entry.coloring = std::move(result.coloring);
  } catch (const std::exception& e) {
    entry.failed = true;
    entry.error = e.what();
    entry.paths = family.size();
  }
  entry.millis = timer.millis();
}

/// Appends one entry as a CSV row, byte-identical to the corresponding
/// rows_table(/*with_latency=*/false).to_csv() row.
void append_csv_row(std::string& out, const BatchEntry& e) {
  out += std::to_string(e.index);
  out += ',';
  out += e.failed ? "error" : method_name(e.method);
  out += ',';
  out += std::to_string(e.paths);
  out += ',';
  out += std::to_string(e.load);
  out += ',';
  out += std::to_string(e.wavelengths);
  out += ',';
  out += e.optimal ? '1' : '0';
  out += '\n';
}

/// In-order streaming CSV writer: chunks may finish in any order on any
/// number of workers, but rows leave the process strictly in instance
/// order through a reorder window keyed by chunk index — so the streamed
/// bytes match the in-memory rows_table CSV for a fixed seed at any
/// thread count.
class StreamingCsvSink {
 public:
  explicit StreamingCsvSink(const std::string& path) {
    if (path == "-") {
      out_ = &std::cout;
    } else {
      file_.open(path);
      WDAG_REQUIRE(file_.good(),
                   "stream_csv: cannot open output file '" + path + "'");
      out_ = &file_;
    }
    *out_ << "index,method,paths,load,wavelengths,optimal\n";
  }

  void submit(std::size_t chunk_index, std::string rows) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (chunk_index != next_) {
      pending_.emplace(chunk_index, std::move(rows));
      return;
    }
    *out_ << rows;
    ++next_;
    while (!pending_.empty() && pending_.begin()->first == next_) {
      *out_ << pending_.begin()->second;
      pending_.erase(pending_.begin());
      ++next_;
    }
  }

  void finish() {
    const std::lock_guard<std::mutex> lock(mu_);
    WDAG_ASSERT(pending_.empty(), "stream_csv: chunks missing at finish");
    out_->flush();
  }

 private:
  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::mutex mu_;
  std::size_t next_ = 0;
  std::map<std::size_t, std::string> pending_;
};

/// Aggregates folded in under a mutex when entries are not kept
/// (keep_entries == false): exact counts and one latency sample per
/// successful instance instead of a full BatchEntry.
struct StreamAccum {
  std::mutex mu;
  std::size_t method_counts[4] = {0, 0, 0, 0};
  std::size_t optimal = 0;
  std::size_t failures = 0;
  std::size_t wavelengths = 0;
  std::size_t load = 0;
  std::vector<double> latencies;

  void fold(const StreamAccum& part) {
    const std::lock_guard<std::mutex> lock(mu);
    for (std::size_t m = 0; m < 4; ++m) method_counts[m] += part.method_counts[m];
    optimal += part.optimal;
    failures += part.failures;
    wavelengths += part.wavelengths;
    load += part.load;
    latencies.insert(latencies.end(), part.latencies.begin(),
                     part.latencies.end());
  }

  void add(const BatchEntry& e) {
    if (e.failed) {
      ++failures;
      return;
    }
    ++method_counts[static_cast<std::size_t>(e.method)];
    if (e.optimal) ++optimal;
    wavelengths += e.wavelengths;
    load += e.load;
    latencies.push_back(e.millis);
  }
};

/// Nearest-rank percentile of an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t idx =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(std::max(rank - 1.0, 0.0)));
  return sorted[idx];
}

/// Fills the latency summary from an unsorted sample.
void fill_latency(BatchReport& report, std::vector<double>& latencies) {
  if (latencies.empty()) return;
  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (const double l : latencies) sum += l;
  report.latency.mean = sum / static_cast<double>(latencies.size());
  report.latency.p50 = percentile(latencies, 0.50);
  report.latency.p90 = percentile(latencies, 0.90);
  report.latency.p99 = percentile(latencies, 0.99);
  report.latency.max = latencies.back();
}

/// Fills the aggregate fields of a report whose entries are complete.
void aggregate_entries(BatchReport& report) {
  std::vector<double> latencies;
  latencies.reserve(report.entries.size());
  for (const BatchEntry& e : report.entries) {
    if (e.failed) {
      ++report.failure_count;
      continue;
    }
    ++report.method_counts[static_cast<std::size_t>(e.method)];
    if (e.optimal) ++report.optimal_count;
    report.total_wavelengths += e.wavelengths;
    report.total_load += e.load;
    latencies.push_back(e.millis);
  }
  fill_latency(report, latencies);
}

/// The core batch driver shared by solve_batch and solve_generated_batch:
/// fixed deterministic chunks, per-worker scratch arena, optional
/// streaming CSV sink and optional entry dropping. `solve_chunk_item` is
/// called as (rng, index, entry, solve_options) and must fill the entry.
template <class SolveItem>
BatchReport run_batch(std::size_t count, const SolveOptions& solve_options,
                      const BatchOptions& batch_options,
                      const SolveItem& solve_item) {
  WDAG_REQUIRE(batch_options.chunk >= 1, "BatchOptions::chunk must be >= 1");
  BatchReport report;
  report.instance_count = count;
  const bool keep = batch_options.keep_entries;
  if (keep) report.entries.resize(count);

  std::unique_ptr<StreamingCsvSink> sink;
  if (!batch_options.stream_csv.empty()) {
    sink = std::make_unique<StreamingCsvSink>(batch_options.stream_csv);
  }
  StreamAccum accum;

  const util::Timer timer;
  util::ThreadPool pool(batch_options.threads);
  report.threads_used = pool.size();
  util::parallel_fixed_chunks(
      pool, 0, count, batch_options.chunk,
      [&](std::size_t chunk_index, std::size_t lo, std::size_t hi) {
        // The per-worker scratch arena: pool threads persist across
        // chunks, so every instance this worker touches reuses the same
        // conflict-graph rows and entry buffers.
        thread_local SolveScratch scratch;
        SolveOptions opts = solve_options;
        opts.scratch = &scratch;

        util::Xoshiro256 rng = chunk_rng(batch_options.seed, chunk_index);
        StreamAccum part;
        std::string csv;
        BatchEntry local;
        for (std::size_t i = lo; i < hi; ++i) {
          BatchEntry& entry = keep ? report.entries[i] : local;
          if (!keep) entry = BatchEntry{};
          entry.index = i;
          solve_item(rng, i, entry, opts);
          if (!keep) part.add(entry);
          if (sink) append_csv_row(csv, entry);
        }
        if (!keep) accum.fold(part);
        if (sink) sink->submit(chunk_index, std::move(csv));
      });
  if (sink) sink->finish();

  if (keep) {
    aggregate_entries(report);
  } else {
    for (std::size_t m = 0; m < 4; ++m) {
      report.method_counts[m] = accum.method_counts[m];
    }
    report.optimal_count = accum.optimal;
    report.failure_count = accum.failures;
    report.total_wavelengths = accum.wavelengths;
    report.total_load = accum.load;
    fill_latency(report, accum.latencies);
  }
  report.wall_seconds = timer.seconds();
  report.seed = batch_options.seed;
  return report;
}

}  // namespace

double BatchReport::instances_per_second() const {
  if (instance_count == 0 || wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(instance_count) / wall_seconds;
}

util::Table BatchReport::rows_table(bool with_latency) const {
  std::vector<std::string> header = {"index",       "method",  "paths",
                                     "load",        "wavelengths", "optimal"};
  if (with_latency) header.push_back("millis");
  util::Table table("batch results", std::move(header));
  for (const BatchEntry& e : entries) {
    std::vector<util::Cell> row = {
        static_cast<long long>(e.index),
        e.failed ? std::string("error") : method_name(e.method),
        static_cast<long long>(e.paths),
        static_cast<long long>(e.load),
        static_cast<long long>(e.wavelengths),
        static_cast<long long>(e.optimal ? 1 : 0)};
    if (with_latency) row.push_back(e.millis);
    table.add_row(std::move(row));
  }
  return table;
}

util::Table BatchReport::histogram_table() const {
  util::Table table("dispatch histogram", {"method", "count", "share"});
  // One denominator for every row (total instances) so the column sums to
  // 1 even when some instances failed.
  const double total = static_cast<double>(instance_count);
  for (const Method m : {Method::kTheorem1, Method::kSplitMerge,
                         Method::kDsatur, Method::kExact}) {
    const std::size_t c = count(m);
    const double share = total == 0 ? 0.0 : static_cast<double>(c) / total;
    table.add_row({method_name(m), static_cast<long long>(c), share});
  }
  if (failure_count > 0) {
    table.add_row({std::string("error"),
                   static_cast<long long>(failure_count),
                   static_cast<double>(failure_count) / total});
  }
  return table;
}

std::string BatchReport::to_json() const {
  std::ostringstream os;
  os.precision(6);
  os << "{";
  os << "\"instances\":" << instance_count;
  os << ",\"seed\":" << seed;
  os << ",\"threads\":" << threads_used;
  os << ",\"failures\":" << failure_count;
  os << ",\"optimal\":" << optimal_count;
  os << ",\"total_load\":" << total_load;
  os << ",\"total_wavelengths\":" << total_wavelengths;
  os << ",\"wall_seconds\":" << wall_seconds;
  os << ",\"instances_per_second\":" << instances_per_second();
  os << ",\"methods\":{";
  bool first = true;
  for (const Method m : {Method::kTheorem1, Method::kSplitMerge,
                         Method::kDsatur, Method::kExact}) {
    if (!first) os << ",";
    first = false;
    os << "\"" << method_name(m) << "\":" << count(m);
  }
  os << "}";
  os << ",\"latency_ms\":{";
  os << "\"mean\":" << latency.mean;
  os << ",\"p50\":" << latency.p50;
  os << ",\"p90\":" << latency.p90;
  os << ",\"p99\":" << latency.p99;
  os << ",\"max\":" << latency.max;
  os << "}";
  os << "}";
  return os.str();
}

BatchReport solve_batch(std::span<const paths::DipathFamily> families,
                        const SolveOptions& solve_options,
                        const BatchOptions& batch_options) {
  return run_batch(
      families.size(), solve_options, batch_options,
      [&families, &batch_options](util::Xoshiro256& /*rng*/, std::size_t i,
                                  BatchEntry& entry, const SolveOptions& opts) {
        solve_into(entry, families[i], opts, batch_options.keep_colorings);
      });
}

BatchReport solve_generated_batch(std::size_t count,
                                  const InstanceGenerator& generate,
                                  const SolveOptions& solve_options,
                                  const BatchOptions& batch_options) {
  WDAG_REQUIRE(generate != nullptr, "generator must be callable");
  return run_batch(
      count, solve_options, batch_options,
      [&generate, &batch_options](util::Xoshiro256& rng, std::size_t i,
                                  BatchEntry& entry, const SolveOptions& opts) {
        try {
          const gen::Instance inst = generate(rng, i);
          solve_into(entry, inst.family, opts, batch_options.keep_colorings);
        } catch (const std::exception& e) {
          entry.failed = true;
          entry.error = e.what();
        }
      });
}

}  // namespace wdag::core
