#pragma once
// Parallel batch solving: fan a workload of dipath-family instances out
// over a thread pool, solve each with the dispatching solver, and
// aggregate per-method counts and latency percentiles into a report.
//
// Determinism contract (matches util/thread_pool.hpp): work is
// partitioned into fixed contiguous chunks, every chunk derives its RNG
// from (options.seed, chunk index) via splitmix64, and results are
// written into per-instance slots — so a batch's report is identical for
// identical seeds no matter how many threads run it or how the OS
// schedules them.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "gen/instance.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace wdag::core {

/// Knobs of the batch driver (solver knobs live in SolveOptions).
struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Instances per work chunk (also the granularity of deterministic
  /// seeding for generated batches). Must be >= 1.
  std::size_t chunk = 16;
  /// Base seed; chunk c works with splitmix64(seed, c)-derived randomness.
  std::uint64_t seed = 1;
  /// Keep every instance's coloring in the report (memory-heavy; off by
  /// default so million-instance sweeps stay lean).
  bool keep_colorings = false;
  /// Keep per-instance entries in the report. Set false for streaming
  /// sweeps: aggregates (counts, totals, latency percentiles) are still
  /// exact, but report.entries stays empty and per-instance memory drops
  /// to one latency sample, so million-instance batches run at
  /// near-constant memory. Combine with stream_csv to retain the rows.
  bool keep_entries = true;
  /// When non-empty, per-instance rows are streamed to this CSV path
  /// ('-' = stdout) as chunks finish, in instance order. The bytes are
  /// identical to rows_table(false).to_csv() — and, for a fixed seed,
  /// identical at any thread count: chunks are flushed through an
  /// in-order reorder window.
  std::string stream_csv;
};

/// Outcome of one instance inside a batch.
struct BatchEntry {
  std::size_t index = 0;        ///< position in the input span / generation order
  Method method = Method::kTheorem1;
  std::size_t paths = 0;        ///< family size
  std::size_t load = 0;         ///< pi(G,P)
  std::size_t wavelengths = 0;  ///< colors used
  bool optimal = false;
  bool failed = false;          ///< solver threw; see `error`
  std::string error;            ///< exception message when failed
  double millis = 0.0;          ///< wall-clock solve latency
  conflict::Coloring coloring;  ///< only populated with keep_colorings
};

/// Latency summary in milliseconds over the successful entries.
struct LatencyStats {
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Aggregated outcome of a batch solve.
struct BatchReport {
  std::vector<BatchEntry> entries;      ///< indexed by instance order; empty
                                        ///< when keep_entries was false
  std::size_t instance_count = 0;       ///< instances solved (entries may be dropped)
  std::size_t method_counts[4] = {0, 0, 0, 0};  ///< indexed by Method
  std::size_t optimal_count = 0;
  std::size_t failure_count = 0;
  std::size_t total_wavelengths = 0;    ///< sum over successful entries
  std::size_t total_load = 0;
  LatencyStats latency;                 ///< per-instance solve latency
  double wall_seconds = 0.0;            ///< end-to-end batch wall clock
  std::size_t threads_used = 0;
  std::uint64_t seed = 0;

  /// Instances solved per wall-clock second (0 for an empty batch).
  [[nodiscard]] double instances_per_second() const;

  /// Count for one dispatch method.
  [[nodiscard]] std::size_t count(Method m) const {
    return method_counts[static_cast<std::size_t>(m)];
  }

  /// Per-instance rows (index, method, paths, load, wavelengths, optimal
  /// and, with `with_latency`, millis) as a util::Table — render with
  /// to_csv()/to_text()/to_markdown(). Pass with_latency = false when the
  /// output must be byte-identical across runs of the same seed.
  [[nodiscard]] util::Table rows_table(bool with_latency = true) const;

  /// One-row-per-method dispatch histogram as a util::Table.
  [[nodiscard]] util::Table histogram_table() const;

  /// The aggregate report as a JSON object (stable key order).
  [[nodiscard]] std::string to_json() const;
};

/// Solves every family in `families` (already built; host graphs must
/// outlive the call) and aggregates the outcomes. Exceptions thrown by the
/// solver on an instance are captured into that instance's entry rather
/// than aborting the batch.
BatchReport solve_batch(std::span<const paths::DipathFamily> families,
                        const SolveOptions& solve_options = {},
                        const BatchOptions& batch_options = {});

/// Generator callback: produces instance `index` from a deterministic
/// per-chunk RNG. Must be callable concurrently from multiple threads.
using InstanceGenerator =
    std::function<gen::Instance(util::Xoshiro256& rng, std::size_t index)>;

/// Generate-and-solve fusion: materializes `count` instances on the
/// workers (instance i is built inside its chunk with the chunk's RNG,
/// keeping peak memory at one chunk per worker) and solves each
/// immediately. Deterministic for a fixed (seed, chunk) regardless of
/// thread count.
BatchReport solve_generated_batch(std::size_t count,
                                  const InstanceGenerator& generate,
                                  const SolveOptions& solve_options = {},
                                  const BatchOptions& batch_options = {});

}  // namespace wdag::core
