#pragma once
// Parallel batch solving: fan a workload of dipath-family instances out
// over a thread pool, solve each with the dispatching solver, and
// aggregate per-strategy counts and latency percentiles into a report.
//
// Determinism contract: every instance derives its own RNG from
// (options.seed, instance index) via splitmix64, and results are written
// into per-instance slots — so a batch's report is identical for
// identical seeds no matter how many threads run it, how the range is
// chunked, which scheduler (fixed or stealing) distributes the chunks,
// or how the OS schedules them. Result sinks (api/sink.hpp) receive rows
// in strict instance order through a chunk-ordinal reorder window, so
// streamed bytes are invariant across all of the above too.
//
// Two schedulers share that contract (BatchOptions::schedule):
//   kFixed     static contiguous partition into options.chunk-sized
//              chunks (util::parallel_fixed_chunks) — zero scheduling
//              overhead, but a straggler chunk idles the other workers.
//   kStealing  per-worker Chase-Lev deques with random stealing
//              (util/work_stealing.hpp); chunk size is cost-aware, from
//              a per-strategy EWMA of observed solve micros
//              (core/cost_model.hpp), so exact-solver stragglers split
//              fine while cheap Theorem 1 instances batch coarse.
//
// run_batch_items is the generalized driver underneath both the legacy
// entry points below and api::Engine::run_batch; per-instance stats are
// keyed by StrategyId against a registry-sized count vector, so adding a
// strategy can never silently fall off the histogram (the old
// method_counts[4] C-array failure mode).

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver.hpp"
#include "gen/instance.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace wdag::util {
class ThreadPool;
}  // namespace wdag::util

namespace wdag::api {
class ResultSink;
}  // namespace wdag::api

namespace wdag::core {

class CostModel;

/// How the batch driver distributes work chunks over the pool workers.
enum class Schedule {
  kFixed,     ///< static contiguous partition (chunk-sized, no rebalance)
  kStealing,  ///< per-worker deques + random stealing, cost-aware chunks
};

/// Display name of a schedule: "fixed" / "stealing".
std::string_view schedule_name(Schedule schedule);

/// Knobs of the batch driver (solver knobs live in SolveOptions).
struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  /// Ignored when the caller supplies its own pool (api::Engine does).
  std::size_t threads = 0;
  /// Instances per work chunk under Schedule::kFixed. Must be >= 1.
  /// (Seeding is per instance, so the chunk size never changes output.)
  std::size_t chunk = 16;
  /// Base seed; instance i works with splitmix64(seed, i)-derived
  /// randomness, whatever the chunking or scheduler.
  std::uint64_t seed = 1;
  /// GLOBAL index of this run's first instance (shard support,
  /// core/shard.hpp). Instance i of the run derives its RNG from
  /// (seed, index_base + i * index_stride) and reports that global index
  /// in its entry and rows — so a shard solving [base, base + count) of a
  /// larger batch emits exactly the rows the unsharded run emits for that
  /// range, and the item callback always receives the global index.
  std::size_t index_base = 0;
  /// Distance between consecutive global indices of this run. 1 (the
  /// default) is the contiguous case; a striped shard s of K sets
  /// index_base = s, index_stride = K to solve {s, s + K, s + 2K, ...}.
  /// Must be >= 1.
  std::size_t index_stride = 1;
  /// Chunk distribution policy; see Schedule.
  Schedule schedule = Schedule::kFixed;
  /// Bounds on the cost-aware chunk size of Schedule::kStealing (the
  /// fixed schedule uses `chunk` exactly). min_chunk must be >= 1 and
  /// <= max_chunk.
  std::size_t min_chunk = 1;
  std::size_t max_chunk = 256;
  /// Cost model consulted for the stealing chunk size and fed with this
  /// batch's observed per-instance costs (borrowed, not owned; may be
  /// null — a cold model with the built-in priors sizes the chunks
  /// then). api::Engine wires its own persistent model in here.
  CostModel* cost_model = nullptr;
  /// Keep every instance's coloring in the report (memory-heavy; off by
  /// default so million-instance sweeps stay lean).
  bool keep_colorings = false;
  /// Keep per-instance entries in the report. Set false for streaming
  /// sweeps: aggregates (counts, totals, latency percentiles) are still
  /// exact, but report.entries stays empty and per-instance memory drops
  /// to one latency sample, so million-instance batches run at
  /// near-constant memory. Combine with a sink to retain the rows.
  /// (Streaming CSV output is an api::CsvStreamSink passed via the sinks
  /// span / BatchRequest::sinks; the stream_csv string shim was removed
  /// in 0.2.0.)
  bool keep_entries = true;
};

/// Outcome of one instance inside a batch.
struct BatchEntry {
  std::size_t index = 0;        ///< position in the input span / generation order
  StrategyId strategy = 0;      ///< registry id of the strategy that solved it
  std::size_t paths = 0;        ///< family size
  std::size_t load = 0;         ///< pi(G,P)
  std::size_t wavelengths = 0;  ///< colors used
  bool optimal = false;
  bool failed = false;          ///< solver threw; see `error`
  std::string error;            ///< exception message when failed
  double millis = 0.0;          ///< wall-clock solve latency
  conflict::Coloring coloring;  ///< only populated with keep_colorings
};

/// Latency summary in milliseconds over the successful entries.
struct LatencyStats {
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Latency summary of an unsorted millisecond sample, partially
/// reordering `samples` in place (three chained nth_element selections —
/// O(n), not a sort). Zeroed stats for an empty sample. Shared by the
/// batch report aggregation and the serve /stats endpoint.
[[nodiscard]] LatencyStats latency_stats(std::vector<double>& samples);

/// Aggregated outcome of a batch solve.
struct BatchReport {
  std::vector<BatchEntry> entries;      ///< indexed by instance order; empty
                                        ///< when keep_entries was false
  std::size_t instance_count = 0;       ///< instances solved (entries may be dropped)
  /// Solve count per strategy, indexed by StrategyId and sized to the
  /// registry that ran the batch (the built-ins for the legacy entry
  /// points below).
  std::vector<std::size_t> strategy_counts =
      std::vector<std::size_t>(kBuiltinStrategyCount, 0);
  /// Strategy display names, index-aligned with strategy_counts.
  std::vector<std::string> strategy_names = builtin_strategy_names();
  std::size_t optimal_count = 0;
  std::size_t failure_count = 0;
  std::size_t total_wavelengths = 0;    ///< sum over successful entries
  std::size_t total_load = 0;
  LatencyStats latency;                 ///< per-instance solve latency
  double wall_seconds = 0.0;            ///< end-to-end batch wall clock
  std::size_t threads_used = 0;
  std::uint64_t seed = 0;
  Schedule schedule = Schedule::kFixed; ///< scheduler that ran the batch
  std::size_t chunk_size = 0;           ///< effective instances per chunk
  /// Chunks executed per logical worker, sized threads_used (stealing:
  /// per scheduler driver; fixed: per pool worker). Under stealing with
  /// chunks >= workers every slot is >= 1 by construction — the
  /// no-starvation property the scheduler tests pin.
  std::vector<std::size_t> worker_chunks;

  /// Instances solved per wall-clock second (0 for an empty batch).
  [[nodiscard]] double instances_per_second() const;

  /// Count for one strategy id (0 for ids past the registry).
  [[nodiscard]] std::size_t count(StrategyId id) const {
    return id < strategy_counts.size() ? strategy_counts[id] : 0;
  }
  /// Count for one strategy, by registered name (0 when unknown).
  [[nodiscard]] std::size_t count(std::string_view strategy_name) const;

  /// Per-instance rows (index, method, paths, load, wavelengths, optimal
  /// and, with `with_latency`, millis) as a util::Table — render with
  /// to_csv()/to_text()/to_markdown(). Pass with_latency = false when the
  /// output must be byte-identical across runs of the same seed.
  [[nodiscard]] util::Table rows_table(bool with_latency = true) const;

  /// One-row-per-strategy dispatch histogram as a util::Table.
  [[nodiscard]] util::Table histogram_table() const;

  /// The aggregate report as a JSON object (stable key order).
  [[nodiscard]] std::string to_json() const;
};

/// Per-instance callback of the generalized batch driver: fill `entry`
/// for instance `index` (strategy, paths, load, wavelengths, optimal — or
/// failed + error; never throw), drawing any randomness from `rng` (a
/// fresh stream derived from (seed, index), identical on every schedule)
/// and reusing `scratch` across the instances of a worker. `index` is
/// GLOBAL (options.index_base + local position), so generator callbacks
/// behave identically sharded and unsharded.
using BatchItemSolver =
    std::function<void(util::Xoshiro256& rng, std::size_t index,
                       BatchEntry& entry, SolveScratch& scratch)>;

/// The chunked-deterministic batch driver shared by the legacy entry
/// points and api::Engine::run_batch.
///
///  * `strategy_names` sizes the report's per-strategy count vector and
///    labels rows/histograms (pass the registry's names()).
///  * `sinks` receive begin / per-row (instance order) / end callbacks.
///    Sink calls are serialized by the driver.
///  * `pool` runs the chunks when non-null (its size wins over
///    options.threads); otherwise a pool of options.threads workers is
///    created for the call.
///  * `arenas` are per-worker scratch arenas, indexed by the pool's
///    worker index; when empty (or off-pool) a thread-local arena is
///    used. Sized arenas must cover pool->size().
BatchReport run_batch_items(std::size_t count, const BatchItemSolver& item,
                            const BatchOptions& options,
                            std::vector<std::string> strategy_names,
                            std::span<api::ResultSink* const> sinks = {},
                            util::ThreadPool* pool = nullptr,
                            std::span<SolveScratch> arenas = {});

/// Solves every family in `families` (already built; host graphs must
/// outlive the call) and aggregates the outcomes. Exceptions thrown by the
/// solver on an instance are captured into that instance's entry rather
/// than aborting the batch.
BatchReport solve_batch(std::span<const paths::DipathFamily> families,
                        const SolveOptions& solve_options = {},
                        const BatchOptions& batch_options = {});

/// Generator callback: produces instance `index` from its deterministic
/// index-derived RNG. Must be callable concurrently from multiple threads.
using InstanceGenerator =
    std::function<gen::Instance(util::Xoshiro256& rng, std::size_t index)>;

/// Generate-and-solve fusion: materializes `count` instances on the
/// workers (instance i is built inside its chunk from its own
/// index-derived RNG, keeping peak memory at one chunk per worker) and
/// solves each immediately. Deterministic for a fixed seed regardless of
/// thread count, chunking or scheduler.
BatchReport solve_generated_batch(std::size_t count,
                                  const InstanceGenerator& generate,
                                  const SolveOptions& solve_options = {},
                                  const BatchOptions& batch_options = {});

}  // namespace wdag::core
