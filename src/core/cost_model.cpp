#include "core/cost_model.hpp"

#include <algorithm>

namespace wdag::core {

namespace {

/// EWMA observation count cap: after this many samples a cell adapts with
/// a fixed step of 1/kMaxWeight, so drifting workloads re-converge fast.
constexpr double kMaxWeight = 32.0;

/// Target expected work per stealing chunk, in micros. Small enough that
/// one straggler chunk cannot idle the other workers for long, large
/// enough to amortize deque traffic and the per-chunk sink hand-off.
constexpr double kTargetChunkMicros = 2000.0;

/// Worst-case work one chunk may hold if it were filled entirely with the
/// costliest observed strategy's instances — the straggler guard that
/// keeps a mixed batch's heavy chunks stealable-around even though chunk
/// sizing cannot know which index a straggler hides at.
constexpr double kStragglerBudgetMicros = 4.0 * kTargetChunkMicros;

/// Observation weight below which a cell is too thin to drive the
/// straggler guard (the built-in priors sit at 1.0 on purpose: a cold
/// model must not over-split on the exact prior alone).
constexpr double kMinGuardWeight = 2.0;

/// Minimum chunks per worker the stealing scheduler wants available, so
/// thieves always find work behind a straggler.
constexpr std::size_t kChunksPerWorker = 8;

}  // namespace

std::size_t CostModel::bucket_of(std::size_t paths) {
  std::size_t b = 0;
  while (paths > 1 && b + 1 < kBuckets) {
    paths >>= 1;
    ++b;
  }
  return b;
}

CostModel::CostModel() : cells_(kBuiltinStrategyCount * kBuckets) {
  // Priors at the bucket of a typical workload family (~32 paths), one
  // observation of weight each: rough dispatch-tier magnitudes, washed
  // out by the first real chunk of samples.
  const std::size_t b = bucket_of(32);
  cells_[kStrategyTheorem1 * kBuckets + b] = {25.0, 1.0};
  cells_[kStrategySplitMerge * kBuckets + b] = {60.0, 1.0};
  cells_[kStrategyDsatur * kBuckets + b] = {80.0, 1.0};
  cells_[kStrategyExact * kBuckets + b] = {1500.0, 1.0};
}

void CostModel::observe(std::span<const CostSample> samples) {
  if (samples.empty()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const CostSample& s : samples) {
    const std::size_t need = (s.strategy + 1) * kBuckets;
    if (cells_.size() < need) cells_.resize(need);
    Cell& c = cells_[s.strategy * kBuckets + bucket_of(s.paths)];
    c.weight = std::min(c.weight + 1.0, kMaxWeight);
    c.mean += (s.micros - c.mean) / c.weight;
  }
}

double CostModel::estimate_micros(StrategyId strategy,
                                  std::size_t paths) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t base = strategy * kBuckets;
  if (base + kBuckets <= cells_.size()) {
    const std::size_t b = bucket_of(paths);
    if (cells_[base + b].weight > 0.0) return cells_[base + b].mean;
    // Nearest observed bucket of the same strategy.
    for (std::size_t d = 1; d < kBuckets; ++d) {
      if (b >= d && cells_[base + b - d].weight > 0.0) {
        return cells_[base + b - d].mean;
      }
      if (b + d < kBuckets && cells_[base + b + d].weight > 0.0) {
        return cells_[base + b + d].mean;
      }
    }
  }
  return expected_locked();
}

double CostModel::expected_locked() const {
  double sum = 0.0;
  double weight = 0.0;
  for (const Cell& c : cells_) {
    sum += c.mean * c.weight;
    weight += c.weight;
  }
  return weight > 0.0 ? sum / weight : kTargetChunkMicros;
}

double CostModel::expected_micros() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return expected_locked();
}

std::size_t CostModel::suggest_chunk(std::size_t count, std::size_t workers,
                                     std::size_t min_chunk,
                                     std::size_t max_chunk) const {
  double est;
  double heavy = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    est = std::max(expected_locked(), 0.5);
    // The costliest adequately-observed strategy cell: in a mixed batch
    // the sizing cannot know which index hides a straggler, so every
    // chunk is bounded as if it were all stragglers. Cheap-only models
    // leave the guard far above the cost target (no over-splitting).
    for (const Cell& c : cells_) {
      if (c.weight >= kMinGuardWeight) heavy = std::max(heavy, c.mean);
    }
  }
  std::size_t chunk = static_cast<std::size_t>(
      std::max(1.0, kTargetChunkMicros / est));
  if (heavy > 0.0) {
    chunk = std::min(chunk, static_cast<std::size_t>(std::max(
                                1.0, kStragglerBudgetMicros / heavy)));
  }
  const std::size_t by_count =
      std::max<std::size_t>(1, count / (kChunksPerWorker *
                                        std::max<std::size_t>(1, workers)));
  chunk = std::min(chunk, by_count);
  chunk = std::min(chunk, std::max<std::size_t>(1, max_chunk));
  chunk = std::max(chunk, std::max<std::size_t>(1, min_chunk));
  return chunk;
}

}  // namespace wdag::core
