#pragma once
// Per-strategy solve-cost model driving the stealing scheduler's
// cost-aware chunk sizing (core/batch.hpp).
//
// The batch engine feeds every solved instance's (strategy, family size,
// micros) back into the model as an exponentially weighted moving average
// keyed by StrategyId and a log2 size bucket — the same keying the
// classify-driven dispatch uses to pick the strategy, so the model learns
// exactly the cost structure dispatch induces. Before any observation the
// built-in strategies carry priors reflecting their dispatch tiers
// (Theorem 1 replay is cheap, DSATUR mid, exact branch-and-bound orders
// of magnitude heavier), so even a cold model splits exact-heavy
// workloads fine and batches cheap structural ones coarse.
//
// An api::Engine owns one CostModel for its lifetime: sweeps and repeated
// batches keep refining the same estimates.

#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

#include "core/solver.hpp"

namespace wdag::core {

/// One solved instance's cost observation.
struct CostSample {
  StrategyId strategy = 0;
  std::size_t paths = 0;  ///< family size (the bucket key)
  double micros = 0.0;    ///< observed wall-clock solve cost
};

/// Thread-safe EWMA table of solve micros per (strategy, size bucket).
class CostModel {
 public:
  /// Starts from the built-in strategy priors (low weight, so real
  /// observations dominate within one chunk).
  CostModel();

  /// Folds a batch of observations in (one lock per call — callers batch
  /// a chunk's worth of samples rather than locking per instance).
  void observe(std::span<const CostSample> samples);

  /// Expected micros for one (strategy, size) cell; falls back to the
  /// strategy's nearest observed bucket, then to expected_micros().
  [[nodiscard]] double estimate_micros(StrategyId strategy,
                                       std::size_t paths) const;

  /// Observation-weighted mean micros per instance across every cell —
  /// the dispatch-share-weighted cost the chunk sizing works from.
  [[nodiscard]] double expected_micros() const;

  /// Instances per chunk for a `count`-instance batch on `workers`
  /// workers: targets ~2ms of expected work per chunk, additionally caps
  /// the size so a chunk filled with the costliest observed strategy's
  /// instances stays bounded (~8ms) — chunk sizing cannot know which
  /// index hides a straggler, so heavy-strategy workloads split fine
  /// while cheap-only workloads batch coarse — keeps at least ~8 chunks
  /// per worker for the stealing scheduler to balance with, and clamps
  /// into [min_chunk, max_chunk].
  [[nodiscard]] std::size_t suggest_chunk(std::size_t count,
                                          std::size_t workers,
                                          std::size_t min_chunk,
                                          std::size_t max_chunk) const;

 private:
  struct Cell {
    double mean = 0.0;    ///< EWMA of observed micros
    double weight = 0.0;  ///< saturating observation count
  };

  static constexpr std::size_t kBuckets = 16;  ///< log2(paths), clamped
  static std::size_t bucket_of(std::size_t paths);

  [[nodiscard]] double expected_locked() const;

  mutable std::mutex mu_;
  /// Dense [strategy * kBuckets + bucket]; grown when a user-registered
  /// strategy beyond the built-ins is first observed.
  std::vector<Cell> cells_;
};

}  // namespace wdag::core
