#include "core/driver.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <thread>
#include <utility>

#include "core/json_min.hpp"
#include "core/transport.hpp"
#include "util/check.hpp"
#include "util/subprocess.hpp"
#include "util/timer.hpp"

namespace wdag::core {

namespace {

/// Timings with millisecond precision — enough for logs, and short.
std::string fmt_seconds(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// A fault-injection hook read from the DRIVER's environment
/// (WDAG_DRIVE_FAIL_SHARD / WDAG_DRIVE_SLOW_SHARD). The driver forwards
/// the variable ONLY to attempt 0 of the shard named by its leading
/// integer and strips it from every other child, so the hook exercises
/// exactly one failure/straggle and the retry/speculation recovers.
struct Hook {
  bool set = false;
  std::size_t shard = 0;
  std::string name;
  std::string value;
};

Hook read_hook(const char* name) {
  Hook h;
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return h;
  h.set = true;
  h.name = name;
  h.value = v;
  h.shard = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  return h;
}

/// One live attempt, on whichever transport started it.
struct Attempt {
  std::unique_ptr<TransportAttempt> handle;
  std::size_t transport;  ///< index into the drive's transport list
  std::size_t number;     ///< 0-based attempt counter of the shard
  double started_at;      ///< drive-clock time of the start
  std::string out_path;   ///< tmp path this attempt writes its shard CSV to
  bool speculative;
};

/// Driver-side bookkeeping of one shard of the plan.
struct ShardState {
  std::vector<Attempt> live;
  std::size_t attempts = 0;  ///< dispatches so far (speculative included)
  std::size_t failures = 0;  ///< attempts that exited bad / timed out
  std::size_t retries = 0;   ///< re-dispatches actually scheduled
  bool speculated = false;
  bool resumed = false;      ///< revived from a previous run's journal
  bool done = false;
  bool pending = true;       ///< wants a (re)dispatch
  double ready_at = 0.0;     ///< backoff gate for the next dispatch
  ShardCsv result;           ///< the winning validated output
  std::size_t row_count = 0;
  double win_seconds = 0.0;
  std::string worker;        ///< transport id of the winning attempt
  std::string last_error;
};

double median_of(std::vector<double> v) {
  std::nth_element(v.begin(), v.begin() + (v.size() - 1) / 2, v.end());
  return v[(v.size() - 1) / 2];
}

/// Consecutive distinct-shard failures before dispatch is quarantined
/// (the escalating drive-level pause; fail_fast then aborts outright).
constexpr std::size_t kQuarantineAfter = 3;

// ---------------------------------------------------------------------------
// Graceful shutdown: SIGINT/SIGTERM set a flag the single-threaded loop
// checks once per iteration — children are killed, the journal is already
// durable, and drive() throws DriveInterrupted.
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_drive_signal = 0;

void drive_signal_handler(int sig) { g_drive_signal = sig; }

/// Installs the drive's SIGINT/SIGTERM handlers for the duration of one
/// drive() call and restores the previous dispositions on destruction.
class SignalScope {
 public:
  SignalScope() {
    g_drive_signal = 0;
    prev_int_ = std::signal(SIGINT, &drive_signal_handler);
    prev_term_ = std::signal(SIGTERM, &drive_signal_handler);
  }
  ~SignalScope() {
    if (prev_int_ != SIG_ERR) std::signal(SIGINT, prev_int_);
    if (prev_term_ != SIG_ERR) std::signal(SIGTERM, prev_term_);
  }
  SignalScope(const SignalScope&) = delete;
  SignalScope& operator=(const SignalScope&) = delete;

 private:
  using Handler = void (*)(int);
  Handler prev_int_;
  Handler prev_term_;
};

/// Scoped sweep of the drive's files, exception-safe by construction.
/// Scratch (manifests, attempt tmp files) is always removed; committed
/// shard outputs and the journal are removed only after a SUCCESSFUL
/// drive — a failed or interrupted drive keeps exactly the state
/// `resume` needs. keep disables the sweep entirely.
struct CleanupGuard {
  const std::vector<std::string>* scratch = nullptr;
  const std::vector<std::string>* committed = nullptr;
  bool keep = false;
  bool success = false;
  ~CleanupGuard() {
    if (keep) return;
    for (const std::string& f : *scratch) std::remove(f.c_str());
    if (!success) return;
    for (const std::string& f : *committed) std::remove(f.c_str());
  }
};

/// The journal's first line: enough identity to refuse resuming a
/// foreign plan's work dir.
std::string journal_header_json(const ShardPlan& plan) {
  std::string s = "{\"journal\":\"wdag-drive\"";
  s += ",\"version\":" + std::to_string(kDriveJournalVersion);
  s += ",\"plan\":\"" + minjson::hex16(plan.id()) + "\"";
  s += ",\"request\":\"" + minjson::hex16(plan.request_hash()) + "\"";
  s += ",\"shards\":" + std::to_string(plan.shards());
  s += "}";
  return s;
}

/// One validated completion. `rel_path` is relative to the work dir so a
/// moved work dir stays resumable.
std::string journal_entry_json(std::size_t shard, std::size_t attempt,
                               std::size_t rows, double seconds,
                               const std::string& rel_path,
                               std::uint64_t request_hash) {
  std::string s = "{\"shard\":" + std::to_string(shard);
  s += ",\"attempt\":" + std::to_string(attempt);
  s += ",\"rows\":" + std::to_string(rows);
  s += ",\"seconds\":" + fmt_seconds(seconds);
  s += ",\"path\":\"" + json_escape(rel_path) + "\"";
  s += ",\"request\":\"" + minjson::hex16(request_hash) + "\"";
  s += "}";
  return s;
}

}  // namespace

std::string DriveEvent::to_json() const {
  std::string s = "{\"ev\":\"" + json_escape(kind) + "\"";
  s += ",\"shard\":" + std::to_string(shard);
  s += ",\"attempt\":" + std::to_string(attempt);
  s += ",\"t\":" + fmt_seconds(at_seconds);
  s += ",\"elapsed\":" + fmt_seconds(elapsed_seconds);
  s += ",\"exit\":" + std::to_string(exit_code);
  if (!worker.empty()) s += ",\"worker\":\"" + json_escape(worker) + "\"";
  if (!detail.empty()) s += ",\"detail\":\"" + json_escape(detail) + "\"";
  s += "}";
  return s;
}

util::Table DriveReport::progress_table() const {
  util::Table table("drive",
                    {"shard", "attempts", "retries", "speculated", "resumed",
                     "worker", "seconds", "rows"});
  for (const DriveShardStats& s : shards) {
    table.add_row({static_cast<long long>(s.shard),
                   static_cast<long long>(s.attempts),
                   static_cast<long long>(s.retries),
                   std::string(s.speculated ? "yes" : "no"),
                   std::string(s.resumed ? "yes" : "no"), s.worker,
                   s.seconds, static_cast<long long>(s.rows)});
  }
  return table;
}

DriveReport drive(const ShardPlan& plan, const DriveOptions& options,
                  std::ostream& out, const DriveEventFn& on_event) {
  WDAG_REQUIRE(!options.wdag_binary.empty(),
               "drive: options.wdag_binary must be set");
  WDAG_REQUIRE(!options.work_dir.empty(),
               "drive: options.work_dir must be set");
  WDAG_REQUIRE(options.timeout_seconds >= 0.0,
               "drive: timeout_seconds must be >= 0");
  WDAG_REQUIRE(options.backoff_seconds >= 0.0,
               "drive: backoff_seconds must be >= 0");
  WDAG_REQUIRE(options.speculate_factor >= 0.0,
               "drive: speculate_factor must be >= 0");
  WDAG_REQUIRE(options.speculate_min_completed >= 1,
               "drive: speculate_min_completed must be >= 1");

  const std::size_t shard_count = plan.shards();
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t default_local_slots =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   shard_count, hw == 0 ? 1 : hw));

  // The transport pool: remote workers first (dispatch prefers them),
  // the local subprocess pool last. With remotes configured, workers == 0
  // means "no local slots" — unless every remote goes unhealthy, when the
  // degradation path below raises emergency local slots rather than
  // stalling the drive.
  std::vector<std::unique_ptr<WorkerTransport>> transports;
  TcpTransport::Config tcp_config;
  tcp_config.connect_timeout_ms = options.connect_timeout_ms;
  tcp_config.probe_interval_seconds = options.probe_interval_seconds;
  tcp_config.probe_timeout_ms = options.probe_timeout_ms;
  tcp_config.probe_miss_budget = options.probe_miss_budget;
  for (const std::string& endpoint : options.remote_workers) {
    transports.push_back(std::make_unique<TcpTransport>(endpoint,
                                                        tcp_config));
  }
  const std::size_t remote_count = transports.size();
  std::size_t local_slots = options.workers;
  if (local_slots == 0 && remote_count == 0) {
    local_slots = default_local_slots;
  }
  LocalTransport::Config local_config;
  local_config.wdag_binary = options.wdag_binary;
  local_config.slots = local_slots;
  local_config.worker_threads = options.worker_threads;
  local_config.schedule = options.worker_schedule;
  auto local_owned = std::make_unique<LocalTransport>(local_config);
  LocalTransport* local = local_owned.get();
  transports.push_back(std::move(local_owned));

  const std::string journal_path =
      options.work_dir + "/" + std::string(kDriveJournalFile);
  const auto committed_rel = [](std::size_t s) {
    return "shard." + std::to_string(s) + ".csv";
  };

  // Crash-test hook: SIGKILL ourselves right after the Nth completion of
  // THIS run is journaled — no cleanup, no flush, no destructors. The
  // honest way to prove the journal + committed outputs alone are enough
  // to resume. Never forwarded to children.
  std::size_t kill_driver_after = 0;
  if (const char* v = std::getenv("WDAG_DRIVE_KILL_DRIVER_AFTER")) {
    kill_driver_after = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }

  const Hook fail_hook = read_hook("WDAG_DRIVE_FAIL_SHARD");
  const Hook slow_hook = read_hook("WDAG_DRIVE_SLOW_SHARD");

  util::Timer timer;
  const auto now = [&timer] { return timer.seconds(); };
  const auto emit = [&](std::string kind, std::size_t shard,
                        std::size_t attempt, double elapsed, int exit_code,
                        std::string detail, std::string worker = "") {
    if (!on_event) return;
    DriveEvent ev;
    ev.kind = std::move(kind);
    ev.shard = shard;
    ev.attempt = attempt;
    ev.at_seconds = now();
    ev.elapsed_seconds = elapsed;
    ev.exit_code = exit_code;
    ev.worker = std::move(worker);
    ev.detail = std::move(detail);
    on_event(ev);
  };

  std::vector<ShardState> st(shard_count);
  std::vector<std::size_t> in_flight(transports.size(), 0);
  std::size_t live_total = 0;
  std::size_t completed = 0;
  std::size_t committed_this_run = 0;
  std::size_t speculations = 0;
  std::size_t resumed_count = 0;
  std::size_t quarantines = 0;
  std::size_t redispatches = 0;
  bool degraded = false;
  std::vector<double> win_times;
  std::size_t next_flush = 0;  ///< contiguous streaming frontier
  bool header_written = false;

  // Worker-health bookkeeping: the length of the current run of
  // consecutive failed attempts, and whether it spans >= 2 distinct
  // shards (systemic — a sick machine — rather than one bad shard).
  std::size_t consec_failures = 0;
  std::size_t consec_first_shard = 0;
  bool consec_distinct = false;
  double quarantine_until = 0.0;
  std::string systemic_error;

  // Declared before anything that may throw, so the sweep always runs.
  std::vector<std::string> scratch_files;
  std::vector<std::string> committed_files;
  CleanupGuard cleanup{&scratch_files, &committed_files, options.keep_outputs,
                       /*success=*/false};

  SignalScope signal_scope;

  // -------------------------------------------------------------------
  // Resume pre-pass: replay the journal, re-validating every claimed
  // completion from scratch. Entries are hints — only an output that
  // passes read_shard_csv + plan identity + the journaled row count
  // marks its shard done; anything else re-runs.
  // -------------------------------------------------------------------
  bool journal_reusable = false;
  if (options.resume) {
    std::ifstream jf(journal_path);
    std::string line;
    bool saw_header = false;
    while (jf.good() && std::getline(jf, line)) {
      if (line.empty()) continue;
      if (!saw_header) {
        saw_header = true;
        minjson::JsonValue header;
        try {
          header = minjson::JsonParser(line, "drive journal").parse();
        } catch (const std::exception& e) {
          // A torn header means the previous drive died before its first
          // fsync finished — nothing recoverable, nothing lost: run fresh.
          emit("resume-skip", 0, 0, 0.0, 0,
               std::string("journal header unreadable (") + e.what() +
                   "); starting fresh");
          break;
        }
        // A PARSABLE header that disagrees is a hard error: silently
        // resuming a foreign plan's work dir would merge foreign rows.
        const std::string magic =
            minjson::req_str(header, "journal", "drive journal");
        WDAG_REQUIRE(magic == "wdag-drive",
                     "drive journal '" + journal_path +
                         "': not a wdag drive journal (magic '" + magic +
                         "')");
        const std::uint64_t version =
            minjson::req_u64(header, "version", "drive journal");
        WDAG_REQUIRE(
            version == static_cast<std::uint64_t>(kDriveJournalVersion),
            "drive journal '" + journal_path + "': unsupported version " +
                std::to_string(version) + " (this build reads version " +
                std::to_string(kDriveJournalVersion) + ")");
        const std::uint64_t journal_plan =
            minjson::req_hex(header, "plan", "drive journal");
        WDAG_REQUIRE(journal_plan == plan.id(),
                     "drive journal '" + journal_path +
                         "' belongs to a different plan (journal " +
                         minjson::hex16(journal_plan) + ", this drive " +
                         minjson::hex16(plan.id()) +
                         ") — use a fresh --work-dir or drop --resume");
        journal_reusable = true;
        continue;
      }
      std::size_t shard = shard_count;  // invalid until parsed
      try {
        const minjson::JsonValue entry =
            minjson::JsonParser(line, "drive journal").parse();
        shard = static_cast<std::size_t>(
            minjson::req_u64(entry, "shard", "drive journal"));
        WDAG_REQUIRE(shard < shard_count,
                     "journal entry names shard " + std::to_string(shard) +
                         " of a " + std::to_string(shard_count) +
                         "-shard plan");
        const std::uint64_t request =
            minjson::req_hex(entry, "request", "drive journal");
        WDAG_REQUIRE(request == plan.request_hash(),
                     "journal entry request hash mismatch");
        if (st[shard].done) continue;  // duplicate entry (older resume)
        const std::size_t rows = static_cast<std::size_t>(
            minjson::req_u64(entry, "rows", "drive journal"));
        const double seconds =
            minjson::req_double(entry, "seconds", "drive journal");
        const std::string rel =
            minjson::req_str(entry, "path", "drive journal");
        const std::string path = options.work_dir + "/" + rel;
        ShardCsv csv = read_shard_csv_file(path);
        WDAG_REQUIRE(csv.manifest.plan_id == plan.id() &&
                         csv.manifest.shard == shard,
                     "committed output '" + path +
                         "' belongs to a different plan or shard");
        WDAG_REQUIRE(csv.row_count == rows,
                     "committed output '" + path + "' has " +
                         std::to_string(csv.row_count) +
                         " rows, journal recorded " + std::to_string(rows));
        ShardState& sh = st[shard];
        sh.result = std::move(csv);
        sh.row_count = sh.result.row_count;
        sh.win_seconds = seconds;
        sh.worker = "journal";
        sh.resumed = true;
        sh.done = true;
        sh.pending = false;
        ++completed;
        ++resumed_count;
        // Seed the speculation median with the recorded runtime so a
        // resumed drive with zero fresh completions never takes a
        // median of nothing.
        if (seconds > 0.0) win_times.push_back(seconds);
        committed_files.push_back(path);
        emit("resume", shard, 0, seconds, 0,
             "validated " + rel + " (" + std::to_string(sh.row_count) +
                 " rows)");
      } catch (const std::exception& e) {
        emit("resume-skip", shard < shard_count ? shard : 0, 0, 0.0, 0,
             e.what());
      }
    }
  }

  // Materialize the manifests the workers will run — atomically, so a
  // manifest a worker can open is always complete. The JSON line is kept
  // in memory too: remote transports send it down the wire verbatim.
  std::vector<std::string> manifest_paths(shard_count);
  std::vector<std::string> manifest_jsons(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    manifest_paths[s] =
        options.work_dir + "/manifest." + std::to_string(s) + ".json";
    manifest_jsons[s] = manifest_to_json(plan.manifest(s));
    util::write_file_atomic(manifest_paths[s], manifest_jsons[s] + "\n");
    scratch_files.push_back(manifest_paths[s]);
  }

  // The recovery journal: append to a verified same-plan journal, start
  // fresh (truncate + header) otherwise.
  util::DurableAppendFile journal(journal_path, /*truncate=*/!journal_reusable);
  if (!journal_reusable) journal.append_line(journal_header_json(plan));
  committed_files.push_back(journal_path);

  const auto kill_all = [&st, &live_total, &in_flight] {
    for (ShardState& sh : st) {
      for (Attempt& a : sh.live) {
        if (!a.handle) continue;  // moved-from husk
        a.handle->kill();
        a.handle->wait();
        --live_total;
        --in_flight[a.transport];
      }
      sh.live.clear();
    }
  };

  /// The first healthy transport with a free slot, remote-first;
  /// transports.size() when every slot is busy or unhealthy.
  const auto pick_transport = [&]() -> std::size_t {
    for (std::size_t t = 0; t < transports.size(); ++t) {
      if (!transports[t]->healthy()) continue;
      if (in_flight[t] < transports[t]->slots()) return t;
    }
    return transports.size();
  };

  const long self_pid = util::current_process_id();
  const auto dispatch = [&](std::size_t s, std::size_t transport,
                            bool speculative) {
    ShardState& sh = st[s];
    const std::size_t number = sh.attempts;
    // Attempts write to crash-unique tmp paths: the committed name
    // shard.<s>.csv appears only through the post-validation
    // fsync+rename, and an orphan of a crashed previous driver
    // (different pid) can never collide with this drive's attempts.
    AttemptSpec spec;
    spec.shard = s;
    spec.number = number;
    spec.manifest_path = manifest_paths[s];
    spec.manifest_json = manifest_jsons[s];
    spec.out_path = options.work_dir + "/shard." + std::to_string(s) + ".a" +
                    std::to_string(number) + ".p" +
                    std::to_string(self_pid) + ".csv.tmp";

    // Fault-injection hooks reach attempt 0 of their target shard only;
    // every other child gets them stripped so retries succeed. The
    // driver-kill hook is stripped from every child unconditionally.
    // (Remote attempts carry no env: worker-side hooks live in the
    // worker's own environment.)
    spec.subprocess.unset_env = {"WDAG_DRIVE_FAIL_SHARD",
                                 "WDAG_DRIVE_SLOW_SHARD",
                                 "WDAG_DRIVE_KILL_DRIVER_AFTER"};
    if (fail_hook.set && fail_hook.shard == s && number == 0) {
      spec.subprocess.env.emplace_back(fail_hook.name, fail_hook.value);
    }
    if (slow_hook.set && slow_hook.shard == s && number == 0) {
      spec.subprocess.env.emplace_back(slow_hook.name, slow_hook.value);
    }

    Attempt a{transports[transport]->start(spec), transport, number, now(),
              spec.out_path, speculative};
    scratch_files.push_back(a.out_path);
    ++sh.attempts;
    ++live_total;
    ++in_flight[transport];
    emit(speculative ? "speculate" : "dispatch", s, number, 0.0, 0,
         a.handle->describe(), transports[transport]->id());
    sh.live.push_back(std::move(a));
  };

  // One failed attempt just landed on shard `s`: extend/reset the
  // consecutive-failure run and derive quarantine / fail-fast state.
  const auto note_failure = [&](std::size_t s) {
    if (consec_failures == 0) {
      consec_first_shard = s;
      consec_distinct = false;
    } else if (s != consec_first_shard) {
      consec_distinct = true;
    }
    ++consec_failures;
    // Failures confined to ONE shard are the retry budget's business.
    if (!consec_distinct) return;
    if (options.fail_fast > 0 && consec_failures >= options.fail_fast &&
        systemic_error.empty()) {
      systemic_error =
          "drive: systemic failure — " + std::to_string(consec_failures) +
          " consecutive failed attempts across distinct shards (fail-fast "
          "threshold " +
          std::to_string(options.fail_fast) +
          "); last error: " + st[s].last_error;
      return;
    }
    if (consec_failures >= kQuarantineAfter) {
      const unsigned shift = static_cast<unsigned>(
          std::min<std::size_t>(consec_failures - kQuarantineAfter, 10));
      const double pause =
          options.backoff_seconds * static_cast<double>(1ULL << shift);
      quarantine_until = std::max(quarantine_until, now() + pause);
      ++quarantines;
      emit("quarantine", s, 0, 0.0, 0,
           std::to_string(consec_failures) +
               " consecutive failures across distinct shards; pausing "
               "dispatch " +
               fmt_seconds(pause) + "s");
    }
  };

  try {
    for (;;) {
      // 0. Graceful shutdown: kill the children and leave a resumable
      //    work dir (the journal is already durable line by line).
      if (g_drive_signal != 0) {
        const int sig = static_cast<int>(g_drive_signal);
        emit("interrupt", 0, 0, 0.0, 0,
             "signal " + std::to_string(sig) + " after " +
                 std::to_string(completed) + "/" +
                 std::to_string(shard_count) + " shard(s)");
        kill_all();
        throw DriveInterrupted(
            sig, "drive: interrupted by signal " + std::to_string(sig) +
                     " with " + std::to_string(completed) + "/" +
                     std::to_string(shard_count) +
                     " shard(s) complete; completed shards are journaled in "
                     "'" +
                     options.work_dir + "' — re-run with --resume");
      }

      // 0b. Remote-worker health: drain the probers' events. A worker
      //     crossing into unhealthy has its in-flight attempts killed
      //     and re-queued on the spot — WITHOUT touching sh.failures or
      //     the retry budget: the shard did nothing wrong, its machine
      //     did. When the LAST remote goes dark and no local slots were
      //     configured, raise emergency local slots instead of stalling.
      for (std::size_t t = 0; t < remote_count; ++t) {
        for (const ProbeEvent& pe : transports[t]->drain_probe_events()) {
          const char* kind = pe.kind == ProbeEvent::Kind::kMiss ? "probe-miss"
                             : pe.kind == ProbeEvent::Kind::kUnhealthy
                                 ? "unhealthy"
                                 : "recovered";
          emit(kind, 0, 0, 0.0, 0, pe.detail, transports[t]->id());
          if (pe.kind != ProbeEvent::Kind::kUnhealthy) continue;
          for (ShardState& sh : st) {
            std::vector<Attempt> keep;
            keep.reserve(sh.live.size());
            for (Attempt& a : sh.live) {
              if (a.transport != t) {
                keep.push_back(std::move(a));
                continue;
              }
              a.handle->kill();
              a.handle->wait();
              --live_total;
              --in_flight[t];
              ++redispatches;
              const std::size_t shard_idx =
                  static_cast<std::size_t>(&sh - st.data());
              emit("redispatch", shard_idx, a.number,
                   now() - a.started_at, 0,
                   "worker went unhealthy mid-attempt; re-queueing "
                   "without burning retry budget",
                   transports[t]->id());
              if (a.speculative) {
                sh.speculated = false;  // may speculate again elsewhere
              } else if (!sh.done) {
                sh.pending = true;
                sh.ready_at = 0.0;  // no backoff: the shard is innocent
              }
            }
            sh.live = std::move(keep);
          }
        }
      }
      if (remote_count > 0 && !degraded && local->slots() == 0) {
        bool any_remote_healthy = false;
        for (std::size_t t = 0; t < remote_count; ++t) {
          if (transports[t]->healthy()) any_remote_healthy = true;
        }
        if (!any_remote_healthy) {
          degraded = true;
          local->set_slots(default_local_slots);
          emit("degrade", 0, 0, 0.0, 0,
               "every remote worker is unhealthy; raising " +
                   std::to_string(default_local_slots) +
                   " emergency local slot(s)",
               local->id());
        }
      }

      // 1. Stream the merge frontier FIRST: an all-resumed drive must
      //    emit its bytes before the exit check below. Contiguous shards
      //    flush in global order as they land (striped plans interleave
      //    after the last shard).
      if (plan.layout() == ShardLayout::kContiguous) {
        while (next_flush < shard_count && st[next_flush].done) {
          if (!header_written) {
            out << shard_csv_column_header() << '\n';
            header_written = true;
          }
          out << st[next_flush].result.rows;
          st[next_flush].result.rows.clear();
          st[next_flush].result.rows.shrink_to_fit();
          ++next_flush;
        }
      }

      if (completed >= shard_count) break;

      // 2+3. Dispatch and speculation both pause while a quarantine
      //      window is open — systemic failures gate ALL new work, not
      //      one shard's.
      if (now() >= quarantine_until) {
        // 2. Dispatch every shard that wants an attempt and cleared its
        //    backoff, while healthy transport slots remain (remote slots
        //    are preferred — pick_transport scans them first).
        for (std::size_t s = 0; s < shard_count; ++s) {
          ShardState& sh = st[s];
          if (sh.done || !sh.pending || now() < sh.ready_at) continue;
          const std::size_t t = pick_transport();
          if (t == transports.size()) break;  // all slots busy/unhealthy
          sh.pending = false;
          dispatch(s, t, /*speculative=*/false);
        }

        // 3. Speculative re-execution of stragglers: once enough shards
        //    have finished to estimate a median, a shard whose sole
        //    attempt has overrun speculate_factor x that median gets one
        //    duplicate; whichever attempt validates first wins.
        if (options.speculate_factor > 0.0 &&
            completed >= options.speculate_min_completed &&
            !win_times.empty()) {
          const double median = median_of(win_times);
          const double threshold = options.speculate_factor * median;
          for (std::size_t s = 0; s < shard_count; ++s) {
            ShardState& sh = st[s];
            if (sh.done || sh.speculated || sh.live.size() != 1) continue;
            const double running = now() - sh.live.front().started_at;
            if (running <= threshold) continue;
            const std::size_t t = pick_transport();
            if (t == transports.size()) break;
            sh.speculated = true;
            ++speculations;
            dispatch(s, t, /*speculative=*/true);
          }
        }
      }

      // 4. Poll live attempts: reap exits, validate + commit + journal
      //    outputs, enforce the timeout, settle races.
      for (std::size_t s = 0; s < shard_count; ++s) {
        ShardState& sh = st[s];
        if (sh.live.empty()) continue;
        std::vector<Attempt> still_running;
        still_running.reserve(sh.live.size());
        for (Attempt& a : sh.live) {
          const std::string worker_id = transports[a.transport]->id();
          if (sh.done) {  // a sibling attempt won this very pass
            a.handle->kill();
            a.handle->wait();
            --live_total;
            --in_flight[a.transport];
            continue;
          }
          std::optional<int> code = a.handle->poll();
          const double ran = now() - a.started_at;
          if (!code.has_value()) {
            if (options.timeout_seconds > 0.0 &&
                ran > options.timeout_seconds) {
              a.handle->kill();
              a.handle->wait();
              --live_total;
              --in_flight[a.transport];
              ++sh.failures;
              sh.last_error = "timed out after " + fmt_seconds(ran) + "s";
              emit("timeout", s, a.number, ran, 0, sh.last_error,
                   worker_id);
              note_failure(s);
            } else {
              still_running.push_back(std::move(a));
            }
            continue;
          }
          --live_total;
          --in_flight[a.transport];
          std::string why;
          if (*code == 0) {
            // Exit 0 alone proves nothing — only a fully validated
            // shard CSV of THIS plan may commit and merge.
            try {
              ShardCsv csv = read_shard_csv_file(a.out_path);
              WDAG_REQUIRE(csv.manifest.plan_id == plan.id() &&
                               csv.manifest.shard == s,
                           "shard output '" + a.out_path +
                               "' belongs to a different plan or shard");
              // Atomic commit: fsync the validated bytes, rename into
              // the final name, fsync the directory, THEN journal. A
              // crash at any point leaves either no committed file or a
              // complete one — never a torn one; a journal line always
              // refers to an already-committed file.
              const std::string rel = committed_rel(s);
              const std::string final_path = options.work_dir + "/" + rel;
              util::commit_file(a.out_path, final_path);
              committed_files.push_back(final_path);
              journal.append_line(journal_entry_json(
                  s, a.number, csv.row_count, ran, rel,
                  plan.request_hash()));
              sh.result = std::move(csv);
              sh.row_count = sh.result.row_count;
              sh.win_seconds = ran;
              sh.worker = worker_id;
              sh.done = true;
              ++completed;
              ++committed_this_run;
              win_times.push_back(ran);
              consec_failures = 0;  // a success breaks the sick-run
              consec_distinct = false;
              emit("complete", s, a.number, ran, 0,
                   a.speculative ? "speculative attempt won" : "",
                   worker_id);
              if (kill_driver_after > 0 &&
                  committed_this_run >= kill_driver_after) {
#ifdef SIGKILL
                std::raise(SIGKILL);
#endif
                std::abort();
              }
              continue;
            } catch (const std::exception& e) {
              why = e.what();
            }
          } else {
            why = a.handle->failure_detail();
            if (why.empty()) why = "exit code " + std::to_string(*code);
          }
          ++sh.failures;
          sh.last_error = why;
          emit("exit", s, a.number, ran, code.value_or(0), why, worker_id);
          note_failure(s);
        }
        sh.live = std::move(still_running);

        // 5. Every attempt of this shard has failed: retry with backoff,
        //    or give up — a drive never produces a partial merge (but a
        //    failed drive's committed shards stay resumable).
        if (!sh.done && sh.live.empty() && !sh.pending) {
          if (sh.failures > options.max_retries) {
            kill_all();
            throw InternalError(
                "drive: shard " + std::to_string(s) + " failed " +
                std::to_string(sh.failures) + " attempt(s) (max_retries=" +
                std::to_string(options.max_retries) +
                "); last error: " + sh.last_error +
                (completed > 0
                     ? "; completed shards are journaled in '" +
                           options.work_dir +
                           "' — re-run with --resume after fixing the cause"
                     : ""));
          }
          const unsigned shift = static_cast<unsigned>(
              std::min<std::size_t>(sh.failures - 1, 20));
          const double backoff =
              options.backoff_seconds * static_cast<double>(1ULL << shift);
          sh.pending = true;
          sh.ready_at = now() + backoff;
          ++sh.retries;
          emit("retry", s, sh.attempts, 0.0, 0,
               "backoff " + fmt_seconds(backoff) + "s");
        }
      }

      // The fail-fast abort is deferred to here: throwing mid-poll would
      // leave moved-from attempt husks in the shard states.
      if (!systemic_error.empty()) {
        kill_all();
        throw InternalError(
            systemic_error +
            (completed > 0 ? "; completed shards are journaled in '" +
                                 options.work_dir +
                                 "' — re-run with --resume on a healthy "
                                 "machine"
                           : ""));
      }

      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // When the last completion is a speculative win, its straggling rival
    // was parked in still_running BEFORE the winner validated and the
    // loop exited without another poll pass — reap it (and any sibling
    // losers) so no orphan outlives the drive holding inherited fds.
    kill_all();
  } catch (...) {
    kill_all();
    throw;
  }

  if (plan.layout() == ShardLayout::kStriped) {
    // The full revalidating merge (plan identity, coverage, interleave).
    std::vector<ShardCsv> all;
    all.reserve(shard_count);
    for (ShardState& sh : st) all.push_back(std::move(sh.result));
    out << merge_shard_csv(all);
  }
  out.flush();

  cleanup.success = true;

  DriveReport report;
  report.shards.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const ShardState& sh = st[s];
    report.shards.push_back({s, sh.attempts, sh.retries, sh.speculated,
                             sh.resumed, sh.win_seconds, sh.row_count,
                             sh.worker});
    report.retries += sh.retries;
  }
  report.speculations = speculations;
  report.resumed = resumed_count;
  report.quarantines = quarantines;
  report.redispatches = redispatches;
  report.wall_seconds = now();
  emit("done", 0, 0, report.wall_seconds, 0,
       std::to_string(shard_count) + " shard(s), " +
           std::to_string(report.retries) + " retry(ies), " +
           std::to_string(report.speculations) + " speculation(s), " +
           std::to_string(report.resumed) + " resumed, " +
           std::to_string(report.redispatches) + " redispatch(es)");
  return report;
}

}  // namespace wdag::core
