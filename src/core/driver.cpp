#include "core/driver.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <ostream>
#include <thread>
#include <utility>

#include "util/check.hpp"
#include "util/subprocess.hpp"
#include "util/timer.hpp"

namespace wdag::core {

namespace {

/// Timings with millisecond precision — enough for logs, and short.
std::string fmt_seconds(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// A fault-injection hook read from the DRIVER's environment
/// (WDAG_DRIVE_FAIL_SHARD / WDAG_DRIVE_SLOW_SHARD). The driver forwards
/// the variable ONLY to attempt 0 of the shard named by its leading
/// integer and strips it from every other child, so the hook exercises
/// exactly one failure/straggle and the retry/speculation recovers.
struct Hook {
  bool set = false;
  std::size_t shard = 0;
  std::string name;
  std::string value;
};

Hook read_hook(const char* name) {
  Hook h;
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return h;
  h.set = true;
  h.name = name;
  h.value = v;
  h.shard = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  return h;
}

/// One live worker subprocess executing `wdag shard run`.
struct Attempt {
  util::Subprocess proc;
  std::size_t number;    ///< 0-based attempt counter of the shard
  double started_at;     ///< drive-clock time of the spawn
  std::string out_path;  ///< where this attempt writes its shard CSV
  bool speculative;
};

/// Driver-side bookkeeping of one shard of the plan.
struct ShardState {
  std::vector<Attempt> live;
  std::size_t attempts = 0;  ///< dispatches so far (speculative included)
  std::size_t failures = 0;  ///< attempts that exited bad / timed out
  std::size_t retries = 0;   ///< re-dispatches actually scheduled
  bool speculated = false;
  bool done = false;
  bool pending = true;       ///< wants a (re)dispatch
  double ready_at = 0.0;     ///< backoff gate for the next dispatch
  ShardCsv result;           ///< the winning validated output
  std::size_t row_count = 0;
  double win_seconds = 0.0;
  std::string last_error;
};

double median_of(std::vector<double> v) {
  std::nth_element(v.begin(), v.begin() + (v.size() - 1) / 2, v.end());
  return v[(v.size() - 1) / 2];
}

}  // namespace

std::string DriveEvent::to_json() const {
  std::string s = "{\"ev\":\"" + json_escape(kind) + "\"";
  s += ",\"shard\":" + std::to_string(shard);
  s += ",\"attempt\":" + std::to_string(attempt);
  s += ",\"t\":" + fmt_seconds(at_seconds);
  s += ",\"elapsed\":" + fmt_seconds(elapsed_seconds);
  s += ",\"exit\":" + std::to_string(exit_code);
  if (!detail.empty()) s += ",\"detail\":\"" + json_escape(detail) + "\"";
  s += "}";
  return s;
}

util::Table DriveReport::progress_table() const {
  util::Table table("drive",
                    {"shard", "attempts", "retries", "speculated", "seconds",
                     "rows"});
  for (const DriveShardStats& s : shards) {
    table.add_row({static_cast<long long>(s.shard),
                   static_cast<long long>(s.attempts),
                   static_cast<long long>(s.retries),
                   std::string(s.speculated ? "yes" : "no"), s.seconds,
                   static_cast<long long>(s.rows)});
  }
  return table;
}

DriveReport drive(const ShardPlan& plan, const DriveOptions& options,
                  std::ostream& out, const DriveEventFn& on_event) {
  WDAG_REQUIRE(!options.wdag_binary.empty(),
               "drive: options.wdag_binary must be set");
  WDAG_REQUIRE(!options.work_dir.empty(),
               "drive: options.work_dir must be set");
  WDAG_REQUIRE(options.timeout_seconds >= 0.0,
               "drive: timeout_seconds must be >= 0");
  WDAG_REQUIRE(options.backoff_seconds >= 0.0,
               "drive: backoff_seconds must be >= 0");
  WDAG_REQUIRE(options.speculate_factor >= 0.0,
               "drive: speculate_factor must be >= 0");
  WDAG_REQUIRE(options.speculate_min_completed >= 1,
               "drive: speculate_min_completed must be >= 1");

  const std::size_t shard_count = plan.shards();
  std::size_t workers = options.workers;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = std::min<std::size_t>(shard_count, hw == 0 ? 1 : hw);
  }
  if (workers < 1) workers = 1;

  // Materialize the manifests the workers will run.
  std::vector<std::string> manifest_paths(shard_count);
  std::vector<std::string> created_files;
  for (std::size_t s = 0; s < shard_count; ++s) {
    manifest_paths[s] =
        options.work_dir + "/manifest." + std::to_string(s) + ".json";
    std::ofstream mf(manifest_paths[s]);
    mf << manifest_to_json(plan.manifest(s)) << "\n";
    WDAG_REQUIRE(mf.good(), "drive: cannot write manifest '" +
                                manifest_paths[s] + "'");
    mf.close();
    created_files.push_back(manifest_paths[s]);
  }

  const Hook fail_hook = read_hook("WDAG_DRIVE_FAIL_SHARD");
  const Hook slow_hook = read_hook("WDAG_DRIVE_SLOW_SHARD");

  util::Timer timer;
  const auto now = [&timer] { return timer.seconds(); };
  const auto emit = [&](std::string kind, std::size_t shard,
                        std::size_t attempt, double elapsed, int exit_code,
                        std::string detail) {
    if (!on_event) return;
    DriveEvent ev;
    ev.kind = std::move(kind);
    ev.shard = shard;
    ev.attempt = attempt;
    ev.at_seconds = now();
    ev.elapsed_seconds = elapsed;
    ev.exit_code = exit_code;
    ev.detail = std::move(detail);
    on_event(ev);
  };

  std::vector<ShardState> st(shard_count);
  std::size_t live_total = 0;
  std::size_t completed = 0;
  std::size_t speculations = 0;
  std::vector<double> win_times;
  std::size_t next_flush = 0;  ///< contiguous streaming frontier
  bool header_written = false;

  const auto kill_all = [&st, &live_total] {
    for (ShardState& sh : st) {
      for (Attempt& a : sh.live) {
        a.proc.kill();
        a.proc.wait();
        --live_total;
      }
      sh.live.clear();
    }
  };

  const auto dispatch = [&](std::size_t s, bool speculative) {
    ShardState& sh = st[s];
    const std::size_t number = sh.attempts;
    std::string out_path = options.work_dir + "/shard." + std::to_string(s) +
                           ".a" + std::to_string(number) + ".csv";
    // --quiet keeps the workers' inherited stdout clean: the driver may
    // be streaming the merged CSV there.
    std::vector<std::string> argv = {options.wdag_binary, "shard",     "run",
                                     "--manifest",        manifest_paths[s],
                                     "--out",             out_path,
                                     "--quiet"};
    if (options.worker_threads > 0) {
      argv.emplace_back("--threads");
      argv.emplace_back(std::to_string(options.worker_threads));
    }
    argv.emplace_back("--schedule");
    argv.emplace_back(schedule_name(options.worker_schedule));

    // Fault-injection hooks reach attempt 0 of their target shard only;
    // every other child gets them stripped so retries succeed.
    util::SubprocessOptions sp;
    sp.unset_env = {"WDAG_DRIVE_FAIL_SHARD", "WDAG_DRIVE_SLOW_SHARD"};
    if (fail_hook.set && fail_hook.shard == s && number == 0) {
      sp.env.emplace_back(fail_hook.name, fail_hook.value);
    }
    if (slow_hook.set && slow_hook.shard == s && number == 0) {
      sp.env.emplace_back(slow_hook.name, slow_hook.value);
    }

    Attempt a{util::Subprocess::spawn(argv, sp), number, now(),
              std::move(out_path), speculative};
    created_files.push_back(a.out_path);
    ++sh.attempts;
    ++live_total;
    emit(speculative ? "speculate" : "dispatch", s, number, 0.0, 0,
         "pid " + std::to_string(a.proc.pid()));
    sh.live.push_back(std::move(a));
  };

  try {
    while (completed < shard_count) {
      // 1. Dispatch every shard that wants an attempt and cleared its
      //    backoff, while worker slots remain.
      for (std::size_t s = 0; s < shard_count && live_total < workers; ++s) {
        ShardState& sh = st[s];
        if (sh.done || !sh.pending || now() < sh.ready_at) continue;
        sh.pending = false;
        dispatch(s, /*speculative=*/false);
      }

      // 2. Speculative re-execution of stragglers: once enough shards
      //    have finished to estimate a median, a shard whose sole
      //    attempt has overrun speculate_factor x that median gets one
      //    duplicate; whichever attempt validates first wins.
      if (options.speculate_factor > 0.0 &&
          completed >= options.speculate_min_completed) {
        const double median = median_of(win_times);
        const double threshold = options.speculate_factor * median;
        for (std::size_t s = 0; s < shard_count && live_total < workers;
             ++s) {
          ShardState& sh = st[s];
          if (sh.done || sh.speculated || sh.live.size() != 1) continue;
          const double running = now() - sh.live.front().started_at;
          if (running <= threshold) continue;
          sh.speculated = true;
          ++speculations;
          dispatch(s, /*speculative=*/true);
        }
      }

      // 3. Poll live attempts: reap exits, validate outputs, enforce the
      //    timeout, settle races.
      for (std::size_t s = 0; s < shard_count; ++s) {
        ShardState& sh = st[s];
        if (sh.live.empty()) continue;
        std::vector<Attempt> still_running;
        still_running.reserve(sh.live.size());
        for (Attempt& a : sh.live) {
          if (sh.done) {  // a sibling attempt won this very pass
            a.proc.kill();
            a.proc.wait();
            --live_total;
            continue;
          }
          std::optional<int> code = a.proc.poll();
          const double ran = now() - a.started_at;
          if (!code.has_value()) {
            if (options.timeout_seconds > 0.0 &&
                ran > options.timeout_seconds) {
              a.proc.kill();
              a.proc.wait();
              --live_total;
              ++sh.failures;
              sh.last_error = "timed out after " + fmt_seconds(ran) + "s";
              emit("timeout", s, a.number, ran, 0, sh.last_error);
            } else {
              still_running.push_back(std::move(a));
            }
            continue;
          }
          --live_total;
          std::string why;
          if (*code == 0) {
            // Exit 0 alone proves nothing — only a fully validated
            // shard CSV of THIS plan may merge.
            try {
              std::ifstream in(a.out_path);
              WDAG_REQUIRE(in.good(), "cannot open shard output '" +
                                          a.out_path + "'");
              ShardCsv csv = read_shard_csv(in, a.out_path);
              WDAG_REQUIRE(csv.manifest.plan_id == plan.id() &&
                               csv.manifest.shard == s,
                           "shard output '" + a.out_path +
                               "' belongs to a different plan or shard");
              sh.result = std::move(csv);
              sh.row_count = sh.result.row_count;
              sh.win_seconds = ran;
              sh.done = true;
              ++completed;
              win_times.push_back(ran);
              emit("complete", s, a.number, ran, 0,
                   a.speculative ? "speculative attempt won" : "");
              continue;
            } catch (const std::exception& e) {
              why = e.what();
            }
          } else {
            why = "exit code " + std::to_string(*code);
          }
          ++sh.failures;
          sh.last_error = why;
          emit("exit", s, a.number, ran, code.value_or(0), why);
        }
        sh.live = std::move(still_running);

        // 4. Every attempt of this shard has failed: retry with backoff,
        //    or give up — a drive never produces a partial merge.
        if (!sh.done && sh.live.empty() && !sh.pending) {
          if (sh.failures > options.max_retries) {
            kill_all();
            throw InternalError(
                "drive: shard " + std::to_string(s) + " failed " +
                std::to_string(sh.failures) + " attempt(s) (max_retries=" +
                std::to_string(options.max_retries) +
                "); last error: " + sh.last_error);
          }
          const unsigned shift = static_cast<unsigned>(
              std::min<std::size_t>(sh.failures - 1, 20));
          const double backoff =
              options.backoff_seconds * static_cast<double>(1ULL << shift);
          sh.pending = true;
          sh.ready_at = now() + backoff;
          ++sh.retries;
          emit("retry", s, sh.attempts, 0.0, 0,
               "backoff " + fmt_seconds(backoff) + "s");
        }
      }

      // 5. Stream the merge: contiguous shards flush in global order as
      //    they land (striped plans interleave after the last shard).
      if (plan.layout() == ShardLayout::kContiguous) {
        while (next_flush < shard_count && st[next_flush].done) {
          if (!header_written) {
            out << shard_csv_column_header() << '\n';
            header_written = true;
          }
          out << st[next_flush].result.rows;
          st[next_flush].result.rows.clear();
          st[next_flush].result.rows.shrink_to_fit();
          ++next_flush;
        }
      }

      if (completed < shard_count) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    // When the last completion is a speculative win, its straggling rival
    // was parked in still_running BEFORE the winner validated and the
    // loop exited without another poll pass — reap it (and any sibling
    // losers) so no orphan outlives the drive holding inherited fds.
    kill_all();
  } catch (...) {
    kill_all();
    throw;
  }

  if (plan.layout() == ShardLayout::kStriped) {
    // The full revalidating merge (plan identity, coverage, interleave).
    std::vector<ShardCsv> all;
    all.reserve(shard_count);
    for (ShardState& sh : st) all.push_back(std::move(sh.result));
    out << merge_shard_csv(all);
  }
  out.flush();

  if (!options.keep_outputs) {
    for (const std::string& f : created_files) std::remove(f.c_str());
  }

  DriveReport report;
  report.shards.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const ShardState& sh = st[s];
    report.shards.push_back({s, sh.attempts, sh.retries, sh.speculated,
                             sh.win_seconds, sh.row_count});
    report.retries += sh.retries;
  }
  report.speculations = speculations;
  report.wall_seconds = now();
  emit("done", 0, 0, report.wall_seconds, 0,
       std::to_string(shard_count) + " shard(s), " +
           std::to_string(report.retries) + " retry(ies), " +
           std::to_string(report.speculations) + " speculation(s)");
  return report;
}

}  // namespace wdag::core
