#pragma once
// Fault-tolerant execution of a full ShardPlan — the `wdag drive` engine
// (ROADMAP: "Distributed shard driver").
//
// drive() runs every shard of a plan through a pool of attempt slots
// behind the WorkerTransport abstraction (core/transport.hpp): local
// slots spawn `<wdag> shard run` subprocesses, remote slots send the
// manifest to long-lived `wdag worker` peers over TCP. The merge streams
// to an output stream, tolerating the failure modes that stall a
// hand-dispatched plan:
//
//   * crash / non-zero exit      -> bounded retry with exponential backoff
//   * hang (per-shard timeout)   -> kill, then retry
//   * invalid output             -> read_shard_csv validation failure is
//                                   treated exactly like a crash — a
//                                   truncated shard can never merge
//   * straggler                  -> speculative re-execution once a shard
//                                   runs longer than `speculate_factor` x
//                                   the median completed-shard time; the
//                                   first attempt whose output VALIDATES
//                                   wins, losers are killed and discarded
//   * systemic worker sickness   -> consecutive failures spanning DISTINCT
//                                   shards quarantine all dispatch with
//                                   escalating backoff, then fail fast
//                                   after `fail_fast` in a row — a sick
//                                   machine should not burn every shard's
//                                   full retry budget
//   * sick REMOTE worker         -> each TcpTransport pings its worker on
//                                   an interval; `probe_miss_budget`
//                                   consecutive misses take it out of
//                                   rotation and its in-flight attempts
//                                   are re-dispatched elsewhere WITHOUT
//                                   burning retry budget; probing
//                                   continues, so a recovered worker
//                                   rejoins. When every remote is down
//                                   and no local slots were configured,
//                                   the drive degrades to local-only
//                                   execution instead of stalling
//   * DRIVER death               -> the drive is a restartable transaction
//                                   over the work dir: each validated
//                                   shard output is committed atomically
//                                   (tmp + fsync + rename) and recorded in
//                                   a fsync'd `drive.journal`; a crashed,
//                                   OOM-killed or interrupted drive is
//                                   re-run with `resume = true`, which
//                                   RE-VALIDATES every journaled output
//                                   (a journal entry is a hint, never
//                                   proof) and runs only the remainder
//
// SIGINT/SIGTERM end a drive gracefully: children are killed and the loop
// throws DriveInterrupted with a resumable diagnostic — committed outputs
// and the journal stay on disk for the next run.
//
// The merge preserves PR 5's byte-determinism contract: every accepted
// shard output passes read_shard_csv (per-row global index check) and
// plan-identity checks before a byte is emitted, so the merged CSV is
// byte-identical to the unsharded `wdag batch --stream-csv` run — even
// when shards failed, were retried, raced speculative duplicates, or
// were revived from a previous run's journal. Contiguous plans stream
// shard payloads as they land in global order; striped plans interleave
// after the last shard lands.
//
// Observability: every lifecycle step (dispatch / exit / timeout / retry
// / speculate / complete / resume / resume-skip / quarantine / interrupt
// / done) is reported through an event callback as a typed DriveEvent
// that also renders as one JSON line — the CLI's --events log — and the
// final DriveReport carries per-shard attempt statistics (the CLI's
// --progress table). The --events stream is the human log; the journal
// is the recovery log.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch.hpp"
#include "core/shard.hpp"
#include "util/table.hpp"

namespace wdag::core {

/// Name of the durable recovery journal inside DriveOptions::work_dir: a
/// fsync-per-line JSON-lines file whose header stamps the plan id and
/// format version and whose entries record validated shard completions.
inline constexpr std::string_view kDriveJournalFile = "drive.journal";

/// Version of the journal format; readers reject any other version.
inline constexpr int kDriveJournalVersion = 1;

/// Knobs of the drive loop.
struct DriveOptions {
  /// Concurrent LOCAL worker subprocesses. 0 = min(shards, hardware
  /// threads) when `remote_workers` is empty; with remote workers
  /// configured, 0 means no local slots (remote-only, until degradation
  /// raises emergency local slots because every remote is unhealthy).
  std::size_t workers = 0;
  /// Remote `wdag worker` endpoints ("host:port"), one attempt slot
  /// each, dispatched remote-first behind the same validate-or-retry
  /// loop as local slots.
  std::vector<std::string> remote_workers;
  /// Retries allowed per shard AFTER its first attempt; exceeding this
  /// fails the whole drive (no partial merge is ever produced).
  std::size_t max_retries = 2;
  /// Per-attempt hard timeout in seconds; 0 disables. A timed-out
  /// attempt is killed and counts as a failure (then retried).
  double timeout_seconds = 0.0;
  /// Base retry backoff in seconds, doubled per consecutive failure of
  /// the same shard (also the base of the quarantine pause).
  double backoff_seconds = 0.25;
  /// Straggler threshold: once >= `speculate_min_completed` shards have
  /// completed, a shard whose sole attempt has run longer than
  /// speculate_factor x the median completed-shard time gets ONE
  /// speculative duplicate attempt. 0 disables speculation.
  double speculate_factor = 0.0;
  /// Completed shards required before speculation engages (>= 1).
  std::size_t speculate_min_completed = 1;
  /// Abort the drive after this many CONSECUTIVE failed attempts that
  /// span at least two distinct shards — a systemic fault (sick machine,
  /// bad binary), not a bad shard. Same-shard failure runs are left to
  /// the per-shard retry budget. 0 disables.
  std::size_t fail_fast = 8;
  /// Reuse validated shard outputs journaled in `work_dir` by a previous
  /// drive of the SAME plan: journaled outputs are re-validated through
  /// read_shard_csv + plan identity, verified shards are skipped, the
  /// remainder runs. A journal from a different plan is rejected.
  bool resume = false;
  /// Path of the wdag binary the workers execute (required).
  std::string wdag_binary;
  /// Scratch directory for manifests, the journal, and per-attempt shard
  /// outputs (required; must exist).
  std::string work_dir;
  /// --threads forwarded to every worker (0 = worker default).
  std::size_t worker_threads = 0;
  /// --schedule forwarded to every worker.
  Schedule worker_schedule = Schedule::kFixed;
  /// Keep committed shard files and the journal after a successful drive
  /// (default: a SUCCESSFUL drive deletes everything it created; failed
  /// or interrupted drives always keep committed outputs + journal so
  /// `resume` can reuse them).
  bool keep_outputs = false;
  /// Dial timeout of every remote attempt and probe connection (ms).
  int connect_timeout_ms = 1000;
  /// Seconds between health probes of each remote worker.
  double probe_interval_seconds = 2.0;
  /// Per-probe timeout (dial + pong) in ms.
  int probe_timeout_ms = 500;
  /// Consecutive probe misses before a remote worker is taken out of
  /// rotation (its in-flight attempts re-dispatch elsewhere); probing
  /// continues and a successful probe puts it back.
  std::size_t probe_miss_budget = 3;
};

/// One lifecycle event of a drive, also renderable as a JSON line.
/// Kinds: "dispatch", "speculate" (a speculative dispatch), "exit" (an
/// attempt failed: non-zero exit or invalid output), "timeout", "retry"
/// (a re-dispatch was scheduled), "complete" (a shard finished with a
/// validated, committed, journaled output), "resume" (a journaled output
/// re-validated and was skipped), "resume-skip" (a journal entry failed
/// re-validation; its shard re-runs), "quarantine" (systemic failures
/// paused all dispatch), "interrupt" (SIGINT/SIGTERM ended the drive),
/// "done" (the drive finished). Remote-worker health adds: "probe-miss"
/// (one failed probe), "unhealthy" (miss budget exhausted; out of
/// rotation), "recovered" (a probe succeeded; back in rotation),
/// "redispatch" (an in-flight attempt on a newly unhealthy worker was
/// killed and its shard re-queued, without burning retry budget), and
/// "degrade" (every remote is unhealthy and local emergency slots were
/// raised).
struct DriveEvent {
  std::string kind;
  std::size_t shard = 0;
  std::size_t attempt = 0;        ///< 0-based attempt number of the shard
  double at_seconds = 0.0;        ///< time since drive start
  double elapsed_seconds = 0.0;   ///< attempt (or drive, for "done") runtime
  int exit_code = 0;              ///< child exit code where applicable
  std::string worker;             ///< transport id ("local", "host:port")
  std::string detail;             ///< human-readable context (may be empty)

  /// The event as a single JSON line (stable key order, no newline).
  [[nodiscard]] std::string to_json() const;
};

/// Observer of drive lifecycle events; called from the drive loop thread.
using DriveEventFn = std::function<void(const DriveEvent&)>;

/// Thrown by drive() when SIGINT/SIGTERM ends the run: children are
/// killed, committed outputs and the journal remain on disk, and the
/// message says how to resume. signal() is the terminating signal (the
/// CLI exits 128 + signal).
class DriveInterrupted : public std::runtime_error {
 public:
  DriveInterrupted(int signal, const std::string& what)
      : std::runtime_error(what), signal_(signal) {}
  [[nodiscard]] int signal() const { return signal_; }

 private:
  int signal_;
};

/// Per-shard outcome statistics.
struct DriveShardStats {
  std::size_t shard = 0;
  std::size_t attempts = 0;    ///< dispatches, speculative ones included
  std::size_t retries = 0;     ///< failed attempts that were re-dispatched
  bool speculated = false;     ///< a speculative duplicate was launched
  bool resumed = false;        ///< revived from a previous run's journal
  double seconds = 0.0;        ///< runtime of the winning attempt
  std::size_t rows = 0;        ///< validated rows merged from this shard
  std::string worker;          ///< transport that produced the winning
                               ///< attempt ("local", "host:port",
                               ///< "journal" for resumed shards)
};

/// Outcome of a successful drive.
struct DriveReport {
  std::vector<DriveShardStats> shards;  ///< indexed by shard
  std::size_t retries = 0;              ///< total re-dispatches
  std::size_t speculations = 0;         ///< total speculative dispatches
  std::size_t resumed = 0;              ///< shards revived from the journal
  std::size_t quarantines = 0;          ///< systemic-failure pauses
  std::size_t redispatches = 0;         ///< attempts moved off unhealthy
                                        ///< workers (no retry budget burned)
  double wall_seconds = 0.0;

  /// Per-shard summary (the CLI's --progress table).
  [[nodiscard]] util::Table progress_table() const;
};

/// Executes every shard of `plan` via worker subprocesses and streams the
/// validated merge into `out` (byte-identical to the unsharded streaming
/// CSV of the plan's request). Throws wdag::InternalError when a shard
/// exhausts its retry budget, the fail-fast threshold trips, or the
/// platform cannot spawn subprocesses; throws DriveInterrupted on
/// SIGINT/SIGTERM. On failure nothing further is written to `out`, all
/// live workers are killed, and committed shard outputs plus the journal
/// stay in the work dir for `DriveOptions::resume`. `on_event` (optional)
/// observes every lifecycle event.
DriveReport drive(const ShardPlan& plan, const DriveOptions& options,
                  std::ostream& out, const DriveEventFn& on_event = {});

}  // namespace wdag::core
