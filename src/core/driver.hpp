#pragma once
// Fault-tolerant local execution of a full ShardPlan — the `wdag drive`
// engine (ROADMAP: "Distributed shard driver").
//
// drive() runs every shard of a plan through a pool of N worker
// subprocesses (each invoking `<wdag> shard run` on a generated manifest)
// and streams the validated merge to an output stream, tolerating the
// failure modes that stall a hand-dispatched plan:
//
//   * crash / non-zero exit      -> bounded retry with exponential backoff
//   * hang (per-shard timeout)   -> kill, then retry
//   * invalid output             -> read_shard_csv validation failure is
//                                   treated exactly like a crash — a
//                                   truncated shard can never merge
//   * straggler                  -> speculative re-execution once a shard
//                                   runs longer than `speculate_factor` x
//                                   the median completed-shard time; the
//                                   first attempt whose output VALIDATES
//                                   wins, losers are killed and discarded
//
// The merge preserves PR 5's byte-determinism contract: every accepted
// shard output passes read_shard_csv (per-row global index check) and
// plan-identity checks before a byte is emitted, so the merged CSV is
// byte-identical to the unsharded `wdag batch --stream-csv` run — even
// when shards failed, were retried, or were raced by speculative
// duplicates. Contiguous plans stream shard payloads as they land in
// global order; striped plans interleave after the last shard lands.
//
// Observability: every lifecycle step (dispatch / exit / timeout / retry
// / speculate / complete / done) is reported through an event callback as
// a typed DriveEvent that also renders as one JSON line — the CLI's
// --events log — and the final DriveReport carries per-shard attempt
// statistics (the CLI's --progress table).

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/shard.hpp"
#include "util/table.hpp"

namespace wdag::core {

/// Knobs of the drive loop.
struct DriveOptions {
  /// Concurrent worker subprocesses; 0 = min(shards, hardware threads).
  std::size_t workers = 0;
  /// Retries allowed per shard AFTER its first attempt; exceeding this
  /// fails the whole drive (no partial merge is ever produced).
  std::size_t max_retries = 2;
  /// Per-attempt hard timeout in seconds; 0 disables. A timed-out
  /// attempt is killed and counts as a failure (then retried).
  double timeout_seconds = 0.0;
  /// Base retry backoff in seconds, doubled per consecutive failure of
  /// the same shard.
  double backoff_seconds = 0.25;
  /// Straggler threshold: once >= `speculate_min_completed` shards have
  /// completed, a shard whose sole attempt has run longer than
  /// speculate_factor x the median completed-shard time gets ONE
  /// speculative duplicate attempt. 0 disables speculation.
  double speculate_factor = 0.0;
  /// Completed shards required before speculation engages (>= 1).
  std::size_t speculate_min_completed = 1;
  /// Path of the wdag binary the workers execute (required).
  std::string wdag_binary;
  /// Scratch directory for manifests and per-attempt shard outputs
  /// (required; must exist).
  std::string work_dir;
  /// --threads forwarded to every worker (0 = worker default).
  std::size_t worker_threads = 0;
  /// --schedule forwarded to every worker.
  Schedule worker_schedule = Schedule::kFixed;
  /// Keep the per-attempt shard files after a successful drive (default:
  /// the drive deletes the files it created).
  bool keep_outputs = false;
};

/// One lifecycle event of a drive, also renderable as a JSON line.
/// Kinds: "dispatch", "speculate" (a speculative dispatch), "exit" (an
/// attempt failed: non-zero exit or invalid output), "timeout", "retry"
/// (a re-dispatch was scheduled), "complete" (a shard finished with a
/// validated output), "done" (the drive finished).
struct DriveEvent {
  std::string kind;
  std::size_t shard = 0;
  std::size_t attempt = 0;        ///< 0-based attempt number of the shard
  double at_seconds = 0.0;        ///< time since drive start
  double elapsed_seconds = 0.0;   ///< attempt (or drive, for "done") runtime
  int exit_code = 0;              ///< child exit code where applicable
  std::string detail;             ///< human-readable context (may be empty)

  /// The event as a single JSON line (stable key order, no newline).
  [[nodiscard]] std::string to_json() const;
};

/// Observer of drive lifecycle events; called from the drive loop thread.
using DriveEventFn = std::function<void(const DriveEvent&)>;

/// Per-shard outcome statistics.
struct DriveShardStats {
  std::size_t shard = 0;
  std::size_t attempts = 0;    ///< dispatches, speculative ones included
  std::size_t retries = 0;     ///< failed attempts that were re-dispatched
  bool speculated = false;     ///< a speculative duplicate was launched
  double seconds = 0.0;        ///< runtime of the winning attempt
  std::size_t rows = 0;        ///< validated rows merged from this shard
};

/// Outcome of a successful drive.
struct DriveReport {
  std::vector<DriveShardStats> shards;  ///< indexed by shard
  std::size_t retries = 0;              ///< total re-dispatches
  std::size_t speculations = 0;         ///< total speculative dispatches
  double wall_seconds = 0.0;

  /// Per-shard summary (the CLI's --progress table).
  [[nodiscard]] util::Table progress_table() const;
};

/// Executes every shard of `plan` via worker subprocesses and streams the
/// validated merge into `out` (byte-identical to the unsharded streaming
/// CSV of the plan's request). Throws wdag::InternalError when a shard
/// exhausts its retry budget or the platform cannot spawn subprocesses;
/// on failure nothing further is written to `out` and all live workers
/// are killed. `on_event` (optional) observes every lifecycle event.
DriveReport drive(const ShardPlan& plan, const DriveOptions& options,
                  std::ostream& out, const DriveEventFn& on_event = {});

}  // namespace wdag::core
