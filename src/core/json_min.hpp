#pragma once

// Minimal JSON parsing shared by the shard-manifest reader (shard.cpp),
// the drive-journal reader (driver.cpp) and the serve wire protocol
// (serve/protocol.cpp): objects, strings, numbers, booleans — shallow
// nesting in practice. Numbers keep their raw text so 64-bit integers
// parse exactly. Every entry point takes a `context` string that
// prefixes diagnostics ("shard manifest", "drive journal", "request")
// so errors name the artifact that failed, not the parser.
//
// JsonWriter is the matching single-line emitter: stable key order (the
// caller's call order), string escaping, raw-number passthrough — the
// writer side of the serve protocol and anything else that must emit
// exactly what JsonParser accepts.
//
// INTERNAL header: not part of the public surface (never reachable from
// wdag/wdag.hpp, not in WDAG_PUBLIC_HEADERS) — include from .cpp files
// only.

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>

#include "util/check.hpp"

namespace wdag::core::minjson {

/// Fixed-width lowercase hex of a 64-bit id — the wire spelling of plan
/// ids and request hashes in manifests and journals.
inline std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kObject };
  Kind kind = Kind::kString;
  std::string text;  ///< string value, or raw number text
  bool boolean = false;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text,
                      std::string_view context = "shard manifest")
      : text_(text), context_(context) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument(std::string(context_) + " JSON: " + what +
                          " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '"') return string();
    if (c == 't' || c == 'f') return boolean();
    if (c == '-' || (c >= '0' && c <= '9')) return number();
    fail("unexpected character");
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key.text), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue string() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.text += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': v.text += '"'; break;
        case '\\': v.text += '\\'; break;
        case '/': v.text += '/'; break;
        case 'n': v.text += '\n'; break;
        case 'r': v.text += '\r'; break;
        case 't': v.text += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          if (code > 0x7F) fail("non-ASCII \\u escape unsupported");
          v.text += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
    } else {
      fail("expected boolean");
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    v.text = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::string_view context_;
  std::size_t pos_ = 0;
};

/// Builds one JSON object (or a nested one) as a single line, in the
/// exact key order of the field() calls. Strings are escaped to the
/// subset JsonParser reads back (ASCII control bytes as \u00XX); numbers
/// are emitted via snprintf with enough digits to round-trip doubles.
class JsonWriter {
 public:
  JsonWriter() { out_.push_back('{'); }

  JsonWriter& field(std::string_view key, std::string_view value) {
    begin_field(key);
    append_string(value);
    return *this;
  }
  JsonWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonWriter& field(std::string_view key, bool value) {
    begin_field(key);
    out_ += value ? "true" : "false";
    return *this;
  }
  JsonWriter& field(std::string_view key, std::uint64_t value) {
    begin_field(key);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out_ += buf;
    return *this;
  }
  JsonWriter& field(std::string_view key, int value) {
    begin_field(key);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", value);
    out_ += buf;
    return *this;
  }
  JsonWriter& field(std::string_view key, double value) {
    begin_field(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
    return *this;
  }
  /// Verbatim JSON (an already-rendered nested object, for example).
  JsonWriter& field_raw(std::string_view key, std::string_view json) {
    begin_field(key);
    out_.append(json);
    return *this;
  }

  /// The finished object. The writer is spent after this call.
  [[nodiscard]] std::string str() && {
    out_.push_back('}');
    return std::move(out_);
  }

 private:
  void begin_field(std::string_view key) {
    if (out_.size() > 1) out_.push_back(',');
    append_string(key);
    out_.push_back(':');
  }

  void append_string(std::string_view s) {
    out_.push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ += buf;
          } else {
            out_.push_back(c);
          }
      }
    }
    out_.push_back('"');
  }

  std::string out_;
};

inline const JsonValue* opt_field(const JsonValue& obj, const std::string& key,
                                  std::string_view context = "shard manifest") {
  WDAG_REQUIRE(obj.kind == JsonValue::Kind::kObject,
               std::string(context) + ": expected a JSON object");
  const auto it = obj.object.find(key);
  return it == obj.object.end() ? nullptr : &it->second;
}

inline const JsonValue& req_field(const JsonValue& obj, const std::string& key,
                                  std::string_view context = "shard manifest") {
  WDAG_REQUIRE(obj.kind == JsonValue::Kind::kObject,
               std::string(context) + ": expected a JSON object");
  const auto it = obj.object.find(key);
  if (it == obj.object.end()) {
    throw InvalidArgument(std::string(context) + ": missing field '" + key +
                          "'");
  }
  return it->second;
}

inline std::uint64_t req_u64(const JsonValue& obj, const std::string& key,
                             std::string_view context = "shard manifest") {
  const JsonValue& v = req_field(obj, key, context);
  WDAG_REQUIRE(v.kind == JsonValue::Kind::kNumber,
               std::string(context) + ": field '" + key +
                   "' must be a number");
  try {
    return std::stoull(v.text);
  } catch (const std::exception&) {
    throw InvalidArgument(std::string(context) + ": field '" + key +
                          "' is not a valid integer: " + v.text);
  }
}

inline double req_double(const JsonValue& obj, const std::string& key,
                         std::string_view context = "shard manifest") {
  const JsonValue& v = req_field(obj, key, context);
  WDAG_REQUIRE(v.kind == JsonValue::Kind::kNumber,
               std::string(context) + ": field '" + key +
                   "' must be a number");
  try {
    return std::stod(v.text);
  } catch (const std::exception&) {
    throw InvalidArgument(std::string(context) + ": field '" + key +
                          "' is not a valid number: " + v.text);
  }
}

inline std::string req_str(const JsonValue& obj, const std::string& key,
                           std::string_view context = "shard manifest") {
  const JsonValue& v = req_field(obj, key, context);
  WDAG_REQUIRE(v.kind == JsonValue::Kind::kString,
               std::string(context) + ": field '" + key +
                   "' must be a string");
  return v.text;
}

inline std::uint64_t req_hex(const JsonValue& obj, const std::string& key,
                             std::string_view context = "shard manifest") {
  const std::string s = req_str(obj, key, context);
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(s, &used, 16);
    WDAG_REQUIRE(used == s.size() && !s.empty(),
                 std::string(context) + ": field '" + key +
                     "' is not a hex id");
    return v;
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument(std::string(context) + ": field '" + key +
                          "' is not a hex id: " + s);
  }
}

}  // namespace wdag::core::minjson
