#include "core/maxrequests.hpp"

#include <algorithm>
#include <numeric>

#include "dag/internal_cycle.hpp"
#include "graph/topo.hpp"
#include "util/check.hpp"

namespace wdag::core {

using graph::ArcId;
using paths::DipathFamily;

MaxRequestsResult max_requests_greedy(const DipathFamily& candidates,
                                      std::size_t w) {
  MaxRequestsResult res;
  res.selected.assign(candidates.size(), false);
  if (w == 0) return res;

  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return candidates.path(static_cast<paths::PathId>(a)).length() <
           candidates.path(static_cast<paths::PathId>(b)).length();
  });

  std::vector<std::size_t> load(candidates.graph().num_arcs(), 0);
  for (const std::size_t i : order) {
    const auto& arcs = candidates.path(static_cast<paths::PathId>(i)).arcs;
    const bool fits = std::all_of(arcs.begin(), arcs.end(),
                                  [&](ArcId a) { return load[a] < w; });
    if (!fits) continue;
    for (ArcId a : arcs) ++load[a];
    res.selected[i] = true;
    ++res.count;
  }
  return res;
}

namespace {

struct Search {
  const DipathFamily& cand;
  std::size_t w;
  std::size_t budget;
  std::size_t nodes = 0;
  bool budget_hit = false;
  std::vector<std::size_t> load;
  std::vector<bool> current, best;
  std::size_t current_count = 0, best_count = 0;

  Search(const DipathFamily& c, std::size_t ww, std::size_t b)
      : cand(c),
        w(ww),
        budget(b),
        load(c.graph().num_arcs(), 0),
        current(c.size(), false),
        best(c.size(), false) {}

  [[nodiscard]] bool fits(std::size_t i) const {
    const auto& arcs = cand.path(static_cast<paths::PathId>(i)).arcs;
    return std::all_of(arcs.begin(), arcs.end(),
                       [&](ArcId a) { return load[a] < w; });
  }

  void add(std::size_t i) {
    for (ArcId a : cand.path(static_cast<paths::PathId>(i)).arcs) ++load[a];
    current[i] = true;
    ++current_count;
  }

  void remove(std::size_t i) {
    for (ArcId a : cand.path(static_cast<paths::PathId>(i)).arcs) --load[a];
    current[i] = false;
    --current_count;
  }

  void dfs(std::size_t i) {
    if (budget_hit) return;
    if (++nodes > budget) {
      budget_hit = true;
      return;
    }
    if (current_count + (cand.size() - i) <= best_count) return;  // bound
    if (i == cand.size()) {
      if (current_count > best_count) {
        best_count = current_count;
        best = current;
      }
      return;
    }
    if (fits(i)) {
      add(i);
      dfs(i + 1);
      remove(i);
    }
    dfs(i + 1);
  }
};

}  // namespace

MaxRequestsResult max_requests_exact(const DipathFamily& candidates,
                                     std::size_t w, std::size_t node_budget) {
  WDAG_DOMAIN(graph::is_dag(candidates.graph()),
              "max_requests_exact: host graph must be a DAG");
  WDAG_DOMAIN(!dag::has_internal_cycle(candidates.graph()),
              "max_requests_exact: the load criterion certifies "
              "satisfiability only without internal cycles (Main Theorem)");
  MaxRequestsResult res;
  if (w == 0 || candidates.empty()) {
    res.selected.assign(candidates.size(), false);
    res.proven = true;
    return res;
  }
  Search search(candidates, w, node_budget);
  // Seed with the greedy solution so pruning bites immediately.
  const auto greedy = max_requests_greedy(candidates, w);
  search.best = greedy.selected;
  search.best_count = greedy.count;
  search.dfs(0);
  res.selected = std::move(search.best);
  res.count = search.best_count;
  res.nodes = search.nodes;
  res.proven = !search.budget_hit;
  return res;
}

}  // namespace wdag::core
