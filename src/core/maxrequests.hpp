#pragma once
// The paper's concluding application: given a wavelength budget w, find the
// maximum number of requests (dipaths of a candidate family) that can be
// satisfied simultaneously.
//
// On a DAG without internal cycle the Main Theorem reduces "colorable with
// w wavelengths" to "load at most w" — no coloring search is needed to
// *check* a candidate subfamily, only a load computation. Maximizing the
// subfamily is still a combinatorial search; we provide an exact
// branch-and-bound over that load test plus a greedy baseline.

#include <cstddef>
#include <vector>

#include "paths/family.hpp"

namespace wdag::core {

/// Result of a max-requests computation.
struct MaxRequestsResult {
  std::vector<bool> selected;  ///< mask over the candidate family
  std::size_t count = 0;       ///< number of selected dipaths
  bool proven = false;         ///< true when optimality is certified
  std::size_t nodes = 0;       ///< branch-and-bound nodes explored
};

/// Greedy baseline: consider candidates by increasing length (shorter
/// dipaths burn less capacity), adding each when the load stays <= w.
MaxRequestsResult max_requests_greedy(const paths::DipathFamily& candidates,
                                      std::size_t w);

/// Exact maximum subfamily of load <= w via include/exclude search with a
/// simple remaining-count bound. Exponential worst case; `node_budget`
/// caps the search, after which the best-so-far is returned with
/// proven == false.
///
/// Precondition (checked): the host graph must be a DAG *without internal
/// cycle*, because only then does "load <= w" certify "w wavelengths
/// suffice" (Main Theorem); on other graphs the load test would be
/// unsound as a satisfiability proxy.
MaxRequestsResult max_requests_exact(const paths::DipathFamily& candidates,
                                     std::size_t w,
                                     std::size_t node_budget = 5'000'000);

}  // namespace wdag::core
