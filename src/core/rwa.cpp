#include "core/rwa.hpp"

#include <sstream>

#include "api/strategy.hpp"
#include "paths/load.hpp"

namespace wdag::core {

RwaResult solve_rwa(const graph::Digraph& g,
                    const std::vector<paths::Request>& requests,
                    paths::RoutePolicy policy, const SolveOptions& options) {
  RwaResult res;
  res.routed = paths::route_requests(g, requests, policy);
  res.assignment = api::solve_with(api::builtin_registry(), res.routed,
                                   options, options.force, options.scratch);
  return res;
}

std::string rwa_report(const RwaResult& r) {
  std::ostringstream os;
  const auto& g = r.routed.graph();
  os << "requests:    " << r.routed.size() << '\n'
     << "load (pi):   " << r.assignment.load << '\n'
     << "wavelengths: " << r.assignment.wavelengths << '\n'
     << "method:      " << r.assignment.strategy_name << '\n'
     << "optimal:     " << (r.assignment.optimal ? "proven" : "not proven")
     << '\n';
  for (std::size_t i = 0; i < r.routed.size(); ++i) {
    os << "  [" << i << "] lambda=" << r.wavelength(i) << "  "
       << paths::path_to_string(g, r.routed.path(static_cast<paths::PathId>(i)))
       << '\n';
  }
  return os.str();
}

}  // namespace wdag::core
