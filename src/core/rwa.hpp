#pragma once
// End-to-end Routing and Wavelength Assignment (RWA), the paper's
// motivating pipeline (§1): a traffic matrix of requests is first routed
// into dipaths, then the dipaths are colored so that arc-sharing dipaths
// get different wavelengths.

#include <string>
#include <vector>

#include "api/request.hpp"
#include "core/solver.hpp"
#include "paths/route.hpp"

namespace wdag::core {

/// A fully-solved RWA instance.
struct RwaResult {
  paths::DipathFamily routed;          ///< one dipath per request, in order
  api::SolveResponse assignment;       ///< wavelength assignment of `routed`
  /// Wavelength of request i (alias of assignment.coloring[i]).
  [[nodiscard]] std::uint32_t wavelength(std::size_t i) const {
    return assignment.coloring.at(i);
  }
};

/// Routes `requests` on g (unique routes on UPP graphs, shortest otherwise
/// per `policy`) and solves the wavelength assignment.
RwaResult solve_rwa(const graph::Digraph& g,
                    const std::vector<paths::Request>& requests,
                    paths::RoutePolicy policy = paths::RoutePolicy::kShortest,
                    const SolveOptions& options = {});

/// Multi-line human-readable report of an RWA solution.
std::string rwa_report(const RwaResult& r);

}  // namespace wdag::core
