#include "core/shard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <utility>

#include "core/json_min.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace wdag::core {

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

using minjson::JsonParser;
using minjson::JsonValue;
using minjson::hex16;
using minjson::opt_field;
using minjson::req_double;
using minjson::req_field;
using minjson::req_hex;
using minjson::req_str;
using minjson::req_u64;

namespace {

/// The column header every shard CSV (and the unsharded streaming CSV)
/// carries — must stay byte-identical to api::CsvStreamSink's header
/// (pinned by tests/test_shard.cpp).
constexpr std::string_view kCsvColumnHeader =
    "index,method,paths,load,wavelengths,optimal";

/// Marker of the shard-CSV manifest comment line.
constexpr std::string_view kShardHeaderTag = "# wdag-shard ";

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(std::string_view s) { return fnv1a64(s); }

/// Shortest round-trippable decimal of a double: %.17g re-parses to the
/// same bits with strtod, so hash canonicalization and JSON emission
/// agree across plan/run/merge processes.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Canonical serialization of a spec — exactly the byte-determining
/// fields, in a fixed order. Never change existing field spellings: the
/// hash identifies plans across processes and machines.
std::string canonical_spec(const ShardSpec& spec) {
  // A non-finite density would canonicalize — and later JSON-emit — as
  // "inf"/"nan", which is not valid JSON and round-trips as garbage.
  // Reject at canonicalization time so no plan or manifest can ever
  // carry it.
  WDAG_REQUIRE(std::isfinite(spec.params.density),
               "ShardSpec: params.density must be finite, got " +
                   fmt_double(spec.params.density));
  std::string s = "wdag-shard-spec;v";
  s += std::to_string(kShardFormatVersion);
  s += ";family=" + spec.family;
  s += ";count=" + std::to_string(spec.count);
  s += ";seed=" + std::to_string(spec.seed);
  const gen::WorkloadParams& p = spec.params;
  s += ";paths=" + std::to_string(p.paths);
  s += ";size=" + std::to_string(p.size);
  s += ";density=" + fmt_double(p.density);
  s += ";k=" + std::to_string(p.k);
  s += ";run_len=" + std::to_string(p.run_len);
  s += ";chain=" + std::to_string(p.chain);
  s += ";layers=" + std::to_string(p.layers);
  s += ";width=" + std::to_string(p.width);
  s += ";rows=" + std::to_string(p.rows);
  s += ";cols=" + std::to_string(p.cols);
  s += ";dim=" + std::to_string(p.dim);
  s += ";stages=" + std::to_string(p.stages);
  s += ";h=" + std::to_string(p.h);
  s += ";exact_threshold=" + std::to_string(spec.solve.exact_threshold);
  s += ";exact_budget=" + std::to_string(spec.solve.exact_node_budget);
  s += ";force=" + spec.force_strategy;
  return s;
}

std::uint64_t plan_id_of(std::uint64_t request_hash, std::size_t count,
                         std::size_t shards, ShardLayout layout) {
  std::string s = "wdag-shard-plan;v" + std::to_string(kShardFormatVersion) +
                  ";request=" + hex16(request_hash) +
                  ";count=" + std::to_string(count) +
                  ";shards=" + std::to_string(shards);
  // Contiguous plans keep their pre-striping ids; only striped plans
  // extend the domain. A striped manifest therefore never collides with
  // a contiguous one of the same request.
  if (layout == ShardLayout::kStriped) s += ";layout=striped";
  return fnv1a(s);
}

using util::append_json_string;

}  // namespace

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

std::string_view layout_name(ShardLayout layout) {
  return layout == ShardLayout::kStriped ? "striped" : "contiguous";
}

ShardLayout parse_layout(std::string_view name) {
  if (name == "contiguous") return ShardLayout::kContiguous;
  if (name == "striped") return ShardLayout::kStriped;
  throw InvalidArgument("shard layout must be 'contiguous' or 'striped', got '" +
                        std::string(name) + "'");
}

std::uint64_t shard_request_hash(const ShardSpec& spec) {
  return fnv1a(canonical_spec(spec));
}

ShardRange shard_range(std::size_t count, std::size_t shards,
                       std::size_t index) {
  WDAG_REQUIRE(shards >= 1, "shard_range: shards must be >= 1");
  WDAG_REQUIRE(index < shards, "shard_range: index " + std::to_string(index) +
                                   " out of range for " +
                                   std::to_string(shards) + " shards");
  // Balanced contiguous split: the first `count % shards` shards take
  // base + 1 indices. Pure arithmetic — every process computes the same
  // ranges without coordination.
  const std::size_t base = count / shards;
  const std::size_t extra = count % shards;
  const std::size_t begin =
      index * base + std::min(index, extra);
  const std::size_t len = base + (index < extra ? 1 : 0);
  return {begin, begin + len};
}

ShardPlan::ShardPlan(ShardSpec spec, std::size_t shards, ShardLayout layout)
    : spec_(std::move(spec)),
      shards_(shards),
      layout_(layout),
      request_hash_(shard_request_hash(spec_)),
      id_(plan_id_of(request_hash_, spec_.count, shards_, layout_)) {
  WDAG_REQUIRE(shards_ >= 1, "ShardPlan: shards must be >= 1");
  // An empty shard's output is indistinguishable from a missing shard at
  // merge time; insist every shard has at least one instance.
  WDAG_REQUIRE(spec_.count >= shards_ || (spec_.count == 0 && shards_ == 1),
               "ShardPlan: " + std::to_string(shards_) +
                   " shards over " + std::to_string(spec_.count) +
                   " instances would leave empty shards (need shards <= "
                   "count)");
}

ShardRange ShardPlan::range(std::size_t index) const {
  if (layout_ == ShardLayout::kStriped) {
    WDAG_REQUIRE(index < shards_,
                 "ShardPlan: shard " + std::to_string(index) +
                     " out of range for " + std::to_string(shards_) +
                     " shards");
    // Shard `index` covers {index, index + K, ...} < count; the manifest
    // range records the enclosing [index, count) span.
    return {std::min(index, spec_.count), spec_.count};
  }
  return shard_range(spec_.count, shards_, index);
}

ShardManifest ShardPlan::manifest(std::size_t index) const {
  ShardManifest m;
  m.plan_id = id_;
  m.request_hash = request_hash_;
  m.shard = index;
  m.shards = shards_;
  m.layout = layout_;
  m.range = range(index);
  m.spec = spec_;
  return m;
}

// ---------------------------------------------------------------------------
// Manifest JSON
// ---------------------------------------------------------------------------

std::string manifest_to_json(const ShardManifest& m) {
  std::string s = "{\"wdag_shard\":";
  s += std::to_string(m.version);
  s += ",\"plan\":\"" + hex16(m.plan_id) + "\"";
  s += ",\"request_hash\":\"" + hex16(m.request_hash) + "\"";
  s += ",\"shard\":" + std::to_string(m.shard);
  s += ",\"shards\":" + std::to_string(m.shards);
  // Contiguous manifests keep the exact pre-striping byte layout; only
  // striped ones carry the extra field.
  if (m.layout == ShardLayout::kStriped) {
    s += ",\"layout\":\"striped\"";
  }
  s += ",\"begin\":" + std::to_string(m.range.begin);
  s += ",\"end\":" + std::to_string(m.range.end);
  s += ",\"count\":" + std::to_string(m.spec.count);
  s += ",\"family\":";
  append_json_string(s, m.spec.family);
  s += ",\"seed\":" + std::to_string(m.spec.seed);
  const gen::WorkloadParams& p = m.spec.params;
  s += ",\"params\":{";
  s += "\"paths\":" + std::to_string(p.paths);
  s += ",\"size\":" + std::to_string(p.size);
  s += ",\"density\":" + fmt_double(p.density);
  s += ",\"k\":" + std::to_string(p.k);
  s += ",\"run_len\":" + std::to_string(p.run_len);
  s += ",\"chain\":" + std::to_string(p.chain);
  s += ",\"layers\":" + std::to_string(p.layers);
  s += ",\"width\":" + std::to_string(p.width);
  s += ",\"rows\":" + std::to_string(p.rows);
  s += ",\"cols\":" + std::to_string(p.cols);
  s += ",\"dim\":" + std::to_string(p.dim);
  s += ",\"stages\":" + std::to_string(p.stages);
  s += ",\"h\":" + std::to_string(p.h);
  s += "}";
  s += ",\"solve\":{";
  s += "\"exact_threshold\":" + std::to_string(m.spec.solve.exact_threshold);
  s += ",\"exact_budget\":" + std::to_string(m.spec.solve.exact_node_budget);
  s += "}";
  s += ",\"force\":";
  append_json_string(s, m.spec.force_strategy);
  s += "}";
  return s;
}

ShardManifest parse_manifest(std::string_view json) {
  const JsonValue root = JsonParser(json).parse();
  WDAG_REQUIRE(root.kind == JsonValue::Kind::kObject,
               "shard manifest: top-level JSON value must be an object");

  ShardManifest m;
  m.version = static_cast<int>(req_u64(root, "wdag_shard"));
  if (m.version != kShardFormatVersion) {
    throw InvalidArgument(
        "shard manifest: unsupported format version " +
        std::to_string(m.version) + " (this build reads version " +
        std::to_string(kShardFormatVersion) + ")");
  }
  m.plan_id = req_hex(root, "plan");
  m.request_hash = req_hex(root, "request_hash");
  m.shard = req_u64(root, "shard");
  m.shards = req_u64(root, "shards");
  if (const JsonValue* layout = opt_field(root, "layout")) {
    WDAG_REQUIRE(layout->kind == JsonValue::Kind::kString,
                 "shard manifest: field 'layout' must be a string");
    m.layout = parse_layout(layout->text);
  }
  m.range.begin = req_u64(root, "begin");
  m.range.end = req_u64(root, "end");
  m.spec.count = req_u64(root, "count");
  m.spec.family = req_str(root, "family");
  m.spec.seed = req_u64(root, "seed");
  const JsonValue& params = req_field(root, "params");
  m.spec.params.paths = req_u64(params, "paths");
  m.spec.params.size = req_u64(params, "size");
  m.spec.params.density = req_double(params, "density");
  m.spec.params.k = req_u64(params, "k");
  m.spec.params.run_len = req_u64(params, "run_len");
  m.spec.params.chain = req_u64(params, "chain");
  m.spec.params.layers = req_u64(params, "layers");
  m.spec.params.width = req_u64(params, "width");
  m.spec.params.rows = req_u64(params, "rows");
  m.spec.params.cols = req_u64(params, "cols");
  m.spec.params.dim = req_u64(params, "dim");
  m.spec.params.stages = req_u64(params, "stages");
  m.spec.params.h = req_u64(params, "h");
  const JsonValue& solve = req_field(root, "solve");
  m.spec.solve.exact_threshold = req_u64(solve, "exact_threshold");
  m.spec.solve.exact_node_budget = req_u64(solve, "exact_budget");
  m.spec.force_strategy = req_str(root, "force");

  // Structural sanity before the hash checks, so the error names the
  // actual problem.
  WDAG_REQUIRE(m.shards >= 1 && m.shard < m.shards,
               "shard manifest: shard " + std::to_string(m.shard) +
                   " out of range for " + std::to_string(m.shards) +
                   " shards");
  WDAG_REQUIRE(m.range.begin <= m.range.end && m.range.end <= m.spec.count,
               "shard manifest: range [" + std::to_string(m.range.begin) +
                   ", " + std::to_string(m.range.end) +
                   ") does not fit count " + std::to_string(m.spec.count));
  if (m.layout == ShardLayout::kStriped) {
    // A striped shard's range is fully determined by its index: it covers
    // every shards-th index of [shard, count).
    WDAG_REQUIRE(m.range.begin == std::min(m.shard, m.spec.count) &&
                     m.range.end == m.spec.count,
                 "shard manifest: striped shard " + std::to_string(m.shard) +
                     " must record range [" + std::to_string(m.shard) + ", " +
                     std::to_string(m.spec.count) + "), got [" +
                     std::to_string(m.range.begin) + ", " +
                     std::to_string(m.range.end) + ")");
  }

  // The recorded ids must agree with the ones this build recomputes from
  // the parsed request — a hand-edited manifest (say, a changed seed with
  // a stale plan id) must fail here, not merge silently.
  const std::uint64_t request_hash = shard_request_hash(m.spec);
  if (request_hash != m.request_hash) {
    throw InvalidArgument(
        "shard manifest: recorded request hash " + hex16(m.request_hash) +
        " does not match the request itself (" + hex16(request_hash) +
        ") — edited manifest?");
  }
  const std::uint64_t plan_id = plan_id_of(request_hash, m.spec.count,
                                           m.shards, m.layout);
  if (plan_id != m.plan_id) {
    throw InvalidArgument("shard manifest: recorded plan id " +
                          hex16(m.plan_id) +
                          " does not match the request (" + hex16(plan_id) +
                          ") — edited manifest?");
  }
  return m;
}

// ---------------------------------------------------------------------------
// Shard CSV reading and merging
// ---------------------------------------------------------------------------

std::string shard_csv_header(const ShardManifest& m) {
  return std::string(kShardHeaderTag) + manifest_to_json(m) + "\n";
}

std::string_view shard_csv_column_header() { return kCsvColumnHeader; }

ShardCsv read_shard_csv(std::istream& in, const std::string& name) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const auto fail = [&name](const std::string& what) -> void {
    throw InvalidArgument("shard CSV '" + name + "': " + what);
  };

  if (text.size() < kShardHeaderTag.size() ||
      std::string_view(text).substr(0, kShardHeaderTag.size()) !=
          kShardHeaderTag) {
    fail("missing '# wdag-shard' header line (not a shard CSV?)");
  }
  // Every line of a complete shard file — including the last row — ends
  // with '\n'; a file cut off mid-row fails here instead of merging one
  // short.
  if (text.back() != '\n') {
    fail("file does not end with a newline (truncated?)");
  }

  const std::size_t header_end = text.find('\n');
  ShardCsv shard;
  shard.manifest = parse_manifest(
      std::string_view(text).substr(kShardHeaderTag.size(),
                                    header_end - kShardHeaderTag.size()));

  const std::size_t columns_begin = header_end + 1;
  const std::size_t columns_end = text.find('\n', columns_begin);
  if (columns_end == std::string::npos) {
    fail("missing CSV column header (truncated?)");
  }
  const std::string_view columns =
      std::string_view(text).substr(columns_begin,
                                    columns_end - columns_begin);
  if (columns != kCsvColumnHeader) {
    fail("unexpected column header '" + std::string(columns) +
         "' (expected '" + std::string(kCsvColumnHeader) + "')");
  }

  shard.rows = text.substr(columns_end + 1);

  // Count the rows and check each one's leading index field against the
  // global index it must carry — catching truncation, reordering, and
  // rows from the wrong range in one pass. Striped shards advance by
  // their stride instead of 1.
  std::size_t expected = shard.manifest.range.begin;
  const std::size_t stride = shard.manifest.stride();
  std::size_t pos = 0;
  while (pos < shard.rows.size()) {
    const std::size_t eol = shard.rows.find('\n', pos);
    WDAG_ASSERT(eol != std::string::npos, "shard rows lost their newline");
    const std::size_t comma = shard.rows.find(',', pos);
    std::size_t index = static_cast<std::size_t>(-1);
    if (comma != std::string::npos && comma < eol) {
      try {
        index = std::stoull(shard.rows.substr(pos, comma - pos));
      } catch (const std::exception&) {
        // falls through to the mismatch diagnostic below
      }
    }
    if (index != expected) {
      fail("row " + std::to_string(shard.row_count) + " carries index " +
           (index == static_cast<std::size_t>(-1)
                ? std::string("<unparsable>")
                : std::to_string(index)) +
           ", expected " + std::to_string(expected) +
           " (truncated or corrupt shard?)");
    }
    expected += stride;
    ++shard.row_count;
    pos = eol + 1;
  }

  if (shard.row_count != shard.manifest.instance_count()) {
    fail("holds " + std::to_string(shard.row_count) + " rows but covers [" +
         std::to_string(shard.manifest.range.begin) + ", " +
         std::to_string(shard.manifest.range.end) + ") stride " +
         std::to_string(stride) + " — expected " +
         std::to_string(shard.manifest.instance_count()) +
         " (truncated shard?)");
  }
  return shard;
}

ShardCsv read_shard_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  WDAG_REQUIRE(in.good(), "cannot open shard output '" + path + "'");
  return read_shard_csv(in, path);
}

namespace {

/// Validates that `manifests` (paired with their row payloads by the
/// caller) form the complete shard set of ONE plan, and returns the
/// position of shard i in the input at slot i. Shared by the CSV and
/// JSON merges so their guarantees can never drift.
std::vector<std::size_t> validate_shard_set(
    const std::vector<const ShardManifest*>& manifests, const char* what) {
  WDAG_REQUIRE(!manifests.empty(), std::string(what) + ": no shards to merge");

  // One plan only: same plan id, request hash, shard count, layout and
  // global instance count everywhere. parse_manifest already bound the
  // id to the request, so comparing ids compares requests.
  const ShardManifest& first = *manifests.front();
  for (const ShardManifest* mp : manifests) {
    const ShardManifest& m = *mp;
    if (m.plan_id != first.plan_id || m.request_hash != first.request_hash ||
        m.shards != first.shards || m.spec.count != first.spec.count ||
        m.layout != first.layout) {
      throw InvalidArgument(
          std::string(what) + ": shards come from different plans (plan " +
          hex16(first.plan_id) + " vs " + hex16(m.plan_id) +
          ") — refusing a mixed merge");
    }
  }

  // Every shard index 0..K-1 exactly once.
  std::vector<std::size_t> by_index(first.shards,
                                    static_cast<std::size_t>(-1));
  for (std::size_t pos = 0; pos < manifests.size(); ++pos) {
    const std::size_t i = manifests[pos]->shard;
    WDAG_ASSERT(i < first.shards, "shard index escaped parse validation");
    if (by_index[i] != static_cast<std::size_t>(-1)) {
      throw InvalidArgument(std::string(what) + ": duplicate shard " +
                            std::to_string(i) + " of " +
                            std::to_string(first.shards));
    }
    by_index[i] = pos;
  }
  for (std::size_t i = 0; i < by_index.size(); ++i) {
    if (by_index[i] == static_cast<std::size_t>(-1)) {
      throw InvalidArgument(std::string(what) + ": missing shard " +
                            std::to_string(i) + " of " +
                            std::to_string(first.shards) +
                            " — refusing a partial merge");
    }
  }

  if (first.layout == ShardLayout::kStriped) {
    // Striped ranges are fully index-determined and already validated in
    // parse_manifest; presence of every shard implies full coverage.
    return by_index;
  }

  // Contiguous ranges must chain gaplessly over [0, count). Overlaps and
  // gaps can only come from tampered manifests (plan ranges are
  // arithmetic), but a silent partial/duplicated merge is exactly the
  // failure mode this tool exists to prevent.
  std::size_t expected_begin = 0;
  for (std::size_t i = 0; i < by_index.size(); ++i) {
    const ShardRange& r = manifests[by_index[i]]->range;
    if (r.begin < expected_begin) {
      throw InvalidArgument(
          std::string(what) + ": shard " + std::to_string(i) + " range [" +
          std::to_string(r.begin) + ", " + std::to_string(r.end) +
          ") overlaps the previous shard (which ends at " +
          std::to_string(expected_begin) + ")");
    }
    if (r.begin > expected_begin) {
      throw InvalidArgument(
          std::string(what) + ": gap before shard " + std::to_string(i) +
          ": indices [" + std::to_string(expected_begin) + ", " +
          std::to_string(r.begin) + ") are covered by no shard");
    }
    expected_begin = r.end;
  }
  if (expected_begin != first.spec.count) {
    throw InvalidArgument(
        std::string(what) + ": shards cover [0, " +
        std::to_string(expected_begin) + ") but the plan has " +
        std::to_string(first.spec.count) + " instances");
  }
  return by_index;
}

/// Reassembles per-shard row payloads (newline-terminated lines, ascending
/// within each shard) into global index order: concatenation for
/// contiguous plans, a round-robin interleave for striped ones. `rows[i]`
/// must be shard i's payload.
std::string assemble_rows(const std::vector<const std::string*>& rows,
                          ShardLayout layout, std::size_t count,
                          std::string_view prefix) {
  std::size_t total = prefix.size();
  for (const std::string* r : rows) total += r->size();
  std::string merged;
  merged.reserve(total);
  merged += prefix;
  if (layout == ShardLayout::kContiguous) {
    for (const std::string* r : rows) merged += *r;
    return merged;
  }
  // Striped: global index g lives in shard g % K, and each shard's rows
  // are already in ascending global order — one cursor per shard walks
  // every payload exactly once.
  const std::size_t k = rows.size();
  std::vector<std::size_t> cursor(k, 0);
  for (std::size_t g = 0; g < count; ++g) {
    const std::size_t s = g % k;
    const std::string& payload = *rows[s];
    const std::size_t eol = payload.find('\n', cursor[s]);
    WDAG_ASSERT(eol != std::string::npos,
                "striped merge ran out of validated rows");
    merged.append(payload, cursor[s], eol + 1 - cursor[s]);
    cursor[s] = eol + 1;
  }
  return merged;
}

}  // namespace

std::string merge_shard_csv(const std::vector<ShardCsv>& shards) {
  std::vector<const ShardManifest*> manifests;
  manifests.reserve(shards.size());
  for (const ShardCsv& s : shards) manifests.push_back(&s.manifest);
  const std::vector<std::size_t> by_index =
      validate_shard_set(manifests, "merge_shard_csv");

  std::vector<const std::string*> rows;
  rows.reserve(by_index.size());
  for (const std::size_t pos : by_index) rows.push_back(&shards[pos].rows);
  const std::string prefix = std::string(kCsvColumnHeader) + "\n";
  return assemble_rows(rows, shards.front().manifest.layout,
                       shards.front().manifest.spec.count, prefix);
}

// ---------------------------------------------------------------------------
// Shard JSON-lines reading and merging
// ---------------------------------------------------------------------------

namespace {

/// Parses the leading global index of a `{"index":G,...}` row line;
/// returns size_t(-1) when the line is not a row object.
std::size_t row_object_index(std::string_view line) {
  constexpr std::string_view kPrefix = "{\"index\":";
  if (line.substr(0, kPrefix.size()) != kPrefix) {
    return static_cast<std::size_t>(-1);
  }
  std::size_t pos = kPrefix.size();
  std::size_t value = 0;
  bool any = false;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    value = value * 10 + static_cast<std::size_t>(line[pos] - '0');
    ++pos;
    any = true;
  }
  if (!any || pos >= line.size() || (line[pos] != ',' && line[pos] != '}')) {
    return static_cast<std::size_t>(-1);
  }
  return value;
}

}  // namespace

ShardJson read_shard_json(std::istream& in, const std::string& name) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const auto fail = [&name](const std::string& what) -> void {
    throw InvalidArgument("shard JSON '" + name + "': " + what);
  };

  if (text.empty() || text.front() != '{') {
    fail("missing leading manifest line (not a shard JSON output?)");
  }
  if (text.back() != '\n') {
    fail("file does not end with a newline (truncated?)");
  }

  const std::size_t header_end = text.find('\n');
  ShardJson shard;
  shard.manifest =
      parse_manifest(std::string_view(text).substr(0, header_end));

  // Row objects in stride order, then exactly one aggregate report line.
  std::size_t expected = shard.manifest.range.begin;
  const std::size_t stride = shard.manifest.stride();
  const std::size_t want = shard.manifest.instance_count();
  std::size_t pos = header_end + 1;
  const std::size_t rows_begin = pos;
  while (shard.row_count < want) {
    if (pos >= text.size()) {
      fail("holds " + std::to_string(shard.row_count) +
           " rows — expected " + std::to_string(want) +
           " (truncated shard?)");
    }
    const std::size_t eol = text.find('\n', pos);
    WDAG_ASSERT(eol != std::string::npos, "shard json lost its newline");
    const std::size_t index =
        row_object_index(std::string_view(text).substr(pos, eol - pos));
    if (index != expected) {
      fail("row " + std::to_string(shard.row_count) + " carries index " +
           (index == static_cast<std::size_t>(-1)
                ? std::string("<unparsable>")
                : std::to_string(index)) +
           ", expected " + std::to_string(expected) +
           " (truncated or corrupt shard?)");
    }
    expected += stride;
    ++shard.row_count;
    pos = eol + 1;
  }
  shard.rows = text.substr(rows_begin, pos - rows_begin);

  // The per-shard aggregate report closes the file. It is validated and
  // dropped here: an aggregate over a partial index set can never appear
  // byte-identically in the merged output.
  if (pos >= text.size()) {
    fail("missing trailing aggregate report line (truncated?)");
  }
  const std::size_t tail_end = text.find('\n', pos);
  const std::string_view tail =
      std::string_view(text).substr(pos, tail_end - pos);
  if (tail.empty() || tail.front() != '{' ||
      row_object_index(tail) != static_cast<std::size_t>(-1)) {
    fail("expected the trailing aggregate report line, found an extra row");
  }
  if (tail_end + 1 != text.size()) {
    fail("trailing data after the aggregate report line");
  }
  return shard;
}

std::string merge_shard_json(const std::vector<ShardJson>& shards) {
  std::vector<const ShardManifest*> manifests;
  manifests.reserve(shards.size());
  for (const ShardJson& s : shards) manifests.push_back(&s.manifest);
  const std::vector<std::size_t> by_index =
      validate_shard_set(manifests, "merge_shard_json");

  std::vector<const std::string*> rows;
  rows.reserve(by_index.size());
  for (const std::size_t pos : by_index) rows.push_back(&shards[pos].rows);
  return assemble_rows(rows, shards.front().manifest.layout,
                       shards.front().manifest.spec.count, {});
}

}  // namespace wdag::core
