#pragma once
// Sharded batch execution: plan / run / merge.
//
// A ShardPlan splits one generated-batch request into K global index sets
// so the shards can run on K machines (or K processes) and merge back to
// the SAME BYTES a single-process streaming run would have produced. The
// determinism stack that makes this cheap:
//
//   * every instance derives its RNG from (seed, GLOBAL index) — so a
//     shard covering a set of global indices generates exactly the
//     instances the unsharded run generates at those indices
//     (BatchOptions::index_base / index_stride);
//   * result sinks receive rows in strict instance order at any thread
//     count, so a shard's CSV body lists its covered global indices in
//     ascending order;
//   * the merge is therefore a pure reordering of validated row bytes —
//     concatenation for contiguous layouts, a round-robin interleave for
//     striped ones — after checking that the shard files belong to one
//     plan and cover the full range with no gap, overlap, duplicate or
//     truncation.
//
// Two layouts are supported:
//
//   * kContiguous — shard i covers one balanced range [lo, hi). The
//     default, and the cheapest to merge (byte concatenation).
//   * kStriped — shard i covers {i, i+K, i+2K, ...}: round-robin over the
//     global index range. When instance cost grows with the index (an
//     exact-heavy tail), striping balances the tail across all workers
//     instead of serializing it on the last shard.
//
// Each shard is described by a ShardManifest: a single JSON object
// carrying the format version, the plan id, the request hash, the layout,
// the global index range, and the full request (generator family + params
// + seed + solver knobs) — a shard run needs the manifest file and
// nothing else. Shard CSV outputs embed the same manifest as a leading
// `# wdag-shard` comment line, so merge validation needs only the shard
// files.
//
// The request hash covers exactly the inputs that determine output bytes
// (family, params, count, seed, solver knobs, forced strategy). Schedule,
// chunk geometry and thread count are deliberately excluded: the
// determinism contract makes them byte-neutral, so every shard may pick
// whatever execution knobs suit its machine.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver.hpp"
#include "gen/workloads.hpp"

namespace wdag::core {

/// Version stamp of the manifest / shard-CSV format. Readers reject other
/// versions instead of guessing.
inline constexpr int kShardFormatVersion = 1;

/// How a plan distributes global indices over its shards.
enum class ShardLayout {
  kContiguous,  ///< shard i covers one balanced range [lo, hi)
  kStriped,     ///< shard i covers {i, i+K, i+2K, ...} (round-robin)
};

/// "contiguous" / "striped" — the spelling used in manifests and flags.
[[nodiscard]] std::string_view layout_name(ShardLayout layout);

/// Parses a layout name; throws wdag::InvalidArgument on anything else.
[[nodiscard]] ShardLayout parse_layout(std::string_view name);

/// The serializable request a plan shards: everything that affects the
/// bytes a batch emits. One ShardSpec == one reproducible workload.
struct ShardSpec {
  std::string family;            ///< generator name (gen::workload_names())
  gen::WorkloadParams params{};  ///< generator knobs
  std::size_t count = 0;         ///< GLOBAL instance count of the batch
  std::uint64_t seed = 1;        ///< base seed of the per-instance RNG
  /// Solver knobs that change results (exact_threshold, exact_node_budget).
  SolveOptions solve{};
  /// Forced strategy name; empty = normal dispatch.
  std::string force_strategy;
};

/// FNV-1a hash of the canonical serialization of `spec` — identical
/// specs hash identically on every platform. Excludes execution knobs
/// (threads/schedule/chunk) by construction: they never change bytes.
/// Throws wdag::InvalidArgument on non-finite params (a NaN density
/// would canonicalize — and emit — as invalid JSON).
[[nodiscard]] std::uint64_t shard_request_hash(const ShardSpec& spec);

/// The FNV-1a 64-bit hash of raw bytes — the same function the plan /
/// request hashes build on, exposed for payload checksums (the worker
/// wire protocol stamps every shard-CSV payload with it).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);

/// A global index range [begin, end). For striped shards the covered
/// indices are begin, begin + stride, ... < end rather than every index.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

/// The range shard `index` of `shards` covers in a `count`-instance
/// contiguous batch: contiguous, ascending, balanced (the first
/// count % shards ranges are one longer). Requires shards >= 1 and
/// index < shards.
[[nodiscard]] ShardRange shard_range(std::size_t count, std::size_t shards,
                                     std::size_t index);

/// Everything a shard runner (or merger) needs to know about one shard.
struct ShardManifest {
  int version = kShardFormatVersion;
  std::uint64_t plan_id = 0;       ///< identifies the plan across shards
  std::uint64_t request_hash = 0;  ///< shard_request_hash(spec)
  std::size_t shard = 0;           ///< this shard's index, 0-based
  std::size_t shards = 1;          ///< total shards in the plan
  ShardLayout layout = ShardLayout::kContiguous;
  ShardRange range;                ///< global indices this shard solves
  ShardSpec spec;                  ///< the full (global) request

  /// Distance between consecutive covered global indices: 1 for
  /// contiguous shards, `shards` for striped ones.
  [[nodiscard]] std::size_t stride() const {
    return layout == ShardLayout::kStriped ? shards : 1;
  }

  /// Number of instances this shard solves (== its row count).
  [[nodiscard]] std::size_t instance_count() const {
    const std::size_t s = stride();
    return (range.size() + s - 1) / s;
  }
};

/// A deterministic split of one ShardSpec into `shards` index sets. The
/// plan id is a pure function of (request hash, count, shard count,
/// layout, format version), so independently-constructed plans of the
/// same request agree — no coordination service needed.
class ShardPlan {
 public:
  /// Throws wdag::InvalidArgument when shards == 0 or shards > count
  /// (an empty shard could never be distinguished from a missing one at
  /// merge time), or when the spec carries non-finite params. count == 0
  /// admits only shards == 1.
  ShardPlan(ShardSpec spec, std::size_t shards,
            ShardLayout layout = ShardLayout::kContiguous);

  [[nodiscard]] const ShardSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t shards() const { return shards_; }
  [[nodiscard]] ShardLayout layout() const { return layout_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::uint64_t request_hash() const { return request_hash_; }

  /// The global range of shard `index` (< shards()). Striped shards
  /// report [index, count) and cover every stride()-th index within.
  [[nodiscard]] ShardRange range(std::size_t index) const;

  /// The manifest of shard `index` (< shards()).
  [[nodiscard]] ShardManifest manifest(std::size_t index) const;

 private:
  ShardSpec spec_;
  std::size_t shards_;
  ShardLayout layout_;
  std::uint64_t request_hash_;
  std::uint64_t id_;
};

/// The manifest as a single-line JSON object (stable key order) — the
/// payload of both the .json manifest files and the shard-CSV header.
/// Contiguous manifests keep the exact version-1 byte layout; striped
/// ones add a "layout" field (readers without striping support reject
/// them at the plan-id check rather than merging garbage).
[[nodiscard]] std::string manifest_to_json(const ShardManifest& m);

/// Parses a manifest back from JSON. Throws wdag::InvalidArgument on
/// malformed JSON, an unsupported version, or a recorded plan id /
/// request hash that disagrees with the one recomputed from the parsed
/// request (a hand-edited manifest would otherwise merge silently).
[[nodiscard]] ShardManifest parse_manifest(std::string_view json);

/// The `# wdag-shard <json>` comment line (newline-terminated) a shard
/// CSV carries before the column header.
[[nodiscard]] std::string shard_csv_header(const ShardManifest& m);

/// The canonical CSV column header every shard CSV (and the unsharded
/// streaming CSV) carries — byte-identical to api::CsvStreamSink's.
[[nodiscard]] std::string_view shard_csv_column_header();

/// One parsed shard CSV output: its embedded manifest plus the raw row
/// bytes (the rows of the unsharded output at this shard's indices).
struct ShardCsv {
  ShardManifest manifest;
  std::string rows;           ///< row bytes, newline-terminated
  std::size_t row_count = 0;  ///< == manifest.instance_count() once validated
};

/// Reads and validates one shard CSV: the `# wdag-shard` header line, the
/// canonical column header, and one row per covered index whose leading
/// index field matches its expected global index (stride-aware for
/// striped shards). Throws wdag::InvalidArgument naming `name` on any
/// mismatch — including a truncated file (missing rows or a final row
/// without its newline).
[[nodiscard]] ShardCsv read_shard_csv(std::istream& in,
                                      const std::string& name);

/// Opens `path` and validates it through read_shard_csv. Throws
/// wdag::InvalidArgument naming the path when the file cannot be opened,
/// plus every read_shard_csv failure mode.
[[nodiscard]] ShardCsv read_shard_csv_file(const std::string& path);

/// Validates that `shards` are the complete shard set of ONE plan — same
/// plan id and request hash, every index 0..K-1 present exactly once, and
/// full gap-free coverage of [0, count) — then reassembles their rows
/// under one column header: concatenation for contiguous plans, a
/// round-robin interleave for striped ones. The result is byte-identical
/// to the unsharded streaming CSV of the same request. Throws
/// wdag::InvalidArgument with a diagnostic naming the offending shard(s)
/// on any violation; no partial merge is ever produced.
[[nodiscard]] std::string merge_shard_csv(const std::vector<ShardCsv>& shards);

/// One parsed shard JSON-lines output (`shard run --json`): the leading
/// manifest line, then one row object per covered index. The trailing
/// per-shard aggregate report line is validated and dropped — aggregates
/// of a partial index set cannot appear byte-identically in a merge.
struct ShardJson {
  ShardManifest manifest;
  std::string rows;           ///< row-object lines, newline-terminated
  std::size_t row_count = 0;  ///< == manifest.instance_count() once validated
};

/// Reads and validates one shard JSON-lines file: manifest line, one
/// `{"index":G,...}` object per covered index in stride order, then the
/// aggregate report line. Throws wdag::InvalidArgument naming `name` on
/// any mismatch or truncation.
[[nodiscard]] ShardJson read_shard_json(std::istream& in,
                                        const std::string& name);

/// The JSON-lines analogue of merge_shard_csv: validates the complete
/// shard set of one plan and reassembles the row objects in global index
/// order. The result is byte-identical to the row lines an unsharded
/// api::JsonSink run emits (the aggregate report line is deliberately
/// absent — recompute it from the merged rows if needed).
[[nodiscard]] std::string merge_shard_json(const std::vector<ShardJson>& shards);

}  // namespace wdag::core
