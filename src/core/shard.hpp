#pragma once
// Sharded batch execution: plan / run / merge.
//
// A ShardPlan splits one generated-batch request into K contiguous global
// index ranges so the shards can run on K machines (or K processes) and
// merge back to the SAME BYTES a single-process streaming run would have
// produced. The determinism stack that makes this cheap:
//
//   * every instance derives its RNG from (seed, GLOBAL index) — so a
//     shard covering [lo, hi) generates exactly the instances the
//     unsharded run generates at those indices (BatchOptions::index_base);
//   * result sinks receive rows in strict instance order at any thread
//     count, so a shard's CSV body is a contiguous byte slice of the
//     unsharded output;
//   * the merge is therefore pure concatenation — after validating that
//     the shard files belong to one plan and cover the full range with no
//     gap, overlap, duplicate or truncation.
//
// Each shard is described by a ShardManifest: a single JSON object
// carrying the format version, the plan id, the request hash, the global
// index range, and the full request (generator family + params + seed +
// solver knobs) — a shard run needs the manifest file and nothing else.
// Shard CSV outputs embed the same manifest as a leading `# wdag-shard`
// comment line, so merge validation needs only the shard files.
//
// The request hash covers exactly the inputs that determine output bytes
// (family, params, count, seed, solver knobs, forced strategy). Schedule,
// chunk geometry and thread count are deliberately excluded: the
// determinism contract makes them byte-neutral, so every shard may pick
// whatever execution knobs suit its machine.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver.hpp"
#include "gen/workloads.hpp"

namespace wdag::core {

/// Version stamp of the manifest / shard-CSV format. Readers reject other
/// versions instead of guessing.
inline constexpr int kShardFormatVersion = 1;

/// The serializable request a plan shards: everything that affects the
/// bytes a batch emits. One ShardSpec == one reproducible workload.
struct ShardSpec {
  std::string family;            ///< generator name (gen::workload_names())
  gen::WorkloadParams params{};  ///< generator knobs
  std::size_t count = 0;         ///< GLOBAL instance count of the batch
  std::uint64_t seed = 1;        ///< base seed of the per-instance RNG
  /// Solver knobs that change results (exact_threshold, exact_node_budget).
  SolveOptions solve{};
  /// Forced strategy name; empty = normal dispatch.
  std::string force_strategy;
};

/// FNV-1a hash of the canonical serialization of `spec` — identical
/// specs hash identically on every platform. Excludes execution knobs
/// (threads/schedule/chunk) by construction: they never change bytes.
[[nodiscard]] std::uint64_t shard_request_hash(const ShardSpec& spec);

/// A contiguous global index range [begin, end).
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

/// The range shard `index` of `shards` covers in a `count`-instance
/// batch: contiguous, ascending, balanced (the first count % shards
/// ranges are one longer). Requires shards >= 1 and index < shards.
[[nodiscard]] ShardRange shard_range(std::size_t count, std::size_t shards,
                                     std::size_t index);

/// Everything a shard runner (or merger) needs to know about one shard.
struct ShardManifest {
  int version = kShardFormatVersion;
  std::uint64_t plan_id = 0;       ///< identifies the plan across shards
  std::uint64_t request_hash = 0;  ///< shard_request_hash(spec)
  std::size_t shard = 0;           ///< this shard's index, 0-based
  std::size_t shards = 1;          ///< total shards in the plan
  ShardRange range;                ///< global indices this shard solves
  ShardSpec spec;                  ///< the full (global) request
};

/// A deterministic split of one ShardSpec into `shards` contiguous
/// ranges. The plan id is a pure function of (request hash, count,
/// shard count, format version), so independently-constructed plans of
/// the same request agree — no coordination service needed.
class ShardPlan {
 public:
  /// Throws wdag::InvalidArgument when shards == 0 or shards > count
  /// (an empty shard could never be distinguished from a missing one at
  /// merge time). count == 0 admits only shards == 1.
  ShardPlan(ShardSpec spec, std::size_t shards);

  [[nodiscard]] const ShardSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t shards() const { return shards_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::uint64_t request_hash() const { return request_hash_; }

  /// The global range of shard `index` (< shards()).
  [[nodiscard]] ShardRange range(std::size_t index) const;

  /// The manifest of shard `index` (< shards()).
  [[nodiscard]] ShardManifest manifest(std::size_t index) const;

 private:
  ShardSpec spec_;
  std::size_t shards_;
  std::uint64_t request_hash_;
  std::uint64_t id_;
};

/// The manifest as a single-line JSON object (stable key order) — the
/// payload of both the .json manifest files and the shard-CSV header.
[[nodiscard]] std::string manifest_to_json(const ShardManifest& m);

/// Parses a manifest back from JSON. Throws wdag::InvalidArgument on
/// malformed JSON, an unsupported version, or a recorded plan id /
/// request hash that disagrees with the one recomputed from the parsed
/// request (a hand-edited manifest would otherwise merge silently).
[[nodiscard]] ShardManifest parse_manifest(std::string_view json);

/// The `# wdag-shard <json>` comment line (newline-terminated) a shard
/// CSV carries before the column header.
[[nodiscard]] std::string shard_csv_header(const ShardManifest& m);

/// One parsed shard CSV output: its embedded manifest plus the raw row
/// bytes (exactly the slice of the unsharded output it covers).
struct ShardCsv {
  ShardManifest manifest;
  std::string rows;           ///< row bytes, newline-terminated
  std::size_t row_count = 0;  ///< == manifest.range.size() once validated
};

/// Reads and validates one shard CSV: the `# wdag-shard` header line, the
/// canonical column header, and one row per covered index whose leading
/// index field matches its expected global index. Throws
/// wdag::InvalidArgument naming `name` on any mismatch — including a
/// truncated file (missing rows or a final row without its newline).
[[nodiscard]] ShardCsv read_shard_csv(std::istream& in,
                                      const std::string& name);

/// Validates that `shards` are the complete shard set of ONE plan — same
/// plan id and request hash, every index 0..K-1 present exactly once, and
/// ranges that chain gaplessly from 0 to count — then concatenates their
/// rows under one column header. The result is byte-identical to the
/// unsharded streaming CSV of the same request. Throws
/// wdag::InvalidArgument with a diagnostic naming the offending shard(s)
/// on any violation; no partial merge is ever produced.
[[nodiscard]] std::string merge_shard_csv(const std::vector<ShardCsv>& shards);

}  // namespace wdag::core
