#include "core/solver.hpp"

#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "core/split_merge.hpp"
#include "core/theorem1.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"

namespace wdag::core {

std::string method_name(Method m) {
  switch (m) {
    case Method::kTheorem1:
      return "theorem1";
    case Method::kSplitMerge:
      return "split-merge";
    case Method::kDsatur:
      return "dsatur";
    case Method::kExact:
      return "exact";
  }
  return "unknown";
}

SolveResult solve(const paths::DipathFamily& family,
                  const SolveOptions& options) {
  SolveResult res;
  res.report = dag::classify(family.graph());
  res.load = paths::max_load(family);
  WDAG_DOMAIN(res.report.is_dag, "solve: the host graph must be a DAG");

  const Method chosen = options.force.value_or(
      res.report.wavelengths_equal_load() ? Method::kTheorem1
      : res.report.is_upp                 ? Method::kSplitMerge
                                          : Method::kDsatur);

  switch (chosen) {
    case Method::kTheorem1: {
      auto r = color_equal_load(family);
      res.coloring = std::move(r.coloring);
      res.wavelengths = r.wavelengths;
      res.method = Method::kTheorem1;
      res.optimal = true;  // w == pi by Theorem 1
      return res;
    }
    case Method::kSplitMerge: {
      auto r = color_upp_split_merge(family);
      res.coloring = std::move(r.coloring);
      res.wavelengths = r.wavelengths;
      res.method = Method::kSplitMerge;
      res.optimal = (res.wavelengths == res.load);
      break;
    }
    case Method::kDsatur: {
      const conflict::ConflictGraph cg(family);
      res.coloring = conflict::dsatur_coloring(cg);
      conflict::normalize_colors(res.coloring);
      res.wavelengths = conflict::num_colors(res.coloring);
      res.method = Method::kDsatur;
      res.optimal = (res.wavelengths == res.load);
      break;
    }
    case Method::kExact: {
      const conflict::ConflictGraph cg(family);
      auto r = conflict::chromatic_number(cg, options.exact_node_budget);
      res.coloring = std::move(r.coloring);
      res.wavelengths = r.chromatic_number;
      res.method = Method::kExact;
      res.optimal = r.proven;
      return res;
    }
  }

  // Optional exact certification / improvement for small instances.
  if (!res.optimal && options.exact_threshold > 0 &&
      family.size() <= options.exact_threshold) {
    const conflict::ConflictGraph cg(family);
    auto r = conflict::chromatic_number(cg, options.exact_node_budget);
    if (r.proven && r.chromatic_number <= res.wavelengths) {
      res.coloring = std::move(r.coloring);
      res.wavelengths = r.chromatic_number;
      res.method = Method::kExact;
      res.optimal = true;
    }
  }
  WDAG_ASSERT(conflict::is_valid_assignment(family, res.coloring),
              "solve: invalid assignment escaped the dispatcher");
  return res;
}

}  // namespace wdag::core
