#include "core/solver.hpp"

#include <utility>

namespace wdag::core {

std::string_view builtin_strategy_name(StrategyId id) {
  switch (id) {
    case kStrategyTheorem1:
      return "theorem1";
    case kStrategySplitMerge:
      return "split-merge";
    case kStrategyDsatur:
      return "dsatur";
    case kStrategyExact:
      return "exact";
    default:
      return "unknown";
  }
}

std::vector<std::string> builtin_strategy_names() {
  std::vector<std::string> names;
  names.reserve(kBuiltinStrategyCount);
  for (StrategyId id = 0; id < kBuiltinStrategyCount; ++id) {
    names.emplace_back(builtin_strategy_name(id));
  }
  return names;
}

void SolveScratch::first_touch() {
  // A modest synthetic build sized like a typical workload instance: the
  // move-assignment replaces the arena's storage with memory allocated —
  // and therefore first-touched — by the calling thread; ConflictGraph::
  // rebuild() reuses it afterwards instead of reallocating.
  constexpr std::size_t kWarmVertices = 64;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  edges.reserve(kWarmVertices - 1);
  for (std::size_t v = 1; v < kWarmVertices; ++v) {
    edges.emplace_back(v - 1, v);
  }
  conflict_graph = conflict::ConflictGraph(kWarmVertices, edges);
}

}  // namespace wdag::core
