#include "core/solver.hpp"

#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "core/split_merge.hpp"
#include "core/theorem1.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"

namespace wdag::core {

std::string method_name(Method m) {
  switch (m) {
    case Method::kTheorem1:
      return "theorem1";
    case Method::kSplitMerge:
      return "split-merge";
    case Method::kDsatur:
      return "dsatur";
    case Method::kExact:
      return "exact";
  }
  return "unknown";
}

namespace {

/// The conflict graph of `family`, built into the caller's scratch arena
/// when one was provided (reusing its rows), or into a thread-local
/// fallback otherwise.
const conflict::ConflictGraph& conflict_graph_for(
    const paths::DipathFamily& family, const SolveOptions& options) {
  conflict::ConflictGraph* cg;
  if (options.scratch != nullptr) {
    cg = &options.scratch->conflict_graph;
  } else {
    thread_local conflict::ConflictGraph fallback;
    cg = &fallback;
  }
  cg->rebuild(family);
  return *cg;
}

}  // namespace

SolveResult solve(const paths::DipathFamily& family,
                  const SolveOptions& options) {
  SolveResult res;
  res.report = dag::classify(family.graph());
  WDAG_DOMAIN(res.report.is_dag, "solve: the host graph must be a DAG");

  const Method chosen = options.force.value_or(
      res.report.wavelengths_equal_load() ? Method::kTheorem1
      : res.report.is_upp                 ? Method::kSplitMerge
                                          : Method::kDsatur);
  // When dispatch (not --force) picked a structural method, the
  // classification above already proved its preconditions — skip the
  // colorers' own re-verification (is_upp is an O(n·m) DP per call).
  const bool preverified = !options.force.has_value();

  switch (chosen) {
    case Method::kTheorem1: {
      auto r = color_equal_load(family, preverified);
      res.coloring = std::move(r.coloring);
      res.wavelengths = r.wavelengths;
      res.load = r.load;  // the structural colorers compute pi anyway
      res.method = Method::kTheorem1;
      res.optimal = true;  // w == pi by Theorem 1
      return res;
    }
    case Method::kSplitMerge: {
      auto r = color_upp_split_merge(family, preverified);
      res.coloring = std::move(r.coloring);
      res.wavelengths = r.wavelengths;
      res.load = r.load;
      res.method = Method::kSplitMerge;
      res.optimal = (res.wavelengths == res.load);
      break;
    }
    case Method::kDsatur: {
      res.load = paths::max_load(family);
      const conflict::ConflictGraph& cg = conflict_graph_for(family, options);
      res.coloring = conflict::dsatur_coloring(cg);
      res.wavelengths = conflict::normalize_colors(res.coloring);
      res.method = Method::kDsatur;
      res.optimal = (res.wavelengths == res.load);
      break;
    }
    case Method::kExact: {
      res.load = paths::max_load(family);
      const conflict::ConflictGraph& cg = conflict_graph_for(family, options);
      auto r = conflict::chromatic_number(cg, options.exact_node_budget);
      res.coloring = std::move(r.coloring);
      res.wavelengths = r.chromatic_number;
      res.method = Method::kExact;
      res.optimal = r.proven;
      return res;
    }
  }

  // Optional exact certification / improvement for small instances.
  if (!res.optimal && options.exact_threshold > 0 &&
      family.size() <= options.exact_threshold) {
    const conflict::ConflictGraph& cg = conflict_graph_for(family, options);
    auto r = conflict::chromatic_number(cg, options.exact_node_budget);
    if (r.proven && r.chromatic_number <= res.wavelengths) {
      res.coloring = std::move(r.coloring);
      res.wavelengths = r.chromatic_number;
      res.method = Method::kExact;
      res.optimal = true;
    }
  }
  // The split-merge colorer validates its assignment before returning;
  // re-validate only the DSATUR path (and exact improvements, which the
  // exact solver itself validates).
  WDAG_ASSERT(res.method != Method::kDsatur ||
                  conflict::is_valid_assignment(family, res.coloring),
              "solve: invalid assignment escaped the dispatcher");
  return res;
}

}  // namespace wdag::core
