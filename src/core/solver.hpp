#pragma once
// Strategy identity and per-solve knobs shared by the core batch engine
// and the public API's pluggable strategy registry (api/strategy.hpp).
//
// Dispatch follows the structural classification of the host graph:
//
//   no internal cycle        -> Theorem 1: exactly pi wavelengths, optimal.
//   UPP, internal cycles     -> split-merge (Theorem 6 and its recursion).
//   general                  -> DSATUR heuristic, optionally certified by
//                               the exact branch-and-bound when the
//                               conflict graph is small.
//
// Every result carries the load lower bound and an optimality verdict.
// The single-call entry points are api::solve_with (one instance against
// a registry) and api::Engine::submit / run_batch (wdag/wdag.hpp); the
// pre-registry core::solve / core::Method shims were removed in 0.2.0.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "conflict/coloring.hpp"
#include "dag/classify.hpp"
#include "paths/family.hpp"

namespace wdag::core {

/// Index of a solver strategy within an api::StrategyRegistry. The four
/// built-ins occupy fixed ids 0..3 in every registry; user-registered
/// strategies are appended after them.
using StrategyId = std::uint32_t;

inline constexpr StrategyId kStrategyTheorem1 = 0;
inline constexpr StrategyId kStrategySplitMerge = 1;
inline constexpr StrategyId kStrategyDsatur = 2;
inline constexpr StrategyId kStrategyExact = 3;

/// Number of built-in strategies present in every registry.
inline constexpr std::size_t kBuiltinStrategyCount = 4;

/// Display name of a built-in strategy id ("theorem1", "split-merge",
/// "dsatur", "exact"); "unknown" past the built-ins.
std::string_view builtin_strategy_name(StrategyId id);

/// Display names of the built-in strategies, indexed by StrategyId.
std::vector<std::string> builtin_strategy_names();

/// Reusable buffers a caller may hand to solve() to amortize allocations
/// across many instances. One arena per worker thread (it is not
/// thread-safe); the batch engine owns one per worker so consecutive
/// instances reuse the conflict graph's adjacency rows instead of
/// reallocating them.
struct SolveScratch {
  conflict::ConflictGraph conflict_graph;

  /// Allocates and touches the arena's backing storage (adjacency rows,
  /// degree tables) from the CALLING thread. Under Linux's first-touch
  /// page placement this puts the arena on the caller's NUMA node, so an
  /// engine whose workers are pinned (WDAG_AFFINITY) keeps each worker's
  /// arena node-local; rebuild() then reuses that storage across the
  /// worker's instances. Harmless (just a small warm-up build) when the
  /// process is not pinned.
  void first_touch();
};

/// Solver knobs.
struct SolveOptions {
  /// Run the exact solver when the conflict graph has at most this many
  /// vertices and the structural algorithms do not already certify
  /// optimality. 0 disables exact certification.
  std::size_t exact_threshold = 48;
  /// Node budget handed to the exact solver.
  std::size_t exact_node_budget = 20'000'000;
  /// Force a specific built-in strategy id (bypasses dispatch);
  /// kTheorem1/kSplitMerge still check their structural preconditions.
  /// The Engine generalizes this to any registered strategy via
  /// SolveRequest::force_strategy.
  std::optional<StrategyId> force;
  /// Optional per-worker scratch arena (not owned; may be null).
  SolveScratch* scratch = nullptr;
};

}  // namespace wdag::core
