#pragma once
// Top-level wavelength-assignment solver.
//
// Dispatches on the structural classification of the host graph:
//
//   no internal cycle        -> Theorem 1: exactly pi wavelengths, optimal.
//   UPP, internal cycles     -> split-merge (Theorem 6 and its recursion).
//   general                  -> DSATUR heuristic, optionally certified by
//                               the exact branch-and-bound when the
//                               conflict graph is small.
//
// Every result carries the load lower bound and an optimality verdict.

#include <optional>
#include <string>

#include "conflict/coloring.hpp"
#include "dag/classify.hpp"
#include "paths/family.hpp"

namespace wdag::core {

/// Algorithm that produced a solution.
enum class Method {
  kTheorem1,    ///< constructive equality w == pi
  kSplitMerge,  ///< UPP split-merge (Theorem 6 generalization)
  kDsatur,      ///< DSATUR heuristic on the conflict graph
  kExact,       ///< exact branch-and-bound chromatic number
};

/// Name of a Method for reports.
std::string method_name(Method m);

/// Reusable buffers a caller may hand to solve() to amortize allocations
/// across many instances. One arena per worker thread (it is not
/// thread-safe); the batch engine owns one per chunk loop so consecutive
/// instances reuse the conflict graph's adjacency rows instead of
/// reallocating them.
struct SolveScratch {
  conflict::ConflictGraph conflict_graph;
};

/// Solver knobs.
struct SolveOptions {
  /// Run the exact solver when the conflict graph has at most this many
  /// vertices and the structural algorithms do not already certify
  /// optimality. 0 disables exact certification.
  std::size_t exact_threshold = 48;
  /// Node budget handed to the exact solver.
  std::size_t exact_node_budget = 20'000'000;
  /// Force a specific method (bypasses dispatch); kTheorem1/kSplitMerge
  /// still check their structural preconditions.
  std::optional<Method> force;
  /// Optional per-worker scratch arena (not owned; may be null).
  SolveScratch* scratch = nullptr;
};

/// A solved instance.
struct SolveResult {
  conflict::Coloring coloring;   ///< wavelength per path id
  std::size_t wavelengths = 0;   ///< colors used
  std::size_t load = 0;          ///< pi(G,P), always a lower bound on w
  Method method = Method::kTheorem1;
  bool optimal = false;          ///< true when wavelengths is provably w(G,P)
  dag::DagReport report;         ///< structural classification of the host
};

/// Solves the wavelength assignment problem for `family`.
/// The returned coloring is always valid; `optimal` reports whether the
/// number of wavelengths is provably minimum (it always is when the host
/// has no internal cycle, by the Main Theorem).
SolveResult solve(const paths::DipathFamily& family,
                  const SolveOptions& options = {});

}  // namespace wdag::core
