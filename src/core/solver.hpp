#pragma once
// Top-level wavelength-assignment solver — the legacy single-call facade.
//
// Dispatch follows the structural classification of the host graph:
//
//   no internal cycle        -> Theorem 1: exactly pi wavelengths, optimal.
//   UPP, internal cycles     -> split-merge (Theorem 6 and its recursion).
//   general                  -> DSATUR heuristic, optionally certified by
//                               the exact branch-and-bound when the
//                               conflict graph is small.
//
// Every result carries the load lower bound and an optimality verdict.
//
// DEPRECATION NOTE: the dispatch now lives in the pluggable strategy
// registry of the public API (api/strategy.hpp, api/engine.hpp; umbrella
// header wdag/wdag.hpp). solve() below is a thin shim over the built-in
// registry kept so pre-Engine call sites continue to compile; new code
// should construct an api::Engine and call submit()/run_batch().

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "conflict/coloring.hpp"
#include "dag/classify.hpp"
#include "paths/family.hpp"

namespace wdag::core {

/// Index of a solver strategy within an api::StrategyRegistry. The four
/// built-ins occupy fixed ids 0..3 in every registry; user-registered
/// strategies are appended after them.
using StrategyId = std::uint32_t;

inline constexpr StrategyId kStrategyTheorem1 = 0;
inline constexpr StrategyId kStrategySplitMerge = 1;
inline constexpr StrategyId kStrategyDsatur = 2;
inline constexpr StrategyId kStrategyExact = 3;

/// Number of built-in strategies present in every registry.
inline constexpr std::size_t kBuiltinStrategyCount = 4;

/// DEPRECATED: closed enumeration of the built-in strategies, kept so
/// pre-registry call sites still compile. The enumerator values equal the
/// built-in StrategyIds, so static_cast between the two is exact. New
/// code should address strategies by id or name through the registry.
enum class Method : StrategyId {
  kTheorem1 = kStrategyTheorem1,      ///< constructive equality w == pi
  kSplitMerge = kStrategySplitMerge,  ///< UPP split-merge (Theorem 6)
  kDsatur = kStrategyDsatur,          ///< DSATUR on the conflict graph
  kExact = kStrategyExact,            ///< exact branch-and-bound
};

/// The StrategyId of a legacy Method value.
constexpr StrategyId strategy_id(Method m) {
  return static_cast<StrategyId>(m);
}

/// Display name of a built-in strategy id ("theorem1", "split-merge",
/// "dsatur", "exact"); "unknown" past the built-ins.
std::string_view builtin_strategy_name(StrategyId id);

/// Display names of the built-in strategies, indexed by StrategyId.
std::vector<std::string> builtin_strategy_names();

/// DEPRECATED alias of builtin_strategy_name for reports.
std::string method_name(Method m);

/// Reusable buffers a caller may hand to solve() to amortize allocations
/// across many instances. One arena per worker thread (it is not
/// thread-safe); the batch engine owns one per worker so consecutive
/// instances reuse the conflict graph's adjacency rows instead of
/// reallocating them.
struct SolveScratch {
  conflict::ConflictGraph conflict_graph;

  /// Allocates and touches the arena's backing storage (adjacency rows,
  /// degree tables) from the CALLING thread. Under Linux's first-touch
  /// page placement this puts the arena on the caller's NUMA node, so an
  /// engine whose workers are pinned (WDAG_AFFINITY) keeps each worker's
  /// arena node-local; rebuild() then reuses that storage across the
  /// worker's instances. Harmless (just a small warm-up build) when the
  /// process is not pinned.
  void first_touch();
};

/// Solver knobs.
struct SolveOptions {
  /// Run the exact solver when the conflict graph has at most this many
  /// vertices and the structural algorithms do not already certify
  /// optimality. 0 disables exact certification.
  std::size_t exact_threshold = 48;
  /// Node budget handed to the exact solver.
  std::size_t exact_node_budget = 20'000'000;
  /// Force a specific built-in (bypasses dispatch); kTheorem1/kSplitMerge
  /// still check their structural preconditions. The Engine generalizes
  /// this to any registered strategy via SolveRequest::force_strategy.
  std::optional<Method> force;
  /// Optional per-worker scratch arena (not owned; may be null).
  SolveScratch* scratch = nullptr;
};

/// A solved instance (legacy result shape; api::SolveResponse is the
/// registry-aware equivalent).
struct SolveResult {
  conflict::Coloring coloring;   ///< wavelength per path id
  std::size_t wavelengths = 0;   ///< colors used
  std::size_t load = 0;          ///< pi(G,P), always a lower bound on w
  Method method = Method::kTheorem1;
  bool optimal = false;          ///< true when wavelengths is provably w(G,P)
  dag::DagReport report;         ///< structural classification of the host
};

/// Solves the wavelength assignment problem for `family`.
/// The returned coloring is always valid; `optimal` reports whether the
/// number of wavelengths is provably minimum (it always is when the host
/// has no internal cycle, by the Main Theorem).
///
/// DEPRECATED shim over api::solve_with on the built-in registry; prefer
/// api::Engine::submit (wdag/wdag.hpp).
SolveResult solve(const paths::DipathFamily& family,
                  const SolveOptions& options = {});

}  // namespace wdag::core
