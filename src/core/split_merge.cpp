#include "core/split_merge.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "core/theorem1.hpp"
#include "dag/internal_cycle.hpp"
#include "dag/upp.hpp"
#include "graph/topo.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"

namespace wdag::core {

using graph::ArcId;
using graph::Digraph;
using graph::VertexId;
using paths::Dipath;
using paths::DipathFamily;

namespace {

struct Stats {
  std::size_t levels = 0;
  std::size_t cycle_classes = 0;
  std::size_t fixups = 0;
};

/// Arc loads for a raw path vector, into a reused buffer.
void loads_of_into(const Digraph& g, const std::vector<Dipath>& ps,
                   std::vector<std::size_t>& loads) {
  loads.assign(g.num_arcs(), 0);
  for (const Dipath& p : ps) {
    for (ArcId a : p.arcs) ++loads[a];
  }
}

/// Arc -> path-ids inverted index for fast fit queries, in flat CSR form
/// (members of arc a at ids[offsets[a] .. offsets[a+1]), in path order).
struct ConflictIndex {
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> ids;

  ConflictIndex(const Digraph& g, const std::vector<Dipath>& ps) {
    offsets.assign(g.num_arcs() + 1, 0);
    std::size_t total = 0;
    for (const Dipath& p : ps) {
      for (const ArcId a : p.arcs) ++offsets[a + 1];
      total += p.arcs.size();
    }
    for (std::size_t a = 0; a < g.num_arcs(); ++a) offsets[a + 1] += offsets[a];
    ids.resize(total);
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < ps.size(); ++i) {
      for (const ArcId a : ps[i].arcs) {
        ids[cursor[a]++] = static_cast<std::uint32_t>(i);
      }
    }
  }

  /// True when recoloring path `victim` to `c` keeps the assignment locally
  /// valid (no same-color path shares an arc with it).
  [[nodiscard]] bool fits(const std::vector<Dipath>& ps,
                          const std::vector<std::uint32_t>& color,
                          std::size_t victim, std::uint32_t c) const {
    for (const ArcId a : ps[victim].arcs) {
      for (std::uint32_t e = offsets[a]; e < offsets[a + 1]; ++e) {
        const std::size_t q = ids[e];
        if (q != victim && q < color.size() && color[q] == c) return false;
      }
    }
    return true;
  }
};

/// First conflicting same-color pair, or nullopt when the coloring is
/// valid. Scans the prebuilt index (arc ascending, members in path order),
/// so the fix-up loop does not rebuild the incidence every iteration.
std::optional<std::pair<std::size_t, std::size_t>> first_conflict(
    const ConflictIndex& index, const std::vector<std::uint32_t>& color) {
  for (std::size_t a = 0; a + 1 < index.offsets.size(); ++a) {
    for (std::uint32_t i = index.offsets[a]; i < index.offsets[a + 1]; ++i) {
      for (std::uint32_t j = i + 1; j < index.offsets[a + 1]; ++j) {
        if (color[index.ids[i]] == color[index.ids[j]]) {
          return std::make_pair<std::size_t, std::size_t>(index.ids[i],
                                                          index.ids[j]);
        }
      }
    }
  }
  return std::nullopt;
}

/// Color-elimination descent: repeatedly dissolve the least-used color
/// class by first-fitting its members into other classes. Runs once, on
/// the top-level family, with a round cap; every move is validated by the
/// index, so the assignment stays proper throughout.
void reduce_color_classes(const Digraph& g, const std::vector<Dipath>& ps,
                          std::vector<std::uint32_t>& color,
                          std::size_t max_rounds = 64) {
  if (ps.empty()) return;
  const ConflictIndex index(g, ps);
  std::uint32_t max_color = 0;
  for (const auto c : color) max_color = std::max(max_color, c);

  // Round-local buffers, reused across rounds and instances (one set per
  // thread); the descent runs once per batch instance.
  thread_local std::vector<std::size_t> usage;
  thread_local std::vector<std::uint32_t> classes, attempt;

  for (std::size_t round = 0; round < max_rounds; ++round) {
    usage.assign(max_color + 1, 0);
    for (const auto c : color) ++usage[c];
    classes.clear();
    for (std::uint32_t c = 0; c <= max_color; ++c) {
      if (usage[c] > 0) classes.push_back(c);
    }
    if (classes.size() <= 1) return;
    std::sort(classes.begin(), classes.end(),
              [&](std::uint32_t a, std::uint32_t b) { return usage[a] < usage[b]; });
    bool improved = false;
    for (const std::uint32_t victim_class : classes) {
      attempt.assign(color.begin(), color.end());
      bool ok = true;
      for (std::size_t i = 0; i < ps.size() && ok; ++i) {
        if (attempt[i] != victim_class) continue;
        bool moved = false;
        for (const std::uint32_t c : classes) {
          if (c == victim_class) continue;
          if (index.fits(ps, attempt, i, c)) {
            attempt[i] = c;
            moved = true;
            break;
          }
        }
        ok = moved;
      }
      if (ok) {
        color.assign(attempt.begin(), attempt.end());
        improved = true;
        break;
      }
    }
    if (!improved) return;
  }
}

std::vector<std::uint32_t> solve_rec(const Digraph& g,
                                     const std::vector<Dipath>& input,
                                     Stats& st) {
  if (input.empty()) return {};

  // One pass answers both "is there an internal cycle?" and "which one?".
  const auto cycle = dag::find_internal_cycle(g);
  if (!cycle) {
    DipathFamily fam(g);
    // The recursion only re-wraps paths it just transformed arc-by-arc;
    // re-validating each one is the base case's dominant cost.
    for (const Dipath& p : input) fam.add_unchecked(p);
    // Preconditions hold by construction: the recursion only ever splits
    // a DAG, and the internal-cycle check just ran.
    return color_equal_load(fam, /*preverified=*/true).coloring;
  }

  ++st.levels;

  // Split arc: maximum load among the cycle's arcs (paper's choice).
  // `loads` and `arc_map` are dead before the recursive call, so one
  // thread-local buffer each serves every level.
  thread_local std::vector<std::size_t> loads;
  loads_of_into(g, input, loads);
  ArcId ab = graph::kNoArc;
  for (const auto& step : cycle->steps) {
    if (ab == graph::kNoArc || loads[step.arc] > loads[ab]) ab = step.arc;
  }
  const std::size_t pi =
      *std::max_element(loads.begin(), loads.end());

  // Pad with single-arc copies of [a,b] up to the global load. A coloring
  // of the padded family restricts to a (no worse) coloring of the input.
  std::vector<Dipath> padded;
  padded.reserve(input.size() + (pi - loads[ab]));
  padded = input;
  for (std::size_t l = loads[ab]; l < pi; ++l) {
    padded.push_back(Dipath({ab}));
  }

  // Build the split graph: (a,b) becomes (a,s) and (t,b).
  const auto& g_arcs = g.arcs();
  const VertexId a = g_arcs[ab].tail;
  const VertexId b = g_arcs[ab].head;
  const VertexId n = static_cast<VertexId>(g.num_vertices());
  graph::DigraphBuilder builder(g.num_vertices());
  thread_local std::vector<ArcId> arc_map;
  arc_map.assign(g.num_arcs(), graph::kNoArc);
  for (ArcId e = 0; e < g.num_arcs(); ++e) {
    if (e == ab) continue;
    arc_map[e] = builder.add_arc(g_arcs[e].tail, g_arcs[e].head);
  }
  const VertexId s = builder.add_vertex("split_s");
  const VertexId t = builder.add_vertex("split_t");
  WDAG_ASSERT(s == n && t == n + 1, "split_merge: unexpected split vertex ids");
  const ArcId arc_as = builder.add_arc(a, s);
  const ArcId arc_tb = builder.add_arc(t, b);
  const Digraph g2 = builder.build();

  // Transform the padded family.
  struct SplitPair {
    std::size_t orig;  // index into `padded`
    std::size_t head;  // index into `sub`
    std::size_t tail;  // index into `sub`
  };
  std::vector<Dipath> sub;
  sub.reserve(padded.size() + pi);  // every split path contributes two
  std::vector<std::optional<std::size_t>> nonsplit_map(padded.size());
  std::vector<SplitPair> pairs;
  pairs.reserve(pi);
  for (std::size_t i = 0; i < padded.size(); ++i) {
    const auto& arcs = padded[i].arcs;
    const auto it = std::find(arcs.begin(), arcs.end(), ab);
    if (it == arcs.end()) {
      Dipath q;
      q.arcs.reserve(arcs.size());
      for (ArcId e : arcs) q.arcs.push_back(arc_map[e]);
      sub.push_back(std::move(q));
      nonsplit_map[i] = sub.size() - 1;
      continue;
    }
    Dipath head, tail;
    for (auto jt = arcs.begin(); jt != it; ++jt) head.arcs.push_back(arc_map[*jt]);
    head.arcs.push_back(arc_as);
    tail.arcs.push_back(arc_tb);
    for (auto jt = it + 1; jt != arcs.end(); ++jt) tail.arcs.push_back(arc_map[*jt]);
    sub.push_back(std::move(head));
    const std::size_t head_id = sub.size() - 1;
    sub.push_back(std::move(tail));
    pairs.push_back(SplitPair{i, head_id, sub.size() - 1});
  }
  WDAG_ASSERT(pairs.size() == pi || pi == 0,
              "split_merge: split count must equal the padded load");

  const auto sub_colors = solve_rec(g2, sub, st);

  // ---- Merge ----------------------------------------------------------
  std::vector<std::uint32_t> color(padded.size(), UINT32_MAX);
  std::uint32_t max_color = 0;
  for (const std::uint32_t c : sub_colors) max_color = std::max(max_color, c);

  for (std::size_t i = 0; i < padded.size(); ++i) {
    if (nonsplit_map[i]) color[i] = sub_colors[*nonsplit_map[i]];
  }

  // Heads pairwise share (a,s): their colors are pi distinct values.
  // tau maps head color -> tail color; decompose into chains and cycles.
  // Flat color-indexed table (head colors are bounded by max_color).
  constexpr std::size_t kNoPair = SIZE_MAX;
  std::vector<std::size_t> by_head_color(max_color + 1, kNoPair);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    std::size_t& slot = by_head_color[sub_colors[pairs[k].head]];
    WDAG_ASSERT(slot == kNoPair,
                "split_merge: head colors must be pairwise distinct");
    slot = k;
  }
  const auto tau_next = [&](std::uint32_t tail_color) {
    return tail_color <= max_color ? by_head_color[tail_color] : kNoPair;
  };
  // Every merged dipath keeps its head color: heads are pairwise distinct,
  // so merged dipaths (which all contain (a,b)) stay pairwise compatible.
  for (const SplitPair& pr : pairs) {
    color[pr.orig] = sub_colors[pr.head];
  }

  // Count tau-cycles of length >= 2 — the paper's classes C_p — for the
  // bound accounting (each such class may force one extra color, pairs of
  // 2-cycles share one; the fix-up pass below allocates lazily).
  {
    std::vector<std::int8_t> seen(pairs.size(), 0);
    std::size_t two_cycles = 0, longer = 0;
    for (std::size_t k0 = 0; k0 < pairs.size(); ++k0) {
      if (seen[k0]) continue;
      // Walk forward through tau until repeat or dead end.
      std::vector<std::size_t> walk;
      std::size_t k = k0;
      while (true) {
        seen[k] = 1;
        walk.push_back(k);
        const std::size_t succ = tau_next(sub_colors[pairs[k].tail]);
        if (succ == kNoPair) break;                // chain ends
        if (succ == k0 || seen[succ]) break;       // closed/visited
        k = succ;
      }
      const std::size_t closes = tau_next(sub_colors[pairs[walk.back()].tail]);
      const bool is_cycle = closes == k0;
      if (is_cycle && walk.size() == 2) ++two_cycles;
      if (is_cycle && walk.size() >= 3) ++longer;
    }
    st.cycle_classes += two_cycles + longer;
  }

  // ---- Fix-up ---------------------------------------------------------
  // Rejoined dipaths now cover their tail arcs with the head color, which
  // can collide with dipaths that legitimately used that color near the
  // tail. Recolor such dipaths, searching the whole palette first: the
  // paper sends the (claimed unique, by its Fact 2) conflicting dipath to
  // the cycle's fresh color, but that uniqueness degenerates when tails
  // share the arc (t,b) (see DESIGN.md), so we first-fit and only then pay
  // for a fresh color.
  std::vector<bool> merged(padded.size(), false);
  for (const SplitPair& pr : pairs) merged[pr.orig] = true;

  const ConflictIndex index(g, padded);
  while (const auto conflict = first_conflict(index, color)) {
    const auto [p, q] = *conflict;
    // Exactly one side should be a rejoined dipath; never recolor it (its
    // color is pinned by the merge). With replicated copies both sides can
    // be rejoined only if the merge produced duplicates, which the
    // head-distinctness assert above excludes.
    std::size_t victim;
    if (merged[p] && merged[q]) {
      WDAG_ASSERT(false, "split_merge: two rejoined dipaths collide");
    }
    victim = merged[p] ? q : p;
    ++st.fixups;
    bool placed = false;
    for (std::uint32_t c = 0; c <= max_color && !placed; ++c) {
      if (index.fits(padded, color, victim, c)) {
        color[victim] = c;
        placed = true;
      }
    }
    if (!placed) {
      color[victim] = ++max_color;
      WDAG_ASSERT(index.fits(padded, color, victim, max_color),
                  "split_merge: fresh color still conflicts");
    }
  }

  color.resize(input.size());  // drop the padding copies
  return color;
}

}  // namespace

SplitMergeResult color_upp_split_merge(const DipathFamily& family,
                                       bool preverified) {
  const Digraph& g = family.graph();
  if (!preverified) {
    WDAG_DOMAIN(graph::is_dag(g), "color_upp_split_merge: host is not a DAG");
    WDAG_DOMAIN(dag::is_upp(g),
                "color_upp_split_merge: host does not satisfy the unique-"
                "dipath property");
  }

  SplitMergeResult res;
  res.load = paths::max_load(family);
  if (family.empty()) return res;

  Stats st;
  res.coloring = solve_rec(g, family.paths(), st);
  // Any proper coloring needs at least pi colors, so when the recursion
  // already landed on pi the descent provably cannot dissolve a class —
  // skip building its conflict index. The recursion's fix-up loop exits
  // only once an exhaustive conflict scan comes back clean, so the
  // assignment is already validated on this fast path.
  bool revalidate = false;
  if (conflict::num_colors(res.coloring) > res.load) {
    reduce_color_classes(g, family.paths(), res.coloring);
    revalidate = true;
  }
  res.levels = st.levels;
  res.cycle_classes = st.cycle_classes;
  res.fixups = st.fixups;
  res.wavelengths = conflict::normalize_colors(res.coloring);

  WDAG_ASSERT(!revalidate ||
                  conflict::is_valid_assignment(family, res.coloring),
              "color_upp_split_merge: invalid assignment produced");
  return res;
}

}  // namespace wdag::core
