#pragma once
// Theorem 6 and its recursive generalization: wavelength assignment on
// UPP-DAGs *with* internal cycles via arc splitting.
//
// For a UPP-DAG with exactly one internal cycle the paper proves
//     w(G,P) <= ceil(4/3 * pi(G,P)),
// tight (Theorem 7), via:
//
//  1. pick the arc (a,b) of maximum load on the internal cycle;
//  2. pad the family with copies of the single-arc dipath [a,b] until
//     load(a,b) == pi (this can only help: a coloring of the padded family
//     restricts to one of the original);
//  3. split: replace (a,b) by (a,s) and (t,b) with fresh vertices s, t and
//     cut every dipath through (a,b) into a head [x..a,s] and a tail
//     [t,b..y]. The split graph has one internal cycle fewer;
//  4. color the split instance (recursively; the base case is Theorem 1);
//  5. merge: the pi heads all share (a,s) so they hold pi distinct colors,
//     and likewise the pi tails. The pairing head-color -> tail-color is a
//     partial bijection whose functional graph splits into chains and
//     cycles — the paper's classes C_p are exactly the cycles of length p.
//     Chains and fixed points merge for free (each rejoined dipath keeps
//     its head color); every longer cycle pays one fresh color, with pairs
//     of 2-cycles sharing one (the 4/3 refinement);
//  6. fix-up: a rejoined dipath keeps its head color but now also covers
//     its tail arcs, which can collide with a dipath that validly used that
//     color on the tail side. The paper recolors those (unique, by its
//     Facts 1-2) onto the fresh color. With replicated copies of identical
//     dipaths the uniqueness argument degrades (see DESIGN.md §4), so the
//     fix-up below is defensive: it first-fits conflicting dipaths into the
//     extra-color pool, growing the pool only when forced, and validates
//     the final assignment. Each fix strictly removes conflicts, so the
//     pass terminates.
//
// With C internal cycles the recursion yields w <= ceil((4/3)^C * pi)
// (the paper's concluding remark in §4).

#include <cstddef>

#include "conflict/coloring.hpp"
#include "paths/family.hpp"

namespace wdag::core {

/// Result of the split-merge solver.
struct SplitMergeResult {
  conflict::Coloring coloring;     ///< wavelength per original path id
  std::size_t wavelengths = 0;     ///< colors used
  std::size_t load = 0;            ///< pi(G,P) of the original instance
  std::size_t levels = 0;          ///< split recursion depth (== cycles split)
  std::size_t cycle_classes = 0;   ///< total non-trivial tau-cycles seen
  std::size_t fixups = 0;          ///< dipaths recolored by fix-up passes
};

/// Colors a family on a UPP-DAG with any number of internal cycles.
/// Falls through to Theorem 1 when there is no internal cycle.
///
/// Preconditions (checked): host is a DAG and satisfies the UPP.
/// Postcondition: the assignment is valid (validated before returning).
/// For one internal cycle the paper guarantees
/// wavelengths <= ceil(4/3 * load) on families of distinct-route dipaths;
/// the bench E6 measures how the implementation tracks that bound.
///
/// `preverified` skips the is-DAG / UPP precondition checks; pass true
/// only when the caller has already established both (the dispatcher in
/// core/solver.cpp classifies the host once and reuses the verdict).
SplitMergeResult color_upp_split_merge(const paths::DipathFamily& family,
                                       bool preverified = false);

}  // namespace wdag::core
