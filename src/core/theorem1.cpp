#include "core/theorem1.hpp"

#include <algorithm>
#include <vector>

#include "dag/internal_cycle.hpp"
#include "graph/topo.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"

namespace wdag::core {

using graph::ArcId;
using graph::Digraph;
using paths::Dipath;
using paths::DipathFamily;
using paths::PathId;

namespace {

constexpr std::uint32_t kNone = UINT32_MAX;

/// Incremental state of the reverse arc-replay.
struct Replay {
  const DipathFamily& family;
  const Digraph& g;
  /// incidence[a]: (path id, position of a within that path's arc list).
  std::vector<std::vector<std::pair<PathId, std::uint32_t>>> incidence;
  /// begin[p]: index of the first *active* arc of path p (== length when
  /// the path has not appeared yet).
  std::vector<std::uint32_t> begin;
  /// Current color per path (kNone while inactive).
  std::vector<std::uint32_t> color;
  /// Current palette size (running max load == pi of the replayed graph).
  std::uint32_t palette = 0;

  std::size_t chain_recolorings = 0;
  std::size_t paths_flipped = 0;

  explicit Replay(const DipathFamily& fam)
      : family(fam), g(fam.graph()), incidence(g.num_arcs()) {
    begin.resize(family.size());
    color.assign(family.size(), kNone);
    for (PathId p = 0; p < family.size(); ++p) {
      const auto& arcs = family.path(p).arcs;
      begin[p] = static_cast<std::uint32_t>(arcs.size());
      for (std::uint32_t i = 0; i < arcs.size(); ++i) {
        incidence[arcs[i]].emplace_back(p, i);
      }
    }
  }

  /// True when path p currently has at least one active arc.
  [[nodiscard]] bool active(PathId p) const {
    return begin[p] < family.path(p).arcs.size();
  }

  /// Paths with the given color sharing an active arc with path p
  /// (excluding p itself). Only active arcs of p are scanned; an arc is
  /// active for every path containing it as soon as it is replayed.
  [[nodiscard]] std::vector<PathId> conflicts_with_color(
      PathId p, std::uint32_t wanted) const {
    std::vector<PathId> out;
    const auto& arcs = family.path(p).arcs;
    for (std::uint32_t i = begin[p]; i < arcs.size(); ++i) {
      for (const auto& [q, pos] : incidence[arcs[i]]) {
        if (q == p || color[q] != wanted) continue;
        if (begin[q] > pos) continue;  // arc not yet active for q
        if (std::find(out.begin(), out.end(), q) == out.end()) out.push_back(q);
      }
    }
    return out;
  }

  /// The paper's alpha/beta chain: flips `start` from alpha to beta and
  /// propagates, keeping `kept` (colored alpha) untouched. Throws
  /// InternalError if the chain would flip an already-flipped path (case B)
  /// or the kept path (case C) — both impossible without internal cycles.
  void chain_flip(PathId kept, PathId start, std::uint32_t alpha,
                  std::uint32_t beta) {
    ++chain_recolorings;
    std::vector<bool> flipped(family.size(), false);
    std::vector<PathId> frontier = {start};
    color[start] = beta;
    flipped[start] = true;
    ++paths_flipped;
    std::uint32_t from = beta;  // color whose holders now conflict with the
                                // frontier (they kept `from`, frontier holds
                                // it now too)
    std::uint32_t to = alpha;
    while (!frontier.empty()) {
      // All paths colored `from` that intersect a frontier member must flip
      // to `to`.
      std::vector<PathId> next;
      for (const PathId f : frontier) {
        for (const PathId q : conflicts_with_color(f, from)) {
          WDAG_ASSERT(!flipped[q],
                      "theorem1 chain: case B (re-flip) occurred; the host "
                      "graph must contain an internal cycle");
          WDAG_ASSERT(q != kept,
                      "theorem1 chain: case C (kept path hit) occurred; the "
                      "host graph must contain an internal cycle");
          if (std::find(next.begin(), next.end(), q) == next.end()) {
            next.push_back(q);
          }
        }
      }
      for (const PathId q : next) {
        color[q] = to;
        flipped[q] = true;
        ++paths_flipped;
      }
      frontier = std::move(next);
      std::swap(from, to);
    }
  }

  /// Restores arc e: makes the suffix colors of the paths through e
  /// pairwise distinct, prepends e to them, and colors the paths that
  /// consist of e alone.
  void add_arc(ArcId e) {
    const auto& through = incidence[e];
    if (through.empty()) return;
    palette = std::max(palette, static_cast<std::uint32_t>(through.size()));

    std::vector<PathId> actives;   // non-empty suffixes, already colored
    std::vector<PathId> newborns;  // paths reduced to the single arc e
    for (const auto& [p, pos] : through) {
      WDAG_ASSERT(begin[p] == pos + 1,
                  "theorem1 replay: arc order violates front-removal");
      if (active(p)) {
        actives.push_back(p);
      } else {
        newborns.push_back(p);
      }
    }

    // Make the active suffix colors pairwise distinct (paper's recoloring).
    // Each successful chain strictly increases the number of distinct
    // colors used by `actives`, so at most |actives| rounds run.
    for (std::size_t guard = 0;; ++guard) {
      WDAG_ASSERT(guard <= actives.size() + 1,
                  "theorem1: distinct-color loop failed to make progress");
      // Find a duplicated color alpha with its two paths.
      PathId kept = kNone, dup = kNone;
      {
        std::vector<std::uint32_t> owner(palette, kNone);
        for (const PathId p : actives) {
          const std::uint32_t c = color[p];
          WDAG_ASSERT(c != kNone && c < palette,
                      "theorem1: active path without a palette color");
          if (owner[c] == kNone) {
            owner[c] = p;
          } else if (dup == kNone) {
            kept = owner[c];
            dup = p;
          }
        }
      }
      if (dup == kNone) break;  // all distinct

      // beta: a palette color used by no active suffix. It exists because
      // the actives use at most |actives|-1 <= |through|-1 < palette colors.
      std::vector<bool> used(palette, false);
      for (const PathId p : actives) used[color[p]] = true;
      std::uint32_t beta = kNone;
      for (std::uint32_t c = 0; c < palette; ++c) {
        if (!used[c]) {
          beta = c;
          break;
        }
      }
      WDAG_ASSERT(beta != kNone, "theorem1: no free color for the chain");
      chain_flip(kept, dup, color[dup], beta);
    }

    // Prepend e to every path through it.
    for (const auto& [p, pos] : through) begin[p] = pos;

    // Color the newborn single-arc paths with colors unused on e.
    if (!newborns.empty()) {
      std::vector<bool> used(palette, false);
      for (const PathId p : actives) used[color[p]] = true;
      std::size_t next = 0;
      for (const PathId p : newborns) {
        while (next < palette && used[next]) ++next;
        WDAG_ASSERT(next < palette,
                    "theorem1: palette exhausted while coloring newborns");
        color[p] = static_cast<std::uint32_t>(next);
        used[next] = true;
      }
    }
  }
};

}  // namespace

Theorem1Result color_equal_load(const DipathFamily& family) {
  const Digraph& g = family.graph();
  WDAG_DOMAIN(graph::is_dag(g), "color_equal_load: host graph is not a DAG");
  WDAG_DOMAIN(!dag::has_internal_cycle(g),
              "color_equal_load: host graph has an internal cycle; "
              "Theorem 1 does not apply (use the split-merge solver)");

  Theorem1Result res;
  if (family.empty()) return res;

  Replay replay(family);
  const auto removal_order = graph::arcs_in_tail_topo_order(g);
  for (auto it = removal_order.rbegin(); it != removal_order.rend(); ++it) {
    replay.add_arc(*it);
  }

  res.coloring.assign(replay.color.begin(), replay.color.end());
  for (PathId p = 0; p < family.size(); ++p) {
    WDAG_ASSERT(res.coloring[p] != kNone, "theorem1: uncolored path remains");
  }
  res.load = paths::max_load(family);
  res.wavelengths = conflict::num_colors(res.coloring);
  res.chain_recolorings = replay.chain_recolorings;
  res.paths_flipped = replay.paths_flipped;

  WDAG_ASSERT(conflict::is_valid_assignment(family, res.coloring),
              "theorem1: produced an invalid wavelength assignment");
  WDAG_ASSERT(res.wavelengths == res.load,
              "theorem1: wavelength count differs from the load");
  return res;
}

}  // namespace wdag::core
