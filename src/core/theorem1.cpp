#include "core/theorem1.hpp"

#include <algorithm>
#include <vector>

#include "dag/internal_cycle.hpp"
#include "graph/topo.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"

namespace wdag::core {

using graph::ArcId;
using graph::Digraph;
using paths::Dipath;
using paths::DipathFamily;
using paths::PathId;

namespace {

constexpr std::uint32_t kNone = UINT32_MAX;

/// One incidence record: path p contains the replayed arc at position pos.
struct IncEntry {
  PathId p;
  std::uint32_t pos;
};

/// Reusable buffers of the replay. One instance per thread: the batch
/// engine pushes thousands of instances through color_equal_load per
/// worker, and the replay's small per-arc vectors dominated its cost.
struct Scratch {
  std::vector<std::uint32_t> inc_offsets;  ///< CSR arc -> incidence entries
  std::vector<IncEntry> inc_entries;
  std::vector<std::uint32_t> begin;
  std::vector<std::uint32_t> color;
  std::vector<PathId> actives, newborns, frontier, next;
  std::vector<std::uint32_t> owner, cursor;
  std::vector<std::uint8_t> used, flipped;
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

/// Incremental state of the reverse arc-replay.
struct Replay {
  const DipathFamily& family;
  const Digraph& g;
  Scratch& s;
  /// Current palette size (running max load == pi of the replayed graph).
  std::uint32_t palette = 0;

  std::size_t chain_recolorings = 0;
  std::size_t paths_flipped = 0;

  explicit Replay(const DipathFamily& fam)
      : family(fam), g(fam.graph()), s(scratch()) {
    const std::size_t n = family.size();
    // CSR incidence: entries of arc a at [inc_offsets[a], inc_offsets[a+1]),
    // filled in (path id, position) order like the per-arc vectors were.
    s.inc_offsets.assign(g.num_arcs() + 1, 0);
    std::size_t total = 0;
    for (const Dipath& p : family.paths()) {
      for (const ArcId a : p.arcs) ++s.inc_offsets[a + 1];
      total += p.arcs.size();
    }
    for (std::size_t a = 0; a < g.num_arcs(); ++a) {
      s.inc_offsets[a + 1] += s.inc_offsets[a];
    }
    s.inc_entries.resize(total);
    s.begin.resize(n);
    s.color.assign(n, kNone);
    s.flipped.assign(n, 0);
    s.cursor.assign(s.inc_offsets.begin(), s.inc_offsets.end() - 1);
    for (PathId p = 0; p < n; ++p) {
      const auto& arcs = family.path(p).arcs;
      s.begin[p] = static_cast<std::uint32_t>(arcs.size());
      for (std::uint32_t i = 0; i < arcs.size(); ++i) {
        s.inc_entries[s.cursor[arcs[i]]++] = IncEntry{p, i};
      }
    }
  }

  /// True when path p currently has at least one active arc.
  [[nodiscard]] bool active(PathId p) const {
    return s.begin[p] < family.path(p).arcs.size();
  }

  /// Appends to `out` (deduplicated) the paths with the given color sharing
  /// an active arc with path p, excluding p itself. Only active arcs of p
  /// are scanned; an arc is active for every path containing it as soon as
  /// it is replayed.
  void conflicts_with_color(PathId p, std::uint32_t wanted,
                            std::vector<PathId>& out) const {
    const auto& arcs = family.path(p).arcs;
    for (std::uint32_t i = s.begin[p]; i < arcs.size(); ++i) {
      const ArcId a = arcs[i];
      for (std::uint32_t e = s.inc_offsets[a]; e < s.inc_offsets[a + 1]; ++e) {
        const auto [q, pos] = s.inc_entries[e];
        if (q == p || s.color[q] != wanted) continue;
        if (s.begin[q] > pos) continue;  // arc not yet active for q
        if (std::find(out.begin(), out.end(), q) == out.end()) {
          out.push_back(q);
        }
      }
    }
  }

  /// The paper's alpha/beta chain: flips `start` from alpha to beta and
  /// propagates, keeping `kept` (colored alpha) untouched. Throws
  /// InternalError if the chain would flip an already-flipped path (case B)
  /// or the kept path (case C) — both impossible without internal cycles.
  void chain_flip(PathId kept, PathId start, std::uint32_t alpha,
                  std::uint32_t beta) {
    ++chain_recolorings;
    std::fill(s.flipped.begin(), s.flipped.end(), 0);
    s.frontier.clear();
    s.frontier.push_back(start);
    s.color[start] = beta;
    s.flipped[start] = 1;
    ++paths_flipped;
    std::uint32_t from = beta;  // color whose holders now conflict with the
                                // frontier (they kept `from`, frontier holds
                                // it now too)
    std::uint32_t to = alpha;
    while (!s.frontier.empty()) {
      // All paths colored `from` that intersect a frontier member must flip
      // to `to`.
      s.next.clear();
      for (const PathId f : s.frontier) {
        const std::size_t before = s.next.size();
        conflicts_with_color(f, from, s.next);
        for (std::size_t i = before; i < s.next.size(); ++i) {
          const PathId q = s.next[i];
          WDAG_ASSERT(!s.flipped[q],
                      "theorem1 chain: case B (re-flip) occurred; the host "
                      "graph must contain an internal cycle");
          WDAG_ASSERT(q != kept,
                      "theorem1 chain: case C (kept path hit) occurred; the "
                      "host graph must contain an internal cycle");
        }
      }
      for (const PathId q : s.next) {
        s.color[q] = to;
        s.flipped[q] = 1;
        ++paths_flipped;
      }
      std::swap(s.frontier, s.next);
      std::swap(from, to);
    }
  }

  /// Restores arc e: makes the suffix colors of the paths through e
  /// pairwise distinct, prepends e to them, and colors the paths that
  /// consist of e alone.
  void add_arc(ArcId e) {
    const std::uint32_t lo = s.inc_offsets[e];
    const std::uint32_t hi = s.inc_offsets[e + 1];
    if (lo == hi) return;
    palette = std::max(palette, hi - lo);

    s.actives.clear();   // non-empty suffixes, already colored
    s.newborns.clear();  // paths reduced to the single arc e
    for (std::uint32_t i = lo; i < hi; ++i) {
      const auto [p, pos] = s.inc_entries[i];
      WDAG_ASSERT(s.begin[p] == pos + 1,
                  "theorem1 replay: arc order violates front-removal");
      if (active(p)) {
        s.actives.push_back(p);
      } else {
        s.newborns.push_back(p);
      }
    }

    // Make the active suffix colors pairwise distinct (paper's recoloring).
    // Each successful chain strictly increases the number of distinct
    // colors used by `actives`, so at most |actives| rounds run.
    for (std::size_t guard = 0;; ++guard) {
      WDAG_ASSERT(guard <= s.actives.size() + 1,
                  "theorem1: distinct-color loop failed to make progress");
      // Find a duplicated color alpha with its two paths.
      PathId kept = kNone, dup = kNone;
      {
        s.owner.assign(palette, kNone);
        for (const PathId p : s.actives) {
          const std::uint32_t c = s.color[p];
          WDAG_ASSERT(c != kNone && c < palette,
                      "theorem1: active path without a palette color");
          if (s.owner[c] == kNone) {
            s.owner[c] = p;
          } else if (dup == kNone) {
            kept = s.owner[c];
            dup = p;
          }
        }
      }
      if (dup == kNone) break;  // all distinct

      // beta: a palette color used by no active suffix. It exists because
      // the actives use at most |actives|-1 <= |through|-1 < palette colors.
      s.used.assign(palette, 0);
      for (const PathId p : s.actives) s.used[s.color[p]] = 1;
      std::uint32_t beta = kNone;
      for (std::uint32_t c = 0; c < palette; ++c) {
        if (!s.used[c]) {
          beta = c;
          break;
        }
      }
      WDAG_ASSERT(beta != kNone, "theorem1: no free color for the chain");
      chain_flip(kept, dup, s.color[dup], beta);
    }

    // Prepend e to every path through it.
    for (std::uint32_t i = lo; i < hi; ++i) {
      s.begin[s.inc_entries[i].p] = s.inc_entries[i].pos;
    }

    // Color the newborn single-arc paths with colors unused on e.
    if (!s.newborns.empty()) {
      s.used.assign(palette, 0);
      for (const PathId p : s.actives) s.used[s.color[p]] = 1;
      std::size_t next = 0;
      for (const PathId p : s.newborns) {
        while (next < palette && s.used[next]) ++next;
        WDAG_ASSERT(next < palette,
                    "theorem1: palette exhausted while coloring newborns");
        s.color[p] = static_cast<std::uint32_t>(next);
        s.used[next] = 1;
      }
    }
  }
};

}  // namespace

Theorem1Result color_equal_load(const DipathFamily& family, bool preverified) {
  const Digraph& g = family.graph();
  if (!preverified) {
    WDAG_DOMAIN(graph::is_dag(g), "color_equal_load: host graph is not a DAG");
    WDAG_DOMAIN(!dag::has_internal_cycle(g),
                "color_equal_load: host graph has an internal cycle; "
                "Theorem 1 does not apply (use the split-merge solver)");
  }

  Theorem1Result res;
  if (family.empty()) return res;

  Replay replay(family);
  thread_local std::vector<ArcId> removal_order;
  graph::arcs_in_tail_topo_order_into(g, removal_order);
  for (auto it = removal_order.rbegin(); it != removal_order.rend(); ++it) {
    replay.add_arc(*it);
  }

  Scratch& s = scratch();
  res.coloring.assign(s.color.begin(), s.color.end());
  for (PathId p = 0; p < family.size(); ++p) {
    WDAG_ASSERT(res.coloring[p] != kNone, "theorem1: uncolored path remains");
  }
  // The replay's palette is exactly max group size over arcs == pi(G,P);
  // no need to recount arc loads.
  res.load = replay.palette;
  res.wavelengths = conflict::num_colors(res.coloring);
  res.chain_recolorings = replay.chain_recolorings;
  res.paths_flipped = replay.paths_flipped;

  // The replay keeps per-arc colors distinct invariantly (the
  // distinct-color loop re-establishes it at every restored arc), so the
  // full re-validation only runs for direct API callers; the dispatcher's
  // trusted fast path keeps just the w == pi certificate.
  WDAG_ASSERT(preverified ||
                  conflict::is_valid_assignment(family, res.coloring),
              "theorem1: produced an invalid wavelength assignment");
  WDAG_ASSERT(res.wavelengths == res.load,
              "theorem1: wavelength count differs from the load");
  return res;
}

}  // namespace wdag::core
