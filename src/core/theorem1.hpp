#pragma once
// Theorem 1 (the paper's primary contribution), as an algorithm:
//
//   Let G be a DAG without internal cycle. Then for every family of dipaths
//   P, the minimum number of wavelengths w(G,P) equals the load pi(G,P).
//
// The proof is by induction on arcs and is fully constructive; this module
// implements it as an O(poly) coloring procedure:
//
//  1. Arcs are ordered by Kahn's algorithm on their tails, so that removing
//     them in order always removes an arc whose tail is a source of the
//     remaining graph; every dipath therefore loses arcs strictly from the
//     front (its first arc is the only one whose tail can be a source).
//  2. Replaying arcs in reverse, each entering arc e extends the dipaths
//     whose next-to-restore arc is e (the family Q_0 of the proof) and
//     introduces the dipaths reduced to e itself.
//  3. The previously-colored suffixes (P_0 of the proof) must receive
//     pairwise distinct colors; when they collide, the paper's two-color
//     chain recoloring (an alpha/beta Kempe-style walk over intersecting
//     dipaths) frees a color. Case B of the proof (re-recoloring) cannot
//     occur; case C (the chain hits the kept path) would exhibit an
//     internal cycle, so on valid input it never fires — we verify the
//     precondition up front and assert it never does.
//
// The result uses exactly pi(G,P) wavelengths, certifying w == pi.

#include <cstddef>

#include "conflict/coloring.hpp"
#include "paths/family.hpp"

namespace wdag::core {

/// Statistics and certificate of a Theorem-1 run.
struct Theorem1Result {
  conflict::Coloring coloring;       ///< wavelength per path id
  std::size_t wavelengths = 0;       ///< colors used == pi(G,P)
  std::size_t load = 0;              ///< pi(G,P)
  std::size_t chain_recolorings = 0; ///< total alpha/beta chain executions
  std::size_t paths_flipped = 0;     ///< dipaths recolored across all chains
};

/// Colors `family` with exactly pi(G,P) wavelengths.
///
/// Preconditions (checked): the host graph is a DAG with no internal cycle.
/// Throws wdag::DomainError otherwise. The returned coloring is validated
/// against the family before returning.
///
/// `preverified` is the trusted-caller fast path: it skips the
/// precondition checks and the redundant final re-validation (the replay
/// maintains per-arc distinctness invariantly; w == pi is still
/// asserted). Pass true only when the caller has already established the
/// preconditions (the dispatcher classifies the host once, and the
/// split-merge recursion re-checks at every level).
Theorem1Result color_equal_load(const paths::DipathFamily& family,
                                bool preverified = false);

}  // namespace wdag::core
