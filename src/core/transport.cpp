#include "core/transport.hpp"

#include <chrono>
#include <utility>

#include "core/json_min.hpp"
#include "core/shard.hpp"
#include "util/check.hpp"
#include "util/socket.hpp"

namespace wdag::core {

namespace {

/// Poll/read tick of a remote attempt's blocking I/O: short enough that
/// kill() settles promptly, long enough to stay off the CPU.
constexpr int kAttemptTickMs = 100;

/// Sleep granularity of the prober between probes (checks stop_).
constexpr int kProbeSleepTickMs = 50;

}  // namespace

// --- wire ------------------------------------------------------------------

namespace wire {

std::string ping_line() {
  minjson::JsonWriter w;
  w.field("type", "ping").field("version", kWorkerWireVersion);
  return std::move(w).str();
}

std::string pong_line(std::size_t busy) {
  minjson::JsonWriter w;
  w.field("type", "pong")
      .field("version", kWorkerWireVersion)
      .field("busy", static_cast<std::uint64_t>(busy));
  return std::move(w).str();
}

bool is_pong(const std::string& line) {
  try {
    const minjson::JsonValue v =
        minjson::JsonParser(line, "worker pong").parse();
    return minjson::req_str(v, "type", "worker pong") == "pong" &&
           minjson::req_u64(v, "version", "worker pong") ==
               static_cast<std::uint64_t>(kWorkerWireVersion);
  } catch (const std::exception&) {
    return false;
  }
}

std::string shard_ok_header(std::uint64_t bytes, std::uint64_t checksum,
                            std::uint64_t rows, double seconds) {
  minjson::JsonWriter w;
  w.field("type", "shard")
      .field("ok", true)
      .field("bytes", bytes)
      .field("fnv", minjson::hex16(checksum))
      .field("rows", rows)
      .field("seconds", seconds);
  return std::move(w).str();
}

std::string shard_error_header(const std::string& error) {
  minjson::JsonWriter w;
  w.field("type", "shard").field("ok", false).field("error", error);
  return std::move(w).str();
}

ShardResponse parse_shard_response(const std::string& line) {
  const char* ctx = "worker shard response";
  const minjson::JsonValue v = minjson::JsonParser(line, ctx).parse();
  const std::string type = minjson::req_str(v, "type", ctx);
  WDAG_REQUIRE(type == "shard",
               std::string(ctx) + ": unexpected type '" + type + "'");
  const minjson::JsonValue& ok = minjson::req_field(v, "ok", ctx);
  WDAG_REQUIRE(ok.kind == minjson::JsonValue::Kind::kBool,
               std::string(ctx) + ": field 'ok' must be a boolean");
  ShardResponse r;
  r.ok = ok.boolean;
  if (!r.ok) {
    r.error = minjson::req_str(v, "error", ctx);
    return r;
  }
  r.bytes = minjson::req_u64(v, "bytes", ctx);
  r.checksum = minjson::req_hex(v, "fnv", ctx);
  r.rows = minjson::req_u64(v, "rows", ctx);
  r.seconds = minjson::req_double(v, "seconds", ctx);
  WDAG_REQUIRE(r.bytes <= kMaxWirePayload,
               std::string(ctx) + ": payload length " +
                   std::to_string(r.bytes) + " exceeds the " +
                   std::to_string(kMaxWirePayload) + "-byte bound");
  return r;
}

}  // namespace wire

// --- LocalTransport --------------------------------------------------------

namespace {

/// A subprocess attempt — the pre-transport drive path, verbatim.
class LocalAttempt final : public TransportAttempt {
 public:
  explicit LocalAttempt(util::Subprocess proc) : proc_(std::move(proc)) {}

  std::optional<int> poll() override { return proc_.poll(); }
  int wait() override { return proc_.wait(); }
  void kill() override { proc_.kill(); }
  [[nodiscard]] std::string describe() const override {
    return "pid " + std::to_string(proc_.pid());
  }

 private:
  util::Subprocess proc_;
};

}  // namespace

LocalTransport::LocalTransport(Config config) : config_(std::move(config)) {
  WDAG_REQUIRE(!config_.wdag_binary.empty(),
               "LocalTransport: wdag_binary must be set");
}

std::unique_ptr<TransportAttempt> LocalTransport::start(
    const AttemptSpec& spec) {
  // --quiet keeps the workers' inherited stdout clean: the driver may be
  // streaming the merged CSV there.
  std::vector<std::string> argv = {config_.wdag_binary, "shard",
                                   "run",              "--manifest",
                                   spec.manifest_path, "--out",
                                   spec.out_path,      "--quiet"};
  if (config_.worker_threads > 0) {
    argv.emplace_back("--threads");
    argv.emplace_back(std::to_string(config_.worker_threads));
  }
  argv.emplace_back("--schedule");
  argv.emplace_back(std::string(schedule_name(config_.schedule)));
  return std::make_unique<LocalAttempt>(
      util::Subprocess::spawn(argv, spec.subprocess));
}

// --- TcpTransport ----------------------------------------------------------

namespace {

/// One remote attempt: a background thread dials the worker, sends the
/// manifest line, reads header + length-prefixed payload in cancellable
/// ticks, verifies the FNV-1a checksum and writes the payload atomically
/// to the attempt's out path. Every failure mode (dial timeout, dropped
/// connection, worker-reported error, checksum mismatch) settles as a
/// non-zero code with a failure_detail — to the driver it looks exactly
/// like a crashed subprocess.
class TcpAttempt final : public TransportAttempt {
 public:
  TcpAttempt(std::string host, int port, std::string worker_id,
             std::string manifest_json, std::string out_path,
             int connect_timeout_ms)
      : host_(std::move(host)),
        port_(port),
        worker_id_(std::move(worker_id)),
        manifest_json_(std::move(manifest_json)),
        out_path_(std::move(out_path)),
        connect_timeout_ms_(connect_timeout_ms),
        thread_([this] { run(); }) {}

  ~TcpAttempt() override {
    cancel_.store(true, std::memory_order_relaxed);
    join();
  }

  std::optional<int> poll() override {
    if (!done_.load(std::memory_order_acquire)) return std::nullopt;
    join();
    return code_;
  }

  int wait() override {
    join();
    return code_;
  }

  void kill() override { cancel_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] std::string describe() const override {
    return "worker " + worker_id_;
  }

  [[nodiscard]] std::string failure_detail() const override {
    // Only read after poll()/wait() returned a code (thread joined).
    return detail_;
  }

 private:
  void join() {
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] bool cancelled() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  void finish(int code, std::string detail) {
    code_ = code;
    detail_ = std::move(detail);
    done_.store(true, std::memory_order_release);
  }

  void run() {
    try {
      util::TcpConn conn =
          util::TcpConn::connect(host_, port_, connect_timeout_ms_);
      if (!conn.write_line(manifest_json_)) {
        finish(1, "connection to " + worker_id_ + " lost sending manifest");
        return;
      }
      std::string header;
      for (;;) {
        if (cancelled()) {
          finish(1, "attempt cancelled");
          return;
        }
        const util::ReadStatus rs = conn.read_line(header, kAttemptTickMs);
        if (rs == util::ReadStatus::kLine) break;
        if (rs == util::ReadStatus::kClosed) {
          finish(1, "worker " + worker_id_ +
                        " closed the connection before responding");
          return;
        }
      }
      const wire::ShardResponse resp = wire::parse_shard_response(header);
      if (!resp.ok) {
        finish(1, "worker " + worker_id_ + " error: " + resp.error);
        return;
      }
      std::string payload;
      payload.reserve(resp.bytes);
      for (;;) {
        if (cancelled()) {
          finish(1, "attempt cancelled");
          return;
        }
        const util::ReadStatus rs =
            conn.read_exact(payload, resp.bytes, kAttemptTickMs);
        if (rs == util::ReadStatus::kLine) break;
        if (rs == util::ReadStatus::kClosed) {
          finish(1, "worker " + worker_id_ + " closed mid-payload (" +
                        std::to_string(payload.size()) + "/" +
                        std::to_string(resp.bytes) + " bytes)");
          return;
        }
      }
      // The checksum guards the transfer; the driver's read_shard_csv +
      // plan-identity validation still guards the content.
      const std::uint64_t got = fnv1a64(payload);
      if (got != resp.checksum) {
        finish(1, "payload checksum mismatch from worker " + worker_id_ +
                      " (expected " + minjson::hex16(resp.checksum) +
                      ", got " + minjson::hex16(got) + ")");
        return;
      }
      util::write_file_atomic(out_path_, payload);
      finish(0, "");
    } catch (const std::exception& e) {
      finish(1, e.what());
    }
  }

  std::string host_;
  int port_;
  std::string worker_id_;
  std::string manifest_json_;
  std::string out_path_;
  int connect_timeout_ms_;
  std::atomic<bool> cancel_{false};
  std::atomic<bool> done_{false};
  int code_ = 1;
  std::string detail_;
  std::thread thread_;
};

}  // namespace

std::pair<std::string, int> TcpTransport::parse_endpoint(
    const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  WDAG_REQUIRE(colon != std::string::npos && colon > 0,
               "worker endpoint '" + endpoint + "' is not host:port");
  const std::string host = endpoint.substr(0, colon);
  const std::string port_text = endpoint.substr(colon + 1);
  int port = 0;
  try {
    std::size_t used = 0;
    port = std::stoi(port_text, &used);
    WDAG_REQUIRE(used == port_text.size() && port >= 1 && port <= 65535,
                 "worker endpoint '" + endpoint +
                     "' needs a port in [1, 65535]");
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("worker endpoint '" + endpoint +
                          "' needs a numeric port");
  }
  return {host, port};
}

TcpTransport::TcpTransport(const std::string& endpoint, Config config)
    : config_(config) {
  auto [host, port] = parse_endpoint(endpoint);
  host_ = std::move(host);
  port_ = port;
  id_ = host_ + ":" + std::to_string(port_);
  WDAG_REQUIRE(config_.connect_timeout_ms > 0,
               "TcpTransport: connect_timeout_ms must be > 0");
  WDAG_REQUIRE(config_.probe_timeout_ms > 0,
               "TcpTransport: probe_timeout_ms must be > 0");
  WDAG_REQUIRE(config_.probe_interval_seconds > 0.0,
               "TcpTransport: probe_interval_seconds must be > 0");
  WDAG_REQUIRE(config_.probe_miss_budget >= 1,
               "TcpTransport: probe_miss_budget must be >= 1");
  prober_ = std::thread([this] { probe_loop(); });
}

TcpTransport::~TcpTransport() {
  stop_.store(true, std::memory_order_relaxed);
  if (prober_.joinable()) prober_.join();
}

std::unique_ptr<TransportAttempt> TcpTransport::start(
    const AttemptSpec& spec) {
  return std::make_unique<TcpAttempt>(host_, port_, id_, spec.manifest_json,
                                      spec.out_path,
                                      config_.connect_timeout_ms);
}

std::vector<ProbeEvent> TcpTransport::drain_probe_events() {
  std::vector<ProbeEvent> out;
  const std::lock_guard<std::mutex> lock(events_mutex_);
  out.swap(events_);
  return out;
}

void TcpTransport::push_event(ProbeEvent::Kind kind, std::string detail) {
  const std::lock_guard<std::mutex> lock(events_mutex_);
  events_.push_back({kind, std::move(detail)});
}

bool TcpTransport::probe_once() {
  try {
    util::TcpConn conn =
        util::TcpConn::connect(host_, port_, config_.probe_timeout_ms);
    if (!conn.write_line(wire::ping_line())) return false;
    std::string line;
    // One total probe timeout for the pong; a worker that accepts but
    // never answers is as unhealthy as one that refuses.
    return conn.read_line(line, config_.probe_timeout_ms) ==
               util::ReadStatus::kLine &&
           wire::is_pong(line);
  } catch (const std::exception&) {
    return false;
  }
}

void TcpTransport::probe_loop() {
  // The prober counts consecutive misses; crossing the budget flips
  // healthy_ off (one kUnhealthy transition), the first subsequent
  // success flips it back (kRecovered). Probing never stops while the
  // transport lives, so an unhealthy worker keeps getting re-probed for
  // recovery.
  std::size_t misses = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    const bool ok = probe_once();
    if (ok) {
      if (!healthy_.load(std::memory_order_relaxed)) {
        healthy_.store(true, std::memory_order_relaxed);
        push_event(ProbeEvent::Kind::kRecovered,
                   "probe succeeded after " + std::to_string(misses) +
                       " miss(es); back in rotation");
      }
      misses = 0;
    } else if (!stop_.load(std::memory_order_relaxed)) {
      ++misses;
      push_event(ProbeEvent::Kind::kMiss,
                 "probe miss " + std::to_string(misses) + "/" +
                     std::to_string(config_.probe_miss_budget));
      if (misses == config_.probe_miss_budget &&
          healthy_.load(std::memory_order_relaxed)) {
        healthy_.store(false, std::memory_order_relaxed);
        push_event(ProbeEvent::Kind::kUnhealthy,
                   "probe miss budget (" +
                       std::to_string(config_.probe_miss_budget) +
                       ") exhausted; out of rotation");
      }
    }
    // Sleep the interval in short ticks so destruction stays prompt.
    const auto interval =
        std::chrono::duration<double>(config_.probe_interval_seconds);
    const auto deadline = std::chrono::steady_clock::now() + interval;
    while (!stop_.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kProbeSleepTickMs));
    }
  }
}

}  // namespace wdag::core
