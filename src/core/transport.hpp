#pragma once
// Pluggable shard-attempt transports for the drive engine (core/driver.cpp)
// — the seam that takes `wdag drive` from one machine to a fleet.
//
// A WorkerTransport owns a pool of attempt slots and starts
// TransportAttempts; the driver's attempt/poll/validate loop is transport-
// blind, so every robustness guarantee (bounded retry + backoff, per-shard
// timeouts, speculation, quarantine, journal + --resume, byte-identical
// merge) applies unchanged to remote attempts: an attempt only ever counts
// after its output file passes read_shard_csv + plan-identity validation,
// regardless of which transport produced the bytes.
//
//   * LocalTransport — the classic path: posix_spawn of
//     `<wdag> shard run --manifest ... --out ...` per attempt.
//   * TcpTransport   — one long-lived `wdag worker --port N` peer. An
//     attempt dials with a bounded connect timeout, sends the shard
//     manifest as one JSON line, and receives a one-line response header
//     followed by a length-prefixed raw shard-CSV payload stamped with an
//     FNV-1a checksum; the verified payload is written atomically to the
//     attempt's out path, where the driver validates it like any local
//     attempt's file. A background prober pings the worker on an interval;
//     `probe_miss_budget` consecutive misses mark it unhealthy (the driver
//     takes it out of rotation and re-dispatches its in-flight attempts),
//     and probing continues so a recovered worker rejoins.
//
// Wire protocol (newline-delimited JSON, core/json_min.hpp subset):
//
//   -> {"type":"ping"}
//   <- {"type":"pong","version":1,"busy":<live runs>}
//   -> <shard manifest JSON line, verbatim>          (no "type" field)
//   <- {"type":"shard","ok":true,"bytes":N,"fnv":"<hex16>",
//       "rows":R,"seconds":S}\n<N raw payload bytes>
//   <- {"type":"shard","ok":false,"error":"..."}
//
// INTERNAL header, like util/subprocess.hpp: not part of the public
// surface (never reachable from wdag/wdag.hpp, not in WDAG_PUBLIC_HEADERS).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "util/subprocess.hpp"

namespace wdag::core {

/// Version stamp of the worker wire protocol; peers reject other versions.
inline constexpr int kWorkerWireVersion = 1;

/// Upper bound on a shard payload a transport will buffer (a corrupt
/// length prefix must not become an allocation bomb).
inline constexpr std::uint64_t kMaxWirePayload = 1ULL << 30;

namespace wire {

/// The probe request line.
[[nodiscard]] std::string ping_line();

/// The probe response line. `busy` is the worker's live run count.
[[nodiscard]] std::string pong_line(std::size_t busy);

/// True when `line` parses as a pong of a compatible protocol version.
[[nodiscard]] bool is_pong(const std::string& line);

/// The parsed one-line header of a shard response.
struct ShardResponse {
  bool ok = false;
  std::uint64_t bytes = 0;    ///< payload length that follows the header
  std::uint64_t checksum = 0; ///< FNV-1a of the payload bytes
  std::uint64_t rows = 0;
  double seconds = 0.0;
  std::string error;          ///< set when !ok
};

[[nodiscard]] std::string shard_ok_header(std::uint64_t bytes,
                                          std::uint64_t checksum,
                                          std::uint64_t rows, double seconds);
[[nodiscard]] std::string shard_error_header(const std::string& error);

/// Parses a shard response header. Throws wdag::InvalidArgument on
/// malformed JSON or a non-"shard" type.
[[nodiscard]] ShardResponse parse_shard_response(const std::string& line);

}  // namespace wire

/// Everything a transport needs to start one attempt. Local transports
/// run `manifest_path` through a subprocess (with the env edits); remote
/// ones send `manifest_json` down the wire. Both leave their (not yet
/// validated) shard CSV at `out_path` — validation is the driver's job.
struct AttemptSpec {
  std::size_t shard = 0;
  std::size_t number = 0;       ///< 0-based attempt counter of the shard
  std::string manifest_path;
  std::string manifest_json;
  std::string out_path;
  util::SubprocessOptions subprocess;  ///< local transports only
};

/// One in-flight attempt, however it executes. poll() is non-blocking;
/// kill() requests cancellation (the attempt settles within one poll
/// tick); wait() blocks until settled. Exit code 0 means "the attempt
/// claims success and out_path is fully written" — the driver still
/// validates, exit 0 alone proves nothing.
class TransportAttempt {
 public:
  virtual ~TransportAttempt() = default;
  [[nodiscard]] virtual std::optional<int> poll() = 0;
  virtual int wait() = 0;
  virtual void kill() = 0;
  /// Short attempt description for the event log ("pid 123" /
  /// "worker 10.0.0.2:7070").
  [[nodiscard]] virtual std::string describe() const = 0;
  /// Why a non-zero attempt failed, when the transport knows more than
  /// the exit code (connection lost, checksum mismatch, worker error).
  [[nodiscard]] virtual std::string failure_detail() const { return {}; }
};

/// A health-state transition observed by a transport's prober, drained by
/// the drive loop into its event log.
struct ProbeEvent {
  enum class Kind { kMiss, kUnhealthy, kRecovered };
  Kind kind = Kind::kMiss;
  std::string detail;
};

/// A pool of attempt slots sharing one execution substrate.
class WorkerTransport {
 public:
  virtual ~WorkerTransport() = default;
  /// Stable identity in events and the progress table ("local",
  /// "10.0.0.2:7070").
  [[nodiscard]] virtual const std::string& id() const = 0;
  /// Concurrent attempts this transport accepts.
  [[nodiscard]] virtual std::size_t slots() const = 0;
  [[nodiscard]] virtual bool remote() const = 0;
  /// False once the prober's miss budget is exhausted; the driver stops
  /// dispatching here and re-dispatches in-flight attempts elsewhere.
  [[nodiscard]] virtual bool healthy() const = 0;
  /// Starts one attempt. May throw (e.g. spawn failure) — the driver
  /// treats that as a drive-level error, exactly as posix_spawn failures
  /// always were.
  [[nodiscard]] virtual std::unique_ptr<TransportAttempt> start(
      const AttemptSpec& spec) = 0;
  /// Health transitions since the last drain (empty for transports
  /// without a prober).
  [[nodiscard]] virtual std::vector<ProbeEvent> drain_probe_events() {
    return {};
  }
};

/// The extracted posix_spawn path: each attempt is one
/// `<wdag> shard run --manifest ... --out ... --quiet` subprocess.
class LocalTransport final : public WorkerTransport {
 public:
  struct Config {
    std::string wdag_binary;
    std::size_t slots = 1;
    std::size_t worker_threads = 0;  ///< --threads per child (0 = default)
    Schedule schedule = Schedule::kFixed;
  };

  explicit LocalTransport(Config config);

  [[nodiscard]] const std::string& id() const override { return id_; }
  [[nodiscard]] std::size_t slots() const override { return config_.slots; }
  [[nodiscard]] bool remote() const override { return false; }
  [[nodiscard]] bool healthy() const override { return true; }
  [[nodiscard]] std::unique_ptr<TransportAttempt> start(
      const AttemptSpec& spec) override;

  /// Degradation hook: when every remote worker is unhealthy the driver
  /// raises a zero-slot local transport to a real pool so the drive
  /// finishes on local execution alone.
  void set_slots(std::size_t slots) { config_.slots = slots; }

 private:
  Config config_;
  std::string id_ = "local";
};

/// One remote `wdag worker` peer, one attempt slot, plus the background
/// prober that maintains its health state.
class TcpTransport final : public WorkerTransport {
 public:
  struct Config {
    int connect_timeout_ms = 1000;
    double probe_interval_seconds = 2.0;
    int probe_timeout_ms = 500;
    std::size_t probe_miss_budget = 3;
  };

  /// `endpoint` is "host:port" (numeric IPv4 host). Throws
  /// wdag::InvalidArgument on a malformed endpoint; starts the prober.
  TcpTransport(const std::string& endpoint, Config config);
  ~TcpTransport() override;

  [[nodiscard]] const std::string& id() const override { return id_; }
  [[nodiscard]] std::size_t slots() const override { return 1; }
  [[nodiscard]] bool remote() const override { return true; }
  [[nodiscard]] bool healthy() const override {
    return healthy_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::unique_ptr<TransportAttempt> start(
      const AttemptSpec& spec) override;
  [[nodiscard]] std::vector<ProbeEvent> drain_probe_events() override;

  /// Splits "host:port"; throws wdag::InvalidArgument when the port is
  /// missing or out of range (host syntax is checked at dial time).
  static std::pair<std::string, int> parse_endpoint(
      const std::string& endpoint);

 private:
  void probe_loop();
  [[nodiscard]] bool probe_once();
  void push_event(ProbeEvent::Kind kind, std::string detail);

  std::string host_;
  int port_ = 0;
  std::string id_;
  Config config_;
  std::atomic<bool> healthy_{true};
  std::atomic<bool> stop_{false};
  std::mutex events_mutex_;
  std::vector<ProbeEvent> events_;
  std::thread prober_;
};

}  // namespace wdag::core
