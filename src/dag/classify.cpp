#include "dag/classify.hpp"

#include <sstream>

#include "dag/internal_cycle.hpp"
#include "dag/upp.hpp"
#include "graph/properties.hpp"
#include "graph/topo.hpp"

namespace wdag::dag {

DagReport classify(const graph::Digraph& g) {
  DagReport r;
  r.num_vertices = g.num_vertices();
  r.num_arcs = g.num_arcs();
  const auto stats = graph::degree_stats(g);
  r.num_sources = stats.num_sources;
  r.num_sinks = stats.num_sinks;
  // One Kahn pass answers acyclicity and feeds the UPP DP.
  const auto order = graph::topological_sort(g);
  r.is_dag = order.has_value();
  if (r.is_dag) {
    r.internal_cycles = internal_cycle_count(g);
    r.is_upp = is_upp(g, *order);
  }
  return r;
}

std::string report_to_string(const DagReport& r) {
  std::ostringstream os;
  os << "vertices:        " << r.num_vertices << '\n'
     << "arcs:            " << r.num_arcs << '\n'
     << "sources/sinks:   " << r.num_sources << '/' << r.num_sinks << '\n'
     << "is DAG:          " << (r.is_dag ? "yes" : "no") << '\n';
  if (r.is_dag) {
    os << "UPP:             " << (r.is_upp ? "yes" : "no") << '\n'
       << "internal cycles: " << r.internal_cycles << '\n'
       << "regime:          ";
    if (r.wavelengths_equal_load()) {
      os << "Theorem 1 (w == load for every family)";
    } else if (r.theorem6_applies()) {
      os << "Theorem 6 (UPP, one internal cycle: w <= ceil(4/3 load))";
    } else if (r.is_upp) {
      os << "UPP with " << r.internal_cycles
         << " internal cycles (recursive split-merge bound)";
    } else {
      os << "general DAG with internal cycles (w/load unbounded, Fig. 1)";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace wdag::dag
