#pragma once
// One-call structural classification of a digraph with respect to the
// paper's taxonomy. The core solver dispatches on this report:
//
//   no internal cycle          -> Theorem 1: w == pi, constructive
//   UPP + internal cycles      -> Theorem 6 / split-merge: w <= ceil(4/3 pi)
//                                 per cycle level
//   otherwise                  -> heuristics + exact search, w unbounded
//                                 relative to pi (Figure 1)

#include <string>

#include "graph/digraph.hpp"

namespace wdag::dag {

/// Structural facts about a digraph relevant to wavelength assignment.
struct DagReport {
  bool is_dag = false;            ///< no directed cycle
  bool is_upp = false;            ///< unique-dipath property (only set for DAGs)
  std::size_t internal_cycles = 0;///< cyclomatic count of internal cycles
  std::size_t num_vertices = 0;
  std::size_t num_arcs = 0;
  std::size_t num_sources = 0;
  std::size_t num_sinks = 0;

  /// True when Theorem 1 guarantees w == pi for every family.
  [[nodiscard]] bool wavelengths_equal_load() const {
    return is_dag && internal_cycles == 0;
  }

  /// True when Theorem 6's bound applies (UPP, exactly one internal cycle).
  [[nodiscard]] bool theorem6_applies() const {
    return is_dag && is_upp && internal_cycles == 1;
  }
};

/// Computes the full report. UPP is only evaluated when g is a DAG.
DagReport classify(const graph::Digraph& g);

/// Human-readable multi-line summary of a report.
std::string report_to_string(const DagReport& r);

}  // namespace wdag::dag
