#include "dag/cycle_basis.hpp"

#include <algorithm>

#include "dag/internal_cycle.hpp"
#include "graph/properties.hpp"
#include "util/check.hpp"
#include "util/union_find.hpp"

namespace wdag::dag {

using graph::ArcId;
using graph::Digraph;
using graph::VertexId;

std::vector<OrientedCycle> internal_cycle_basis(const Digraph& g) {
  const auto mask = graph::internal_vertex_mask(g);

  // Partition internal arcs into a spanning forest and chords.
  util::UnionFind uf(g.num_vertices());
  std::vector<ArcId> tree, chords;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (!mask[g.tail(a)] || !mask[g.head(a)]) continue;
    if (uf.unite(g.tail(a), g.head(a))) {
      tree.push_back(a);
    } else {
      chords.push_back(a);
    }
  }

  // Undirected adjacency of the forest.
  struct Edge {
    VertexId to;
    ArcId arc;
    bool forward;
  };
  std::vector<std::vector<Edge>> adj(g.num_vertices());
  for (ArcId a : tree) {
    adj[g.tail(a)].push_back(Edge{g.head(a), a, true});
    adj[g.head(a)].push_back(Edge{g.tail(a), a, false});
  }

  // Walk the forest path between two vertices (BFS, deterministic).
  auto forest_path = [&](VertexId from, VertexId to) {
    std::vector<CycleStep> entry(g.num_vertices());
    std::vector<VertexId> parent(g.num_vertices(), graph::kNoVertex);
    std::vector<bool> seen(g.num_vertices(), false);
    std::vector<VertexId> queue = {from};
    seen[from] = true;
    for (std::size_t qi = 0; qi < queue.size() && !seen[to]; ++qi) {
      const VertexId u = queue[qi];
      for (const Edge& e : adj[u]) {
        if (!seen[e.to]) {
          seen[e.to] = true;
          parent[e.to] = u;
          entry[e.to] = CycleStep{e.arc, e.forward};
          queue.push_back(e.to);
        }
      }
    }
    WDAG_ASSERT(seen[to], "internal_cycle_basis: chord endpoints not in the "
                          "same forest component");
    std::vector<CycleStep> steps;
    for (VertexId v = to; v != from; v = parent[v]) steps.push_back(entry[v]);
    std::reverse(steps.begin(), steps.end());
    return steps;
  };

  std::vector<OrientedCycle> basis;
  basis.reserve(chords.size());
  for (ArcId chord : chords) {
    OrientedCycle cyc;
    cyc.steps.push_back(CycleStep{chord, true});           // tail -> head
    auto back = forest_path(g.head(chord), g.tail(chord)); // head ~> tail
    cyc.steps.insert(cyc.steps.end(), back.begin(), back.end());
    WDAG_ASSERT(is_internal_cycle(g, cyc),
                "internal_cycle_basis: fundamental cycle is not internal");
    basis.push_back(std::move(cyc));
  }
  WDAG_ASSERT(basis.size() == internal_cycle_count(g),
              "internal_cycle_basis: basis size mismatch");
  return basis;
}

}  // namespace wdag::dag
