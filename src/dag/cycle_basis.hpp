#pragma once
// A fundamental basis of the internal-cycle space.
//
// internal_cycle_count() (cyclomatic number) says *how many* independent
// internal cycles exist; this module materializes one representative per
// independent cycle: a spanning forest of the internal sub-multigraph plus
// one fundamental cycle per non-tree arc. The recursive split-merge solver
// needs only one cycle at a time, but audits and the multi-cycle benches
// want the whole basis.

#include <vector>

#include "dag/oriented_cycle.hpp"
#include "graph/digraph.hpp"

namespace wdag::dag {

/// One fundamental internal cycle per independent cycle of g
/// (exactly internal_cycle_count(g) entries). Each returned cycle is a
/// valid internal OrientedCycle of g; together they form a cycle basis of
/// the internal sub-multigraph. Deterministic for a given graph.
std::vector<OrientedCycle> internal_cycle_basis(const graph::Digraph& g);

}  // namespace wdag::dag
