#include "dag/internal_cycle.hpp"

#include <algorithm>

#include "graph/properties.hpp"
#include "util/check.hpp"
#include "util/union_find.hpp"

namespace wdag::dag {

using graph::ArcId;
using graph::Digraph;
using graph::VertexId;

namespace {

/// Arcs whose endpoints are both internal vertices per `mask` (computed
/// once by the caller; the mask walk used to dominate these queries).
std::vector<ArcId> internal_arcs(const Digraph& g,
                                 const std::vector<bool>& mask) {
  std::vector<ArcId> arcs;
  const auto& all = g.arcs();
  for (ArcId a = 0; a < all.size(); ++a) {
    if (mask[all[a].tail] && mask[all[a].head]) arcs.push_back(a);
  }
  return arcs;
}

}  // namespace

bool has_internal_cycle(const Digraph& g) {
  util::UnionFind uf(g.num_vertices());
  for (ArcId a : internal_arcs(g, graph::internal_vertex_mask(g))) {
    if (!uf.unite(g.tail(a), g.head(a))) return true;
  }
  return false;
}

std::size_t internal_cycle_count(const Digraph& g) {
  // Cyclomatic number of the internal sub-multigraph = number of arcs that
  // close a cycle during union-find, i.e. m' - (n' - c').
  util::UnionFind uf(g.num_vertices());
  std::size_t closing = 0;
  for (ArcId a : internal_arcs(g, graph::internal_vertex_mask(g))) {
    if (!uf.unite(g.tail(a), g.head(a))) ++closing;
  }
  return closing;
}

std::optional<OrientedCycle> find_internal_cycle(const Digraph& g) {
  const auto mask = graph::internal_vertex_mask(g);
  const auto arcs = internal_arcs(g, mask);
  if (arcs.empty()) return std::nullopt;

  // Undirected incidence restricted to internal arcs, in flat CSR form
  // (the per-vertex vector-of-vectors was the hot allocation of the
  // split-merge recursion). Entry order within a vertex matches the old
  // push order — ascending arc id — so the DFS and the extracted cycle
  // are unchanged.
  struct Edge {
    VertexId to;
    ArcId arc;
    bool forward;  // true: walk tail->head
  };
  const std::size_t n = g.num_vertices();
  thread_local std::vector<std::uint32_t> adj_off, cursor;
  thread_local std::vector<Edge> adj;
  adj_off.assign(n + 1, 0);
  for (const ArcId a : arcs) {
    ++adj_off[g.tail(a) + 1];
    ++adj_off[g.head(a) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) adj_off[v + 1] += adj_off[v];
  adj.resize(2 * arcs.size());
  cursor.assign(adj_off.begin(), adj_off.end() - 1);
  for (const ArcId a : arcs) {
    adj[cursor[g.tail(a)]++] = Edge{g.head(a), a, true};
    adj[cursor[g.head(a)]++] = Edge{g.tail(a), a, false};
  }

  // Iterative DFS. For each visited vertex remember the (arc, forward) step
  // used to enter it and its DFS parent; the first non-parent edge to a
  // visited *active* vertex closes a cycle.
  thread_local std::vector<std::uint8_t> state;
  thread_local std::vector<CycleStep> entry;
  thread_local std::vector<VertexId> parent;
  thread_local std::vector<std::uint32_t> edge_it;
  state.assign(n, 0);  // 0 unvisited, 1 active, 2 done
  entry.assign(n, CycleStep{});
  parent.assign(n, graph::kNoVertex);
  edge_it.assign(n, 0);

  for (VertexId root = 0; root < n; ++root) {
    if (!mask[root] || state[root] != 0 ||
        adj_off[root] == adj_off[root + 1]) {
      continue;
    }
    std::vector<VertexId> stack = {root};
    state[root] = 1;
    while (!stack.empty()) {
      const VertexId u = stack.back();
      if (adj_off[u] + edge_it[u] == adj_off[u + 1]) {
        state[u] = 2;
        stack.pop_back();
        continue;
      }
      const Edge e = adj[adj_off[u] + edge_it[u]++];
      if (parent[u] != graph::kNoVertex && e.arc == entry[u].arc) {
        continue;  // do not reuse the entering edge
      }
      if (state[e.to] == 0) {
        state[e.to] = 1;
        parent[e.to] = u;
        entry[e.to] = CycleStep{e.arc, e.forward};
        stack.push_back(e.to);
      } else if (state[e.to] == 1) {
        // Cycle: e.to is an ancestor of u on the DFS stack. Walk u's parent
        // chain back to e.to, then close with edge e.
        OrientedCycle cyc;
        std::vector<CycleStep> up;  // steps from e.to down to u
        VertexId w = u;
        while (w != e.to) {
          up.push_back(entry[w]);
          w = parent[w];
          WDAG_ASSERT(w != graph::kNoVertex,
                      "find_internal_cycle: broken parent chain");
        }
        std::reverse(up.begin(), up.end());
        cyc.steps = std::move(up);
        cyc.steps.push_back(CycleStep{e.arc, e.forward});
        // The closing step walks u -> e.to; orientation flag already
        // matches because Edge.forward describes the u -> e.to direction.
        WDAG_ASSERT(is_valid_oriented_cycle(g, cyc),
                    "find_internal_cycle: extracted cycle is invalid");
        // Internality check against the mask already in hand (the public
        // is_internal_cycle would recompute it).
        for (const VertexId cv : cycle_vertices(g, cyc)) {
          WDAG_ASSERT(mask[cv],
                      "find_internal_cycle: extracted cycle is not internal");
        }
        return cyc;
      }
      // state[e.to] == 2: finished component part; no cycle through here.
    }
  }
  return std::nullopt;
}

bool is_internal_cycle(const Digraph& g, const OrientedCycle& c) {
  if (!is_valid_oriented_cycle(g, c)) return false;
  const auto mask = graph::internal_vertex_mask(g);
  for (const VertexId v : cycle_vertices(g, c)) {
    if (!mask[v]) return false;
  }
  return true;
}

}  // namespace wdag::dag
