#pragma once
// Internal-cycle detection — the paper's central structural criterion.
//
// An *internal cycle* of a DAG G is an oriented cycle all of whose vertices
// are internal (indegree > 0 and outdegree > 0 in G). The Main Theorem
// states: w(G,P) == pi(G,P) for every family P iff G has no internal cycle.
//
// Detection reduces to acyclicity of the underlying undirected multigraph
// restricted to arcs between internal vertices: any undirected cycle there
// is an oriented cycle of G visiting only internal vertices, and
// conversely. We use union–find for the yes/no and count queries and a DFS
// for explicit extraction.

#include <optional>

#include "dag/oriented_cycle.hpp"
#include "graph/digraph.hpp"

namespace wdag::dag {

/// True when g (assumed a DAG) contains an internal cycle.
bool has_internal_cycle(const graph::Digraph& g);

/// Number of independent internal cycles: the cyclomatic number
/// m' - n' + c' of the underlying sub-multigraph induced by internal
/// vertices. 0 means "no internal cycle" (Theorem 1 applies); 1 means
/// "exactly one" (Theorem 6 applies to UPP-DAGs).
std::size_t internal_cycle_count(const graph::Digraph& g);

/// Extracts one internal cycle, or nullopt when none exists.
/// The returned cycle is a valid OrientedCycle of g visiting only internal
/// vertices; the result is deterministic for a given graph.
std::optional<OrientedCycle> find_internal_cycle(const graph::Digraph& g);

/// True when `c` is a valid oriented cycle of g whose vertices are all
/// internal in g.
bool is_internal_cycle(const graph::Digraph& g, const OrientedCycle& c);

}  // namespace wdag::dag
