#include "dag/oriented_cycle.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/check.hpp"

namespace wdag::dag {

using graph::ArcId;
using graph::Digraph;
using graph::VertexId;

VertexId step_start(const Digraph& g, const CycleStep& s) {
  return s.forward ? g.tail(s.arc) : g.head(s.arc);
}

VertexId step_end(const Digraph& g, const CycleStep& s) {
  return s.forward ? g.head(s.arc) : g.tail(s.arc);
}

bool is_valid_oriented_cycle(const Digraph& g, const OrientedCycle& c) {
  if (c.steps.size() < 2) return false;
  std::set<ArcId> seen;
  for (std::size_t i = 0; i < c.steps.size(); ++i) {
    const CycleStep& cur = c.steps[i];
    if (cur.arc >= g.num_arcs()) return false;
    if (!seen.insert(cur.arc).second) return false;  // repeated arc
    const CycleStep& nxt = c.steps[(i + 1) % c.steps.size()];
    if (nxt.arc >= g.num_arcs()) return false;
    if (step_end(g, cur) != step_start(g, nxt)) return false;
  }
  return true;
}

std::vector<VertexId> cycle_vertices(const Digraph& g, const OrientedCycle& c) {
  std::vector<VertexId> out;
  out.reserve(c.steps.size());
  for (const CycleStep& s : c.steps) out.push_back(step_start(g, s));
  return out;
}

CycleDecomposition decompose_cycle(const Digraph& g, const OrientedCycle& c) {
  WDAG_REQUIRE(is_valid_oriented_cycle(g, c),
               "decompose_cycle: not a valid oriented cycle");
  const std::size_t n = c.steps.size();

  // Rotate so that step 0 starts a forward run (its predecessor step is
  // backward). A DAG admits no fully-directed cycle, so a direction change
  // must exist.
  std::size_t start = n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t prev = (i + n - 1) % n;
    if (c.steps[i].forward && !c.steps[prev].forward) {
      start = i;
      break;
    }
  }
  WDAG_REQUIRE(start < n,
               "decompose_cycle: cycle has no direction change; the host "
               "digraph has a directed cycle and is not a DAG");

  std::vector<CycleStep> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = c.steps[(start + i) % n];

  // Group maximal same-direction runs. Runs alternate forward/backward and
  // the walk starts forward, so runs come in (forward, backward) pairs.
  struct Run {
    bool forward;
    std::vector<ArcId> arcs;  // in walk order
    VertexId walk_start, walk_end;
  };
  std::vector<Run> runs;
  for (std::size_t i = 0; i < n; ++i) {
    if (runs.empty() || runs.back().forward != w[i].forward) {
      runs.push_back(Run{w[i].forward, {}, step_start(g, w[i]), step_end(g, w[i])});
    }
    runs.back().arcs.push_back(w[i].arc);
    runs.back().walk_end = step_end(g, w[i]);
  }
  WDAG_ASSERT(runs.size() % 2 == 0 && runs.front().forward,
              "decompose_cycle: runs must alternate starting forward");
  const std::size_t k = runs.size() / 2;

  CycleDecomposition d;
  d.b.resize(k);
  d.c.resize(k);
  d.run_a.resize(k);
  d.run_b.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const Run& fwd = runs[2 * i];      // A_{i+1}: b_{i+1} -> c_{i+1}
    const Run& bwd = runs[2 * i + 1];  // walked c_{i+1} -> b_{i+2} backward
    WDAG_ASSERT(fwd.forward && !bwd.forward, "decompose_cycle: bad alternation");
    d.b[i] = fwd.walk_start;
    d.c[i] = fwd.walk_end;
    d.run_a[i] = fwd.arcs;
    // bwd walked end-to-start against the arcs; as a dipath it goes
    // b_{i+2} -> c_{i+1}, i.e. run_b[(i+1) mod k] with arcs reversed.
    std::vector<ArcId> rev(bwd.arcs.rbegin(), bwd.arcs.rend());
    d.run_b[(i + 1) % k] = std::move(rev);
  }

  // Sanity: run_b[i] goes b[i] -> c[(i+k-1) % k].
  for (std::size_t i = 0; i < k; ++i) {
    WDAG_ASSERT(!d.run_b[i].empty(), "decompose_cycle: empty backward run");
    WDAG_ASSERT(g.tail(d.run_b[i].front()) == d.b[i],
                "decompose_cycle: B-run must start at b_i");
    WDAG_ASSERT(g.head(d.run_b[i].back()) == d.c[(i + k - 1) % k],
                "decompose_cycle: B-run must end at c_{i-1}");
  }
  return d;
}

std::string cycle_to_string(const Digraph& g, const OrientedCycle& c) {
  std::ostringstream os;
  for (std::size_t i = 0; i < c.steps.size(); ++i) {
    const CycleStep& s = c.steps[i];
    os << g.vertex_label(step_start(g, s))
       << (s.forward ? " -> " : " <- ");
  }
  if (!c.steps.empty()) {
    os << g.vertex_label(step_start(g, c.steps.front()));
  }
  return os.str();
}

}  // namespace wdag::dag
