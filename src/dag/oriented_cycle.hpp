#pragma once
// Oriented cycles in DAGs.
//
// A DAG has no *directed* cycle, but its underlying undirected multigraph
// may contain cycles; traversed in the underlying graph such a cycle uses
// some arcs forward and some backward (paper, Figure 2a). It therefore
// decomposes into an even number 2k of maximal directed runs, alternating
// direction, between k "cycle sources" b_i (both incident cycle arcs leave
// b_i) and k "cycle sinks" c_i (both incident cycle arcs enter c_i).

#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace wdag::dag {

/// One traversal step of an oriented cycle: arc `arc`, walked from tail to
/// head when `forward`, else from head to tail.
struct CycleStep {
  graph::ArcId arc = graph::kNoArc;
  bool forward = true;

  bool operator==(const CycleStep&) const = default;
};

/// A closed walk in the underlying multigraph with no repeated arc.
/// steps[i] ends where steps[i+1] starts (cyclically).
struct OrientedCycle {
  std::vector<CycleStep> steps;

  [[nodiscard]] bool empty() const { return steps.empty(); }
  [[nodiscard]] std::size_t size() const { return steps.size(); }
};

/// Start vertex of a step within graph g.
graph::VertexId step_start(const graph::Digraph& g, const CycleStep& s);

/// End vertex of a step within graph g.
graph::VertexId step_end(const graph::Digraph& g, const CycleStep& s);

/// Checks closure and arc-distinctness of an oriented cycle in g.
bool is_valid_oriented_cycle(const graph::Digraph& g, const OrientedCycle& c);

/// Vertices visited by the cycle, in walk order (one entry per step start).
std::vector<graph::VertexId> cycle_vertices(const graph::Digraph& g,
                                            const OrientedCycle& c);

/// The canonical alternating-run decomposition of an oriented cycle
/// (paper §2): b_i --A_i--> c_i and b_{i+1} --B_{i+1}--> c_i, indices mod k.
///
/// Runs are stored forward (as dipaths): run_a[i] goes b_i -> c_i and
/// run_b[i] goes b_i -> c_{i-1} (i.e. b_{i+1} -> c_i is run_b[(i+1) mod k]).
struct CycleDecomposition {
  std::vector<graph::VertexId> b;               ///< cycle sources b_1..b_k (0-indexed)
  std::vector<graph::VertexId> c;               ///< cycle sinks  c_1..c_k (0-indexed)
  std::vector<std::vector<graph::ArcId>> run_a; ///< A_i : b_i -> c_i
  std::vector<std::vector<graph::ArcId>> run_b; ///< B_i : b_i -> c_{i-1 mod k}

  [[nodiscard]] std::size_t k() const { return b.size(); }
};

/// Decomposes a valid oriented cycle of a DAG into alternating runs.
/// Throws wdag::InvalidArgument when the cycle is invalid or fully directed
/// (impossible in a DAG).
CycleDecomposition decompose_cycle(const graph::Digraph& g,
                                   const OrientedCycle& c);

/// Human-readable rendering ("b1 ->A-> c1 <-B- b2 ...") for diagnostics.
std::string cycle_to_string(const graph::Digraph& g, const OrientedCycle& c);

}  // namespace wdag::dag
