#include "dag/upp.hpp"

#include <algorithm>
#include <atomic>

#include "graph/topo.hpp"
#include "util/check.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/thread_pool.hpp"

namespace wdag::dag {

using graph::ArcId;
using graph::Digraph;
using graph::VertexId;

namespace {

/// Path counts from `src` to every vertex, saturated at cap, via DP over
/// the (forward) topological order.
std::vector<std::uint64_t> counts_from(const Digraph& g,
                                       const std::vector<VertexId>& order,
                                       VertexId src, std::uint64_t cap) {
  std::vector<std::uint64_t> cnt(g.num_vertices(), 0);
  const auto& arcs = g.arcs();
  cnt[src] = 1;
  for (const VertexId v : order) {
    if (cnt[v] == 0) continue;
    for (ArcId a : g.out_arcs(v)) {
      const VertexId w = arcs[a].head;
      cnt[w] = std::min(cap, cnt[w] + cnt[v]);
    }
  }
  return cnt;
}

}  // namespace

std::uint64_t count_dipaths(const Digraph& g, VertexId u, VertexId v,
                            std::uint64_t cap) {
  WDAG_REQUIRE(u < g.num_vertices() && v < g.num_vertices(),
               "count_dipaths: vertex out of range");
  WDAG_REQUIRE(cap >= 1, "count_dipaths: cap must be >= 1");
  const auto order = graph::topological_sort(g);
  WDAG_DOMAIN(order.has_value(), "count_dipaths: input is not a DAG");
  return counts_from(g, *order, u, cap)[v];
}

bool is_upp(const Digraph& g) {
  const auto order = graph::topological_sort(g);
  WDAG_DOMAIN(order.has_value(), "is_upp: input is not a DAG");
  return is_upp(g, *order);
}

bool is_upp(const Digraph& g, const std::vector<VertexId>& order_in) {
  const auto* order = &order_in;
  const std::size_t n = g.num_vertices();
  if (n == 0) return true;

  // Word-parallel check for all but huge hosts: two distinct dipaths
  // u -> w exist iff some vertex has two in-arcs whose tails share an
  // ancestor (the reconvergence point witnesses the violation). One
  // forward pass over the topological order maintains each vertex's
  // ancestor cone as a bitset: when a vertex's in-cones overlap, the DAG
  // is not UPP. O(m * n/64) total versus the per-source DP's O(n * m);
  // beyond the size cap the cones' O(n^2) bits stop paying for
  // themselves, so the sharded DP takes over.
  if (n <= 4096) {
    thread_local std::vector<util::DynamicBitset> anc;
    if (anc.size() < n) anc.resize(n);
    for (const VertexId v : *order) {
      util::DynamicBitset& cone = anc[v];
      cone.reset_to_zero(n);
      for (const ArcId a : g.in_arcs(v)) {
        const util::DynamicBitset& tail_cone = anc[g.arcs()[a].tail];
        if (cone.intersects(tail_cone)) return false;
        cone |= tail_cone;
      }
      cone.set_unchecked(v);
    }
    return true;
  }

  std::atomic<bool> violated{false};
  util::parallel_for_chunks(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t src = lo; src < hi && !violated.load(); ++src) {
          const auto cnt =
              counts_from(g, *order, static_cast<VertexId>(src), 2);
          for (std::size_t v = 0; v < n; ++v) {
            if (cnt[v] >= 2) {
              violated.store(true);
              break;
            }
          }
        }
      },
      /*grain=*/8);
  return !violated.load();
}

namespace {

/// Collects up to `limit` distinct dipaths src -> dst by DFS.
void enumerate_paths(const Digraph& g, VertexId src, VertexId dst,
                     std::size_t limit, std::vector<ArcId>& cur,
                     std::vector<std::vector<ArcId>>& out) {
  if (out.size() >= limit) return;
  if (src == dst) {
    out.push_back(cur);
    return;
  }
  for (ArcId a : g.out_arcs(src)) {
    cur.push_back(a);
    enumerate_paths(g, g.head(a), dst, limit, cur, out);
    cur.pop_back();
    if (out.size() >= limit) return;
  }
}

}  // namespace

std::optional<UppViolation> find_upp_violation(const Digraph& g) {
  const auto order = graph::topological_sort(g);
  WDAG_DOMAIN(order.has_value(), "find_upp_violation: input is not a DAG");
  const std::size_t n = g.num_vertices();
  for (VertexId u = 0; u < n; ++u) {
    const auto cnt = counts_from(g, *order, u, 2);
    for (VertexId v = 0; v < n; ++v) {
      if (cnt[v] >= 2) {
        UppViolation viol;
        viol.from = u;
        viol.to = v;
        std::vector<ArcId> cur;
        std::vector<std::vector<ArcId>> paths;
        enumerate_paths(g, u, v, 2, cur, paths);
        WDAG_ASSERT(paths.size() == 2,
                    "find_upp_violation: DP found 2 paths but DFS did not");
        viol.path1 = std::move(paths[0]);
        viol.path2 = std::move(paths[1]);
        return viol;
      }
    }
  }
  return std::nullopt;
}

}  // namespace wdag::dag
