#pragma once
// The Unique-diPath Property (UPP).
//
// A DAG is a UPP-DAG when there is at most one dipath between any ordered
// pair of vertices (paper §2). For UPP-DAGs requests and dipaths are
// interchangeable, the conflict relation satisfies the Helly property, and
// the load equals the clique number of the conflict graph (Property 3).
//
// The test is a saturating path-count dynamic program per start vertex,
// O(n*m) total, fanned out over the thread pool for large graphs.

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace wdag::dag {

/// Number of distinct dipaths from u to v, saturated at `cap`.
/// u == v counts the empty dipath (1). Requires a DAG.
std::uint64_t count_dipaths(const graph::Digraph& g, graph::VertexId u,
                            graph::VertexId v, std::uint64_t cap = 2);

/// A pair of vertices joined by two or more distinct dipaths, with two
/// explicit witnesses (as arc sequences).
struct UppViolation {
  graph::VertexId from = graph::kNoVertex;
  graph::VertexId to = graph::kNoVertex;
  std::vector<graph::ArcId> path1;
  std::vector<graph::ArcId> path2;
};

/// True when g is a UPP-DAG. Requires a DAG (throws DomainError otherwise).
bool is_upp(const graph::Digraph& g);

/// is_upp() with a caller-supplied topological order of g (must be valid),
/// so classifiers that already ran Kahn's algorithm do not run it twice.
bool is_upp(const graph::Digraph& g,
            const std::vector<graph::VertexId>& order);

/// Returns a violation witness, or nullopt when g is UPP.
/// The witness pair is the lexicographically smallest (from, to) violating
/// pair; the two paths differ in at least one arc.
std::optional<UppViolation> find_upp_violation(const graph::Digraph& g);

}  // namespace wdag::dag
