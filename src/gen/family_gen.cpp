#include "gen/family_gen.hpp"

#include <vector>

#include "graph/reachability.hpp"
#include "paths/route.hpp"
#include "util/check.hpp"

namespace wdag::gen {

using graph::ArcId;
using graph::Digraph;
using graph::VertexId;
using paths::Dipath;
using paths::DipathFamily;

DipathFamily random_walk_family(util::Xoshiro256& rng, const Digraph& g,
                                std::size_t count, std::size_t min_len,
                                std::size_t max_len) {
  WDAG_REQUIRE(g.num_arcs() > 0, "random_walk_family: graph has no arc");
  WDAG_REQUIRE(min_len >= 1 && min_len <= max_len,
               "random_walk_family: need 1 <= min_len <= max_len");
  DipathFamily fam(g);
  for (std::size_t i = 0; i < count; ++i) {
    Dipath p;
    const ArcId first = static_cast<ArcId>(rng.index(g.num_arcs()));
    p.arcs.push_back(first);
    VertexId cur = g.head(first);
    // Extend forward. In a DAG the walk cannot revisit a vertex, so any
    // forward extension keeps the dipath simple.
    while (p.arcs.size() < max_len) {
      const auto out = g.out_arcs(cur);
      if (out.empty()) break;
      // Keep extending until min_len, then stop with probability 1/3.
      if (p.arcs.size() >= min_len && rng.chance(1.0 / 3.0)) break;
      const ArcId next = out[rng.index(out.size())];
      p.arcs.push_back(next);
      cur = g.head(next);
    }
    // A forward walk in a DAG is a simple dipath by construction.
    fam.add_unchecked(std::move(p));
  }
  return fam;
}

DipathFamily all_to_all_family(const Digraph& g) {
  DipathFamily fam(g);
  const auto closure = graph::transitive_closure(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (u == v || !closure[u].test(v)) continue;
      const auto route = paths::unique_route(g, u, v);
      WDAG_ASSERT(route.has_value(), "all_to_all_family: lost route");
      fam.add_unchecked(*route);
    }
  }
  return fam;
}

DipathFamily multicast_family(const Digraph& g, VertexId root) {
  WDAG_REQUIRE(root < g.num_vertices(), "multicast_family: root out of range");
  DipathFamily fam(g);
  const auto reach = graph::descendants(g, root);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == root || !reach.test(v)) continue;
    const auto route = paths::shortest_route(g, root, v);
    WDAG_ASSERT(route.has_value(), "multicast_family: lost route");
    fam.add_unchecked(*route);
  }
  return fam;
}

DipathFamily random_request_family(util::Xoshiro256& rng, const Digraph& g,
                                   std::size_t count) {
  const auto closure = graph::transitive_closure(g);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (u != v && closure[u].test(v)) pairs.emplace_back(u, v);
    }
  }
  WDAG_REQUIRE(!pairs.empty(), "random_request_family: no reachable pair");
  DipathFamily fam(g);
  for (std::size_t i = 0; i < count; ++i) {
    const auto [u, v] = pairs[rng.index(pairs.size())];
    const auto route = paths::shortest_route(g, u, v);
    // Routes come straight out of the BFS over g; skip re-validation.
    WDAG_ASSERT(route.has_value(), "random_request_family: lost route");
    fam.add_unchecked(*route);
  }
  return fam;
}

}  // namespace wdag::gen
