#pragma once
// Dipath family generators: random walks, all-to-all, multicast — the
// request patterns the paper's introduction motivates.

#include <cstddef>

#include "graph/digraph.hpp"
#include "paths/family.hpp"
#include "util/rng.hpp"

namespace wdag::gen {

/// `count` random dipaths: each starts at a uniformly random arc and
/// extends forward through uniformly random out-arcs, stopping at a sink
/// or after max_len arcs (whichever first), with at least min_len arcs
/// when the walk allows it.
paths::DipathFamily random_walk_family(util::Xoshiro256& rng,
                                       const graph::Digraph& g,
                                       std::size_t count, std::size_t min_len,
                                       std::size_t max_len);

/// The all-to-all instance on a UPP-DAG: the unique dipath for every
/// reachable ordered pair (u, v), u != v. Throws wdag::DomainError when
/// some pair has two routes (host not UPP).
paths::DipathFamily all_to_all_family(const graph::Digraph& g);

/// Multicast: shortest dipaths from `root` to every other reachable
/// vertex (the instance class of [Beauquier, Hell, Pérennes 1998] cited
/// in the paper, for which w == pi on any digraph).
paths::DipathFamily multicast_family(const graph::Digraph& g,
                                     graph::VertexId root);

/// `count` random requests between distinct reachable pairs, routed by
/// shortest path. Throws wdag::InvalidArgument when g has no reachable pair.
paths::DipathFamily random_request_family(util::Xoshiro256& rng,
                                          const graph::Digraph& g,
                                          std::size_t count);

}  // namespace wdag::gen
