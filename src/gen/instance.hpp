#pragma once
// A self-contained problem instance: a digraph plus a dipath family on it.
//
// DipathFamily references its host graph, so Instance keeps the graph on
// the heap behind a shared_ptr; copies and moves of Instance never
// invalidate the family's reference.

#include <memory>

#include "graph/digraph.hpp"
#include "paths/family.hpp"

namespace wdag::gen {

/// Graph + family bundle returned by every generator.
struct Instance {
  std::shared_ptr<const graph::Digraph> graph;
  paths::DipathFamily family;

  /// Starts an instance over a freshly-built graph with an empty family.
  static Instance over(graph::Digraph g) {
    Instance inst;
    inst.graph = std::make_shared<const graph::Digraph>(std::move(g));
    inst.family = paths::DipathFamily(*inst.graph);
    return inst;
  }

  /// Same graph, family replaced by `h`-fold replication (paper's
  /// thickening used in Theorems 6/7 tightness arguments).
  [[nodiscard]] Instance replicate(std::size_t h) const {
    Instance inst;
    inst.graph = graph;
    inst.family = family.replicate(h);
    return inst;
  }
};

}  // namespace wdag::gen
