#include "gen/paper_instances.hpp"

#include <string>
#include <vector>

#include "util/check.hpp"

namespace wdag::gen {

using graph::DigraphBuilder;
using graph::VertexId;

Instance figure1_pathological(std::size_t k) {
  WDAG_REQUIRE(k >= 1, "figure1_pathological: k must be >= 1");
  // One shared two-vertex segment u_{ij} -> v_{ij} per unordered pair
  // {i,j}; dipath P_i traverses, in global lexicographic pair order, the
  // segments of every pair containing i, linked by private arcs. Arcs only
  // go forward in the global order, so the graph is a DAG; each shared
  // segment carries exactly two dipaths (load 2) while all dipaths are
  // pairwise in conflict (complete conflict graph), mirroring Figure 1's
  // staircase construction.
  DigraphBuilder b;
  struct Seg {
    VertexId u, v;
  };
  std::vector<std::vector<Seg>> seg(k, std::vector<Seg>(k));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const VertexId u = b.add_vertex("u" + std::to_string(i) + "_" + std::to_string(j));
      const VertexId v = b.add_vertex("v" + std::to_string(i) + "_" + std::to_string(j));
      b.add_arc(u, v);
      seg[i][j] = seg[j][i] = Seg{u, v};
    }
  }
  // Private start/end vertices so every dipath is non-trivial even for the
  // path that owns no shared segment (k == 1).
  std::vector<VertexId> start(k), finish(k);
  for (std::size_t i = 0; i < k; ++i) {
    start[i] = b.add_vertex("s" + std::to_string(i));
    finish[i] = b.add_vertex("t" + std::to_string(i));
  }
  // Linker arcs, then build per-path vertex sequences.
  std::vector<std::vector<VertexId>> route(k);
  for (std::size_t i = 0; i < k; ++i) {
    route[i].push_back(start[i]);
    // Pairs containing i in global lexicographic order (a,b), a<b.
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t p = a + 1; p < k; ++p) {
        if (a != i && p != i) continue;
        route[i].push_back(seg[a][p].u);
        route[i].push_back(seg[a][p].v);
      }
    }
    route[i].push_back(finish[i]);
  }
  // Add the linker arcs (skipping the already-present shared arcs).
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t x = 0; x + 1 < route[i].size(); ++x) {
      const VertexId from = route[i][x];
      const VertexId to = route[i][x + 1];
      // Shared arcs connect u_{ab} -> v_{ab} and are added once above;
      // detect them by position parity: route = s, (u,v)*, t.
      const bool is_shared = (x % 2 == 1);
      if (!is_shared) b.add_arc(from, to);
    }
  }
  Instance inst = Instance::over(b.build());
  for (std::size_t i = 0; i < k; ++i) inst.family.add_through(route[i]);
  return inst;
}

Instance figure3_instance() {
  DigraphBuilder b;
  const VertexId a = b.add_vertex("a"), v_b = b.add_vertex("b"),
                 c = b.add_vertex("c"), d = b.add_vertex("d"),
                 e = b.add_vertex("e");
  b.add_arc(a, v_b);
  b.add_arc(v_b, c);
  b.add_arc(c, d);
  b.add_arc(d, e);
  const graph::ArcId chord = b.add_arc(v_b, d);  // the second b -> d route
  Instance inst = Instance::over(b.build());
  const auto& g = *inst.graph;
  inst.family.add_through({a, v_b, c});
  inst.family.add_through({v_b, c, d});
  inst.family.add_through({c, d, e});
  // b -> d -> e and a -> b -> d via the chord.
  inst.family.add(paths::Dipath({chord, g.find_arc(d, e)}));
  inst.family.add(paths::Dipath({g.find_arc(a, v_b), chord}));
  return inst;
}

Instance theorem2_instance(std::size_t k) {
  WDAG_REQUIRE(k >= 1, "theorem2_instance: k must be >= 1");
  // Internal cycle with sources b_i and sinks c_i: A_i : b_i -> c_i and
  // B_i : b_i -> c_{i-1 mod k}; pendant a_i -> b_i and c_i -> d_i make the
  // cycle internal.
  DigraphBuilder bld;
  std::vector<VertexId> va(k), vb(k), vc(k), vd(k);
  for (std::size_t i = 0; i < k; ++i) {
    va[i] = bld.add_vertex("a" + std::to_string(i + 1));
    vb[i] = bld.add_vertex("b" + std::to_string(i + 1));
    vc[i] = bld.add_vertex("c" + std::to_string(i + 1));
    vd[i] = bld.add_vertex("d" + std::to_string(i + 1));
  }
  std::vector<graph::ArcId> in_arc(k), out_arc(k), arc_a(k), arc_b(k);
  for (std::size_t i = 0; i < k; ++i) {
    in_arc[i] = bld.add_arc(va[i], vb[i]);
    out_arc[i] = bld.add_arc(vc[i], vd[i]);
  }
  for (std::size_t i = 0; i < k; ++i) {
    arc_a[i] = bld.add_arc(vb[i], vc[i]);
    arc_b[i] = bld.add_arc(vb[i], vc[(i + k - 1) % k]);
  }
  Instance inst = Instance::over(bld.build());
  // Family (conflict graph C_{2k+1}):
  //   P_head = a_1 + A_1                      (no d endpoint)
  //   P_neck = A_1 + d_1
  //   for i = 2..k:   a_i + A_i + d_i
  //   for i = 1..k:   a_i + B_i + d_{i-1 mod k}
  inst.family.add(paths::Dipath({in_arc[0], arc_a[0]}));
  inst.family.add(paths::Dipath({arc_a[0], out_arc[0]}));
  for (std::size_t i = 1; i < k; ++i) {
    inst.family.add(paths::Dipath({in_arc[i], arc_a[i], out_arc[i]}));
  }
  for (std::size_t i = 0; i < k; ++i) {
    inst.family.add(
        paths::Dipath({in_arc[i], arc_b[i], out_arc[(i + k - 1) % k]}));
  }
  return inst;
}

Instance havet_instance() {
  DigraphBuilder bld;
  const VertexId a1 = bld.add_vertex("a1"), a2 = bld.add_vertex("a2"),
                 a1p = bld.add_vertex("a1'"), a2p = bld.add_vertex("a2'"),
                 b1 = bld.add_vertex("b1"), b2 = bld.add_vertex("b2"),
                 c1 = bld.add_vertex("c1"), c2 = bld.add_vertex("c2"),
                 d1 = bld.add_vertex("d1"), d2 = bld.add_vertex("d2"),
                 d1p = bld.add_vertex("d1'"), d2p = bld.add_vertex("d2'");
  bld.add_arc(a1, b1);
  bld.add_arc(a2, b2);
  bld.add_arc(a1p, b1);
  bld.add_arc(a2p, b2);
  bld.add_arc(b1, c1);
  bld.add_arc(b1, c2);
  bld.add_arc(b2, c1);
  bld.add_arc(b2, c2);
  bld.add_arc(c1, d1);
  bld.add_arc(c1, d1p);
  bld.add_arc(c2, d2);
  bld.add_arc(c2, d2p);
  Instance inst = Instance::over(bld.build());
  // Conflict graph = V8: with paths indexed 0..7, the a-arcs pair
  // (0,1)(2,3)(4,5)(6,7), the middle arcs pair the antipodes
  // (0,4)(1,5)(2,6)(3,7), and the d-arcs pair (1,2)(3,4)(5,6)(7,0).
  inst.family.add_through({a1, b1, c2, d2p});   // 0
  inst.family.add_through({a1, b1, c1, d1});    // 1
  inst.family.add_through({a2, b2, c1, d1});    // 2
  inst.family.add_through({a2, b2, c2, d2});    // 3
  inst.family.add_through({a1p, b1, c2, d2});   // 4
  inst.family.add_through({a1p, b1, c1, d1p});  // 5
  inst.family.add_through({a2p, b2, c1, d1p});  // 6
  inst.family.add_through({a2p, b2, c2, d2p});  // 7
  return inst;
}

}  // namespace wdag::gen
