#pragma once
// Every worked example of the paper as a parametric, testable instance.
//
//  * figure1_pathological(k): a DAG (with many internal cycles) and k
//    dipaths that pairwise share an arc: pi == 2 but w == k. Shows the
//    w/pi ratio is unbounded once internal cycles exist.
//  * figure3_instance(): the 5-dipath example on a single-internal-cycle
//    DAG (not UPP): pi == 2, conflict graph C5, w == 3.
//  * theorem2_instance(k): the generic internal-cycle gadget: pi == 2,
//    conflict graph C_{2k+1}, w == 3 (Figure 5). UPP for k >= 2.
//  * havet_instance(): the UPP-DAG with one internal cycle whose conflict
//    graph is the Wagner graph V8 (C8 plus antipodal chords, independence
//    number 3); replicated h times it attains w == ceil(8h/3) with
//    pi == 2h — the tightness example of Theorem 7 (Figure 9).
//
// Note on Figure 9: the scanned paper's dipath list is typographically
// garbled (primes shift within the list). The family below is
// reconstructed from the stated structure — 8 dipaths, conflict graph
// C8 + antipodal chords, independence number 3, pi == 2 — and the tests
// verify all four properties explicitly.

#include <cstddef>

#include "gen/instance.hpp"

namespace wdag::gen {

/// Figure 1: k pairwise-conflicting dipaths with per-arc load at most 2.
/// Requires k >= 1. Conflict graph: complete K_k.
Instance figure1_pathological(std::size_t k);

/// Figure 3: path a->b->c->d->e plus chord b->d; 5 dipaths, pi=2, w=3.
Instance figure3_instance();

/// Theorem 2 / Figure 5 gadget with k cycle-source/sink pairs:
/// 2k+1 dipaths whose conflict graph is the odd cycle C_{2k+1}; pi == 2.
/// k == 1 degenerates to parallel arcs (valid but not UPP); k >= 2 is UPP.
Instance theorem2_instance(std::size_t k);

/// Theorem 7 / Figure 9: UPP-DAG, one internal cycle, 8 dipaths, conflict
/// graph = Wagner graph V8. Replicate(h) yields pi == 2h, w == ceil(8h/3).
Instance havet_instance();

}  // namespace wdag::gen
