#include "gen/random_dag.hpp"

#include <algorithm>
#include <numeric>

#include "dag/internal_cycle.hpp"
#include "util/check.hpp"

namespace wdag::gen {

using graph::Digraph;
using graph::DigraphBuilder;
using graph::VertexId;

Digraph random_layered_dag(util::Xoshiro256& rng, std::size_t layers,
                           std::size_t width, double p) {
  WDAG_REQUIRE(layers >= 1 && width >= 1,
               "random_layered_dag: need at least one layer and one column");
  DigraphBuilder b(layers * width);
  auto vid = [&](std::size_t layer, std::size_t col) {
    return static_cast<VertexId>(layer * width + col);
  };
  for (std::size_t l = 0; l + 1 < layers; ++l) {
    for (std::size_t c = 0; c < width; ++c) {
      bool any = false;
      for (std::size_t c2 = 0; c2 < width; ++c2) {
        if (rng.chance(p)) {
          b.add_arc(vid(l, c), vid(l + 1, c2));
          any = true;
        }
      }
      if (!any) {
        b.add_arc(vid(l, c), vid(l + 1, rng.index(width)));
      }
    }
  }
  return b.build();
}

Digraph random_out_tree(util::Xoshiro256& rng, std::size_t n) {
  WDAG_REQUIRE(n >= 1, "random_out_tree: need at least one vertex");
  DigraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) {
    b.add_arc(static_cast<VertexId>(rng.below(v)), v);
  }
  return b.build();
}

Digraph random_in_tree(util::Xoshiro256& rng, std::size_t n) {
  WDAG_REQUIRE(n >= 1, "random_in_tree: need at least one vertex");
  DigraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) {
    b.add_arc(v, static_cast<VertexId>(rng.below(v)));
  }
  return b.build();
}

Digraph random_dag(util::Xoshiro256& rng, std::size_t n, double p) {
  WDAG_REQUIRE(n >= 1, "random_dag: need at least one vertex");
  std::vector<VertexId> label(n);
  std::iota(label.begin(), label.end(), 0);
  rng.shuffle(label);
  DigraphBuilder b(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (rng.chance(p)) b.add_arc(label[u], label[v]);
    }
  }
  return b.build();
}

Digraph random_no_internal_cycle_dag(util::Xoshiro256& rng, std::size_t n,
                                     double p) {
  Digraph g = random_dag(rng, n, p);
  // Repair: as long as an internal cycle exists, delete one of its arcs
  // (uniformly at random) and rebuild.
  while (true) {
    const auto cycle = dag::find_internal_cycle(g);
    if (!cycle) return g;
    const graph::ArcId doomed =
        cycle->steps[rng.index(cycle->steps.size())].arc;
    DigraphBuilder b(g.num_vertices());
    for (graph::ArcId a = 0; a < g.num_arcs(); ++a) {
      if (a != doomed) b.add_arc(g.tail(a), g.head(a));
    }
    g = b.build();
  }
}

}  // namespace wdag::gen
