#pragma once
// Random digraph generators used by property tests and benchmark sweeps.
//
// All generators are deterministic functions of the RNG passed in; reusing
// a seed reproduces the instance bit-for-bit (see util/rng.hpp).

#include <cstddef>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace wdag::gen {

/// Layered DAG: `layers` layers of `width` vertices; each vertex draws an
/// arc to each vertex of the next layer independently with probability p,
/// plus one guaranteed out-arc per non-final-layer vertex so no spurious
/// sinks appear mid-graph.
graph::Digraph random_layered_dag(util::Xoshiro256& rng, std::size_t layers,
                                  std::size_t width, double p);

/// Random rooted out-tree on n vertices: vertex 0 is the root; vertex v
/// picks a uniform parent among 0..v-1. Rooted trees are the paper's §1
/// special case (w == pi for every family) — a tree has no cycle at all.
graph::Digraph random_out_tree(util::Xoshiro256& rng, std::size_t n);

/// Random in-tree (arcs towards the root 0): the reverse of an out-tree.
graph::Digraph random_in_tree(util::Xoshiro256& rng, std::size_t n);

/// Random DAG on n vertices: arcs u -> v for u < v under a random
/// relabeling, each present with probability p.
graph::Digraph random_dag(util::Xoshiro256& rng, std::size_t n, double p);

/// Random DAG **without internal cycle**: draws random_dag(n, p) and then
/// repairs it by removing one arc of each remaining internal cycle until
/// none is left. Arcs shrink monotonically, so the repair terminates; the
/// result is exercised by Theorem-1 property tests (E4).
graph::Digraph random_no_internal_cycle_dag(util::Xoshiro256& rng,
                                            std::size_t n, double p);

}  // namespace wdag::gen
