#include "gen/topologies.hpp"

#include <string>

#include "util/check.hpp"

namespace wdag::gen {

using graph::Digraph;
using graph::DigraphBuilder;
using graph::VertexId;

Digraph butterfly(std::size_t k) {
  WDAG_REQUIRE(k >= 1, "butterfly: dimension must be >= 1");
  WDAG_REQUIRE(k <= 20, "butterfly: dimension too large");
  const std::size_t row = std::size_t{1} << k;
  DigraphBuilder b;
  auto vid = [&](std::size_t level, std::size_t x) {
    return static_cast<VertexId>(level * row + x);
  };
  for (std::size_t level = 0; level <= k; ++level) {
    for (std::size_t x = 0; x < row; ++x) {
      b.add_vertex("L" + std::to_string(level) + "_" + std::to_string(x));
    }
  }
  for (std::size_t level = 0; level < k; ++level) {
    for (std::size_t x = 0; x < row; ++x) {
      b.add_arc(vid(level, x), vid(level + 1, x));                        // straight
      b.add_arc(vid(level, x), vid(level + 1, x ^ (std::size_t{1} << level)));  // cross
    }
  }
  return b.build();
}

Digraph grid_dag(std::size_t rows, std::size_t cols) {
  WDAG_REQUIRE(rows >= 1 && cols >= 1, "grid_dag: need at least 1x1");
  DigraphBuilder b(rows * cols);
  auto vid = [&](std::size_t i, std::size_t j) {
    return static_cast<VertexId>(i * cols + j);
  };
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (j + 1 < cols) b.add_arc(vid(i, j), vid(i, j + 1));  // right
      if (i + 1 < rows) b.add_arc(vid(i, j), vid(i + 1, j));  // down
    }
  }
  return b.build();
}

Digraph fat_chain(std::size_t stages, std::size_t width) {
  WDAG_REQUIRE(stages >= 1 && width >= 1, "fat_chain: need >= 1 stage/width");
  DigraphBuilder b;
  const VertexId entry = b.add_vertex("entry");
  VertexId prev = b.add_vertex("s0");
  b.add_arc(entry, prev);
  for (std::size_t s = 0; s < stages; ++s) {
    const VertexId next = b.add_vertex("s" + std::to_string(s + 1));
    for (std::size_t w = 0; w < width; ++w) {
      const VertexId mid = b.add_vertex("m" + std::to_string(s) + "_" +
                                        std::to_string(w));
      b.add_arc(prev, mid);
      b.add_arc(mid, next);
    }
    prev = next;
  }
  const VertexId exit = b.add_vertex("exit");
  b.add_arc(prev, exit);
  return b.build();
}

Digraph spine_with_leaves(std::size_t n) {
  WDAG_REQUIRE(n >= 2, "spine_with_leaves: need a chain of >= 2 vertices");
  DigraphBuilder b;
  VertexId prev = b.add_vertex("v0");
  for (std::size_t i = 1; i < n; ++i) {
    const VertexId cur = b.add_vertex("v" + std::to_string(i));
    b.add_arc(prev, cur);
    if (i + 1 < n) {
      b.add_arc(cur, b.add_vertex("leaf" + std::to_string(i)));
    }
    prev = cur;
  }
  return b.build();
}

}  // namespace wdag::gen
