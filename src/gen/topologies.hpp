#pragma once
// Classic optical / parallel-computing topologies as DAGs.
//
// These are the network shapes the optical-networks literature cited by
// the paper actually deploys; each is annotated with its place in the
// paper's taxonomy:
//
//  * butterfly(k):  the k-dimensional butterfly. UPP (routing is the
//    unique bit-fixing path); internal-cycle-free up to k == 2, full of
//    internal cycles from k == 3 on — a crisp regime boundary.
//  * grid_dag(r,c): rectangular grid with right/down arcs. NOT UPP
//    (Manhattan paths commute) and its inner faces are internal cycles:
//    the unbounded-ratio regime of Figure 1.
//  * fat_chain(stages, width): consecutive stages joined by `width`
//    internally-disjoint length-2 paths ("fiber bundles"); non-UPP and
//    each bundle contributes width-1 internal cycles.
//  * spine_with_leaves(n): a chain with pendant leaves — a tree, so never
//    an internal cycle (Theorem 1 regime), used as the easy contrast.

#include <cstddef>

#include "graph/digraph.hpp"

namespace wdag::gen {

/// k-dimensional butterfly: (k+1) levels of 2^k vertices; level l vertex x
/// connects to level l+1 vertices x and x XOR 2^l ("straight" and "cross").
/// 2^k * (k+1) vertices. UPP for every k.
graph::Digraph butterfly(std::size_t k);

/// r x c grid, arcs rightwards and downwards. Source (0,0) corner region;
/// vertex (i,j) has id i*c + j.
graph::Digraph grid_dag(std::size_t rows, std::size_t cols);

/// A chain of `n` stages where consecutive stages are joined by `width`
/// internally-disjoint length-2 paths (a "bundle"); guarded by an entry
/// and exit arc so the bundles' cycles are internal for width >= 2.
graph::Digraph fat_chain(std::size_t stages, std::size_t width);

/// Chain of length n with one pendant leaf hanging off every interior
/// vertex; never has an internal cycle.
graph::Digraph spine_with_leaves(std::size_t n);

}  // namespace wdag::gen
