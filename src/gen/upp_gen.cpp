#include "gen/upp_gen.hpp"

#include <string>
#include <vector>

#include "graph/reachability.hpp"
#include "paths/route.hpp"
#include "util/check.hpp"

namespace wdag::gen {

using graph::DigraphBuilder;
using graph::VertexId;

namespace {

/// Key vertices of one cycle gadget.
struct Gadget {
  std::vector<VertexId> chain_in_start;   ///< head of each b_i's in-chain
  std::vector<VertexId> chain_out_end;    ///< tail of each c_i's out-chain
};

/// Emits one UPP single-internal-cycle gadget into `b`; `tag` prefixes the
/// vertex names so several gadgets can coexist.
Gadget emit_gadget(DigraphBuilder& b, const UppCycleParams& p,
                   const std::string& tag) {
  WDAG_REQUIRE(p.k >= 2, "upp gadget: k must be >= 2 for the UPP property");
  WDAG_REQUIRE(p.run_len >= 1 && p.chain_in >= 1 && p.chain_out >= 1,
               "upp gadget: run/chain lengths must be >= 1");
  const std::size_t k = p.k;
  std::vector<VertexId> vb(k), vc(k);
  for (std::size_t i = 0; i < k; ++i) {
    vb[i] = b.add_vertex(tag + "b" + std::to_string(i + 1));
    vc[i] = b.add_vertex(tag + "c" + std::to_string(i + 1));
  }
  // A run from `from` to `to` through run_len-1 private vertices.
  auto emit_run = [&](VertexId from, VertexId to, const std::string& name) {
    VertexId cur = from;
    for (std::size_t s = 1; s < p.run_len; ++s) {
      const VertexId mid = b.add_vertex(tag + name + "_" + std::to_string(s));
      b.add_arc(cur, mid);
      cur = mid;
    }
    b.add_arc(cur, to);
  };
  for (std::size_t i = 0; i < k; ++i) {
    emit_run(vb[i], vc[i], "A" + std::to_string(i + 1));
    emit_run(vb[i], vc[(i + k - 1) % k], "B" + std::to_string(i + 1));
  }
  Gadget g;
  g.chain_in_start.resize(k);
  g.chain_out_end.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    // In-chain: a_i^{chain_in} -> ... -> a_i^1 -> b_i.
    VertexId cur = vb[i];
    for (std::size_t s = 0; s < p.chain_in; ++s) {
      const VertexId prev = b.add_vertex(tag + "a" + std::to_string(i + 1) +
                                         "_" + std::to_string(s + 1));
      b.add_arc(prev, cur);
      cur = prev;
    }
    g.chain_in_start[i] = cur;
    // Out-chain: c_i -> d_i^1 -> ... -> d_i^{chain_out}.
    cur = vc[i];
    for (std::size_t s = 0; s < p.chain_out; ++s) {
      const VertexId next = b.add_vertex(tag + "d" + std::to_string(i + 1) +
                                         "_" + std::to_string(s + 1));
      b.add_arc(cur, next);
      cur = next;
    }
    g.chain_out_end[i] = cur;
  }
  return g;
}

}  // namespace

Instance upp_one_cycle_skeleton(const UppCycleParams& params) {
  DigraphBuilder b;
  emit_gadget(b, params, "");
  return Instance::over(b.build());
}

Instance random_upp_one_cycle_instance(util::Xoshiro256& rng,
                                       const UppCycleParams& params,
                                       std::size_t count) {
  Instance inst = upp_one_cycle_skeleton(params);
  const auto& g = *inst.graph;
  // All reachable ordered pairs (u, v), u != v.
  const auto closure = graph::transitive_closure(g);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (u != v && closure[u].test(v)) pairs.emplace_back(u, v);
    }
  }
  WDAG_REQUIRE(!pairs.empty(),
               "random_upp_one_cycle_instance: skeleton has no routable pair");
  for (std::size_t i = 0; i < count; ++i) {
    const auto [u, v] = pairs[rng.index(pairs.size())];
    const auto route = paths::unique_route(g, u, v);
    WDAG_ASSERT(route.has_value(), "random_upp_one_cycle_instance: lost route");
    inst.family.add_unchecked(*route);
  }
  return inst;
}

Instance upp_multi_cycle_skeleton(std::size_t cycles,
                                  const UppCycleParams& params) {
  WDAG_REQUIRE(cycles >= 1, "upp_multi_cycle_skeleton: need >= 1 cycle");
  DigraphBuilder b;
  Gadget prev;
  for (std::size_t i = 0; i < cycles; ++i) {
    const Gadget cur = emit_gadget(b, params, "g" + std::to_string(i) + "_");
    if (i > 0) {
      // Bridge: previous gadget's first out-chain feeds this gadget's
      // first in-chain; a single tree arc adds no underlying cycle.
      b.add_arc(prev.chain_out_end[0], cur.chain_in_start[0]);
    }
    prev = cur;
  }
  return Instance::over(b.build());
}

}  // namespace wdag::gen
