#pragma once
// Generators for UPP-DAGs with a controlled number of internal cycles,
// used to exercise Theorem 6 (one cycle) and the recursive split-merge
// bound (several cycles).

#include <cstddef>

#include "gen/instance.hpp"
#include "util/rng.hpp"

namespace wdag::gen {

/// Parameters of the UPP one-internal-cycle skeleton.
struct UppCycleParams {
  std::size_t k = 2;          ///< cycle sources/sinks pairs (>= 2 for UPP)
  std::size_t run_len = 1;    ///< arcs per cycle run (subdivision factor)
  std::size_t chain_in = 1;   ///< length of the pendant chain into each b_i
  std::size_t chain_out = 1;  ///< length of the pendant chain out of each c_i
};

/// A UPP-DAG with exactly one internal cycle, generalizing the Theorem 2
/// skeleton: the cycle's 2k runs are dipaths of `run_len` arcs; chains of
/// `chain_in`/`chain_out` arcs attach to every cycle source/sink so the
/// cycle is internal. The returned instance has an empty family.
Instance upp_one_cycle_skeleton(const UppCycleParams& params);

/// Random dipath family on a one-cycle skeleton: `count` dipaths, each the
/// unique route between a random reachable pair. The instance is UPP with
/// exactly one internal cycle, so Theorem 6 applies.
Instance random_upp_one_cycle_instance(util::Xoshiro256& rng,
                                       const UppCycleParams& params,
                                       std::size_t count);

/// A UPP-DAG with `cycles` internal cycles chained in series: gadget i's
/// sink chain feeds gadget i+1's source chain. Exercises the recursive
/// split-merge bound (paper's (4/3)^C remark).
Instance upp_multi_cycle_skeleton(std::size_t cycles,
                                  const UppCycleParams& params);

}  // namespace wdag::gen
