#include "gen/workloads.hpp"

#include <algorithm>
#include <utility>

#include "gen/family_gen.hpp"
#include "gen/paper_instances.hpp"
#include "gen/random_dag.hpp"
#include "gen/topologies.hpp"
#include "gen/upp_gen.hpp"
#include "util/check.hpp"

namespace wdag::gen {

namespace {

using util::Xoshiro256;

Instance random_upp_mix(const WorkloadParams& p, Xoshiro256& rng) {
  // A mixed UPP workload covering every dispatch regime a UPP host can
  // reach: cycle-free trees (Theorem 1), one- and multi-cycle skeletons
  // of varying size (split-merge), and odd-cycle gadgets whose conflict
  // graph forces w > pi (exact certification).
  UppCycleParams up;
  up.k = 2 + static_cast<std::size_t>(rng.below(p.k >= 2 ? p.k - 1 : 1));
  up.run_len = p.run_len;
  up.chain_in = p.chain;
  up.chain_out = p.chain;
  const std::size_t count = 1 + static_cast<std::size_t>(rng.below(
                                    std::max<std::size_t>(1, p.paths)));
  const std::uint64_t pick = rng.below(10);
  if (pick < 4) return random_upp_one_cycle_instance(rng, up, count);
  if (pick < 6) {
    Instance inst = Instance::over(random_out_tree(rng, p.size));
    inst.family = random_request_family(rng, *inst.graph, count);
    return inst;
  }
  if (pick < 8) {
    return theorem2_instance(2 + static_cast<std::size_t>(rng.below(3)));
  }
  Instance inst = upp_multi_cycle_skeleton(
      2 + static_cast<std::size_t>(rng.below(2)), up);
  inst.family = random_request_family(rng, *inst.graph, count);
  return inst;
}

}  // namespace

Instance workload_instance(const std::string& name,
                           const WorkloadParams& p, Xoshiro256& rng) {
  if (name == "random-upp") return random_upp_mix(p, rng);
  if (name == "random-dag" || name == "no-internal") {
    auto g = name == "random-dag"
                 ? random_dag(rng, p.size, p.density)
                 : random_no_internal_cycle_dag(rng, p.size, p.density);
    Instance inst = Instance::over(std::move(g));
    if (inst.graph->num_arcs() > 0) {
      inst.family = random_walk_family(rng, *inst.graph, p.paths, 1, 6);
    }
    return inst;
  }
  if (name == "layered") {
    Instance inst =
        Instance::over(random_layered_dag(rng, p.layers, p.width, p.density));
    if (inst.graph->num_arcs() > 0) {
      inst.family = random_walk_family(rng, *inst.graph, p.paths, 1, 8);
    }
    return inst;
  }
  if (name == "tree") {
    Instance inst = Instance::over(random_out_tree(rng, p.size));
    inst.family = random_request_family(rng, *inst.graph, p.paths);
    return inst;
  }
  if (name == "grid") {
    Instance inst = Instance::over(grid_dag(p.rows, p.cols));
    inst.family = random_request_family(rng, *inst.graph, p.paths);
    return inst;
  }
  if (name == "butterfly") {
    Instance inst = Instance::over(butterfly(p.dim));
    inst.family = random_request_family(rng, *inst.graph, p.paths);
    return inst;
  }
  if (name == "fat-chain") {
    Instance inst = Instance::over(fat_chain(p.stages, p.width));
    if (inst.graph->num_arcs() > 0) {
      inst.family = random_walk_family(rng, *inst.graph, p.paths, 1, 8);
    }
    return inst;
  }
  if (name == "spine") {
    Instance inst = Instance::over(spine_with_leaves(p.size));
    inst.family = random_request_family(rng, *inst.graph, p.paths);
    return inst;
  }
  if (name == "odd-cycle") return theorem2_instance(p.k);
  if (name == "c5") return theorem2_instance(2);
  if (name == "c7") return theorem2_instance(3);
  if (name == "figure1") return figure1_pathological(p.k);
  if (name == "figure3") return figure3_instance();
  if (name == "havet") return havet_instance().replicate(p.h);
  throw wdag::InvalidArgument("unknown workload '" + name +
                              "' (see gen::workload_names())");
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {
      "random-upp", "random-dag", "no-internal", "layered",  "tree",
      "grid",       "butterfly",  "fat-chain",   "spine",    "odd-cycle",
      "c5",         "c7",         "figure1",     "figure3",  "havet"};
  return names;
}

}  // namespace wdag::gen
