#include "gen/workloads.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "gen/family_gen.hpp"
#include "gen/paper_instances.hpp"
#include "gen/random_dag.hpp"
#include "gen/topologies.hpp"
#include "gen/upp_gen.hpp"
#include "graph/reachability.hpp"
#include "paths/route.hpp"
#include "util/check.hpp"

namespace wdag::gen {

namespace {

using util::Xoshiro256;

// ---------------------------------------------------------------------------
// Skeleton pools. Many workload topologies are pure functions of their
// parameters — only the request sampling consumes the RNG. Building the
// host graph, its transitive closure and the per-pair deterministic route
// once per (thread, parameter key) makes batch generation a cheap
// sample-and-copy, with byte-identical output: the pooled pair list and
// routes are exactly what the uncached code recomputed per instance, and
// the RNG is consumed in the same order (one index per request).
// ---------------------------------------------------------------------------

/// How a workload routes one (u, v) request on its skeleton.
enum class RouteKind {
  kUnique,    ///< paths::unique_route (UPP hosts)
  kShortest,  ///< paths::shortest_route (general hosts)
};

/// A cached skeleton: graph, routable pairs, and one route per pair.
struct SkeletonPool {
  Instance skeleton;  ///< empty family over the pooled graph
  std::vector<std::pair<graph::VertexId, graph::VertexId>> pairs;
  std::vector<paths::Dipath> routes;  ///< routes[i] serves pairs[i]
};

SkeletonPool build_pool(Instance skeleton, RouteKind kind) {
  SkeletonPool pool;
  pool.skeleton = std::move(skeleton);
  const auto& g = *pool.skeleton.graph;
  const auto closure = graph::transitive_closure(g);
  for (graph::VertexId u = 0; u < g.num_vertices(); ++u) {
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (u != v && closure[u].test(v)) pool.pairs.emplace_back(u, v);
    }
  }
  pool.routes.reserve(pool.pairs.size());
  for (const auto& [u, v] : pool.pairs) {
    const auto route = kind == RouteKind::kUnique
                           ? paths::unique_route(g, u, v)
                           : paths::shortest_route(g, u, v);
    WDAG_ASSERT(route.has_value(), "skeleton pool: lost route");
    pool.routes.push_back(*route);
  }
  return pool;
}

/// Cached entries per thread before a cache resets; parameter sweeps can
/// touch many keys, and rebuilding a pool is cheap next to holding
/// thousands of dead ones.
constexpr std::size_t kMaxCachedSkeletons = 64;

/// The per-thread pool for `key`, built on first use with `make`.
template <class Make>
const SkeletonPool& pooled(const std::string& key, RouteKind kind,
                           const Make& make) {
  thread_local std::map<std::string, SkeletonPool> pools;
  const auto it = pools.find(key);
  if (it != pools.end()) return it->second;
  if (pools.size() >= kMaxCachedSkeletons) pools.clear();
  return pools.emplace(key, build_pool(make(), kind)).first->second;
}

/// Samples `count` requests from the pool (one rng.index per request,
/// matching the uncached generators' RNG consumption).
Instance sample_pool(const SkeletonPool& pool, Xoshiro256& rng,
                     std::size_t count) {
  WDAG_REQUIRE(!pool.pairs.empty(), "skeleton pool: no routable pair");
  Instance inst;
  inst.graph = pool.skeleton.graph;
  inst.family = paths::DipathFamily(*inst.graph);
  for (std::size_t i = 0; i < count; ++i) {
    inst.family.add_unchecked(pool.routes[rng.index(pool.pairs.size())]);
  }
  return inst;
}

/// A fully deterministic instance (fixed family, no RNG), cached per
/// thread and returned by copy; the host graph is shared.
template <class Make>
Instance fixed_instance_cached(const std::string& key, const Make& make) {
  thread_local std::map<std::string, Instance> cache;
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  if (cache.size() >= kMaxCachedSkeletons) cache.clear();
  return cache.emplace(key, make()).first->second;
}

std::string upp_key(const UppCycleParams& p) {
  return std::to_string(p.k) + "," + std::to_string(p.run_len) + "," +
         std::to_string(p.chain_in) + "," + std::to_string(p.chain_out);
}

Instance random_upp_mix(const WorkloadParams& p, Xoshiro256& rng) {
  // A mixed UPP workload covering every dispatch regime a UPP host can
  // reach: cycle-free trees (Theorem 1), one- and multi-cycle skeletons
  // of varying size (split-merge), and odd-cycle gadgets whose conflict
  // graph forces w > pi (exact certification).
  UppCycleParams up;
  up.k = 2 + static_cast<std::size_t>(rng.below(p.k >= 2 ? p.k - 1 : 1));
  up.run_len = p.run_len;
  up.chain_in = p.chain;
  up.chain_out = p.chain;
  const std::size_t count = 1 + static_cast<std::size_t>(rng.below(
                                    std::max<std::size_t>(1, p.paths)));
  const std::uint64_t pick = rng.below(10);
  if (pick < 4) {
    // Same skeleton, pairs and unique routes as
    // random_upp_one_cycle_instance, pooled per parameter key.
    return sample_pool(
        pooled("upp1:" + upp_key(up), RouteKind::kUnique,
               [&] { return upp_one_cycle_skeleton(up); }),
        rng, count);
  }
  if (pick < 6) {
    Instance inst = Instance::over(random_out_tree(rng, p.size));
    inst.family = random_request_family(rng, *inst.graph, count);
    return inst;
  }
  if (pick < 8) {
    const std::size_t k = 2 + static_cast<std::size_t>(rng.below(3));
    return fixed_instance_cached("t2:" + std::to_string(k),
                                 [&] { return theorem2_instance(k); });
  }
  const std::size_t cycles = 2 + static_cast<std::size_t>(rng.below(2));
  // random_request_family on a deterministic skeleton == shortest-route
  // pool sampling.
  return sample_pool(
      pooled("uppN:" + std::to_string(cycles) + ":" + upp_key(up),
             RouteKind::kShortest,
             [&] { return upp_multi_cycle_skeleton(cycles, up); }),
      rng, count);
}

}  // namespace

Instance workload_instance(const std::string& name,
                           const WorkloadParams& p, Xoshiro256& rng) {
  if (name == "random-upp") return random_upp_mix(p, rng);
  if (name == "random-dag" || name == "no-internal") {
    auto g = name == "random-dag"
                 ? random_dag(rng, p.size, p.density)
                 : random_no_internal_cycle_dag(rng, p.size, p.density);
    Instance inst = Instance::over(std::move(g));
    if (inst.graph->num_arcs() > 0) {
      inst.family = random_walk_family(rng, *inst.graph, p.paths, 1, 6);
    }
    return inst;
  }
  if (name == "layered") {
    Instance inst =
        Instance::over(random_layered_dag(rng, p.layers, p.width, p.density));
    if (inst.graph->num_arcs() > 0) {
      inst.family = random_walk_family(rng, *inst.graph, p.paths, 1, 8);
    }
    return inst;
  }
  if (name == "tree") {
    Instance inst = Instance::over(random_out_tree(rng, p.size));
    inst.family = random_request_family(rng, *inst.graph, p.paths);
    return inst;
  }
  if (name == "grid") {
    return sample_pool(
        pooled("grid:" + std::to_string(p.rows) + "x" + std::to_string(p.cols),
               RouteKind::kShortest,
               [&] { return Instance::over(grid_dag(p.rows, p.cols)); }),
        rng, p.paths);
  }
  if (name == "butterfly") {
    return sample_pool(pooled("bf:" + std::to_string(p.dim),
                              RouteKind::kShortest,
                              [&] { return Instance::over(butterfly(p.dim)); }),
                       rng, p.paths);
  }
  if (name == "fat-chain") {
    Instance inst = Instance::over(fat_chain(p.stages, p.width));
    if (inst.graph->num_arcs() > 0) {
      inst.family = random_walk_family(rng, *inst.graph, p.paths, 1, 8);
    }
    return inst;
  }
  if (name == "spine") {
    return sample_pool(
        pooled("spine:" + std::to_string(p.size), RouteKind::kShortest,
               [&] { return Instance::over(spine_with_leaves(p.size)); }),
        rng, p.paths);
  }
  if (name == "odd-cycle") {
    return fixed_instance_cached("t2:" + std::to_string(p.k),
                                 [&] { return theorem2_instance(p.k); });
  }
  if (name == "c5") {
    return fixed_instance_cached("t2:2", [] { return theorem2_instance(2); });
  }
  if (name == "c7") {
    return fixed_instance_cached("t2:3", [] { return theorem2_instance(3); });
  }
  if (name == "figure1") {
    return fixed_instance_cached("fig1:" + std::to_string(p.k),
                                 [&] { return figure1_pathological(p.k); });
  }
  if (name == "figure3") {
    return fixed_instance_cached("fig3", [] { return figure3_instance(); });
  }
  if (name == "havet") {
    return fixed_instance_cached("havet:" + std::to_string(p.h),
                                 [&] { return havet_instance().replicate(p.h); });
  }
  throw wdag::InvalidArgument("unknown workload '" + name +
                              "' (see gen::workload_names())");
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {
      "random-upp", "random-dag", "no-internal", "layered",  "tree",
      "grid",       "butterfly",  "fat-chain",   "spine",    "odd-cycle",
      "c5",         "c7",         "figure1",     "figure3",  "havet"};
  return names;
}

}  // namespace wdag::gen
