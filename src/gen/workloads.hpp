#pragma once
// Named workload families: one string-keyed factory over every generator
// in src/gen, shared by the wdag CLI, the batch benches, and tests.
//
// Each family is a deterministic function of the RNG passed in, so a
// seeded stream of calls reproduces the same instance sequence anywhere —
// the contract the batch engine's per-instance seeding relies on. Random
// families draw fresh shapes per call; the paper instances ("figure1",
// "havet", ...) ignore the RNG and return their fixed construction.

#include <string>
#include <vector>

#include "gen/instance.hpp"
#include "util/rng.hpp"

namespace wdag::gen {

/// Shared knobs of the named workload families. Every family reads only
/// the fields relevant to it and ignores the rest.
struct WorkloadParams {
  std::size_t paths = 32;     ///< requests per instance (upper bound)
  std::size_t size = 24;      ///< vertices of random hosts
  double density = 0.2;       ///< arc probability of random hosts
  std::size_t k = 3;          ///< cycle pairs (UPP gadgets, figure1)
  std::size_t run_len = 1;    ///< arcs per UPP cycle run
  std::size_t chain = 1;      ///< pendant chain length of UPP skeletons
  std::size_t layers = 5;     ///< layers of the layered DAG
  std::size_t width = 4;      ///< width of layered DAGs / fat chains
  std::size_t rows = 4;       ///< grid rows
  std::size_t cols = 6;       ///< grid columns
  std::size_t dim = 3;        ///< butterfly dimension
  std::size_t stages = 4;     ///< fat-chain stages
  std::size_t h = 2;          ///< replication factor (havet)
};

/// Builds one instance of the named family from `rng`.
/// Throws wdag::InvalidArgument for an unknown name.
Instance workload_instance(const std::string& name,
                           const WorkloadParams& params,
                           util::Xoshiro256& rng);

/// Every name workload_instance accepts, in display order.
const std::vector<std::string>& workload_names();

}  // namespace wdag::gen
