#include "graph/digraph.hpp"

#include <unordered_map>

#include "util/check.hpp"

namespace wdag::graph {

ArcId Digraph::find_arc(VertexId u, VertexId v) const {
  WDAG_REQUIRE(u < num_vertices() && v < num_vertices(),
               "Digraph::find_arc: vertex out of range");
  ArcId best = kNoArc;
  for (ArcId a : out_arcs(u)) {
    if (arcs_[a].head == v && (best == kNoArc || a < best)) best = a;
  }
  return best;
}

const std::string& Digraph::vertex_name(VertexId v) const {
  WDAG_REQUIRE(v < num_vertices(), "Digraph::vertex_name: vertex out of range");
  return names_[v];
}

std::string Digraph::vertex_label(VertexId v) const {
  const std::string& n = vertex_name(v);
  if (!n.empty()) return n;
  std::string label = "v";
  label += std::to_string(v);
  return label;
}

std::optional<VertexId> Digraph::vertex_by_name(const std::string& name) const {
  if (name.empty()) return std::nullopt;
  for (VertexId v = 0; v < names_.size(); ++v) {
    if (names_[v] == name) return v;
  }
  return std::nullopt;
}

VertexId DigraphBuilder::add_vertex(const std::string& name) {
  names_.push_back(name);
  return static_cast<VertexId>(names_.size() - 1);
}

VertexId DigraphBuilder::vertex(const std::string& name) {
  WDAG_REQUIRE(!name.empty(), "DigraphBuilder::vertex: name must be non-empty");
  for (VertexId v = 0; v < names_.size(); ++v) {
    if (names_[v] == name) return v;
  }
  return add_vertex(name);
}

ArcId DigraphBuilder::add_arc(const std::string& u, const std::string& v) {
  const VertexId a = vertex(u);
  const VertexId b = vertex(v);
  return add_arc(a, b);
}

Digraph DigraphBuilder::build() const {
  Digraph g;
  g.arcs_ = arcs_;
  g.names_ = names_;
  const std::size_t n = names_.size();
  g.out_begin_.assign(n + 1, 0);
  g.in_begin_.assign(n + 1, 0);
  for (const Arc& a : arcs_) {
    ++g.out_begin_[a.tail + 1];
    ++g.in_begin_[a.head + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    g.out_begin_[v + 1] += g.out_begin_[v];
    g.in_begin_[v + 1] += g.in_begin_[v];
  }
  g.out_list_.resize(arcs_.size());
  g.in_list_.resize(arcs_.size());
  std::vector<std::uint32_t> oc(g.out_begin_.begin(), g.out_begin_.end() - 1);
  std::vector<std::uint32_t> ic(g.in_begin_.begin(), g.in_begin_.end() - 1);
  for (ArcId id = 0; id < arcs_.size(); ++id) {
    g.out_list_[oc[arcs_[id].tail]++] = id;
    g.in_list_[ic[arcs_[id].head]++] = id;
  }
  return g;
}

}  // namespace wdag::graph
