#pragma once
// The digraph substrate: an arc-indexed directed multigraph.
//
// Everything in the library identifies vertices and arcs by dense integer
// ids (VertexId / ArcId). Arcs are first-class because the paper's central
// quantities — load, conflicts, wavelengths — are all *per arc*.
//
// A Digraph is immutable once built (construct through DigraphBuilder),
// which lets adjacency be stored contiguously and shared freely across
// threads without synchronization.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace wdag::graph {

using VertexId = std::uint32_t;
using ArcId = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);
/// Sentinel for "no arc".
inline constexpr ArcId kNoArc = static_cast<ArcId>(-1);

/// A directed arc tail -> head.
struct Arc {
  VertexId tail = kNoVertex;
  VertexId head = kNoVertex;

  bool operator==(const Arc&) const = default;
};

class DigraphBuilder;

/// Immutable directed multigraph with O(1) arc lookup by id and
/// contiguous per-vertex incidence lists.
class Digraph {
 public:
  Digraph() = default;

  /// Number of vertices.
  [[nodiscard]] std::size_t num_vertices() const { return out_begin_.empty() ? 0 : out_begin_.size() - 1; }

  /// Number of arcs.
  [[nodiscard]] std::size_t num_arcs() const { return arcs_.size(); }

  /// The arc with the given id.
  [[nodiscard]] const Arc& arc(ArcId a) const {
    WDAG_REQUIRE(a < arcs_.size(), "Digraph::arc: arc id out of range");
    return arcs_[a];
  }

  /// Tail vertex of arc a.
  [[nodiscard]] VertexId tail(ArcId a) const { return arc(a).tail; }

  /// Head vertex of arc a.
  [[nodiscard]] VertexId head(ArcId a) const { return arc(a).head; }

  /// All arcs, indexed by ArcId.
  [[nodiscard]] const std::vector<Arc>& arcs() const { return arcs_; }

  /// Ids of arcs leaving v, in insertion order (== ascending arc id).
  [[nodiscard]] std::span<const ArcId> out_arcs(VertexId v) const {
    WDAG_REQUIRE(v < num_vertices(), "Digraph::out_arcs: vertex out of range");
    return {out_list_.data() + out_begin_[v],
            out_list_.data() + out_begin_[v + 1]};
  }

  /// Ids of arcs entering v, in insertion order (== ascending arc id).
  [[nodiscard]] std::span<const ArcId> in_arcs(VertexId v) const {
    WDAG_REQUIRE(v < num_vertices(), "Digraph::in_arcs: vertex out of range");
    return {in_list_.data() + in_begin_[v],
            in_list_.data() + in_begin_[v + 1]};
  }

  /// Out-degree of v.
  [[nodiscard]] std::size_t out_degree(VertexId v) const { return out_arcs(v).size(); }

  /// In-degree of v.
  [[nodiscard]] std::size_t in_degree(VertexId v) const { return in_arcs(v).size(); }

  /// Some arc u -> v, or kNoArc when absent. For multigraphs returns the
  /// first matching arc by id.
  [[nodiscard]] ArcId find_arc(VertexId u, VertexId v) const;

  /// Optional human-readable vertex name (empty when unnamed).
  [[nodiscard]] const std::string& vertex_name(VertexId v) const;

  /// Display label: the vertex name when set, otherwise "v<i>".
  [[nodiscard]] std::string vertex_label(VertexId v) const;

  /// Vertex id for a name set through the builder; nullopt when unknown.
  [[nodiscard]] std::optional<VertexId> vertex_by_name(const std::string& name) const;

 private:
  friend class DigraphBuilder;

  std::vector<Arc> arcs_;
  // CSR-style incidence: out_begin_[v] .. out_begin_[v+1] index out_list_.
  std::vector<std::uint32_t> out_begin_, in_begin_;
  std::vector<ArcId> out_list_, in_list_;
  std::vector<std::string> names_;
};

/// Mutable builder for Digraph. Vertices may be added explicitly (named or
/// not) or implicitly by adding arcs between fresh ids.
class DigraphBuilder {
 public:
  DigraphBuilder() = default;

  /// Pre-creates n unnamed vertices 0..n-1.
  explicit DigraphBuilder(std::size_t n) { ensure_vertex(n == 0 ? kNoVertex : static_cast<VertexId>(n - 1)); }

  /// Adds (or returns) a named vertex.
  VertexId add_vertex(const std::string& name = "");

  /// Returns the vertex with this name, creating it when absent.
  VertexId vertex(const std::string& name);

  /// Adds arc u -> v (u and v are created if needed). Returns the arc id.
  /// Inline: generators and the split-merge recursion add arcs in tight
  /// loops across translation units.
  ArcId add_arc(VertexId u, VertexId v) {
    WDAG_REQUIRE(u != v, "DigraphBuilder::add_arc: self-loops are not allowed");
    ensure_vertex(u);
    ensure_vertex(v);
    arcs_.push_back(Arc{u, v});
    return static_cast<ArcId>(arcs_.size() - 1);
  }

  /// Adds arc between named vertices, creating them when absent.
  ArcId add_arc(const std::string& u, const std::string& v);

  /// Number of vertices created so far.
  [[nodiscard]] std::size_t num_vertices() const { return names_.size(); }

  /// Number of arcs added so far.
  [[nodiscard]] std::size_t num_arcs() const { return arcs_.size(); }

  /// Freezes the builder into an immutable Digraph.
  [[nodiscard]] Digraph build() const;

 private:
  void ensure_vertex(VertexId v) {
    if (v == kNoVertex) return;
    if (names_.size() <= v) names_.resize(static_cast<std::size_t>(v) + 1);
  }

  std::vector<Arc> arcs_;
  std::vector<std::string> names_;
};

}  // namespace wdag::graph
