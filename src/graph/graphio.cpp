#include "graph/graphio.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "graph/properties.hpp"
#include "util/check.hpp"

namespace wdag::graph {

std::string to_edge_list(const Digraph& g) {
  std::ostringstream os;
  for (const Arc& a : g.arcs()) {
    os << g.vertex_label(a.tail) << ' ' << g.vertex_label(a.head) << '\n';
  }
  return os.str();
}

namespace {
bool is_number(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}
}  // namespace

Digraph parse_edge_list(const std::string& text) {
  DigraphBuilder b;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string u, v;
    if (!(ls >> u)) continue;  // blank line
    WDAG_REQUIRE(static_cast<bool>(ls >> v),
                 "parse_edge_list: line " + std::to_string(line_no) +
                     " has a tail but no head");
    std::string extra;
    WDAG_REQUIRE(!(ls >> extra),
                 "parse_edge_list: line " + std::to_string(line_no) +
                     " has trailing tokens");
    auto resolve = [&](const std::string& tok) -> VertexId {
      if (is_number(tok)) {
        unsigned long id = 0;
        try {
          id = std::stoul(tok);
        } catch (const std::out_of_range&) {
          WDAG_REQUIRE(false, "parse_edge_list: line " +
                                  std::to_string(line_no) + ": vertex id '" +
                                  tok + "' is out of range");
        }
        WDAG_REQUIRE(id < (1UL << 31),
                     "parse_edge_list: line " + std::to_string(line_no) +
                         ": vertex id '" + tok + "' is too large");
        return static_cast<VertexId>(id);
      }
      return b.vertex(tok);
    };
    const VertexId uv = resolve(u);
    const VertexId vv = resolve(v);
    b.add_arc(uv, vv);
  }
  return b.build();
}

std::string to_dot(const Digraph& g, const std::string& name) {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  os << "  rankdir=LR;\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    os << "  \"" << g.vertex_label(v) << "\"";
    if (g.in_degree(v) == 0 && g.out_degree(v) > 0) {
      os << " [shape=box]";
    } else if (g.out_degree(v) == 0 && g.in_degree(v) > 0) {
      os << " [shape=doublecircle]";
    } else {
      os << " [shape=circle]";
    }
    os << ";\n";
  }
  for (const Arc& a : g.arcs()) {
    os << "  \"" << g.vertex_label(a.tail) << "\" -> \""
       << g.vertex_label(a.head) << "\";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace wdag::graph
