#pragma once
// Serialization: plain edge lists (one "tail head" pair per line, names or
// numeric ids) and Graphviz DOT export for visual inspection of instances.

#include <string>

#include "graph/digraph.hpp"

namespace wdag::graph {

/// Renders g as "u v" arc lines using vertex labels.
std::string to_edge_list(const Digraph& g);

/// Parses an edge list produced by to_edge_list (or hand-written). Tokens
/// are whitespace-separated; lines starting with '#' are comments. Vertex
/// tokens that parse as non-negative integers become numeric ids; anything
/// else becomes a named vertex.
Digraph parse_edge_list(const std::string& text);

/// Graphviz DOT rendering (digraph). Sources are drawn as boxes, sinks as
/// double circles, internal vertices as plain circles.
std::string to_dot(const Digraph& g, const std::string& name = "G");

}  // namespace wdag::graph
