#include "graph/properties.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"
#include "util/union_find.hpp"

namespace wdag::graph {

std::vector<VertexId> sources(const Digraph& g) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.in_degree(v) == 0) out.push_back(v);
  }
  return out;
}

std::vector<VertexId> sinks(const Digraph& g) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) == 0) out.push_back(v);
  }
  return out;
}

std::vector<bool> internal_vertex_mask(const Digraph& g) {
  std::vector<bool> mask(g.num_vertices(), false);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    mask[v] = g.in_degree(v) > 0 && g.out_degree(v) > 0;
  }
  return mask;
}

std::vector<VertexId> internal_vertices(const Digraph& g) {
  std::vector<VertexId> out;
  const auto mask = internal_vertex_mask(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (mask[v]) out.push_back(v);
  }
  return out;
}

bool is_simple(const Digraph& g) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::unordered_set<VertexId> heads;
    for (ArcId a : g.out_arcs(v)) {
      if (!heads.insert(g.head(a)).second) return false;
    }
  }
  return true;
}

Components underlying_components(const Digraph& g) {
  util::UnionFind uf(g.num_vertices());
  for (const Arc& a : g.arcs()) uf.unite(a.tail, a.head);
  Components comp;
  comp.id.assign(g.num_vertices(), UINT32_MAX);
  std::vector<std::uint32_t> remap(g.num_vertices(), UINT32_MAX);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::size_t root = uf.find(v);
    if (remap[root] == UINT32_MAX) {
      remap[root] = static_cast<std::uint32_t>(comp.count++);
    }
    comp.id[v] = remap[root];
  }
  return comp;
}

bool is_underlying_connected(const Digraph& g) {
  return underlying_components(g).count <= 1;
}

DegreeStats degree_stats(const Digraph& g) {
  DegreeStats s;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::size_t din = g.in_degree(v);
    const std::size_t dout = g.out_degree(v);
    s.max_in = std::max(s.max_in, din);
    s.max_out = std::max(s.max_out, dout);
    if (din == 0 && dout == 0) ++s.num_isolated;
    if (din == 0) ++s.num_sources;
    if (dout == 0) ++s.num_sinks;
  }
  return s;
}

}  // namespace wdag::graph
