#pragma once
// Structural queries: sources, sinks, internal vertices, simplicity,
// connectivity of the underlying undirected multigraph.
//
// "Internal vertex" is the paper's key notion: a vertex with at least one
// predecessor AND at least one successor in G. An internal cycle may only
// visit internal vertices.

#include <vector>

#include "graph/digraph.hpp"

namespace wdag::graph {

/// Vertices with in-degree 0.
std::vector<VertexId> sources(const Digraph& g);

/// Vertices with out-degree 0.
std::vector<VertexId> sinks(const Digraph& g);

/// Boolean mask: internal[v] == true iff in_degree(v) > 0 and
/// out_degree(v) > 0 (v is neither a source nor a sink).
std::vector<bool> internal_vertex_mask(const Digraph& g);

/// Ids of internal vertices in increasing order.
std::vector<VertexId> internal_vertices(const Digraph& g);

/// True when g has no parallel arcs (same tail and head twice).
bool is_simple(const Digraph& g);

/// Connected components of the *underlying undirected* multigraph.
/// Returns component id per vertex, with ids in [0, count).
struct Components {
  std::vector<std::uint32_t> id;  ///< component id per vertex
  std::size_t count = 0;          ///< number of components
};
Components underlying_components(const Digraph& g);

/// True when the underlying undirected multigraph is connected
/// (vacuously true for the empty graph).
bool is_underlying_connected(const Digraph& g);

/// Basic degree statistics used by reports and generators.
struct DegreeStats {
  std::size_t max_in = 0;
  std::size_t max_out = 0;
  std::size_t num_sources = 0;
  std::size_t num_sinks = 0;
  std::size_t num_isolated = 0;  ///< in-degree == out-degree == 0
};
DegreeStats degree_stats(const Digraph& g);

}  // namespace wdag::graph
