#include "graph/reachability.hpp"

#include <vector>

#include "graph/topo.hpp"
#include "util/check.hpp"

namespace wdag::graph {

namespace {

/// Generic DFS over out- or in-arcs, writing into a reused bitset.
void closure_into(const Digraph& g, VertexId v, bool forward,
                  util::DynamicBitset& seen) {
  WDAG_REQUIRE(v < g.num_vertices(), "closure_from: vertex out of range");
  seen.reset_to_zero(g.num_vertices());
  thread_local std::vector<VertexId> stack;
  stack.clear();
  stack.push_back(v);
  seen.set(v);
  const auto& all = g.arcs();
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    const auto arcs = forward ? g.out_arcs(u) : g.in_arcs(u);
    for (ArcId a : arcs) {
      const VertexId w = forward ? all[a].head : all[a].tail;
      if (!seen.test(w)) {
        seen.set(w);
        stack.push_back(w);
      }
    }
  }
}

}  // namespace

util::DynamicBitset descendants(const Digraph& g, VertexId v) {
  util::DynamicBitset seen;
  closure_into(g, v, /*forward=*/true, seen);
  return seen;
}

util::DynamicBitset ancestors(const Digraph& g, VertexId v) {
  util::DynamicBitset seen;
  closure_into(g, v, /*forward=*/false, seen);
  return seen;
}

void ancestors_into(const Digraph& g, VertexId v, util::DynamicBitset& out) {
  closure_into(g, v, /*forward=*/false, out);
}

std::vector<util::DynamicBitset> transitive_closure(const Digraph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<util::DynamicBitset> rows;
  rows.reserve(n);
  for (std::size_t v = 0; v < n; ++v) rows.emplace_back(n);

  if (const auto order = topological_sort(g)) {
    // DAG: process in reverse topological order so successors are complete.
    for (auto it = order->rbegin(); it != order->rend(); ++it) {
      const VertexId v = *it;
      rows[v].set(v);
      for (ArcId a : g.out_arcs(v)) rows[v] |= rows[g.head(a)];
    }
  } else {
    for (VertexId v = 0; v < n; ++v) rows[v] = descendants(g, v);
  }
  return rows;
}

bool reaches(const Digraph& g, VertexId u, VertexId v) {
  WDAG_REQUIRE(u < g.num_vertices() && v < g.num_vertices(),
               "reaches: vertex out of range");
  return descendants(g, u).test(v);
}

}  // namespace wdag::graph
