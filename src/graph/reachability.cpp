#include "graph/reachability.hpp"

#include <vector>

#include "graph/topo.hpp"
#include "util/check.hpp"

namespace wdag::graph {

namespace {

/// Generic DFS over out- or in-arcs.
util::DynamicBitset closure_from(const Digraph& g, VertexId v, bool forward) {
  WDAG_REQUIRE(v < g.num_vertices(), "closure_from: vertex out of range");
  util::DynamicBitset seen(g.num_vertices());
  std::vector<VertexId> stack = {v};
  seen.set(v);
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    const auto arcs = forward ? g.out_arcs(u) : g.in_arcs(u);
    for (ArcId a : arcs) {
      const VertexId w = forward ? g.head(a) : g.tail(a);
      if (!seen.test(w)) {
        seen.set(w);
        stack.push_back(w);
      }
    }
  }
  return seen;
}

}  // namespace

util::DynamicBitset descendants(const Digraph& g, VertexId v) {
  return closure_from(g, v, /*forward=*/true);
}

util::DynamicBitset ancestors(const Digraph& g, VertexId v) {
  return closure_from(g, v, /*forward=*/false);
}

std::vector<util::DynamicBitset> transitive_closure(const Digraph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<util::DynamicBitset> rows;
  rows.reserve(n);
  for (std::size_t v = 0; v < n; ++v) rows.emplace_back(n);

  if (const auto order = topological_sort(g)) {
    // DAG: process in reverse topological order so successors are complete.
    for (auto it = order->rbegin(); it != order->rend(); ++it) {
      const VertexId v = *it;
      rows[v].set(v);
      for (ArcId a : g.out_arcs(v)) rows[v] |= rows[g.head(a)];
    }
  } else {
    for (VertexId v = 0; v < n; ++v) rows[v] = descendants(g, v);
  }
  return rows;
}

bool reaches(const Digraph& g, VertexId u, VertexId v) {
  WDAG_REQUIRE(u < g.num_vertices() && v < g.num_vertices(),
               "reaches: vertex out of range");
  return descendants(g, u).test(v);
}

}  // namespace wdag::graph
