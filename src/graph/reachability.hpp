#pragma once
// Reachability queries on digraphs: per-vertex descendant/ancestor sets and
// full transitive closures. Theorem 6 needs the sets A_a (ancestors of a)
// and S_b (descendants of b); the UPP routing layer uses closures to answer
// request-feasibility queries.

#include <vector>

#include "graph/digraph.hpp"
#include "util/dynamic_bitset.hpp"

namespace wdag::graph {

/// Vertices reachable from v by a (possibly empty) dipath; includes v.
util::DynamicBitset descendants(const Digraph& g, VertexId v);

/// Vertices that reach v by a (possibly empty) dipath; includes v.
util::DynamicBitset ancestors(const Digraph& g, VertexId v);

/// ancestors(), written into a caller-owned bitset (resized in place) so
/// per-request routing loops can reuse one buffer.
void ancestors_into(const Digraph& g, VertexId v, util::DynamicBitset& out);

/// Full transitive closure: row v is descendants(g, v).
/// Computed with bitset DP over the reverse topological order when g is a
/// DAG (O(n*m/64)), falling back to per-vertex DFS otherwise.
std::vector<util::DynamicBitset> transitive_closure(const Digraph& g);

/// True when there is a dipath (possibly empty) from u to v.
bool reaches(const Digraph& g, VertexId u, VertexId v);

}  // namespace wdag::graph
