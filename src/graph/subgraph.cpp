#include "graph/subgraph.hpp"

#include "util/check.hpp"

namespace wdag::graph {

Subgraph induced_subgraph(const Digraph& g, const std::vector<bool>& mask) {
  WDAG_REQUIRE(mask.size() == g.num_vertices(),
               "induced_subgraph: mask size mismatch");
  Subgraph s;
  s.from_parent_vertex.assign(g.num_vertices(), kNoVertex);
  DigraphBuilder b;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (mask[v]) {
      s.from_parent_vertex[v] = b.add_vertex(g.vertex_name(v));
      s.to_parent_vertex.push_back(v);
    }
  }
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    if (mask[arc.tail] && mask[arc.head]) {
      b.add_arc(s.from_parent_vertex[arc.tail], s.from_parent_vertex[arc.head]);
      s.to_parent_arc.push_back(a);
    }
  }
  s.graph = b.build();
  return s;
}

Subgraph arc_subgraph(const Digraph& g, const std::vector<bool>& arc_mask) {
  WDAG_REQUIRE(arc_mask.size() == g.num_arcs(),
               "arc_subgraph: mask size mismatch");
  Subgraph s;
  DigraphBuilder b(g.num_vertices());
  s.to_parent_vertex.resize(g.num_vertices());
  s.from_parent_vertex.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    s.to_parent_vertex[v] = v;
    s.from_parent_vertex[v] = v;
  }
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (arc_mask[a]) {
      b.add_arc(g.tail(a), g.head(a));
      s.to_parent_arc.push_back(a);
    }
  }
  s.graph = b.build();
  return s;
}

}  // namespace wdag::graph
