#pragma once
// Induced subgraphs with id mappings. The internal-cycle machinery works on
// the subgraph induced by internal vertices; the Theorem-6 split builds a
// modified copy of the host graph.

#include <vector>

#include "graph/digraph.hpp"

namespace wdag::graph {

/// An induced subgraph together with the vertex/arc id translations.
struct Subgraph {
  Digraph graph;
  /// original vertex id of each subgraph vertex.
  std::vector<VertexId> to_parent_vertex;
  /// subgraph vertex id per original vertex, kNoVertex when excluded.
  std::vector<VertexId> from_parent_vertex;
  /// original arc id of each subgraph arc.
  std::vector<ArcId> to_parent_arc;
};

/// Subgraph induced by the vertices with mask[v] == true: keeps every arc
/// whose endpoints are both selected.
Subgraph induced_subgraph(const Digraph& g, const std::vector<bool>& mask);

/// Subgraph keeping exactly the arcs with arc_mask[a] == true and all
/// vertices (vertex ids are preserved; from/to maps are identities).
Subgraph arc_subgraph(const Digraph& g, const std::vector<bool>& arc_mask);

}  // namespace wdag::graph
