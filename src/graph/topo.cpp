#include "graph/topo.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wdag::graph {

std::optional<std::vector<VertexId>> topological_sort(const Digraph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> indeg(n);
  std::vector<VertexId> order;
  order.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    indeg[v] = static_cast<std::uint32_t>(g.in_degree(v));
    if (indeg[v] == 0) order.push_back(v);
  }
  // `order` doubles as the BFS queue: elements are never removed.
  const auto& arcs = g.arcs();
  for (std::size_t qi = 0; qi < order.size(); ++qi) {
    const VertexId u = order[qi];
    for (ArcId a : g.out_arcs(u)) {
      const VertexId w = arcs[a].head;
      if (--indeg[w] == 0) order.push_back(w);
    }
  }
  if (order.size() != n) return std::nullopt;  // directed cycle
  return order;
}

bool is_dag(const Digraph& g) { return topological_sort(g).has_value(); }

std::vector<std::uint32_t> topo_positions(const Digraph& g,
                                          const std::vector<VertexId>& order) {
  WDAG_REQUIRE(order.size() == g.num_vertices(),
               "topo_positions: order size mismatch");
  std::vector<std::uint32_t> pos(order.size(), UINT32_MAX);
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    WDAG_REQUIRE(order[i] < order.size(), "topo_positions: bad vertex id");
    WDAG_REQUIRE(pos[order[i]] == UINT32_MAX,
                 "topo_positions: order is not a permutation");
    pos[order[i]] = i;
  }
  return pos;
}

std::vector<ArcId> arcs_in_tail_topo_order(const Digraph& g) {
  std::vector<ArcId> arcs;
  arcs_in_tail_topo_order_into(g, arcs);
  return arcs;
}

void arcs_in_tail_topo_order_into(const Digraph& g, std::vector<ArcId>& out) {
  const auto order = topological_sort(g);
  WDAG_REQUIRE(order.has_value(), "arcs_in_tail_topo_order: input is not a DAG");
  out.clear();
  out.reserve(g.num_arcs());
  for (VertexId v : *order) {
    // out_arcs() already lists arcs in ascending id order (ids are handed
    // out in insertion order and the CSR fill preserves it).
    for (ArcId a : g.out_arcs(v)) out.push_back(a);
  }
  WDAG_ASSERT(out.size() == g.num_arcs(),
              "arcs_in_tail_topo_order: arc count mismatch");
}

}  // namespace wdag::graph
