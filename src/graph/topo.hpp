#pragma once
// Topological ordering and acyclicity tests.
//
// The Theorem-1 colorer relies on a specific property of Kahn's algorithm:
// arcs emitted in topological order of their *tails* leave any dipath
// strictly from the front (see core/theorem1.cpp).

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace wdag::graph {

/// Kahn's algorithm. Returns the vertices in a topological order, or
/// nullopt when the digraph has a directed cycle.
std::optional<std::vector<VertexId>> topological_sort(const Digraph& g);

/// True when g has no directed cycle.
bool is_dag(const Digraph& g);

/// Position of each vertex in `order` (inverse permutation).
/// order must be a permutation of the vertex ids of g.
std::vector<std::uint32_t> topo_positions(const Digraph& g,
                                          const std::vector<VertexId>& order);

/// Arcs of g sorted by topological position of their tail (ties by arc id).
/// Precondition: g is a DAG.
///
/// This is exactly the arc *removal* sequence of the Theorem-1 induction:
/// removing arcs in this order, the tail of each removed arc is a source of
/// the remaining graph.
std::vector<ArcId> arcs_in_tail_topo_order(const Digraph& g);

/// arcs_in_tail_topo_order(), written into a caller-owned buffer so hot
/// loops (the Theorem-1 replay runs once per batch instance) can reuse it.
void arcs_in_tail_topo_order_into(const Digraph& g, std::vector<ArcId>& out);

}  // namespace wdag::graph
