#include "paths/dipath.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace wdag::paths {

using graph::ArcId;
using graph::Digraph;
using graph::VertexId;

VertexId path_source(const Digraph& g, const Dipath& p) {
  WDAG_REQUIRE(!p.empty(), "path_source: dipath is empty");
  return g.tail(p.arcs.front());
}

VertexId path_target(const Digraph& g, const Dipath& p) {
  WDAG_REQUIRE(!p.empty(), "path_target: dipath is empty");
  return g.head(p.arcs.back());
}

std::vector<VertexId> path_vertices(const Digraph& g, const Dipath& p) {
  WDAG_REQUIRE(!p.empty(), "path_vertices: dipath is empty");
  std::vector<VertexId> out;
  out.reserve(p.length() + 1);
  out.push_back(g.tail(p.arcs.front()));
  for (ArcId a : p.arcs) out.push_back(g.head(a));
  return out;
}

bool is_valid_dipath(const Digraph& g, const Dipath& p) {
  if (p.empty()) return false;
  for (std::size_t i = 0; i < p.arcs.size(); ++i) {
    if (p.arcs[i] >= g.num_arcs()) return false;
    if (i > 0 && g.head(p.arcs[i - 1]) != g.tail(p.arcs[i])) return false;
  }
  // Vertex-repetition check. The visited vertices are the arc tails plus
  // the final head; typical dipaths are a handful of arcs, so a quadratic
  // scan beats a set, with a sort fallback for long paths.
  const std::size_t len = p.arcs.size();
  if (len <= 32) {
    for (std::size_t i = 0; i < len; ++i) {
      const VertexId vi = g.tail(p.arcs[i]);
      for (std::size_t j = i + 1; j < len; ++j) {
        if (vi == g.tail(p.arcs[j])) return false;
      }
      if (vi == g.head(p.arcs.back())) return false;
    }
    return true;
  }
  std::vector<VertexId> seen;
  seen.reserve(len + 1);
  for (const ArcId a : p.arcs) seen.push_back(g.tail(a));
  seen.push_back(g.head(p.arcs.back()));
  std::sort(seen.begin(), seen.end());
  return std::adjacent_find(seen.begin(), seen.end()) == seen.end();
}

bool contains_arc(const Dipath& p, ArcId a) {
  return std::find(p.arcs.begin(), p.arcs.end(), a) != p.arcs.end();
}

bool paths_conflict(const Dipath& p, const Dipath& q) {
  for (ArcId a : p.arcs) {
    if (contains_arc(q, a)) return true;
  }
  return false;
}

std::vector<ArcId> shared_arcs(const Dipath& p, const Dipath& q) {
  std::vector<ArcId> out;
  for (ArcId a : p.arcs) {
    if (contains_arc(q, a)) out.push_back(a);
  }
  return out;
}

Dipath dipath_through(const Digraph& g, const std::vector<VertexId>& vertices) {
  WDAG_REQUIRE(vertices.size() >= 2,
               "dipath_through: need at least two vertices");
  Dipath p;
  p.arcs.reserve(vertices.size() - 1);
  for (std::size_t i = 0; i + 1 < vertices.size(); ++i) {
    const ArcId a = g.find_arc(vertices[i], vertices[i + 1]);
    WDAG_REQUIRE(a != graph::kNoArc,
                 "dipath_through: missing arc " + g.vertex_label(vertices[i]) +
                     " -> " + g.vertex_label(vertices[i + 1]));
    p.arcs.push_back(a);
  }
  return p;
}

Dipath dipath_through_names(const Digraph& g,
                            const std::vector<std::string>& names) {
  std::vector<VertexId> vs;
  vs.reserve(names.size());
  for (const auto& n : names) {
    const auto v = g.vertex_by_name(n);
    WDAG_REQUIRE(v.has_value(), "dipath_through_names: unknown vertex '" + n + "'");
    vs.push_back(*v);
  }
  return dipath_through(g, vs);
}

std::string path_to_string(const Digraph& g, const Dipath& p) {
  if (p.empty()) return "(empty)";
  std::ostringstream os;
  os << g.vertex_label(g.tail(p.arcs.front()));
  for (ArcId a : p.arcs) os << " -> " << g.vertex_label(g.head(a));
  return os.str();
}

}  // namespace wdag::paths
