#include "paths/dipath.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/check.hpp"

namespace wdag::paths {

using graph::ArcId;
using graph::Digraph;
using graph::VertexId;

VertexId path_source(const Digraph& g, const Dipath& p) {
  WDAG_REQUIRE(!p.empty(), "path_source: dipath is empty");
  return g.tail(p.arcs.front());
}

VertexId path_target(const Digraph& g, const Dipath& p) {
  WDAG_REQUIRE(!p.empty(), "path_target: dipath is empty");
  return g.head(p.arcs.back());
}

std::vector<VertexId> path_vertices(const Digraph& g, const Dipath& p) {
  WDAG_REQUIRE(!p.empty(), "path_vertices: dipath is empty");
  std::vector<VertexId> out;
  out.reserve(p.length() + 1);
  out.push_back(g.tail(p.arcs.front()));
  for (ArcId a : p.arcs) out.push_back(g.head(a));
  return out;
}

bool is_valid_dipath(const Digraph& g, const Dipath& p) {
  if (p.empty()) return false;
  std::set<VertexId> seen;
  for (std::size_t i = 0; i < p.arcs.size(); ++i) {
    if (p.arcs[i] >= g.num_arcs()) return false;
    if (i > 0 && g.head(p.arcs[i - 1]) != g.tail(p.arcs[i])) return false;
    if (!seen.insert(g.tail(p.arcs[i])).second) return false;
  }
  return seen.insert(g.head(p.arcs.back())).second;
}

bool contains_arc(const Dipath& p, ArcId a) {
  return std::find(p.arcs.begin(), p.arcs.end(), a) != p.arcs.end();
}

bool paths_conflict(const Dipath& p, const Dipath& q) {
  for (ArcId a : p.arcs) {
    if (contains_arc(q, a)) return true;
  }
  return false;
}

std::vector<ArcId> shared_arcs(const Dipath& p, const Dipath& q) {
  std::vector<ArcId> out;
  for (ArcId a : p.arcs) {
    if (contains_arc(q, a)) out.push_back(a);
  }
  return out;
}

Dipath dipath_through(const Digraph& g, const std::vector<VertexId>& vertices) {
  WDAG_REQUIRE(vertices.size() >= 2,
               "dipath_through: need at least two vertices");
  Dipath p;
  p.arcs.reserve(vertices.size() - 1);
  for (std::size_t i = 0; i + 1 < vertices.size(); ++i) {
    const ArcId a = g.find_arc(vertices[i], vertices[i + 1]);
    WDAG_REQUIRE(a != graph::kNoArc,
                 "dipath_through: missing arc " + g.vertex_label(vertices[i]) +
                     " -> " + g.vertex_label(vertices[i + 1]));
    p.arcs.push_back(a);
  }
  return p;
}

Dipath dipath_through_names(const Digraph& g,
                            const std::vector<std::string>& names) {
  std::vector<VertexId> vs;
  vs.reserve(names.size());
  for (const auto& n : names) {
    const auto v = g.vertex_by_name(n);
    WDAG_REQUIRE(v.has_value(), "dipath_through_names: unknown vertex '" + n + "'");
    vs.push_back(*v);
  }
  return dipath_through(g, vs);
}

std::string path_to_string(const Digraph& g, const Dipath& p) {
  if (p.empty()) return "(empty)";
  std::ostringstream os;
  os << g.vertex_label(g.tail(p.arcs.front()));
  for (ArcId a : p.arcs) os << " -> " << g.vertex_label(g.head(a));
  return os.str();
}

}  // namespace wdag::paths
