#pragma once
// Dipaths: directed paths given as arc sequences.
//
// A dipath is the unit the paper colors: requests are satisfied by dipaths,
// two dipaths conflict when they share an arc, and the load of an arc is
// how many dipaths of the family contain it.

#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace wdag::paths {

/// A non-empty directed path, stored as consecutive arc ids.
/// Invariant (checked by is_valid_dipath): head(arcs[i]) == tail(arcs[i+1])
/// and no arc repeats.
struct Dipath {
  std::vector<graph::ArcId> arcs;

  Dipath() = default;
  explicit Dipath(std::vector<graph::ArcId> a) : arcs(std::move(a)) {}

  [[nodiscard]] bool empty() const { return arcs.empty(); }
  [[nodiscard]] std::size_t length() const { return arcs.size(); }

  bool operator==(const Dipath&) const = default;
};

/// First vertex of the dipath (requires non-empty).
graph::VertexId path_source(const graph::Digraph& g, const Dipath& p);

/// Last vertex of the dipath (requires non-empty).
graph::VertexId path_target(const graph::Digraph& g, const Dipath& p);

/// All vertices along the dipath, source first (length+1 entries).
std::vector<graph::VertexId> path_vertices(const graph::Digraph& g,
                                           const Dipath& p);

/// True when p is a consistent simple dipath of g: non-empty, arcs chain
/// head-to-tail, and no vertex repeats (so no arc repeats either).
bool is_valid_dipath(const graph::Digraph& g, const Dipath& p);

/// True when p contains the arc a.
bool contains_arc(const Dipath& p, graph::ArcId a);

/// True when p and q share at least one arc (the paper's conflict
/// relation). O(|p| + |q|) with a scratch flag vector is done by the
/// conflict module; this is the simple O(|p|*|q|) pairwise check.
bool paths_conflict(const Dipath& p, const Dipath& q);

/// Arcs present in both p and q, in p's order.
std::vector<graph::ArcId> shared_arcs(const Dipath& p, const Dipath& q);

/// Builds the dipath visiting the given vertices via the first arc found
/// between consecutive ones; throws InvalidArgument when an arc is missing.
Dipath dipath_through(const graph::Digraph& g,
                      const std::vector<graph::VertexId>& vertices);

/// Builds a dipath from vertex labels (see Digraph::vertex_by_name).
Dipath dipath_through_names(const graph::Digraph& g,
                            const std::vector<std::string>& names);

/// Human-readable "v0 -> v1 -> ..." rendering.
std::string path_to_string(const graph::Digraph& g, const Dipath& p);

}  // namespace wdag::paths
