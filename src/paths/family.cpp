#include "paths/family.hpp"

#include "util/check.hpp"

namespace wdag::paths {

PathId DipathFamily::add(Dipath p) {
  WDAG_REQUIRE(graph_ != nullptr, "DipathFamily::add: no host graph set");
  WDAG_REQUIRE(is_valid_dipath(*graph_, p),
               "DipathFamily::add: not a valid dipath of the host graph");
  paths_.push_back(std::move(p));
  return static_cast<PathId>(paths_.size() - 1);
}

PathId DipathFamily::add_unchecked(Dipath p) {
  WDAG_REQUIRE(graph_ != nullptr, "DipathFamily::add: no host graph set");
  paths_.push_back(std::move(p));
  return static_cast<PathId>(paths_.size() - 1);
}

PathId DipathFamily::add_through(const std::vector<graph::VertexId>& vertices) {
  return add(dipath_through(graph(), vertices));
}

PathId DipathFamily::add_through_names(const std::vector<std::string>& names) {
  return add(dipath_through_names(graph(), names));
}

DipathFamily DipathFamily::replicate(std::size_t h) const {
  WDAG_REQUIRE(h >= 1, "DipathFamily::replicate: h must be >= 1");
  DipathFamily out(graph());
  for (const Dipath& p : paths_) {
    for (std::size_t c = 0; c < h; ++c) out.add(p);
  }
  return out;
}

DipathFamily DipathFamily::filter(const std::vector<bool>& keep) const {
  WDAG_REQUIRE(keep.size() == paths_.size(),
               "DipathFamily::filter: mask size mismatch");
  DipathFamily out(graph());
  for (PathId id = 0; id < paths_.size(); ++id) {
    if (keep[id]) out.add(paths_[id]);
  }
  return out;
}

std::vector<std::vector<PathId>> arc_incidence(const DipathFamily& family) {
  std::vector<std::vector<PathId>> inc(family.graph().num_arcs());
  for (PathId id = 0; id < family.size(); ++id) {
    for (graph::ArcId a : family.path(id).arcs) inc[a].push_back(id);
  }
  return inc;
}

void arc_incidence_csr(const DipathFamily& family,
                       std::vector<std::uint32_t>& offsets,
                       std::vector<PathId>& ids) {
  const std::size_t num_arcs = family.graph().num_arcs();
  offsets.assign(num_arcs + 1, 0);
  std::size_t total = 0;
  for (const Dipath& p : family.paths()) {
    for (graph::ArcId a : p.arcs) ++offsets[a + 1];
    total += p.arcs.size();
  }
  for (std::size_t a = 0; a < num_arcs; ++a) offsets[a + 1] += offsets[a];
  ids.resize(total);
  // Second pass fills each group front-to-back; iterating paths in id
  // order keeps every group sorted by path id, matching arc_incidence.
  thread_local std::vector<std::uint32_t> cursor;
  cursor.assign(offsets.begin(), offsets.end() - 1);
  for (PathId id = 0; id < family.size(); ++id) {
    for (graph::ArcId a : family.path(id).arcs) ids[cursor[a]++] = id;
  }
}

}  // namespace wdag::paths
