#include "paths/family.hpp"

#include "util/check.hpp"

namespace wdag::paths {

const graph::Digraph& DipathFamily::graph() const {
  WDAG_REQUIRE(graph_ != nullptr, "DipathFamily: no host graph set");
  return *graph_;
}

PathId DipathFamily::add(Dipath p) {
  WDAG_REQUIRE(graph_ != nullptr, "DipathFamily::add: no host graph set");
  WDAG_REQUIRE(is_valid_dipath(*graph_, p),
               "DipathFamily::add: not a valid dipath of the host graph");
  paths_.push_back(std::move(p));
  return static_cast<PathId>(paths_.size() - 1);
}

PathId DipathFamily::add_through(const std::vector<graph::VertexId>& vertices) {
  return add(dipath_through(graph(), vertices));
}

PathId DipathFamily::add_through_names(const std::vector<std::string>& names) {
  return add(dipath_through_names(graph(), names));
}

const Dipath& DipathFamily::path(PathId id) const {
  WDAG_REQUIRE(id < paths_.size(), "DipathFamily::path: id out of range");
  return paths_[id];
}

DipathFamily DipathFamily::replicate(std::size_t h) const {
  WDAG_REQUIRE(h >= 1, "DipathFamily::replicate: h must be >= 1");
  DipathFamily out(graph());
  for (const Dipath& p : paths_) {
    for (std::size_t c = 0; c < h; ++c) out.add(p);
  }
  return out;
}

DipathFamily DipathFamily::filter(const std::vector<bool>& keep) const {
  WDAG_REQUIRE(keep.size() == paths_.size(),
               "DipathFamily::filter: mask size mismatch");
  DipathFamily out(graph());
  for (PathId id = 0; id < paths_.size(); ++id) {
    if (keep[id]) out.add(paths_[id]);
  }
  return out;
}

std::vector<std::vector<PathId>> arc_incidence(const DipathFamily& family) {
  std::vector<std::vector<PathId>> inc(family.graph().num_arcs());
  for (PathId id = 0; id < family.size(); ++id) {
    for (graph::ArcId a : family.path(id).arcs) inc[a].push_back(id);
  }
  return inc;
}

}  // namespace wdag::paths
