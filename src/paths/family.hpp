#pragma once
// Families of dipaths with multiset semantics.
//
// Replicated copies of the same dipath are meaningful — the tight examples
// of Theorems 6/7 replace each dipath by h identical copies — so the family
// stores paths by index and never deduplicates.

#include <vector>

#include "paths/dipath.hpp"

namespace wdag::paths {

/// Index of a dipath within a family.
using PathId = std::uint32_t;

/// An ordered multiset of dipaths over a fixed host graph.
class DipathFamily {
 public:
  DipathFamily() = default;

  /// Starts an empty family over g (the graph must outlive the family).
  explicit DipathFamily(const graph::Digraph& g) : graph_(&g) {}

  /// Host graph. Throws when the family was default-constructed.
  [[nodiscard]] const graph::Digraph& graph() const;

  /// Adds a dipath (validated); returns its id.
  PathId add(Dipath p);

  /// Adds a dipath through the given vertices.
  PathId add_through(const std::vector<graph::VertexId>& vertices);

  /// Adds a dipath through the given vertex names.
  PathId add_through_names(const std::vector<std::string>& names);

  /// Number of dipaths (counting copies).
  [[nodiscard]] std::size_t size() const { return paths_.size(); }
  [[nodiscard]] bool empty() const { return paths_.empty(); }

  /// The dipath with the given id.
  [[nodiscard]] const Dipath& path(PathId id) const;

  /// All dipaths, indexed by PathId.
  [[nodiscard]] const std::vector<Dipath>& paths() const { return paths_; }

  /// New family with every dipath replaced by `h` identical copies,
  /// in blocks: copies of path i occupy ids [i*h, (i+1)*h).
  [[nodiscard]] DipathFamily replicate(std::size_t h) const;

  /// New family keeping only the dipaths with keep[id] == true.
  [[nodiscard]] DipathFamily filter(const std::vector<bool>& keep) const;

 private:
  const graph::Digraph* graph_ = nullptr;
  std::vector<Dipath> paths_;
};

/// For each arc of the host graph, the ids of the dipaths containing it.
/// This inverted index is the workhorse for load computation, conflict
/// graph construction and the Theorem-1 chain recoloring.
std::vector<std::vector<PathId>> arc_incidence(const DipathFamily& family);

}  // namespace wdag::paths
