#pragma once
// Families of dipaths with multiset semantics.
//
// Replicated copies of the same dipath are meaningful — the tight examples
// of Theorems 6/7 replace each dipath by h identical copies — so the family
// stores paths by index and never deduplicates.

#include <vector>

#include "paths/dipath.hpp"
#include "util/check.hpp"

namespace wdag::paths {

/// Index of a dipath within a family.
using PathId = std::uint32_t;

/// An ordered multiset of dipaths over a fixed host graph.
class DipathFamily {
 public:
  DipathFamily() = default;

  /// Starts an empty family over g (the graph must outlive the family).
  explicit DipathFamily(const graph::Digraph& g) : graph_(&g) {}

  /// Host graph. Throws when the family was default-constructed.
  [[nodiscard]] const graph::Digraph& graph() const {
    WDAG_REQUIRE(graph_ != nullptr, "DipathFamily: no host graph set");
    return *graph_;
  }

  /// Adds a dipath (validated); returns its id.
  PathId add(Dipath p);

  /// Adds a dipath the caller guarantees to be valid, skipping the
  /// per-arc validation walk. For internal hot paths (e.g. the split-merge
  /// recursion re-wrapping paths it just transformed); everything else
  /// should use add().
  PathId add_unchecked(Dipath p);

  /// Adds a dipath through the given vertices.
  PathId add_through(const std::vector<graph::VertexId>& vertices);

  /// Adds a dipath through the given vertex names.
  PathId add_through_names(const std::vector<std::string>& names);

  /// Number of dipaths (counting copies).
  [[nodiscard]] std::size_t size() const { return paths_.size(); }
  [[nodiscard]] bool empty() const { return paths_.empty(); }

  /// The dipath with the given id.
  [[nodiscard]] const Dipath& path(PathId id) const {
    WDAG_REQUIRE(id < paths_.size(), "DipathFamily::path: id out of range");
    return paths_[id];
  }

  /// All dipaths, indexed by PathId.
  [[nodiscard]] const std::vector<Dipath>& paths() const { return paths_; }

  /// New family with every dipath replaced by `h` identical copies,
  /// in blocks: copies of path i occupy ids [i*h, (i+1)*h).
  [[nodiscard]] DipathFamily replicate(std::size_t h) const;

  /// New family keeping only the dipaths with keep[id] == true.
  [[nodiscard]] DipathFamily filter(const std::vector<bool>& keep) const;

 private:
  const graph::Digraph* graph_ = nullptr;
  std::vector<Dipath> paths_;
};

/// For each arc of the host graph, the ids of the dipaths containing it.
/// This inverted index is the workhorse for load computation, conflict
/// graph construction and the Theorem-1 chain recoloring.
std::vector<std::vector<PathId>> arc_incidence(const DipathFamily& family);

/// Flat (CSR) form of arc_incidence: after the call, the members of arc
/// a's group are ids[offsets[a] .. offsets[a+1]), in increasing path-id
/// order — the same grouping arc_incidence materializes, minus the
/// per-arc vector allocations. Caller-owned buffers are resized in place,
/// so hot loops can reuse them across instances.
void arc_incidence_csr(const DipathFamily& family,
                       std::vector<std::uint32_t>& offsets,
                       std::vector<PathId>& ids);

/// Calls fn(members, count) once per arc in arc-id order, where `members`
/// points at the arc's path ids (increasing). The pointer is only valid
/// for the duration of the call; groups may be empty. Uses thread-local
/// scratch, so no allocation after warm-up — which also means fn must not
/// itself call for_each_arc_group.
template <class Fn>
void for_each_arc_group(const DipathFamily& family, Fn&& fn) {
  thread_local std::vector<std::uint32_t> offsets;
  thread_local std::vector<PathId> ids;
  arc_incidence_csr(family, offsets, ids);
  for (std::size_t a = 0; a + 1 < offsets.size(); ++a) {
    fn(ids.data() + offsets[a], offsets[a + 1] - offsets[a]);
  }
}

}  // namespace wdag::paths
