#include "paths/familyio.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "paths/dipath.hpp"
#include "util/check.hpp"

namespace wdag::paths {

using graph::Digraph;
using graph::DigraphBuilder;
using graph::VertexId;

std::string to_instance_text(const DipathFamily& family) {
  const Digraph& g = family.graph();
  std::ostringstream os;
  for (const auto& arc : g.arcs()) {
    os << "arc " << g.vertex_label(arc.tail) << ' ' << g.vertex_label(arc.head)
       << '\n';
  }
  for (const Dipath& p : family.paths()) {
    os << "path";
    for (const VertexId v : path_vertices(g, p)) {
      os << ' ' << g.vertex_label(v);
    }
    os << '\n';
  }
  return os.str();
}

namespace {
bool is_number(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// `tok` is all digits; parses it or dies with the line-numbered diagnostic
/// every other malformed input gets (std::stoul alone throws a bare
/// std::out_of_range on tokens exceeding unsigned long).
unsigned long parse_numeric_vertex(const std::string& tok,
                                   std::size_t line_no) {
  unsigned long id = 0;
  try {
    id = std::stoul(tok);
  } catch (const std::out_of_range&) {
    WDAG_REQUIRE(false, "parse_instance_text: line " +
                            std::to_string(line_no) + ": vertex id '" + tok +
                            "' is out of range");
  }
  WDAG_REQUIRE(id < (1UL << 31),
               "parse_instance_text: line " + std::to_string(line_no) +
                   ": vertex id '" + tok + "' is too large");
  return id;
}
}  // namespace

ParsedInstance parse_instance_text(const std::string& text) {
  DigraphBuilder b;
  // Each path line keeps its 1-based line number so the deferred
  // resolution pass below can still point at the offending line.
  std::vector<std::pair<std::size_t, std::vector<std::string>>> path_lines;

  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;

  auto resolve = [&](const std::string& tok) -> VertexId {
    if (is_number(tok)) {
      return static_cast<VertexId>(parse_numeric_vertex(tok, line_no));
    }
    return b.vertex(tok);
  };
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    if (kind == "arc") {
      std::string u, v, extra;
      WDAG_REQUIRE(static_cast<bool>(ls >> u >> v),
                   "parse_instance_text: line " + std::to_string(line_no) +
                       ": arc needs tail and head");
      WDAG_REQUIRE(!(ls >> extra),
                   "parse_instance_text: line " + std::to_string(line_no) +
                       ": trailing tokens after arc");
      const VertexId uu = resolve(u);
      const VertexId vv = resolve(v);
      b.add_arc(uu, vv);
    } else if (kind == "path") {
      std::vector<std::string> tokens;
      std::string tok;
      while (ls >> tok) tokens.push_back(tok);
      WDAG_REQUIRE(tokens.size() >= 2,
                   "parse_instance_text: line " + std::to_string(line_no) +
                       ": path needs at least two vertices");
      path_lines.emplace_back(line_no, std::move(tokens));
    } else {
      WDAG_REQUIRE(false, "parse_instance_text: line " +
                              std::to_string(line_no) + ": unknown keyword '" +
                              kind + "'");
    }
  }

  ParsedInstance out;
  out.graph = std::make_shared<const Digraph>(b.build());
  out.family = DipathFamily(*out.graph);
  const Digraph& g = *out.graph;
  for (const auto& [path_line_no, tokens] : path_lines) {
    std::vector<VertexId> walk;
    walk.reserve(tokens.size());
    for (const auto& tok : tokens) {
      if (is_number(tok)) {
        const unsigned long id = parse_numeric_vertex(tok, path_line_no);
        WDAG_REQUIRE(id < g.num_vertices(),
                     "parse_instance_text: line " +
                         std::to_string(path_line_no) + ": path vertex id '" +
                         tok + "' out of range");
        walk.push_back(static_cast<VertexId>(id));
      } else {
        const auto v = g.vertex_by_name(tok);
        WDAG_REQUIRE(v.has_value(),
                     "parse_instance_text: unknown path vertex '" + tok + "'");
        walk.push_back(*v);
      }
    }
    out.family.add(dipath_through(g, walk));
  }
  return out;
}

}  // namespace wdag::paths
