#pragma once
// Serialization of whole instances (graph + dipath family).
//
// Text format, line oriented:
//   arc <tail> <head>          — one per arc, in arc-id order
//   path <v0> <v1> ... <vk>    — one per dipath, as a vertex walk
// '#' starts a comment; vertex tokens follow graph/graphio.hpp rules
// (non-negative integers are ids, anything else a name).
//
// Round-trips instances for the examples and lets users ship test cases.

#include <memory>
#include <string>

#include "graph/digraph.hpp"
#include "paths/family.hpp"

namespace wdag::paths {

/// Renders the host graph's arcs and every dipath of the family.
std::string to_instance_text(const DipathFamily& family);

/// A parsed instance: the graph plus the family over it. The graph lives
/// behind a shared_ptr so the family's reference stays valid under moves.
struct ParsedInstance {
  std::shared_ptr<const graph::Digraph> graph;
  DipathFamily family;
};

/// Parses an instance written by to_instance_text (or by hand).
/// Throws wdag::InvalidArgument on malformed lines, unknown vertices, or
/// paths that do not follow arcs of the graph.
ParsedInstance parse_instance_text(const std::string& text);

}  // namespace wdag::paths
