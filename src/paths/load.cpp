#include "paths/load.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wdag::paths {

std::vector<std::size_t> arc_loads(const DipathFamily& family) {
  std::vector<std::size_t> loads(family.graph().num_arcs(), 0);
  for (const Dipath& p : family.paths()) {
    for (graph::ArcId a : p.arcs) ++loads[a];
  }
  return loads;
}

std::size_t max_load(const DipathFamily& family) {
  const auto loads = arc_loads(family);
  return loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
}

graph::ArcId max_load_arc(const DipathFamily& family) {
  const auto loads = arc_loads(family);
  if (loads.empty()) return graph::kNoArc;
  const auto it = std::max_element(loads.begin(), loads.end());
  if (*it == 0) return graph::kNoArc;
  return static_cast<graph::ArcId>(it - loads.begin());
}

RestrictedLoad max_load_on(const DipathFamily& family,
                           const std::vector<graph::ArcId>& arcs) {
  const auto loads = arc_loads(family);
  RestrictedLoad best;
  for (graph::ArcId a : arcs) {
    WDAG_REQUIRE(a < loads.size(), "max_load_on: arc id out of range");
    if (best.arc == graph::kNoArc || loads[a] > best.load) {
      best.load = loads[a];
      best.arc = a;
    }
  }
  return best;
}

}  // namespace wdag::paths
