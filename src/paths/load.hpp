#pragma once
// Load computation: load(G,P,e) per arc and pi(G,P) — the paper's lower
// bound on the number of wavelengths.

#include <vector>

#include "paths/family.hpp"

namespace wdag::paths {

/// load(G,P,e) for every arc e, indexed by ArcId.
std::vector<std::size_t> arc_loads(const DipathFamily& family);

/// pi(G,P): the maximum arc load (0 for an empty family).
std::size_t max_load(const DipathFamily& family);

/// An arc attaining the maximum load, or kNoArc for an empty family.
graph::ArcId max_load_arc(const DipathFamily& family);

/// Maximum load restricted to the given arcs (0 when the list is empty);
/// also reports an attaining arc. Used by Theorem 6 to pick the split arc
/// on the internal cycle.
struct RestrictedLoad {
  std::size_t load = 0;
  graph::ArcId arc = graph::kNoArc;
};
RestrictedLoad max_load_on(const DipathFamily& family,
                           const std::vector<graph::ArcId>& arcs);

}  // namespace wdag::paths
