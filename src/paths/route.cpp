#include "paths/route.hpp"

#include <algorithm>

#include "graph/reachability.hpp"
#include "util/check.hpp"

namespace wdag::paths {

using graph::ArcId;
using graph::Digraph;
using graph::VertexId;

std::optional<Dipath> unique_route(const Digraph& g, VertexId u, VertexId v) {
  WDAG_REQUIRE(u < g.num_vertices() && v < g.num_vertices(),
               "unique_route: vertex out of range");
  WDAG_REQUIRE(u != v, "unique_route: requests must have distinct endpoints");
  // Cone of vertices that still reach v; in a UPP-DAG each cone vertex has
  // at most one out-arc staying inside the cone (two would yield two
  // dipaths to v), so the route is a greedy walk.
  thread_local util::DynamicBitset cone;
  graph::ancestors_into(g, v, cone);
  if (!cone.test(u)) return std::nullopt;
  Dipath p;
  VertexId cur = u;
  while (cur != v) {
    ArcId next = graph::kNoArc;
    for (ArcId a : g.out_arcs(cur)) {
      if (cone.test(g.head(a))) {
        WDAG_DOMAIN(next == graph::kNoArc,
                    "unique_route: two distinct dipaths exist from " +
                        g.vertex_label(u) + " to " + g.vertex_label(v) +
                        " (graph is not UPP)");
        next = a;
      }
    }
    WDAG_ASSERT(next != graph::kNoArc, "unique_route: cone walk got stuck");
    p.arcs.push_back(next);
    cur = g.head(next);
  }
  return p;
}

std::optional<Dipath> shortest_route(const Digraph& g, VertexId u, VertexId v) {
  WDAG_REQUIRE(u < g.num_vertices() && v < g.num_vertices(),
               "shortest_route: vertex out of range");
  WDAG_REQUIRE(u != v, "shortest_route: requests must have distinct endpoints");
  // BFS from u; the parent arc of each vertex is the smallest-id arc from
  // the earliest-reached predecessor, which yields the lexicographically
  // smallest shortest path when arcs are scanned in id order. out_arcs()
  // already lists arcs in ascending id order (ids are assigned in
  // insertion order and the CSR fill preserves it), so no per-vertex sort.
  thread_local std::vector<ArcId> parent;
  thread_local std::vector<std::int32_t> dist;
  thread_local std::vector<VertexId> queue;
  parent.assign(g.num_vertices(), graph::kNoArc);
  dist.assign(g.num_vertices(), -1);
  queue.clear();
  std::size_t qhead = 0;
  dist[u] = 0;
  queue.push_back(u);
  while (qhead < queue.size()) {
    const VertexId x = queue[qhead++];
    if (x == v) break;
    for (ArcId a : g.out_arcs(x)) {
      const VertexId w = g.head(a);
      if (dist[w] == -1) {
        dist[w] = dist[x] + 1;
        parent[w] = a;
        queue.push_back(w);
      }
    }
  }
  if (dist[v] == -1) return std::nullopt;
  Dipath p;
  for (VertexId cur = v; cur != u;) {
    const ArcId a = parent[cur];
    p.arcs.push_back(a);
    cur = g.tail(a);
  }
  std::reverse(p.arcs.begin(), p.arcs.end());
  return p;
}

DipathFamily route_requests(const Digraph& g,
                            const std::vector<Request>& requests,
                            RoutePolicy policy) {
  DipathFamily fam(g);
  for (const Request& r : requests) {
    std::optional<Dipath> route;
    switch (policy) {
      case RoutePolicy::kUnique:
        route = unique_route(g, r.from, r.to);
        break;
      case RoutePolicy::kShortest:
        route = shortest_route(g, r.from, r.to);
        break;
    }
    WDAG_REQUIRE(route.has_value(),
                 "route_requests: no dipath from " + g.vertex_label(r.from) +
                     " to " + g.vertex_label(r.to));
    fam.add(std::move(*route));
  }
  return fam;
}

}  // namespace wdag::paths
