#pragma once
// Routing: turning requests (ordered vertex pairs) into dipaths.
//
// The paper notes that on UPP-DAGs requests and dipaths are equivalent
// because routes are unique; on general DAGs we provide the standard
// "shortest, lexicographically smallest" policy used when the RWA problem
// is split into routing followed by wavelength assignment (paper §1).

#include <optional>
#include <vector>

#include "paths/family.hpp"

namespace wdag::paths {

/// A connection request from `from` to `to`.
struct Request {
  graph::VertexId from = graph::kNoVertex;
  graph::VertexId to = graph::kNoVertex;

  bool operator==(const Request&) const = default;
};

/// The unique dipath from u to v in a UPP-DAG, nullopt when v is not
/// reachable from u. Throws wdag::DomainError when two distinct u->v
/// dipaths exist (the graph is not UPP for this pair). Requires u != v.
std::optional<Dipath> unique_route(const graph::Digraph& g, graph::VertexId u,
                                   graph::VertexId v);

/// A shortest u->v dipath (fewest arcs), breaking ties towards smaller arc
/// ids; nullopt when unreachable. Requires u != v. Works on any digraph.
std::optional<Dipath> shortest_route(const graph::Digraph& g,
                                     graph::VertexId u, graph::VertexId v);

/// Routing policy for route_requests.
enum class RoutePolicy {
  kUnique,    ///< UPP routing (throws DomainError on ambiguous pairs)
  kShortest,  ///< shortest path, lexicographic tie-break
};

/// Routes every request; throws wdag::InvalidArgument when some request is
/// unroutable (no dipath exists).
DipathFamily route_requests(const graph::Digraph& g,
                            const std::vector<Request>& requests,
                            RoutePolicy policy);

}  // namespace wdag::paths
