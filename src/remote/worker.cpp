#include "remote/worker.hpp"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <utility>

#include "api/request.hpp"
#include "api/sink.hpp"
#include "core/json_min.hpp"
#include "core/shard.hpp"
#include "core/transport.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace wdag::remote {
namespace {

using Clock = std::chrono::steady_clock;

/// Accept / read poll tick: stop flags are noticed within one tick.
constexpr int kTickMs = 200;

/// Granularity of interruptible hook sleeps.
constexpr int kSleepTickMs = 50;

std::optional<std::size_t> env_shard(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

}  // namespace

ShardWorkerHooks ShardWorkerHooks::from_env() {
  ShardWorkerHooks hooks;
  hooks.fail_shard = env_shard("WDAG_WORKER_FAIL_SHARD");
  hooks.drop_conn_shard = env_shard("WDAG_WORKER_DROP_CONN");
  hooks.corrupt_shard = env_shard("WDAG_WORKER_CORRUPT_PAYLOAD");
  if (const char* v = std::getenv("WDAG_WORKER_SLOW_HEARTBEAT")) {
    char* colon = nullptr;
    hooks.slow_heartbeat_count =
        static_cast<std::size_t>(std::strtoull(v, &colon, 10));
    if (colon != nullptr && *colon == ':') {
      hooks.slow_heartbeat_ms =
          static_cast<int>(std::strtol(colon + 1, nullptr, 10));
    }
  }
  if (const char* v = std::getenv("WDAG_WORKER_STALL_MS")) {
    hooks.stall_first_ms = static_cast<int>(std::strtol(v, nullptr, 10));
  }
  return hooks;
}

ShardWorker::ShardWorker(ShardWorkerOptions options)
    : options_(std::move(options)),
      listener_(util::TcpListener::listen(options_.host, options_.port)),
      engine_(api::EngineOptions{options_.engine_threads, {}}) {
  slow_pings_left_.store(options_.hooks.slow_heartbeat_count,
                         std::memory_order_relaxed);
}

ShardWorker::~ShardWorker() {
  request_stop();
  join();
  // run() joins sessions before returning; if run() was never entered
  // nothing was spawned.
}

std::uint16_t ShardWorker::port() const {
  return static_cast<std::uint16_t>(listener_.port());
}

void ShardWorker::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    if (options_.external_stop && options_.external_stop()) break;
    auto conn = listener_.accept(kTickMs);
    if (!conn) continue;
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.emplace_back(&ShardWorker::session_loop, this,
                           std::move(*conn));
  }
  stop_.store(true, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (std::thread& session : sessions_) session.join();
  sessions_.clear();
}

void ShardWorker::start() {
  run_thread_ = std::thread(&ShardWorker::run, this);
}

void ShardWorker::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
}

void ShardWorker::join() {
  if (run_thread_.joinable()) run_thread_.join();
}

void ShardWorker::interruptible_sleep(int ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(ms);
  while (!stop_.load(std::memory_order_relaxed) &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kSleepTickMs));
  }
}

void ShardWorker::session_loop(util::TcpConn conn) {
  std::string line;
  auto last_activity = Clock::now();
  while (!stop_.load(std::memory_order_relaxed)) {
    const util::ReadStatus status = conn.read_line(line, kTickMs);
    if (status == util::ReadStatus::kClosed) return;
    if (status == util::ReadStatus::kTimeout) {
      if (options_.idle_timeout_ms > 0.0 &&
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    last_activity)
                  .count() > options_.idle_timeout_ms) {
        return;  // silent session: close and free the thread
      }
      continue;
    }
    if (line.empty()) continue;
    last_activity = Clock::now();

    // A line with a "type" field is a control message; anything else IS
    // a shard manifest (its own format tag is "wdag_shard").
    bool is_control = false;
    std::string type;
    try {
      const core::minjson::JsonValue v =
          core::minjson::JsonParser(line, "worker request").parse();
      if (const core::minjson::JsonValue* t =
              core::minjson::opt_field(v, "type", "worker request")) {
        is_control = true;
        if (t->kind == core::minjson::JsonValue::Kind::kString) {
          type = t->text;
        }
      }
    } catch (const std::exception& e) {
      if (!conn.write_line(core::wire::shard_error_header(e.what()))) return;
      continue;
    }
    if (is_control) {
      if (type == "ping") {
        answer_ping(conn);
        if (!conn.is_open()) return;
      } else if (!conn.write_line(core::wire::shard_error_header(
                     "unknown control type '" + type + "'"))) {
        return;
      }
      continue;
    }
    serve_manifest(conn, line);
    if (!conn.is_open()) return;  // drop-conn hook closed mid-payload
  }
}

void ShardWorker::answer_ping(util::TcpConn& conn) {
  // The slow-heartbeat hook simulates a saturated or half-dead box: the
  // first N pings outlive the prober's timeout, so the transport burns
  // its miss budget and marks the worker unhealthy; ping N+1 answers
  // promptly again and the recovery re-probe brings it back.
  if (options_.hooks.slow_heartbeat_ms > 0) {
    std::size_t left = slow_pings_left_.load(std::memory_order_relaxed);
    while (left > 0 && !slow_pings_left_.compare_exchange_weak(
                           left, left - 1, std::memory_order_relaxed)) {
    }
    if (left > 0) interruptible_sleep(options_.hooks.slow_heartbeat_ms);
  }
  pings_.fetch_add(1, std::memory_order_relaxed);
  if (!conn.write_line(
          core::wire::pong_line(busy_.load(std::memory_order_relaxed)))) {
    conn.close();
  }
}

void ShardWorker::serve_manifest(util::TcpConn& conn,
                                 const std::string& line) {
  core::ShardManifest manifest;
  try {
    // parse_manifest recomputes and verifies the recorded plan/request
    // hashes — a tampered manifest is refused before any work happens.
    manifest = core::parse_manifest(line);
  } catch (const std::exception& e) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    conn.write_line(core::wire::shard_error_header(e.what()));
    return;
  }

  if (options_.hooks.stall_first_ms > 0 &&
      !stall_fired_.exchange(true, std::memory_order_relaxed)) {
    interruptible_sleep(options_.hooks.stall_first_ms);
    if (stop_.load(std::memory_order_relaxed)) return;
  }
  if (options_.hooks.fail_shard == manifest.shard &&
      !fail_fired_.exchange(true, std::memory_order_relaxed)) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    conn.write_line(core::wire::shard_error_header(
        "injected failure (WDAG_WORKER_FAIL_SHARD) on shard " +
        std::to_string(manifest.shard)));
    return;
  }

  util::Timer timer;
  std::string payload;
  std::uint64_t rows = 0;
  busy_.fetch_add(1, std::memory_order_relaxed);
  try {
    std::ostringstream os;
    os << core::shard_csv_header(manifest);
    api::CsvStreamSink sink(os);
    api::BatchRequest request;
    request.generator = api::GeneratorSpec{
        manifest.spec.family, manifest.spec.params, manifest.spec.seed};
    request.count = manifest.spec.count;
    request.options.seed = manifest.spec.seed;
    request.options.index_base = 0;
    request.options.keep_entries = false;
    request.options.schedule = options_.schedule;
    request.solve = manifest.spec.solve;
    if (!manifest.spec.force_strategy.empty()) {
      request.force_strategy = manifest.spec.force_strategy;
    }
    request.sinks.push_back(&sink);
    {
      const std::lock_guard<std::mutex> lock(engine_mutex_);
      (void)engine_.run_shard(request, manifest.shard, manifest.shards,
                              manifest.layout);
    }
    payload = os.str();
    // Validate before a byte leaves the box: the exact read_shard_csv +
    // plan-identity gate the driver applies on arrival.
    std::istringstream in(payload);
    const core::ShardCsv csv = core::read_shard_csv(in, "worker output");
    WDAG_REQUIRE(csv.manifest.plan_id == manifest.plan_id &&
                     csv.manifest.shard == manifest.shard,
                 "worker output does not match the requested shard");
    rows = csv.row_count;
  } catch (const std::exception& e) {
    busy_.fetch_sub(1, std::memory_order_relaxed);
    failed_.fetch_add(1, std::memory_order_relaxed);
    conn.write_line(core::wire::shard_error_header(e.what()));
    return;
  }
  busy_.fetch_sub(1, std::memory_order_relaxed);

  const std::uint64_t checksum = core::fnv1a64(payload);
  // The drop hook takes this request if both hooks aim at the same
  // shard — the corrupt hook stays armed for the retry, so each failure
  // mode is observed on its own attempt.
  const bool drop_now =
      options_.hooks.drop_conn_shard == manifest.shard &&
      !drop_fired_.exchange(true, std::memory_order_relaxed);
  if (!drop_now && options_.hooks.corrupt_shard == manifest.shard &&
      !corrupt_fired_.exchange(true, std::memory_order_relaxed)) {
    // Flip one byte AFTER the checksum was computed: the header claims
    // the true checksum, the payload disagrees, the transport must
    // reject the transfer like any crashed attempt.
    payload[payload.size() / 2] ^= 0x20;
  }
  const std::string header = core::wire::shard_ok_header(
      payload.size(), checksum, rows, timer.seconds());
  if (drop_now) {
    // A dropped connection mid-payload: promise the full length, send
    // half, vanish.
    conn.write_line(header);
    conn.write_all(
        std::string_view(payload.data(), payload.size() / 2));
    conn.close();
    return;
  }
  if (!conn.write_line(header)) return;
  if (!conn.write_all(payload)) return;
  served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace wdag::remote
