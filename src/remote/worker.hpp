#pragma once
// The `wdag worker` process: one long-lived remote executor of shard
// attempts, the peer of core::TcpTransport (core/transport.hpp documents
// the wire protocol).
//
// Thread shape mirrors serve::Server: an accept loop spawns one session
// thread per connection; sessions read newline-delimited JSON requests.
// A "ping" control line is answered in-line by the session (so health
// probes stay live while shards execute); any other line IS a shard
// manifest — parse_manifest re-verifies its recorded plan/request hashes,
// the embedded api::Engine runs the shard through the exact
// Engine::run_shard path `wdag shard run` uses, and the produced shard
// CSV is validated through read_shard_csv BEFORE a byte leaves the box:
// a worker never ships output it cannot vouch for. The response is a
// one-line header carrying the payload length and FNV-1a checksum,
// followed by the raw payload bytes.
//
// Engine access is serialized by a mutex: one persistent engine keeps
// arenas warm and its cost model learning across shards (parallelism
// lives inside the engine's pool), while ping sessions stay responsive.
//
// Fault hooks (ShardWorkerHooks, env-read via from_env in the CLI, set
// directly by tests) inject the remote failure modes the drive loop must
// absorb: a refused shard, a connection dropped mid-payload, a corrupted
// payload (checksum mismatch at the driver), delayed heartbeats (probe
// misses -> unhealthy -> recovery), and a stalled first request (an
// in-flight attempt to re-dispatch when the worker goes unhealthy).
//
// INTERNAL header: not part of the public surface.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "core/batch.hpp"
#include "util/socket.hpp"

namespace wdag::remote {

/// Fault-injection knobs of one worker. Each fires at most once (the
/// heartbeat hook: `slow_heartbeat_count` times), so the drive's retry /
/// re-probe machinery always gets a healthy path afterwards.
struct ShardWorkerHooks {
  /// Respond {"ok":false} to the first request for this shard.
  std::optional<std::size_t> fail_shard;
  /// Close the connection halfway through this shard's payload, once.
  std::optional<std::size_t> drop_conn_shard;
  /// Flip a payload byte AFTER the checksum is computed, once — the
  /// driver must reject the transfer exactly like a crashed attempt.
  std::optional<std::size_t> corrupt_shard;
  /// Delay the first `slow_heartbeat_count` pings by `slow_heartbeat_ms`
  /// each (longer than the prober's timeout = consecutive probe misses).
  std::size_t slow_heartbeat_count = 0;
  int slow_heartbeat_ms = 0;
  /// Stall the FIRST shard request this many ms before executing it.
  int stall_first_ms = 0;

  /// Reads WDAG_WORKER_FAIL_SHARD / WDAG_WORKER_DROP_CONN /
  /// WDAG_WORKER_CORRUPT_PAYLOAD (shard index each),
  /// WDAG_WORKER_SLOW_HEARTBEAT ("count:ms") and WDAG_WORKER_STALL_MS
  /// from the environment — the CLI's hookup.
  [[nodiscard]] static ShardWorkerHooks from_env();
};

/// Construction knobs of one worker (CLI flags of `wdag worker`).
struct ShardWorkerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Engine pool threads; 0 = hardware concurrency.
  std::size_t engine_threads = 0;
  /// Scheduler of every shard run (execution knob; never changes bytes).
  core::Schedule schedule = core::Schedule::kFixed;
  /// Close a session after this long without a complete request line;
  /// 0 disables.
  double idle_timeout_ms = 0.0;
  ShardWorkerHooks hooks;
  /// Polled by the accept loop every tick; return true to shut down.
  std::function<bool()> external_stop;
};

class ShardWorker {
 public:
  /// Binds and listens immediately — port() is reachable before run()
  /// starts. Throws wdag::InternalError on bind failure.
  explicit ShardWorker(ShardWorkerOptions options);

  /// Joins everything; safe after run() returned or never ran.
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  [[nodiscard]] std::uint16_t port() const;

  /// Serves until request_stop() / the external stop hook fires.
  void run();
  /// run() on an internal thread (tests drive the worker this way).
  void start();
  void request_stop();
  /// Joins the start() thread (no-op without start()).
  void join();

  [[nodiscard]] std::size_t shards_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t shards_failed() const {
    return failed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t pings_answered() const {
    return pings_.load(std::memory_order_relaxed);
  }

 private:
  void session_loop(util::TcpConn conn);
  void answer_ping(util::TcpConn& conn);
  void serve_manifest(util::TcpConn& conn, const std::string& line);
  /// Sleeps `ms` in short ticks, returning early on stop.
  void interruptible_sleep(int ms);

  ShardWorkerOptions options_;
  util::TcpListener listener_;
  api::Engine engine_;
  std::mutex engine_mutex_;  ///< one shard runs at a time per engine

  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> served_{0};
  std::atomic<std::size_t> failed_{0};
  std::atomic<std::size_t> pings_{0};
  std::atomic<std::size_t> busy_{0};  ///< live shard runs (pong's "busy")

  // One-shot hook state.
  std::atomic<bool> fail_fired_{false};
  std::atomic<bool> drop_fired_{false};
  std::atomic<bool> corrupt_fired_{false};
  std::atomic<bool> stall_fired_{false};
  std::atomic<std::size_t> slow_pings_left_{0};

  std::thread run_thread_;  ///< start()'s thread
  std::mutex sessions_mutex_;
  std::vector<std::thread> sessions_;
};

}  // namespace wdag::remote
