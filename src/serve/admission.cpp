#include "serve/admission.hpp"

#include <utility>

#include "util/check.hpp"

namespace wdag::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  WDAG_REQUIRE(capacity >= 1, "admission queue capacity must be >= 1");
}

bool AdmissionQueue::try_push(Job&& job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || jobs_.size() >= capacity_) return false;
    jobs_.push_back(std::move(job));
  }
  ready_.notify_one();
  return true;
}

std::optional<Job> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return std::nullopt;
  Job job = std::move(jobs_.front());
  jobs_.pop_front();
  return job;
}

void AdmissionQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool AdmissionQueue::is_closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t AdmissionQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

}  // namespace wdag::serve
