#pragma once
// Admission control of `wdag serve`: a bounded FIFO between the session
// threads (producers) and the worker loop (consumer).
//
// The load-shedding contract is in the queue's shape, not in policy
// code: try_push NEVER blocks and NEVER grows the queue past its
// capacity — a full queue is an immediate `rejected: queue_full` back
// to the client, so overload degrades into fast rejections instead of
// unbounded buffering and latency collapse (the same bounded-buffer
// discipline as the batch driver's reorder window). Deadlines are
// stamped at admission and re-checked when the worker pops the job; a
// job that aged out while queued is answered `rejected: deadline`
// without touching the engine.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>

#include "serve/protocol.hpp"

namespace wdag::serve {

/// One admitted request travelling from a session thread to the worker.
struct Job {
  WireRequest request;
  /// When the job entered the queue (queue-wait accounting).
  std::chrono::steady_clock::time_point enqueued_at;
  /// Absolute deadline; meaningful only when has_deadline.
  std::chrono::steady_clock::time_point deadline;
  bool has_deadline = false;
  /// Fulfilled with the single-line JSON response; the session thread
  /// blocks on the matching future. Every admitted job's promise IS
  /// fulfilled: shutdown drains and SERVICES the backlog (admission was
  /// a promise to answer), while requests arriving after close bounce
  /// straight back as `rejected: shutdown`.
  std::promise<std::string> reply;
};

/// Bounded MPSC job queue (mutex + condvar; capacity fixed at birth).
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  /// Admits the job unless the queue is full or closed. Returns true on
  /// admission (the job was moved in); false leaves `job` untouched so
  /// the caller can answer the rejection itself. Never blocks.
  [[nodiscard]] bool try_push(Job&& job);

  /// Next job, FIFO. Blocks until a job arrives or the queue is closed;
  /// nullopt only when closed AND drained — the worker's exit signal.
  [[nodiscard]] std::optional<Job> pop();

  /// Closes admission: subsequent try_push fails, pop drains what is
  /// left then returns nullopt. Idempotent.
  void close();

  [[nodiscard]] bool is_closed() const;
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Job> jobs_;
  bool closed_ = false;
};

}  // namespace wdag::serve
