#include "serve/client.hpp"

#include <chrono>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace wdag::serve {

Session::Session(const std::string& host, std::uint16_t port)
    : conn_(util::TcpConn::connect(host, port)) {}

std::string Session::exchange(std::string_view request_line, int timeout_ms) {
  if (!conn_.write_line(request_line)) {
    throw InternalError("serve client: server closed the connection");
  }
  // read_line's timeout is per poll wait; bound the TOTAL wait here so a
  // stalled server cannot park the client forever.
  util::Timer timer;
  std::string line;
  for (;;) {
    const int remaining_ms =
        timeout_ms - static_cast<int>(timer.millis());
    if (remaining_ms <= 0) {
      throw InternalError("serve client: response timed out");
    }
    const util::ReadStatus status = conn_.read_line(line, remaining_ms);
    if (status == util::ReadStatus::kLine) return line;
    if (status == util::ReadStatus::kClosed) {
      throw InternalError("serve client: server closed the connection");
    }
  }
}

std::string request_once(const std::string& host, std::uint16_t port,
                         std::string_view request_line, int timeout_ms) {
  Session session(host, port);
  return session.exchange(request_line, timeout_ms);
}

}  // namespace wdag::serve
