#pragma once
// Client side of the serve wire protocol: one connection, one request
// line, one response line. `wdag request` and the serve tests/bench are
// all thin layers over request_once / Session.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/socket.hpp"

namespace wdag::serve {

/// A persistent client connection issuing request/response exchanges in
/// sequence (the protocol is strictly one response per request line).
class Session {
 public:
  /// Connects to a running server. Throws wdag::InternalError when the
  /// connection is refused.
  Session(const std::string& host, std::uint16_t port);

  /// Sends one request line and returns the response line. Throws
  /// wdag::InternalError when the server hangs up or the response does
  /// not arrive within `timeout_ms`.
  [[nodiscard]] std::string exchange(std::string_view request_line,
                                     int timeout_ms = 30000);

 private:
  util::TcpConn conn_;
};

/// Connect, exchange one request, disconnect.
[[nodiscard]] std::string request_once(const std::string& host,
                                       std::uint16_t port,
                                       std::string_view request_line,
                                       int timeout_ms = 30000);

}  // namespace wdag::serve
