#include "serve/protocol.hpp"

#include <string>
#include <utility>

#include "core/batch.hpp"
#include "core/json_min.hpp"
#include "util/check.hpp"

namespace wdag::serve {
namespace {

using core::minjson::JsonParser;
using core::minjson::JsonValue;
using core::minjson::JsonWriter;

[[noreturn]] void fail(const std::string& what) {
  throw InvalidArgument("request: " + what);
}

std::uint64_t num_u64(const JsonValue& v, const std::string& key) {
  if (v.kind != JsonValue::Kind::kNumber || v.text.empty() ||
      v.text[0] == '-') {
    fail("field '" + key + "' must be a non-negative integer");
  }
  try {
    return std::stoull(v.text);
  } catch (const std::exception&) {
    fail("field '" + key + "' is not a valid integer: " + v.text);
  }
}

double num_double(const JsonValue& v, const std::string& key) {
  if (v.kind != JsonValue::Kind::kNumber) {
    fail("field '" + key + "' must be a number");
  }
  try {
    return std::stod(v.text);
  } catch (const std::exception&) {
    fail("field '" + key + "' is not a valid number: " + v.text);
  }
}

double num_nonneg(const JsonValue& v, const std::string& key) {
  const double d = num_double(v, key);
  if (!(d >= 0.0)) fail("field '" + key + "' must be >= 0");
  return d;
}

std::string str_val(const JsonValue& v, const std::string& key) {
  if (v.kind != JsonValue::Kind::kString) {
    fail("field '" + key + "' must be a string");
  }
  return v.text;
}

std::size_t size_val(const JsonValue& v, const std::string& key) {
  return static_cast<std::size_t>(num_u64(v, key));
}

/// The request's optional id leads every response when present.
JsonWriter response_head(std::string_view id, std::string_view status) {
  JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("status", status);
  return w;
}

}  // namespace

std::string_view kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSolve: return "solve";
    case RequestKind::kBatch: return "batch";
    case RequestKind::kStats: return "stats";
    case RequestKind::kSleep: return "sleep";
  }
  return "unknown";
}

std::string request_to_json(const WireRequest& request) {
  JsonWriter w;
  w.field("type", kind_name(request.kind));
  if (!request.id.empty()) w.field("id", request.id);
  if (request.kind == RequestKind::kSolve ||
      request.kind == RequestKind::kBatch) {
    w.field("gen", request.gen.family);
    w.field("seed", request.gen.seed);
    if (request.kind == RequestKind::kBatch) w.field("count", request.count);
    if (request.force) w.field("force", *request.force);
    if (request.solve) {
      w.field("exact-threshold", request.solve->exact_threshold);
      w.field("exact-budget", request.solve->exact_node_budget);
    }
    // Generator knobs are emitted only when they differ from the
    // WorkloadParams defaults — the parser fills the same defaults back
    // in, so the round trip is exact and the lines stay short.
    const gen::WorkloadParams d{};
    const gen::WorkloadParams& p = request.gen.params;
    if (p.paths != d.paths) w.field("paths", p.paths);
    if (p.size != d.size) w.field("size", p.size);
    if (p.density != d.density) w.field("density", p.density);
    if (p.k != d.k) w.field("k", p.k);
    if (p.run_len != d.run_len) w.field("run-len", p.run_len);
    if (p.chain != d.chain) w.field("chain", p.chain);
    if (p.layers != d.layers) w.field("layers", p.layers);
    if (p.width != d.width) w.field("width-l", p.width);
    if (p.rows != d.rows) w.field("rows-g", p.rows);
    if (p.cols != d.cols) w.field("cols", p.cols);
    if (p.dim != d.dim) w.field("dim", p.dim);
    if (p.stages != d.stages) w.field("stages", p.stages);
    if (p.h != d.h) w.field("h", p.h);
  }
  if (request.kind == RequestKind::kSleep && request.sleep_ms > 0) {
    w.field("millis", request.sleep_ms);
  }
  if (request.deadline_ms > 0) w.field("deadline-ms", request.deadline_ms);
  return std::move(w).str();
}

WireRequest parse_request(std::string_view line) {
  const JsonValue root = JsonParser(line, "request").parse();
  if (root.kind != JsonValue::Kind::kObject) fail("expected a JSON object");

  const JsonValue* type = core::minjson::opt_field(root, "type", "request");
  if (type == nullptr) fail("missing field 'type'");
  const std::string type_name = str_val(*type, "type");

  WireRequest r;
  if (type_name == "solve") r.kind = RequestKind::kSolve;
  else if (type_name == "batch") r.kind = RequestKind::kBatch;
  else if (type_name == "stats") r.kind = RequestKind::kStats;
  else if (type_name == "sleep") r.kind = RequestKind::kSleep;
  else fail("unknown request type '" + type_name + "'");

  const bool workload =
      r.kind == RequestKind::kSolve || r.kind == RequestKind::kBatch;
  core::SolveOptions solve{};
  bool have_solve = false;
  gen::WorkloadParams& p = r.gen.params;

  for (const auto& [key, value] : root.object) {
    if (key == "type") continue;
    if (key == "id") {
      r.id = str_val(value, key);
    } else if (key == "deadline-ms") {
      r.deadline_ms = num_nonneg(value, key);
    } else if (r.kind == RequestKind::kSleep && key == "millis") {
      r.sleep_ms = num_nonneg(value, key);
    } else if (workload && key == "gen") {
      r.gen.family = str_val(value, key);
    } else if (workload && key == "seed") {
      r.gen.seed = num_u64(value, key);
    } else if (r.kind == RequestKind::kBatch && key == "count") {
      r.count = size_val(value, key);
      if (r.count == 0) fail("field 'count' must be >= 1");
    } else if (workload && key == "force") {
      r.force = str_val(value, key);
    } else if (workload && key == "exact-threshold") {
      solve.exact_threshold = size_val(value, key);
      have_solve = true;
    } else if (workload && key == "exact-budget") {
      solve.exact_node_budget = size_val(value, key);
      have_solve = true;
    } else if (workload && key == "paths") {
      p.paths = size_val(value, key);
    } else if (workload && key == "size") {
      p.size = size_val(value, key);
    } else if (workload && key == "density") {
      p.density = num_nonneg(value, key);
    } else if (workload && key == "k") {
      p.k = size_val(value, key);
    } else if (workload && key == "run-len") {
      p.run_len = size_val(value, key);
    } else if (workload && key == "chain") {
      p.chain = size_val(value, key);
    } else if (workload && key == "layers") {
      p.layers = size_val(value, key);
    } else if (workload && key == "width-l") {
      p.width = size_val(value, key);
    } else if (workload && key == "rows-g") {
      p.rows = size_val(value, key);
    } else if (workload && key == "cols") {
      p.cols = size_val(value, key);
    } else if (workload && key == "dim") {
      p.dim = size_val(value, key);
    } else if (workload && key == "stages") {
      p.stages = size_val(value, key);
    } else if (workload && key == "h") {
      p.h = size_val(value, key);
    } else {
      fail("unknown key '" + key + "' for a " + std::string(kind_name(r.kind)) +
           " request");
    }
  }

  if (have_solve) r.solve = solve;
  if (workload && r.gen.family.empty()) fail("missing field 'gen'");
  return r;
}

std::string solve_response_json(std::string_view id,
                                const api::SolveResponse& r) {
  JsonWriter w = response_head(id, "ok");
  w.field("type", "solve")
      .field("strategy", r.strategy_name)
      .field("paths", r.paths)
      .field("load", r.load)
      .field("wavelengths", r.wavelengths)
      .field("optimal", r.optimal)
      .field("millis", r.millis);
  return std::move(w).str();
}

std::string batch_response_json(std::string_view id,
                                const core::BatchReport& r) {
  JsonWriter latency;
  latency.field("mean", r.latency.mean)
      .field("p50", r.latency.p50)
      .field("p90", r.latency.p90)
      .field("p99", r.latency.p99)
      .field("max", r.latency.max);
  JsonWriter w = response_head(id, "ok");
  w.field("type", "batch")
      .field("instances", r.instance_count)
      .field("failures", r.failure_count)
      .field("optimal", r.optimal_count)
      .field("total-wavelengths", r.total_wavelengths)
      .field("total-load", r.total_load)
      .field("wall-seconds", r.wall_seconds)
      .field("instances-per-second", r.instances_per_second())
      .field_raw("latency-ms", std::move(latency).str());
  return std::move(w).str();
}

std::string sleep_response_json(std::string_view id, double millis) {
  JsonWriter w = response_head(id, "ok");
  w.field("type", "sleep").field("millis", millis);
  return std::move(w).str();
}

std::string rejected_response_json(std::string_view id,
                                   std::string_view reason) {
  JsonWriter w = response_head(id, "rejected");
  w.field("reason", reason);
  return std::move(w).str();
}

std::string error_response_json(std::string_view id,
                                std::string_view message) {
  JsonWriter w = response_head(id, "error");
  w.field("message", message);
  return std::move(w).str();
}

WireReply parse_reply(std::string_view line) {
  const JsonValue root = JsonParser(line, "response").parse();
  WireReply reply;
  reply.status = core::minjson::req_str(root, "status", "response");
  if (const JsonValue* reason =
          core::minjson::opt_field(root, "reason", "response")) {
    reply.detail = str_val(*reason, "reason");
  } else if (const JsonValue* message =
                 core::minjson::opt_field(root, "message", "response")) {
    reply.detail = str_val(*message, "message");
  }
  return reply;
}

}  // namespace wdag::serve
