#pragma once
// The wire protocol of `wdag serve`: newline-delimited JSON, one request
// object in, one response object out, over a plain TCP connection.
//
// A request names its kind in `type` — "solve", "batch" or "stats" (plus
// the test-hook "sleep", honored only by servers that enable hooks) —
// and carries the SAME workload vocabulary as the CLI: the generator
// knobs use their exact flag spellings ("gen", "seed", "paths",
// "run-len", "width-l", ...), so a request line is a `wdag solve`
// command re-spelled as JSON and nothing more. Unknown keys are
// rejected, not ignored: a typoed knob must fail loudly, never solve a
// silently different instance.
//
// Responses carry `status`: "ok" (plus the kind-specific payload),
// "rejected" (with `reason`: "queue_full" | "deadline" | "shutdown" —
// the admission-control outcomes), or "error" (with `message`). Every
// response echoes the request's optional `id`, so a client multiplexing
// requests can match answers. docs/SERVING.md is the field-level
// reference.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "api/request.hpp"
#include "core/solver.hpp"

namespace wdag::serve {

/// What a request asks the server to do.
enum class RequestKind {
  kSolve,  ///< solve one generated instance
  kBatch,  ///< run a generated batch through the engine pool
  kStats,  ///< report live server statistics (answered out-of-band)
  kSleep,  ///< occupy the worker (test hook; needs enable_test_hooks)
};

/// Display name of a request kind: "solve" / "batch" / "stats" / "sleep".
[[nodiscard]] std::string_view kind_name(RequestKind kind);

/// One parsed request line.
struct WireRequest {
  RequestKind kind = RequestKind::kSolve;
  /// Client-chosen tag echoed verbatim in the response (may be empty).
  std::string id;
  /// Workload of solve/batch requests (family, knobs, seed).
  api::GeneratorSpec gen;
  /// Instances of a batch request.
  std::size_t count = 100;
  /// Bypass dispatch with a registered strategy name.
  std::optional<std::string> force;
  /// Solver knobs; the engine defaults apply when absent.
  std::optional<core::SolveOptions> solve;
  /// Per-request deadline in milliseconds from admission; 0 = use the
  /// server default (which may itself be "none").
  double deadline_ms = 0.0;
  /// Milliseconds a "sleep" request occupies the worker.
  double sleep_ms = 0.0;
};

/// The request as its canonical single-line JSON (what `wdag request`
/// sends). parse_request(request_to_json(r)) reproduces r exactly.
[[nodiscard]] std::string request_to_json(const WireRequest& request);

/// Parses one request line. Throws wdag::InvalidArgument on malformed
/// JSON, an unknown `type`, an unknown key, or an out-of-domain value.
[[nodiscard]] WireRequest parse_request(std::string_view line);

// --- Response builders (single-line JSON) ----------------------------------

/// status "ok", type "solve": strategy, paths, load, wavelengths,
/// optimal, millis.
[[nodiscard]] std::string solve_response_json(std::string_view id,
                                              const api::SolveResponse& r);

/// status "ok", type "batch": instances, failures, optimal, totals,
/// latency percentiles, wall seconds, throughput.
[[nodiscard]] std::string batch_response_json(std::string_view id,
                                              const core::BatchReport& r);

/// status "ok", type "sleep" (the test hook's acknowledgement).
[[nodiscard]] std::string sleep_response_json(std::string_view id,
                                              double millis);

/// status "rejected" with the admission-control `reason`.
[[nodiscard]] std::string rejected_response_json(std::string_view id,
                                                 std::string_view reason);

/// status "error" with a human-readable `message`.
[[nodiscard]] std::string error_response_json(std::string_view id,
                                              std::string_view message);

/// The response fields every client decision needs, parsed from any
/// response line: the status plus the rejection reason / error message
/// (empty for "ok"). Throws wdag::InvalidArgument on non-response JSON.
struct WireReply {
  std::string status;  ///< "ok" | "rejected" | "error"
  std::string detail;  ///< reason / message; empty for "ok"
};
[[nodiscard]] WireReply parse_reply(std::string_view line);

}  // namespace wdag::serve
