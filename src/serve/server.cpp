#include "serve/server.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "serve/protocol.hpp"
#include "util/timer.hpp"

namespace wdag::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// Accept / read poll tick: stop flags are noticed within one tick.
constexpr int kTickMs = 200;

Clock::duration millis_duration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

std::string service_job(api::Engine& engine, Job& job, ServeStats& stats,
                        bool enable_test_hooks) {
  const WireRequest& req = job.request;
  try {
    // Deadline first: a job that aged out while queued is answered
    // without touching the engine — the cheap path under overload.
    if (job.has_deadline && Clock::now() > job.deadline) {
      stats.on_rejected_deadline();
      return rejected_response_json(req.id, "deadline");
    }
    switch (req.kind) {
      case RequestKind::kSolve: {
        api::SolveRequest solve;
        solve.generator = req.gen;
        solve.force_strategy = req.force;
        solve.options = req.solve;
        util::Timer timer;
        const api::SolveResponse response = engine.submit(solve);
        stats.on_solved(response.strategy_name, timer.millis());
        return solve_response_json(req.id, response);
      }
      case RequestKind::kBatch: {
        api::BatchRequest batch;
        batch.generator = req.gen;
        batch.count = req.count;
        batch.force_strategy = req.force;
        batch.solve = req.solve;
        batch.options.seed = req.gen.seed;
        batch.options.keep_entries = false;
        util::Timer timer;
        const core::BatchReport report = engine.run_batch(batch);
        stats.on_batch(timer.millis());
        return batch_response_json(req.id, report);
      }
      case RequestKind::kSleep: {
        if (!enable_test_hooks) {
          stats.on_error();
          return error_response_json(
              req.id, "sleep requests require a server with test hooks");
        }
        std::this_thread::sleep_for(millis_duration(req.sleep_ms));
        return sleep_response_json(req.id, req.sleep_ms);
      }
      case RequestKind::kStats:
        break;  // answered out-of-band by the session; never queued
    }
    stats.on_error();
    return error_response_json(req.id, "request kind cannot be queued");
  } catch (const std::exception& e) {
    stats.on_error();
    return error_response_json(req.id, e.what());
  }
}

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      listener_(util::TcpListener::listen(options_.host, options_.port)),
      engine_(api::EngineOptions{options_.engine_threads, options_.solve}),
      queue_(options_.queue_capacity),
      started_at_(Clock::now()) {}

Server::~Server() {
  request_stop();
  join();
  // run() joins worker and sessions before returning; if run() was never
  // entered nothing was spawned.
}

std::uint16_t Server::port() const {
  return static_cast<std::uint16_t>(listener_.port());
}

void Server::run() {
  worker_ = std::thread(&Server::worker_loop, this);
  while (!stop_.load(std::memory_order_relaxed)) {
    if (options_.external_stop && options_.external_stop()) break;
    auto conn = listener_.accept(kTickMs);
    if (!conn) continue;
    stats_.on_connection();
    if (options_.max_connections > 0 &&
        active_.load(std::memory_order_relaxed) >= options_.max_connections) {
      // Saturated: one clear wire error, then close — the accept loop
      // never blocks and never grows an unbounded thread herd.
      stats_.on_rejected_max_connections();
      conn->write_line(rejected_response_json("", "max_connections"));
      continue;
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.emplace_back(&Server::session_loop, this, std::move(*conn));
  }
  // Graceful drain: refuse new work, service the admitted backlog, then
  // join. Sessions blocked on a future are released by the worker drain
  // and exit on their next read tick.
  stop_.store(true, std::memory_order_relaxed);
  queue_.close();
  worker_.join();
  const std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (std::thread& session : sessions_) session.join();
  sessions_.clear();
}

void Server::start() { run_thread_ = std::thread(&Server::run, this); }

void Server::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
}

void Server::join() {
  if (run_thread_.joinable()) run_thread_.join();
}

void Server::worker_loop() {
  while (auto job = queue_.pop()) {
    stats_.on_dequeued();
    std::string response =
        service_job(engine_, *job, stats_, options_.enable_test_hooks);
    job->reply.set_value(std::move(response));
  }
}

void Server::session_loop(util::TcpConn conn) {
  // The cap's gauge must drop on EVERY exit path of the session.
  struct ActiveGuard {
    std::atomic<std::size_t>& active;
    ~ActiveGuard() { active.fetch_sub(1, std::memory_order_relaxed); }
  } guard{active_};
  std::string line;
  auto last_activity = Clock::now();
  while (!stop_.load(std::memory_order_relaxed)) {
    const util::ReadStatus status = conn.read_line(line, kTickMs);
    if (status == util::ReadStatus::kTimeout) {
      if (options_.idle_timeout_ms > 0.0 &&
          Clock::now() - last_activity >
              millis_duration(options_.idle_timeout_ms)) {
        return;  // silent client: close and free the session thread
      }
      continue;
    }
    if (status == util::ReadStatus::kClosed) return;
    if (line.empty()) continue;
    last_activity = Clock::now();

    stats_.on_request();
    std::string response;
    try {
      WireRequest request = parse_request(line);
      if (request.kind == RequestKind::kStats) {
        stats_.on_stats();
        const double uptime =
            std::chrono::duration<double>(Clock::now() - started_at_).count();
        response =
            stats_.to_json(uptime, queue_.depth(), queue_.capacity());
      } else {
        Job job;
        job.request = std::move(request);
        job.enqueued_at = Clock::now();
        const double deadline_ms = job.request.deadline_ms > 0
                                       ? job.request.deadline_ms
                                       : options_.default_deadline_ms;
        if (deadline_ms > 0) {
          job.has_deadline = true;
          job.deadline = job.enqueued_at + millis_duration(deadline_ms);
        }
        const std::string id = job.request.id;
        std::future<std::string> reply = job.reply.get_future();
        if (stop_.load(std::memory_order_relaxed)) {
          stats_.on_rejected_shutdown();
          response = rejected_response_json(id, "shutdown");
        } else if (!queue_.try_push(std::move(job))) {
          if (queue_.is_closed()) {
            stats_.on_rejected_shutdown();
            response = rejected_response_json(id, "shutdown");
          } else {
            stats_.on_rejected_queue_full();
            response = rejected_response_json(id, "queue_full");
          }
        } else {
          stats_.on_admitted();
          response = reply.get();
        }
      }
    } catch (const std::exception& e) {
      stats_.on_error();
      response = error_response_json("", e.what());
    }
    // A client that hung up mid-response is not an error worth keeping
    // the session for — write_all absorbs EPIPE (SIGPIPE is ignored
    // process-wide) and we just close our side.
    if (!conn.write_line(response)) return;
  }
}

}  // namespace wdag::serve
