#pragma once
// The `wdag serve` server: a persistent solve service over newline-
// delimited JSON on TCP (serve/protocol.hpp).
//
// Thread shape:
//
//   accept loop (run() caller) --> session thread per connection
//                                        |  parse, admit, wait
//                                        v
//                                  AdmissionQueue (bounded)
//                                        |
//                                        v
//                                  worker thread --> api::Engine
//
// ONE worker drains the queue because Engine::run_batch runs one batch
// at a time per engine — parallelism lives inside the engine's pool
// (each solve/batch fans out over its workers), not in concurrent
// drains. The engine persists across requests, so arenas stay warm and
// the cost model keeps learning from every served batch.
//
// Sessions answer "stats" requests directly (never queued): the stats
// path must stay live precisely when the queue is full. Solve/batch
// jobs carry a promise; the session thread blocks on the future, so a
// slow client never occupies the worker — only its own session thread.
//
// Shutdown (SIGINT/SIGTERM via the external stop hook, or
// request_stop()): stop accepting, tell sessions to stop reading new
// requests, close the queue, let the worker DRAIN the admitted backlog
// (in-flight work completes; drained jobs still get a response), join
// everything, exit cleanly. Refuse-new + drain-old, never drop.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "serve/admission.hpp"
#include "serve/stats.hpp"
#include "util/socket.hpp"

namespace wdag::serve {

/// Server construction knobs (CLI flags of `wdag serve`).
struct ServeOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Admission queue capacity; a full queue rejects, never buffers.
  std::size_t queue_capacity = 64;
  /// Deadline applied to requests that carry none; 0 = no default.
  double default_deadline_ms = 0.0;
  /// Engine pool threads; 0 = hardware concurrency.
  std::size_t engine_threads = 0;
  /// Default solver knobs of the embedded engine.
  core::SolveOptions solve;
  /// Live session cap; 0 = unlimited. A connection accepted while this
  /// many sessions are open is answered one clear wire error
  /// ('rejected: max_connections') and closed — a saturated server
  /// refuses loudly instead of accumulating session threads without
  /// bound.
  std::size_t max_connections = 0;
  /// Close a session after this long without a complete request line;
  /// 0 = never. Bounds the thread cost of idle clients (and of peers
  /// that vanished without a FIN).
  double idle_timeout_ms = 0.0;
  /// Honor "sleep" requests (deterministic queue-occupancy for tests;
  /// production servers leave this off and reject the type).
  bool enable_test_hooks = false;
  /// Polled by the accept loop every tick; return true to initiate
  /// graceful shutdown. The CLI wires the SIGINT/SIGTERM flag in here.
  std::function<bool()> external_stop;
};

class Server {
 public:
  /// Binds and listens immediately — port() is valid (and the port is
  /// reachable) before run() starts, so tests and scripts can connect
  /// the moment the constructor returns. Throws wdag::InternalError on
  /// bind failure.
  explicit Server(ServeOptions options);

  /// Joins everything; safe after run() returned or never ran.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  [[nodiscard]] std::uint16_t port() const;

  /// Serves until request_stop() / the external stop hook fires, then
  /// drains and returns. Call from the owning thread (the CLI) or via
  /// start().
  void run();

  /// run() on an internal thread (tests drive the server this way).
  void start();

  /// Initiates graceful shutdown; run() returns after the drain.
  void request_stop();

  /// Joins the start() thread (no-op without start()).
  void join();

  [[nodiscard]] const ServeStats& stats() const { return stats_; }

 private:
  void worker_loop();
  void session_loop(util::TcpConn conn);

  ServeOptions options_;
  util::TcpListener listener_;
  api::Engine engine_;
  AdmissionQueue queue_;
  ServeStats stats_;
  std::chrono::steady_clock::time_point started_at_;

  std::atomic<bool> stop_{false};        ///< refuse new work
  std::atomic<std::size_t> active_{0};   ///< open sessions (the cap's gauge)
  std::thread worker_;
  std::thread run_thread_;         ///< start()'s thread
  std::mutex sessions_mutex_;
  std::vector<std::thread> sessions_;
};

/// Services ONE admitted job against the engine and returns the response
/// line (never throws; failures become `status: error`). Checks the
/// deadline FIRST: a job that aged out in the queue is rejected without
/// touching the engine. Split out of the worker loop so tests can pin
/// deadline and dispatch behavior without a socket in sight.
[[nodiscard]] std::string service_job(api::Engine& engine, Job& job,
                                      ServeStats& stats,
                                      bool enable_test_hooks);

}  // namespace wdag::serve
