#include "serve/stats.hpp"

#include <utility>

#include "core/batch.hpp"
#include "core/json_min.hpp"
#include "util/build_info.hpp"

namespace wdag::serve {

void ServeStats::on_solved(std::string_view strategy, double service_ms) {
  solved_.fetch_add(1, order());
  const std::lock_guard<std::mutex> lock(mutex_);
  ++strategy_counts_[std::string(strategy)];
  if (latency_ring_.size() < kLatencyWindow) {
    latency_ring_.push_back(service_ms);
  } else {
    latency_ring_[ring_next_] = service_ms;
    ring_next_ = (ring_next_ + 1) % kLatencyWindow;
  }
}

void ServeStats::on_batch(double service_ms) {
  batches_.fetch_add(1, order());
  const std::lock_guard<std::mutex> lock(mutex_);
  if (latency_ring_.size() < kLatencyWindow) {
    latency_ring_.push_back(service_ms);
  } else {
    latency_ring_[ring_next_] = service_ms;
    ring_next_ = (ring_next_ + 1) % kLatencyWindow;
  }
}

std::string ServeStats::to_json(double uptime_seconds,
                                std::size_t queue_depth,
                                std::size_t queue_capacity) const {
  std::map<std::string, std::uint64_t> histogram;
  std::vector<double> samples;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    histogram = strategy_counts_;
    samples = latency_ring_;
  }

  core::minjson::JsonWriter strategies;
  for (const auto& [name, count] : histogram) strategies.field(name, count);

  const core::LatencyStats latency = core::latency_stats(samples);
  core::minjson::JsonWriter latency_json;
  latency_json.field("count", samples.size())
      .field("mean", latency.mean)
      .field("p50", latency.p50)
      .field("p90", latency.p90)
      .field("p99", latency.p99)
      .field("max", latency.max);

  core::minjson::JsonWriter w;
  w.field("status", "ok")
      .field("type", "stats")
      .field("version", util::version())
      .field("build", util::build_type())
      .field("arch", util::build_arch())
      .field("uptime-seconds", uptime_seconds)
      .field("queue-depth", queue_depth)
      .field("queue-capacity", queue_capacity)
      .field("connections", connections_.load(order()))
      .field("received", received_.load(order()))
      .field("stats-served", stats_served_.load(order()))
      .field("admitted", admitted_.load(order()))
      .field("dequeued", dequeued_.load(order()))
      .field("solved", solved_.load(order()))
      .field("batches", batches_.load(order()))
      .field("rejected-queue-full", rejected_queue_full_.load(order()))
      .field("rejected-deadline", rejected_deadline_.load(order()))
      .field("rejected-shutdown", rejected_shutdown_.load(order()))
      .field("rejected-max-connections",
             rejected_max_connections_.load(order()))
      .field("errors", errors_.load(order()))
      .field_raw("strategies", std::move(strategies).str())
      .field_raw("latency-ms", std::move(latency_json).str());
  return std::move(w).str();
}

}  // namespace wdag::serve
