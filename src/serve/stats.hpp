#pragma once
// Live counters of a running `wdag serve` instance, rendered on demand
// by a "stats" request. Counter bumps come from session threads and the
// worker loop concurrently; the /stats snapshot must stay cheap and
// must keep answering while the admission queue is full — that is the
// whole point of an out-of-band stats path.
//
// Counts are relaxed atomics (each is an independent monotone counter;
// a snapshot taken mid-burst may be off by in-flight increments, which
// is fine for monitoring). The per-strategy dispatch histogram and the
// latency reservoir need composite updates, so they sit behind one
// mutex taken only on solve completion and on snapshot.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wdag::serve {

/// Thread-safe statistics of one server. All counters start at zero.
class ServeStats {
 public:
  /// Most recent service latencies retained for the percentile snapshot
  /// (a bounded ring: old samples are overwritten, counters never stop).
  static constexpr std::size_t kLatencyWindow = 65536;

  ServeStats() { latency_ring_.reserve(1024); }

  // --- bumps (any thread) --------------------------------------------------
  void on_connection() { connections_.fetch_add(1, order()); }
  void on_request() { received_.fetch_add(1, order()); }
  void on_stats() { stats_served_.fetch_add(1, order()); }
  /// A job passed admission (it sits in the queue now).
  void on_admitted() { admitted_.fetch_add(1, order()); }
  /// The worker picked a job up (it left the queue).
  void on_dequeued() { dequeued_.fetch_add(1, order()); }
  void on_rejected_queue_full() { rejected_queue_full_.fetch_add(1, order()); }
  void on_rejected_deadline() { rejected_deadline_.fetch_add(1, order()); }
  void on_rejected_shutdown() { rejected_shutdown_.fetch_add(1, order()); }
  /// A connection was turned away at accept: the session cap was reached.
  void on_rejected_max_connections() {
    rejected_max_connections_.fetch_add(1, order());
  }
  void on_error() { errors_.fetch_add(1, order()); }

  /// A solve request completed: count it under its winning strategy and
  /// record its service latency.
  void on_solved(std::string_view strategy, double service_ms);

  /// A batch request completed (per-strategy counts stay per-instance
  /// inside the batch report; the histogram here tracks served solves).
  void on_batch(double service_ms);

  // --- snapshot ------------------------------------------------------------
  std::uint64_t received() const { return received_.load(order()); }
  std::uint64_t admitted() const { return admitted_.load(order()); }
  std::uint64_t dequeued() const { return dequeued_.load(order()); }
  std::uint64_t solved() const { return solved_.load(order()); }
  std::uint64_t batches() const { return batches_.load(order()); }
  std::uint64_t rejected_queue_full() const {
    return rejected_queue_full_.load(order());
  }
  std::uint64_t rejected_deadline() const {
    return rejected_deadline_.load(order());
  }
  std::uint64_t rejected_shutdown() const {
    return rejected_shutdown_.load(order());
  }
  std::uint64_t rejected_max_connections() const {
    return rejected_max_connections_.load(order());
  }
  std::uint64_t errors() const { return errors_.load(order()); }

  /// The full stats object as single-line JSON: version/build fields,
  /// uptime, queue occupancy, every counter, the per-strategy dispatch
  /// histogram (nested object), and p50/p90/p99 service latency over the
  /// retained window (core::latency_stats on a copy of the ring).
  [[nodiscard]] std::string to_json(double uptime_seconds,
                                    std::size_t queue_depth,
                                    std::size_t queue_capacity) const;

 private:
  static constexpr std::memory_order order() {
    return std::memory_order_relaxed;
  }

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> stats_served_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> dequeued_{0};
  std::atomic<std::uint64_t> solved_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> rejected_queue_full_{0};
  std::atomic<std::uint64_t> rejected_deadline_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> rejected_max_connections_{0};
  std::atomic<std::uint64_t> errors_{0};

  mutable std::mutex mutex_;  ///< guards the histogram and the ring
  std::map<std::string, std::uint64_t> strategy_counts_;
  std::vector<double> latency_ring_;  ///< grows to kLatencyWindow, then wraps
  std::size_t ring_next_ = 0;         ///< overwrite cursor once full
};

}  // namespace wdag::serve
