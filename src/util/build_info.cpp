#include "util/build_info.hpp"

// CMake defines these on this translation unit; the fallbacks keep a
// bare `c++ src/**/*.cpp` build honest about what it does not know.
#ifndef WDAG_VERSION_STRING
#define WDAG_VERSION_STRING "0.0.0-unversioned"
#endif
#ifndef WDAG_BUILD_TYPE_STRING
#define WDAG_BUILD_TYPE_STRING "unknown"
#endif
#ifndef WDAG_ARCH_STRING
#define WDAG_ARCH_STRING "unknown"
#endif

namespace wdag::util {

std::string_view version() { return WDAG_VERSION_STRING; }

std::string_view build_type() { return WDAG_BUILD_TYPE_STRING; }

std::string_view build_arch() { return WDAG_ARCH_STRING; }

std::string build_info_line() {
  std::string line = "wdag ";
  line += version();
  line += " (";
  line += build_type();
  line += ", ";
  line += build_arch();
  line += ")";
  return line;
}

}  // namespace wdag::util
