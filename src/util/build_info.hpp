#pragma once
// Build identity of this wdag binary/library: the project version plus
// the build type and architecture flags it was compiled with. Backs
// `wdag --version` and the `version`/`build` fields of the serve /stats
// response, so a fleet of servers can be audited for mixed builds.
//
// The values are baked in at compile time via -D definitions on
// build_info.cpp (see CMakeLists.txt); the header defaults keep
// non-CMake builds compiling.

#include <string>
#include <string_view>

namespace wdag::util {

/// Semantic version of the wdag project, e.g. "0.2.1".
[[nodiscard]] std::string_view version();

/// Build configuration, e.g. "Release" or "Debug".
[[nodiscard]] std::string_view build_type();

/// Target architecture, e.g. "x86_64" — with "+native" appended when the
/// build opted into WDAG_NATIVE_ARCH.
[[nodiscard]] std::string_view build_arch();

/// One-line identity, e.g. "wdag 0.2.1 (Release, x86_64)".
[[nodiscard]] std::string build_info_line();

}  // namespace wdag::util
