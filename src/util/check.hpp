#pragma once
// Error-handling primitives shared by every wdag module.
//
// The library distinguishes three failure classes:
//  * precondition violations by the caller  -> wdag::InvalidArgument
//  * violated internal invariants (bugs)    -> wdag::InternalError
//  * inputs outside an algorithm's domain   -> wdag::DomainError
//    (e.g. running the Theorem-1 colorer on a DAG that has an internal
//    cycle, which the theorem explicitly excludes)
//
// All three derive from std::runtime_error so callers can catch broadly.

#include <sstream>
#include <stdexcept>
#include <string>

namespace wdag {

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public std::runtime_error {
 public:
  explicit InvalidArgument(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant fails; indicates a library bug.
class InternalError : public std::runtime_error {
 public:
  explicit InternalError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input is structurally outside an algorithm's domain.
class DomainError : public std::runtime_error {
 public:
  explicit DomainError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
template <class Err>
[[noreturn]] inline void fail(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": " << msg;
  throw Err(os.str());
}
}  // namespace detail

}  // namespace wdag

/// Precondition check: throws wdag::InvalidArgument when `cond` is false.
#define WDAG_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond))                                                             \
      ::wdag::detail::fail<::wdag::InvalidArgument>(__FILE__, __LINE__,      \
                                                    std::string(msg));       \
  } while (0)

/// Internal invariant check: throws wdag::InternalError when `cond` is false.
#define WDAG_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (!(cond))                                                             \
      ::wdag::detail::fail<::wdag::InternalError>(__FILE__, __LINE__,        \
                                                  std::string(msg));         \
  } while (0)

/// Domain check: throws wdag::DomainError when `cond` is false.
#define WDAG_DOMAIN(cond, msg)                                               \
  do {                                                                       \
    if (!(cond))                                                             \
      ::wdag::detail::fail<::wdag::DomainError>(__FILE__, __LINE__,          \
                                                std::string(msg));           \
  } while (0)
