#include "util/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/check.hpp"

namespace wdag::util {

Cli::Cli(int argc, const char* const* argv) {
  WDAG_REQUIRE(argc >= 1, "Cli: argc must be >= 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    WDAG_REQUIRE(!arg.empty(), "Cli: bare '--' is not a valid flag");
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      std::string value = arg.substr(eq + 1);
      // `--a=--b` is a flag swallowed as a value, never a real value:
      // no flag in this tool takes a `--`-prefixed string.
      WDAG_REQUIRE(value.rfind("--", 0) != 0,
                   "Cli: flag --" + arg.substr(0, eq) + " swallowed flag '" +
                       value + "' as its value");
      flags_[arg.substr(0, eq)] = std::move(value);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";  // boolean flag
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  WDAG_REQUIRE(end && *end == '\0' && !it->second.empty(),
               "Cli: flag --" + name + " expects an integer, got '" +
                   it->second + "'");
  WDAG_REQUIRE(errno != ERANGE,
               "Cli: flag --" + name + " is out of range: '" + it->second +
                   "' does not fit a 64-bit integer");
  return v;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(it->second.c_str(), &end);
  WDAG_REQUIRE(end && *end == '\0' && !it->second.empty(),
               "Cli: flag --" + name + " expects a number, got '" +
                   it->second + "'");
  WDAG_REQUIRE(errno != ERANGE && std::isfinite(v),
               "Cli: flag --" + name + " expects a finite number, got '" +
                   it->second + "'");
  return v;
}

}  // namespace wdag::util
