#include "util/cli.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace wdag::util {

Cli::Cli(int argc, const char* const* argv) {
  WDAG_REQUIRE(argc >= 1, "Cli: argc must be >= 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    WDAG_REQUIRE(!arg.empty(), "Cli: bare '--' is not a valid flag");
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";  // boolean flag
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  WDAG_REQUIRE(end && *end == '\0' && !it->second.empty(),
               "Cli: flag --" + name + " expects an integer, got '" +
                   it->second + "'");
  return v;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  WDAG_REQUIRE(end && *end == '\0' && !it->second.empty(),
               "Cli: flag --" + name + " expects a number, got '" +
                   it->second + "'");
  return v;
}

}  // namespace wdag::util
