#pragma once
// Minimal command-line flag parsing for the example binaries.
// Supports `--name value`, `--name=value` and boolean `--name`.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wdag::util {

/// Parsed command line: flags plus positional arguments.
class Cli {
 public:
  /// Parses argv; throws wdag::InvalidArgument on malformed flags.
  Cli(int argc, const char* const* argv);

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

  /// True when `--name` was present (with or without value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// String flag with default.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;

  /// Integer flag with default; throws on non-numeric values.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;

  /// Double flag with default; throws on non-numeric values.
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace wdag::util
