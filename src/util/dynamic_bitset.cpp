#include "util/dynamic_bitset.hpp"

#include <bit>
#include <cstring>
#include <new>

#include "util/check.hpp"
#include "util/simd.hpp"

namespace wdag::util {

// ------------------------------ view ----------------------------------

bool ConstBitsetView::test(std::size_t i) const {
  WDAG_REQUIRE(i < bits_, "ConstBitsetView::test: index out of range");
  return test_unchecked(i);
}

std::size_t ConstBitsetView::count() const {
  std::size_t c = 0;
  const std::size_t nw = num_words();
  for (std::size_t w = 0; w < nw; ++w) {
    c += static_cast<std::size_t>(std::popcount(words_[w]));
  }
  return c;
}

bool ConstBitsetView::none() const {
  const std::size_t nw = num_words();
  for (std::size_t w = 0; w < nw; ++w) {
    if (words_[w] != 0) return false;
  }
  return true;
}

std::size_t ConstBitsetView::find_first() const {
  const std::size_t nw = num_words();
  for (std::size_t w = 0; w < nw; ++w) {
    if (words_[w] != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return bits_;
}

std::size_t ConstBitsetView::find_next(std::size_t i) const {
  // Guard before incrementing: ++SIZE_MAX wraps to 0 and would silently
  // restart the scan at the front instead of reporting exhaustion.
  if (i >= bits_) return bits_;
  ++i;
  if (i >= bits_) return bits_;
  std::size_t w = i / 64;
  std::uint64_t cur = words_[w] & (~std::uint64_t{0} << (i % 64));
  const std::size_t nw = num_words();
  while (true) {
    if (cur != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(cur));
    }
    if (++w >= nw) return bits_;
    cur = words_[w];
  }
}

std::size_t ConstBitsetView::find_first_zero() const {
  const std::size_t nw = num_words();
  const std::size_t w = simd::find_not_ones(words_, 0, nw);
  if (w == nw) return bits_;
  const std::size_t i =
      w * 64 + static_cast<std::size_t>(std::countr_one(words_[w]));
  return std::min(i, bits_);  // tail zeros past size() do not count
}

std::size_t ConstBitsetView::find_next_zero(std::size_t i) const {
  // Same wraparound guard as find_next: i >= size() must mean "none".
  if (i >= bits_) return bits_;
  ++i;
  if (i >= bits_) return bits_;
  const std::size_t w = i / 64;
  // Ones below position i hide the already-scanned prefix of the word.
  const std::uint64_t cur =
      words_[w] | ((i % 64) == 0 ? 0 : (~std::uint64_t{0} >> (64 - i % 64)));
  if (cur != ~std::uint64_t{0}) {
    const std::size_t j =
        w * 64 + static_cast<std::size_t>(std::countr_one(cur));
    return std::min(j, bits_);
  }
  const std::size_t nw = num_words();
  const std::size_t next = simd::find_not_ones(words_, w + 1, nw);
  if (next == nw) return bits_;
  const std::size_t j =
      next * 64 + static_cast<std::size_t>(std::countr_one(words_[next]));
  return std::min(j, bits_);
}

std::vector<std::size_t> ConstBitsetView::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t i = find_first(); i < bits_; i = find_next(i)) {
    out.push_back(i);
  }
  return out;
}

// ----------------------------- bitset ---------------------------------

DynamicBitset::DynamicBitset(std::size_t bits)
    : data_((bits + 63) / 64, 0), bits_(bits) {}

DynamicBitset::DynamicBitset(ConstBitsetView view)
    : data_(view.data(), view.data() + view.num_words()), bits_(view.size()) {}

void DynamicBitset::clear_all() {
  simd::zero_words(data_.data(), data_.size());
}

void DynamicBitset::reset_to_zero(std::size_t bits) {
  const std::size_t need = (bits + 63) / 64;
  if (need <= data_.size()) {
    data_.resize(need);
    simd::zero_words(data_.data(), data_.size());
  } else {
    data_.assign(need, 0);
  }
  bits_ = bits;
}

void DynamicBitset::set_all() {
  for (auto& w : data_) w = ~std::uint64_t{0};
  if (bits_ % 64 != 0 && !data_.empty()) {
    data_.back() &= (std::uint64_t{1} << (bits_ % 64)) - 1;
  }
}

void DynamicBitset::set(std::size_t i) {
  WDAG_REQUIRE(i < bits_, "DynamicBitset::set: index out of range");
  data_[i / 64] |= std::uint64_t{1} << (i % 64);
}

void DynamicBitset::reset(std::size_t i) {
  WDAG_REQUIRE(i < bits_, "DynamicBitset::reset: index out of range");
  data_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
}

bool DynamicBitset::test(std::size_t i) const {
  WDAG_REQUIRE(i < bits_, "DynamicBitset::test: index out of range");
  return (data_[i / 64] >> (i % 64)) & 1;
}

std::size_t DynamicBitset::count() const { return view().count(); }

bool DynamicBitset::none() const { return view().none(); }

bool DynamicBitset::intersects(ConstBitsetView other) const {
  const std::size_t n = std::min(data_.size(), other.num_words());
  for (std::size_t i = 0; i < n; ++i) {
    if (data_[i] & other.word(i)) return true;
  }
  return false;
}

DynamicBitset& DynamicBitset::operator|=(ConstBitsetView other) {
  WDAG_REQUIRE(bits_ == other.size(), "DynamicBitset: size mismatch in |=");
  simd::or_words(data_.data(), other.data(), data_.size());
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(ConstBitsetView other) {
  WDAG_REQUIRE(bits_ == other.size(), "DynamicBitset: size mismatch in &=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] &= other.word(i);
  return *this;
}

void DynamicBitset::or_into(DynamicBitset& dst) const {
  WDAG_REQUIRE(bits_ <= dst.bits_, "DynamicBitset: or_into target too small");
  simd::or_words(dst.data_.data(), data_.data(), data_.size());
}

void DynamicBitset::and_not(ConstBitsetView other) {
  WDAG_REQUIRE(bits_ == other.size(),
               "DynamicBitset: size mismatch in and_not");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] &= ~other.word(i);
}

std::size_t DynamicBitset::find_first() const { return view().find_first(); }

std::size_t DynamicBitset::find_next(std::size_t i) const {
  return view().find_next(i);
}

std::size_t DynamicBitset::find_first_zero() const {
  return view().find_first_zero();
}

std::size_t DynamicBitset::find_next_zero(std::size_t i) const {
  return view().find_next_zero(i);
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  return view().to_indices();
}

// -------------------------- aligned words -----------------------------

AlignedWords::AlignedWords(std::size_t words) : words_(words) {
  if (words_ == 0) return;
  data_ = static_cast<std::uint64_t*>(::operator new(
      words_ * sizeof(std::uint64_t), std::align_val_t{kBitsetAlignment}));
  std::memset(data_, 0, words_ * sizeof(std::uint64_t));
}

AlignedWords::AlignedWords(AlignedWords&& other) noexcept
    : data_(other.data_), words_(other.words_) {
  other.data_ = nullptr;
  other.words_ = 0;
}

AlignedWords& AlignedWords::operator=(AlignedWords&& other) noexcept {
  if (this != &other) {
    this->~AlignedWords();
    data_ = other.data_;
    words_ = other.words_;
    other.data_ = nullptr;
    other.words_ = 0;
  }
  return *this;
}

AlignedWords::~AlignedWords() {
  if (data_ != nullptr) {
    ::operator delete(data_, std::align_val_t{kBitsetAlignment});
  }
}

void AlignedWords::zero() { simd::zero_words(data_, words_); }

}  // namespace wdag::util
