#include "util/dynamic_bitset.hpp"

#include <bit>

#include "util/check.hpp"

namespace wdag::util {

DynamicBitset::DynamicBitset(std::size_t bits)
    : data_((bits + 63) / 64, 0), bits_(bits) {}

void DynamicBitset::clear_all() {
  for (auto& w : data_) w = 0;
}

void DynamicBitset::reset_to_zero(std::size_t bits) {
  const std::size_t need = (bits + 63) / 64;
  if (need <= data_.size()) {
    data_.resize(need);
    for (auto& w : data_) w = 0;
  } else {
    data_.assign(need, 0);
  }
  bits_ = bits;
}

void DynamicBitset::set_all() {
  for (auto& w : data_) w = ~std::uint64_t{0};
  if (bits_ % 64 != 0 && !data_.empty()) {
    data_.back() &= (std::uint64_t{1} << (bits_ % 64)) - 1;
  }
}

void DynamicBitset::set(std::size_t i) {
  WDAG_REQUIRE(i < bits_, "DynamicBitset::set: index out of range");
  data_[i / 64] |= std::uint64_t{1} << (i % 64);
}

void DynamicBitset::reset(std::size_t i) {
  WDAG_REQUIRE(i < bits_, "DynamicBitset::reset: index out of range");
  data_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
}

bool DynamicBitset::test(std::size_t i) const {
  WDAG_REQUIRE(i < bits_, "DynamicBitset::test: index out of range");
  return (data_[i / 64] >> (i % 64)) & 1;
}

std::size_t DynamicBitset::count() const {
  std::size_t c = 0;
  for (auto w : data_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool DynamicBitset::none() const {
  for (auto w : data_)
    if (w != 0) return false;
  return true;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  const std::size_t n = std::min(data_.size(), other.data_.size());
  for (std::size_t i = 0; i < n; ++i)
    if (data_[i] & other.data_[i]) return true;
  return false;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  WDAG_REQUIRE(bits_ == other.bits_, "DynamicBitset: size mismatch in |=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] |= other.data_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  WDAG_REQUIRE(bits_ == other.bits_, "DynamicBitset: size mismatch in &=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] &= other.data_[i];
  return *this;
}

void DynamicBitset::or_into(DynamicBitset& dst) const {
  WDAG_REQUIRE(bits_ <= dst.bits_, "DynamicBitset: or_into target too small");
  for (std::size_t i = 0; i < data_.size(); ++i) dst.data_[i] |= data_[i];
}

void DynamicBitset::and_not(const DynamicBitset& other) {
  WDAG_REQUIRE(bits_ == other.bits_, "DynamicBitset: size mismatch in and_not");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] &= ~other.data_[i];
}

std::size_t DynamicBitset::find_first() const {
  for (std::size_t w = 0; w < data_.size(); ++w) {
    if (data_[w] != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(data_[w]));
    }
  }
  return bits_;
}

std::size_t DynamicBitset::find_next(std::size_t i) const {
  ++i;
  if (i >= bits_) return bits_;
  std::size_t w = i / 64;
  std::uint64_t cur = data_[w] & (~std::uint64_t{0} << (i % 64));
  while (true) {
    if (cur != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(cur));
    }
    if (++w >= data_.size()) return bits_;
    cur = data_[w];
  }
}

std::size_t DynamicBitset::find_first_zero() const {
  for (std::size_t w = 0; w < data_.size(); ++w) {
    if (data_[w] != ~std::uint64_t{0}) {
      const std::size_t i =
          w * 64 + static_cast<std::size_t>(std::countr_one(data_[w]));
      return std::min(i, bits_);  // tail zeros past size() do not count
    }
  }
  return bits_;
}

std::size_t DynamicBitset::find_next_zero(std::size_t i) const {
  ++i;
  if (i >= bits_) return bits_;
  std::size_t w = i / 64;
  // Ones below position i hide the already-scanned prefix of the word.
  std::uint64_t cur =
      data_[w] | ((i % 64) == 0 ? 0 : (~std::uint64_t{0} >> (64 - i % 64)));
  while (true) {
    if (cur != ~std::uint64_t{0}) {
      const std::size_t j =
          w * 64 + static_cast<std::size_t>(std::countr_one(cur));
      return std::min(j, bits_);
    }
    if (++w >= data_.size()) return bits_;
    cur = data_[w];
  }
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t i = find_first(); i < bits_; i = find_next(i)) out.push_back(i);
  return out;
}

}  // namespace wdag::util
