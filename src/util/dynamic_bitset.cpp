#include "util/dynamic_bitset.hpp"

#include <bit>

#include "util/check.hpp"

namespace wdag::util {

DynamicBitset::DynamicBitset(std::size_t bits)
    : data_((bits + 63) / 64, 0), bits_(bits) {}

void DynamicBitset::clear_all() {
  for (auto& w : data_) w = 0;
}

void DynamicBitset::set_all() {
  for (auto& w : data_) w = ~std::uint64_t{0};
  if (bits_ % 64 != 0 && !data_.empty()) {
    data_.back() &= (std::uint64_t{1} << (bits_ % 64)) - 1;
  }
}

void DynamicBitset::set(std::size_t i) {
  WDAG_REQUIRE(i < bits_, "DynamicBitset::set: index out of range");
  data_[i / 64] |= std::uint64_t{1} << (i % 64);
}

void DynamicBitset::reset(std::size_t i) {
  WDAG_REQUIRE(i < bits_, "DynamicBitset::reset: index out of range");
  data_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
}

bool DynamicBitset::test(std::size_t i) const {
  WDAG_REQUIRE(i < bits_, "DynamicBitset::test: index out of range");
  return (data_[i / 64] >> (i % 64)) & 1;
}

std::size_t DynamicBitset::count() const {
  std::size_t c = 0;
  for (auto w : data_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool DynamicBitset::none() const {
  for (auto w : data_)
    if (w != 0) return false;
  return true;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  const std::size_t n = std::min(data_.size(), other.data_.size());
  for (std::size_t i = 0; i < n; ++i)
    if (data_[i] & other.data_[i]) return true;
  return false;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  WDAG_REQUIRE(bits_ == other.bits_, "DynamicBitset: size mismatch in |=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] |= other.data_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  WDAG_REQUIRE(bits_ == other.bits_, "DynamicBitset: size mismatch in &=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] &= other.data_[i];
  return *this;
}

void DynamicBitset::and_not(const DynamicBitset& other) {
  WDAG_REQUIRE(bits_ == other.bits_, "DynamicBitset: size mismatch in and_not");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] &= ~other.data_[i];
}

std::size_t DynamicBitset::find_first() const {
  for (std::size_t w = 0; w < data_.size(); ++w) {
    if (data_[w] != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(data_[w]));
    }
  }
  return bits_;
}

std::size_t DynamicBitset::find_next(std::size_t i) const {
  ++i;
  if (i >= bits_) return bits_;
  std::size_t w = i / 64;
  std::uint64_t cur = data_[w] & (~std::uint64_t{0} << (i % 64));
  while (true) {
    if (cur != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(cur));
    }
    if (++w >= data_.size()) return bits_;
    cur = data_[w];
  }
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t i = find_first(); i < bits_; i = find_next(i)) out.push_back(i);
  return out;
}

}  // namespace wdag::util
