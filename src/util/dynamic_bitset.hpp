#pragma once
// Compact dynamic bitset used for conflict-graph adjacency rows and
// reachability closures. Only the operations the library needs are
// provided; everything is bounds-checked in the throwing API and raw in
// the *_unchecked variants used by inner loops.

#include <cstdint>
#include <vector>

namespace wdag::util {

/// Fixed-capacity-after-construction bitset backed by 64-bit words.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `bits` zero bits.
  explicit DynamicBitset(std::size_t bits);

  /// Number of bits.
  [[nodiscard]] std::size_t size() const { return bits_; }

  /// Number of backing 64-bit words.
  [[nodiscard]] std::size_t num_words() const { return data_.size(); }

  /// Raw word `w` (bits [64w, 64w+64)); tail bits beyond size() are zero.
  [[nodiscard]] std::uint64_t word(std::size_t w) const { return data_[w]; }

  /// Re-targets the bitset to `bits` zero bits, reusing the backing
  /// storage when it is already large enough. The scratch-arena primitive:
  /// inner loops call this instead of constructing fresh bitsets.
  void reset_to_zero(std::size_t bits);

  /// Sets every bit to zero.
  void clear_all();

  /// Sets every bit to one (tail bits stay zero).
  void set_all();

  void set(std::size_t i);
  void reset(std::size_t i);
  [[nodiscard]] bool test(std::size_t i) const;

  /// Unchecked variants for inner loops that already guarantee i < size().
  void set_unchecked(std::size_t i) {
    data_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  [[nodiscard]] bool test_unchecked(std::size_t i) const {
    return (data_[i / 64] >> (i % 64)) & 1;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const;

  /// True when no bit is set.
  [[nodiscard]] bool none() const;

  /// True when this and other share at least one set bit.
  [[nodiscard]] bool intersects(const DynamicBitset& other) const;

  /// this |= other (sizes must match).
  DynamicBitset& operator|=(const DynamicBitset& other);

  /// dst |= this, word-parallel, where dst may be larger than this.
  /// The group-OR conflict-graph build uses it to splat one arc group's
  /// membership mask into every member's adjacency row.
  void or_into(DynamicBitset& dst) const;

  /// this &= other (sizes must match).
  DynamicBitset& operator&=(const DynamicBitset& other);

  /// this &= ~other (sizes must match).
  void and_not(const DynamicBitset& other);

  /// Index of the first set bit, or size() when none.
  [[nodiscard]] std::size_t find_first() const;

  /// Index of the first set bit strictly after i, or size() when none.
  [[nodiscard]] std::size_t find_next(std::size_t i) const;

  /// Index of the first zero bit, or size() when all bits are one.
  /// First-fit color selection is one call on the neighbor-color mask.
  [[nodiscard]] std::size_t find_first_zero() const;

  /// Index of the first zero bit strictly after i, or size() when none.
  [[nodiscard]] std::size_t find_next_zero(std::size_t i) const;

  /// Indices of all set bits in increasing order.
  [[nodiscard]] std::vector<std::size_t> to_indices() const;

  bool operator==(const DynamicBitset& other) const = default;

 private:
  [[nodiscard]] std::size_t words() const { return data_.size(); }

  std::vector<std::uint64_t> data_;
  std::size_t bits_ = 0;
};

}  // namespace wdag::util
