#pragma once
// Compact dynamic bitset used for conflict-graph adjacency rows and
// reachability closures. Only the operations the library needs are
// provided; everything is bounds-checked in the throwing API and raw in
// the *_unchecked variants used by inner loops.
//
// Three types share one bit layout (LSB-first 64-bit words, tail bits
// beyond size() always zero):
//   - DynamicBitset: owning, resizable-by-reset scratch bitset.
//   - ConstBitsetView: non-owning read view, so containers that pack many
//     rows into one allocation (ConflictGraph's word pool) can hand out
//     rows without copying.
//   - AlignedWords: raw 64-byte-aligned word storage for those packed
//     containers, sized for the SIMD kernels' full-cache-line streams.
// The word-level operations dispatch to the runtime-selected SIMD kernels
// in util/simd.hpp (internal); every tier is byte-identical by test.

#include <cstdint>
#include <vector>

namespace wdag::util {

/// Alignment (bytes) of every AlignedWords allocation: one full cache
/// line, so AVX-512 rows never straddle lines.
inline constexpr std::size_t kBitsetAlignment = 64;

/// Non-owning read-only view of a bitset: a word pointer plus a bit
/// count. The referenced words must stay alive and unchanged while the
/// view is used, and bits beyond size() in the last word must be zero —
/// both hold for ConflictGraph rows, the only producer in this library.
class ConstBitsetView {
 public:
  ConstBitsetView() = default;
  ConstBitsetView(const std::uint64_t* words, std::size_t bits)
      : words_(words), bits_(bits) {}

  /// Number of bits.
  [[nodiscard]] std::size_t size() const { return bits_; }

  /// Number of 64-bit words covering size() bits.
  [[nodiscard]] std::size_t num_words() const { return (bits_ + 63) / 64; }

  /// Raw word `w` (bits [64w, 64w+64)).
  [[nodiscard]] std::uint64_t word(std::size_t w) const { return words_[w]; }

  /// Raw word pointer (null iff default-constructed with zero bits).
  [[nodiscard]] const std::uint64_t* data() const { return words_; }

  [[nodiscard]] bool test(std::size_t i) const;
  [[nodiscard]] bool test_unchecked(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const;

  /// True when no bit is set.
  [[nodiscard]] bool none() const;

  /// Index of the first set bit, or size() when none.
  [[nodiscard]] std::size_t find_first() const;

  /// Index of the first set bit strictly after i, or size() when none.
  /// Any i >= size() (including SIZE_MAX) returns size().
  [[nodiscard]] std::size_t find_next(std::size_t i) const;

  /// Index of the first zero bit, or size() when all bits are one.
  /// First-fit color selection is one call on the neighbor-color mask.
  [[nodiscard]] std::size_t find_first_zero() const;

  /// Index of the first zero bit strictly after i, or size() when none.
  /// Any i >= size() (including SIZE_MAX) returns size().
  [[nodiscard]] std::size_t find_next_zero(std::size_t i) const;

  /// Indices of all set bits in increasing order.
  [[nodiscard]] std::vector<std::size_t> to_indices() const;

 private:
  const std::uint64_t* words_ = nullptr;
  std::size_t bits_ = 0;
};

/// Fixed-capacity-after-construction bitset backed by 64-bit words.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `bits` zero bits.
  explicit DynamicBitset(std::size_t bits);

  /// Copies the view's bits into owned storage. Explicit so a view never
  /// silently materializes an allocation (and so the defaulted == below
  /// cannot be reached through an implicit conversion).
  explicit DynamicBitset(ConstBitsetView view);

  /// Every DynamicBitset reads as a view of itself.
  [[nodiscard]] operator ConstBitsetView() const {  // NOLINT(google-explicit-constructor)
    return {data_.data(), bits_};
  }

  /// Number of bits.
  [[nodiscard]] std::size_t size() const { return bits_; }

  /// Number of backing 64-bit words.
  [[nodiscard]] std::size_t num_words() const { return data_.size(); }

  /// Raw word `w` (bits [64w, 64w+64)); tail bits beyond size() are zero.
  [[nodiscard]] std::uint64_t word(std::size_t w) const { return data_[w]; }

  /// Re-targets the bitset to `bits` zero bits, reusing the backing
  /// storage when it is already large enough. The scratch-arena primitive:
  /// inner loops call this instead of constructing fresh bitsets.
  void reset_to_zero(std::size_t bits);

  /// Sets every bit to zero.
  void clear_all();

  /// Sets every bit to one (tail bits stay zero).
  void set_all();

  void set(std::size_t i);
  void reset(std::size_t i);
  [[nodiscard]] bool test(std::size_t i) const;

  /// Unchecked variants for inner loops that already guarantee i < size().
  void set_unchecked(std::size_t i) {
    data_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  [[nodiscard]] bool test_unchecked(std::size_t i) const {
    return (data_[i / 64] >> (i % 64)) & 1;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const;

  /// True when no bit is set.
  [[nodiscard]] bool none() const;

  /// True when this and other share at least one set bit.
  [[nodiscard]] bool intersects(ConstBitsetView other) const;

  /// this |= other (sizes must match).
  DynamicBitset& operator|=(ConstBitsetView other);

  /// dst |= this, word-parallel, where dst may be larger than this.
  /// The group-OR conflict-graph build uses it to splat one arc group's
  /// membership mask into every member's adjacency row.
  void or_into(DynamicBitset& dst) const;

  /// this &= other (sizes must match).
  DynamicBitset& operator&=(ConstBitsetView other);

  /// this &= ~other (sizes must match).
  void and_not(ConstBitsetView other);

  /// Index of the first set bit, or size() when none.
  [[nodiscard]] std::size_t find_first() const;

  /// Index of the first set bit strictly after i, or size() when none.
  /// Any i >= size() (including SIZE_MAX) returns size().
  [[nodiscard]] std::size_t find_next(std::size_t i) const;

  /// Index of the first zero bit, or size() when all bits are one.
  /// First-fit color selection is one call on the neighbor-color mask.
  [[nodiscard]] std::size_t find_first_zero() const;

  /// Index of the first zero bit strictly after i, or size() when none.
  /// Any i >= size() (including SIZE_MAX) returns size().
  [[nodiscard]] std::size_t find_next_zero(std::size_t i) const;

  /// Indices of all set bits in increasing order.
  [[nodiscard]] std::vector<std::size_t> to_indices() const;

  bool operator==(const DynamicBitset& other) const = default;

 private:
  [[nodiscard]] std::size_t words() const { return data_.size(); }
  [[nodiscard]] ConstBitsetView view() const { return {data_.data(), bits_}; }

  std::vector<std::uint64_t> data_;
  std::size_t bits_ = 0;
};

/// Move-only 64-byte-aligned zero-initialized array of 64-bit words.
/// Backing storage for packed bitset pools (one allocation, many rows)
/// so the SIMD OR/zero kernels stream whole cache lines.
class AlignedWords {
 public:
  AlignedWords() = default;

  /// Allocates `words` zeroed 64-bit words at kBitsetAlignment.
  explicit AlignedWords(std::size_t words);

  AlignedWords(const AlignedWords&) = delete;
  AlignedWords& operator=(const AlignedWords&) = delete;
  AlignedWords(AlignedWords&& other) noexcept;
  AlignedWords& operator=(AlignedWords&& other) noexcept;
  ~AlignedWords();

  [[nodiscard]] std::uint64_t* data() { return data_; }
  [[nodiscard]] const std::uint64_t* data() const { return data_; }

  /// Capacity in 64-bit words.
  [[nodiscard]] std::size_t size() const { return words_; }

  /// Sets every word to zero (dispatched kernel).
  void zero();

 private:
  std::uint64_t* data_ = nullptr;
  std::size_t words_ = 0;
};

}  // namespace wdag::util
