#pragma once
// Minimal JSON string escaping shared by every emitter (api/sink.cpp,
// core/shard.cpp): quotes, backslashes and control characters. One
// implementation so an escaping fix can never silently diverge between
// layers.

#include <string>
#include <string_view>

namespace wdag::util {

/// Appends `s` to `out` as a quoted JSON string.
inline void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace wdag::util
