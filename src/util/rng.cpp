#include "util/rng.hpp"

#include "util/check.hpp"

namespace wdag::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // All-zero state is the one fixed point of xoshiro; splitmix cannot
  // produce four zero outputs in a row, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  WDAG_REQUIRE(bound > 0, "Xoshiro256::below: bound must be positive");
  // Lemire's method: multiply into a 128-bit product; reject the biased
  // low fringe so every residue is equally likely.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::range(std::int64_t lo, std::int64_t hi) {
  WDAG_REQUIRE(lo <= hi, "Xoshiro256::range: lo must be <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + below(span));
}

double Xoshiro256::uniform() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Xoshiro256::index(std::size_t n) {
  WDAG_REQUIRE(n > 0, "Xoshiro256::index: container must be non-empty");
  return static_cast<std::size_t>(below(n));
}

Xoshiro256 Xoshiro256::split() {
  // Derive a child seed from fresh output; streams are effectively
  // independent for our instance-generation purposes.
  return Xoshiro256((*this)() ^ 0xD2B74407B1CE6E93ULL);
}

}  // namespace wdag::util
