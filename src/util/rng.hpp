#pragma once
// Deterministic pseudo-random number generation for generators, property
// tests and benchmark sweeps.
//
// We ship our own xoshiro256** + splitmix64 instead of <random> engines so
// that instance streams are bit-reproducible across standard libraries —
// benchmark tables in EXPERIMENTS.md must be regenerable on any platform.

#include <array>
#include <cstdint>
#include <vector>

namespace wdag::util {

/// splitmix64: used to seed xoshiro and as a cheap standalone mixer.
/// Passes BigCrush when used as a 64-bit stream.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can be used
/// with <random> distributions if desired.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next 64 random bits.
  result_type operator()();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// Fisher–Yates shuffle of a vector.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index for a container of size n (>0).
  std::size_t index(std::size_t n);

  /// Derive an independent child generator (for parallel workers).
  Xoshiro256 split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace wdag::util
