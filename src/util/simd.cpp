#include "util/simd.hpp"

#include <cstdlib>
#include <string>

#include "util/check.hpp"

#if defined(__x86_64__) || defined(__amd64__)
#define WDAG_SIMD_X86 1
#include <emmintrin.h>  // SSE2: the x86-64 ABI baseline, no extra -m flag
#else
#define WDAG_SIMD_X86 0
#endif

namespace wdag::util::simd {

namespace detail {
// Provided by the per-ISA translation units (simd_avx2.cpp,
// simd_avx512.cpp); null when the build could not compile that tier.
const Kernels* avx2_kernels();
const Kernels* avx512_kernels();
}  // namespace detail

namespace {

// ------------------------------ scalar --------------------------------

void scalar_or_words(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void scalar_zero_words(std::uint64_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
}

std::size_t scalar_find_not_ones(const std::uint64_t* words, std::size_t from,
                                 std::size_t n) {
  for (std::size_t i = from; i < n; ++i) {
    if (words[i] != ~std::uint64_t{0}) return i;
  }
  return n;
}

void scalar_or_rows(std::uint64_t* pool, std::size_t stride,
                    const std::uint32_t* ids, std::size_t count,
                    const std::uint64_t* src, std::size_t words) {
  for (std::size_t r = 0; r < count; ++r) {
    std::uint64_t* dst = pool + static_cast<std::size_t>(ids[r]) * stride;
    for (std::size_t j = 0; j < words; ++j) dst[j] |= src[j];
  }
}

constexpr Kernels kScalarKernels{scalar_or_words, scalar_zero_words,
                                 scalar_find_not_ones, scalar_or_rows};

// ------------------------------- sse2 ---------------------------------

#if WDAG_SIMD_X86

void sse2_or_words(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i a1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 2));
    __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_or_si128(a0, b0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 2),
                     _mm_or_si128(a1, b1));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void sse2_zero_words(std::uint64_t* dst, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), zero);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 2), zero);
  }
  for (; i < n; ++i) dst[i] = 0;
}

std::size_t sse2_find_not_ones(const std::uint64_t* words, std::size_t from,
                               std::size_t n) {
  const __m128i ones = _mm_set1_epi64x(-1);
  std::size_t i = from;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi32(v, ones)) != 0xFFFF) {
      return words[i] != ~std::uint64_t{0} ? i : i + 1;
    }
  }
  for (; i < n; ++i) {
    if (words[i] != ~std::uint64_t{0}) return i;
  }
  return n;
}

void sse2_or_rows(std::uint64_t* pool, std::size_t stride,
                  const std::uint32_t* ids, std::size_t count,
                  const std::uint64_t* src, std::size_t words) {
  for (std::size_t r = 0; r < count; ++r) {
    sse2_or_words(pool + static_cast<std::size_t>(ids[r]) * stride, src,
                  words);
  }
}

constexpr Kernels kSse2Kernels{sse2_or_words, sse2_zero_words,
                               sse2_find_not_ones, sse2_or_rows};

#endif  // WDAG_SIMD_X86

// ----------------------------- dispatch -------------------------------

const Kernels* table_for(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return &kScalarKernels;
    case IsaTier::kSse2:
#if WDAG_SIMD_X86
      return &kSse2Kernels;
#else
      return nullptr;
#endif
    case IsaTier::kAvx2:
      return detail::avx2_kernels();
    case IsaTier::kAvx512:
      return detail::avx512_kernels();
  }
  return nullptr;
}

bool cpu_supports(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return true;
#if WDAG_SIMD_X86 && defined(__GNUC__)
    case IsaTier::kSse2:
      return true;  // x86-64 ABI baseline
    case IsaTier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case IsaTier::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
#endif
    default:
      return false;
  }
}

bool reachable(IsaTier tier) {
  return table_for(tier) != nullptr && cpu_supports(tier);
}

IsaTier parse_force_isa(const char* value) {
  const std::string v(value);
  IsaTier tier;
  if (v == "scalar") {
    tier = IsaTier::kScalar;
  } else if (v == "sse2") {
    tier = IsaTier::kSse2;
  } else if (v == "avx2") {
    tier = IsaTier::kAvx2;
  } else if (v == "avx512") {
    tier = IsaTier::kAvx512;
  } else {
    WDAG_REQUIRE(false, "WDAG_FORCE_ISA='" + v +
                            "' is not a tier (scalar | sse2 | avx2 | avx512)");
  }
  WDAG_REQUIRE(reachable(tier),
               "WDAG_FORCE_ISA=" + v + " is not reachable on this machine " +
                   "(CPU/build supports up to '" +
                   tier_name(detected_tier()) + "')");
  return tier;
}

struct DispatchState {
  IsaTier tier;
  const Kernels* table;
};

DispatchState& dispatch_state() {
  static DispatchState state = [] {
    IsaTier tier = detected_tier();
    if (const char* forced = std::getenv("WDAG_FORCE_ISA")) {
      tier = parse_force_isa(forced);
    }
    return DispatchState{tier, table_for(tier)};
  }();
  return state;
}

}  // namespace

const char* tier_name(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kSse2:
      return "sse2";
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

IsaTier detected_tier() {
  static const IsaTier best = [] {
    IsaTier tier = IsaTier::kScalar;
    for (const IsaTier candidate :
         {IsaTier::kSse2, IsaTier::kAvx2, IsaTier::kAvx512}) {
      if (reachable(candidate)) tier = candidate;
    }
    return tier;
  }();
  return best;
}

IsaTier active_tier() { return dispatch_state().tier; }

std::vector<IsaTier> reachable_tiers() {
  std::vector<IsaTier> tiers;
  for (const IsaTier tier : {IsaTier::kScalar, IsaTier::kSse2, IsaTier::kAvx2,
                             IsaTier::kAvx512}) {
    if (reachable(tier)) tiers.push_back(tier);
  }
  return tiers;
}

const Kernels& kernels() { return *dispatch_state().table; }

IsaTier set_active_tier(IsaTier tier) {
  WDAG_REQUIRE(reachable(tier),
               std::string("set_active_tier: tier '") + tier_name(tier) +
                   "' is not reachable on this machine");
  DispatchState& state = dispatch_state();
  const IsaTier previous = state.tier;
  state.tier = tier;
  state.table = table_for(tier);
  return previous;
}

}  // namespace wdag::util::simd
