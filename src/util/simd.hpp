#pragma once
// Runtime-dispatched SIMD kernels for the bitset hot path.
//
// INTERNAL header: deliberately absent from WDAG_PUBLIC_HEADERS. Public
// types (DynamicBitset, ConflictGraph) call these kernels from their .cpp
// files only, so the dispatch seam never leaks into the installed API.
//
// One kernel table per ISA tier (scalar / SSE2 / AVX2 / AVX-512), each
// compiled in its own translation unit with per-file -m flags so vector
// instructions cannot leak into portable code. The active table is
// resolved exactly once, on first use: the highest tier both compiled in
// and reported by CPUID, optionally overridden by the WDAG_FORCE_ISA
// environment variable (scalar | sse2 | avx2 | avx512). Forcing a tier
// the machine or build cannot execute throws wdag::InvalidArgument —
// silently falling back would let a mislabelled fleet run different code
// than it claims.
//
// Every tier must be byte-for-byte equivalent to the scalar reference;
// tests/test_simd_kernels.cpp pins that differentially across all
// reachable tiers, and tests/test_coloring_differential.cpp pins the
// end-to-end colorings. New kernels follow the same rule: no tier lands
// without a differential test at every tier (CONTRIBUTING.md).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wdag::util::simd {

/// ISA tiers in strictly increasing capability order. On x86-64, SSE2 is
/// the ABI baseline, so every x86-64 build reaches at least kSse2;
/// elsewhere only kScalar is available.
enum class IsaTier : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Lower-case tier name ("scalar", "sse2", "avx2", "avx512").
const char* tier_name(IsaTier tier);

/// The dispatched kernel table. All pointers are always non-null.
/// Word counts are in 64-bit words; all loads/stores are unaligned-safe
/// (alignment is a performance contract, not a correctness one).
struct Kernels {
  /// dst[i] |= src[i] for i in [0, n).
  void (*or_words)(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n);
  /// dst[i] = 0 for i in [0, n).
  void (*zero_words)(std::uint64_t* dst, std::size_t n);
  /// First index in [from, n) whose word != ~0, or n when every word in
  /// the range is all-ones. The zero-scan building block.
  std::size_t (*find_not_ones)(const std::uint64_t* words, std::size_t from,
                               std::size_t n);
  /// For each of the `count` row ids:
  ///   pool[ids[r] * stride + j] |= src[j] for j in [0, words).
  /// The ConflictGraph group-OR splat over its structure-of-arrays row
  /// pool; `stride >= words`.
  void (*or_rows)(std::uint64_t* pool, std::size_t stride,
                  const std::uint32_t* ids, std::size_t count,
                  const std::uint64_t* src, std::size_t words);
};

/// Highest tier that is both compiled into this binary and supported by
/// the running CPU. Ignores WDAG_FORCE_ISA.
IsaTier detected_tier();

/// The tier the process dispatches to: detected_tier() unless
/// WDAG_FORCE_ISA selects a (reachable) tier. Resolved once, on first
/// call; throws wdag::InvalidArgument for an unknown or unreachable
/// WDAG_FORCE_ISA value.
IsaTier active_tier();

/// Every reachable tier in increasing order (always starts with kScalar).
std::vector<IsaTier> reachable_tiers();

/// The active tier's kernel table.
const Kernels& kernels();

/// Swaps the active kernel table (returns the previous tier). Throws
/// wdag::InvalidArgument when `tier` is not reachable. Test/bench hook
/// for exercising every tier in one process — NOT thread-safe; call only
/// while no other thread touches the bitset hot path.
IsaTier set_active_tier(IsaTier tier);

// ---------------------------------------------------------------------
// Inline dispatch wrappers with a small-size bypass: below a few words
// the indirect call costs more than the loop it replaces (first-fit
// color masks are usually one word), so tiny operands stay scalar.
// Results are identical by construction; the differential suite covers
// sizes on both sides of the threshold.
// ---------------------------------------------------------------------

/// Word counts at or below this run the inline scalar path.
inline constexpr std::size_t kInlineWords = 4;

inline void or_words(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) {
  if (n <= kInlineWords) {
    for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
    return;
  }
  kernels().or_words(dst, src, n);
}

inline void zero_words(std::uint64_t* dst, std::size_t n) {
  if (n <= kInlineWords) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  kernels().zero_words(dst, n);
}

inline std::size_t find_not_ones(const std::uint64_t* words, std::size_t from,
                                 std::size_t n) {
  if (n - from <= kInlineWords) {
    for (std::size_t i = from; i < n; ++i) {
      if (words[i] != ~std::uint64_t{0}) return i;
    }
    return n;
  }
  return kernels().find_not_ones(words, from, n);
}

inline void or_rows(std::uint64_t* pool, std::size_t stride,
                    const std::uint32_t* ids, std::size_t count,
                    const std::uint64_t* src, std::size_t words) {
  kernels().or_rows(pool, stride, ids, count, src, words);
}

}  // namespace wdag::util::simd
