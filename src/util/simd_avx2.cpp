// AVX2 kernel tier. This translation unit is the ONLY one compiled with
// -mavx2 (see the per-file COMPILE_OPTIONS in CMakeLists.txt), so AVX
// instructions cannot leak into portable code; the dispatcher only calls
// these after CPUID confirms avx2. When the toolchain cannot target AVX2
// the table is null and the tier is simply unreachable.

#include "util/simd.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace wdag::util::simd::detail {

#if defined(__AVX2__)

namespace {

void avx2_or_words(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        _mm256_or_si256(a1, b1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void avx2_zero_words(std::uint64_t* dst, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), zero);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4), zero);
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), zero);
  }
  for (; i < n; ++i) dst[i] = 0;
}

std::size_t avx2_find_not_ones(const std::uint64_t* words, std::size_t from,
                               std::size_t n) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t i = from;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi64(v, ones)) != -1) {
      for (std::size_t j = i; j < i + 4; ++j) {
        if (words[j] != ~std::uint64_t{0}) return j;
      }
    }
  }
  for (; i < n; ++i) {
    if (words[i] != ~std::uint64_t{0}) return i;
  }
  return n;
}

void avx2_or_rows(std::uint64_t* pool, std::size_t stride,
                  const std::uint32_t* ids, std::size_t count,
                  const std::uint64_t* src, std::size_t words) {
  if (words <= 4 && words > 0) {
    // One graph row fits a single ymm lane group: keep the source mask in
    // a register across the whole splat instead of reloading per row.
    const __m256i mask = [&] {
      alignas(32) std::uint64_t buf[4] = {0, 0, 0, 0};
      for (std::size_t j = 0; j < words; ++j) buf[j] = src[j];
      return _mm256_load_si256(reinterpret_cast<const __m256i*>(buf));
    }();
    for (std::size_t r = 0; r < count; ++r) {
      std::uint64_t* dst = pool + static_cast<std::size_t>(ids[r]) * stride;
      if (words == 4) {
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                            _mm256_or_si256(a, mask));
      } else {
        // Partial row: scalar lanes (no masked 64-bit loads in AVX2 that
        // are worth the setup for <= 3 words).
        for (std::size_t j = 0; j < words; ++j) dst[j] |= src[j];
      }
    }
    return;
  }
  for (std::size_t r = 0; r < count; ++r) {
    avx2_or_words(pool + static_cast<std::size_t>(ids[r]) * stride, src,
                  words);
  }
}

constexpr Kernels kAvx2Kernels{avx2_or_words, avx2_zero_words,
                               avx2_find_not_ones, avx2_or_rows};

}  // namespace

const Kernels* avx2_kernels() { return &kAvx2Kernels; }

#else  // !defined(__AVX2__)

const Kernels* avx2_kernels() { return nullptr; }

#endif

}  // namespace wdag::util::simd::detail
