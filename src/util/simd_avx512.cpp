// AVX-512 kernel tier. Compiled with -mavx512f (plus nothing else) in its
// own translation unit; see simd_avx2.cpp for the isolation rationale. The
// dispatcher only selects this table after CPUID reports avx512f.

#include "util/simd.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace wdag::util::simd::detail {

#if defined(__AVX512F__)

namespace {

void avx512_or_words(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(a, b));
  }
  if (i < n) {
    const __mmask8 tail =
        static_cast<__mmask8>((1u << static_cast<unsigned>(n - i)) - 1u);
    const __m512i a = _mm512_maskz_loadu_epi64(tail, dst + i);
    const __m512i b = _mm512_maskz_loadu_epi64(tail, src + i);
    _mm512_mask_storeu_epi64(dst + i, tail, _mm512_or_si512(a, b));
  }
}

void avx512_zero_words(std::uint64_t* dst, std::size_t n) {
  const __m512i zero = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, zero);
  }
  if (i < n) {
    const __mmask8 tail =
        static_cast<__mmask8>((1u << static_cast<unsigned>(n - i)) - 1u);
    _mm512_mask_storeu_epi64(dst + i, tail, zero);
  }
}

std::size_t avx512_find_not_ones(const std::uint64_t* words, std::size_t from,
                                 std::size_t n) {
  const __m512i ones = _mm512_set1_epi64(-1);
  std::size_t i = from;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(words + i);
    const __mmask8 miss = _mm512_cmpneq_epu64_mask(v, ones);
    if (miss != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(miss));
    }
  }
  if (i < n) {
    const __mmask8 tail =
        static_cast<__mmask8>((1u << static_cast<unsigned>(n - i)) - 1u);
    // Masked-out lanes load as zero, so exclude them from the miss mask
    // instead of letting them report a fake non-ones word.
    const __m512i v = _mm512_maskz_loadu_epi64(tail, words + i);
    const __mmask8 miss =
        static_cast<__mmask8>(_mm512_cmpneq_epu64_mask(v, ones) & tail);
    if (miss != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(miss));
    }
  }
  return n;
}

void avx512_or_rows(std::uint64_t* pool, std::size_t stride,
                    const std::uint32_t* ids, std::size_t count,
                    const std::uint64_t* src, std::size_t words) {
  if (words <= 8 && words > 0) {
    // The whole source mask fits one zmm: load it once (masked) and splat
    // it across every row with masked read-modify-writes.
    const __mmask8 lanes =
        words == 8
            ? static_cast<__mmask8>(0xFF)
            : static_cast<__mmask8>((1u << static_cast<unsigned>(words)) - 1u);
    const __m512i mask = _mm512_maskz_loadu_epi64(lanes, src);
    for (std::size_t r = 0; r < count; ++r) {
      std::uint64_t* dst = pool + static_cast<std::size_t>(ids[r]) * stride;
      const __m512i a = _mm512_maskz_loadu_epi64(lanes, dst);
      _mm512_mask_storeu_epi64(dst, lanes, _mm512_or_si512(a, mask));
    }
    return;
  }
  for (std::size_t r = 0; r < count; ++r) {
    avx512_or_words(pool + static_cast<std::size_t>(ids[r]) * stride, src,
                    words);
  }
}

constexpr Kernels kAvx512Kernels{avx512_or_words, avx512_zero_words,
                                 avx512_find_not_ones, avx512_or_rows};

}  // namespace

const Kernels* avx512_kernels() { return &kAvx512Kernels; }

#else  // !defined(__AVX512F__)

const Kernels* avx512_kernels() { return nullptr; }

#endif

}  // namespace wdag::util::simd::detail
