#include "util/socket.hpp"

#include <utility>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace wdag::util {

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw InternalError(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw InvalidArgument("not a numeric IPv4 address: '" + host + "'");
  }
  return addr;
}

/// Waits for the given poll events with a deadline that survives EINTR:
/// an interrupted poll resumes with the remaining time, so a stray
/// signal never silently shortens (or un-bounds) the wait. True when
/// the fd is ready within the timeout.
bool wait_for(int fd, short events, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  pollfd p{};
  p.fd = fd;
  p.events = events;
  int remaining = timeout_ms;
  for (;;) {
    const int rc = ::poll(&p, 1, remaining);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
    if (timeout_ms < 0) continue;  // infinite wait: just retry
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    remaining = static_cast<int>(left.count());
    if (remaining <= 0) return false;
  }
}

/// Waits for readability; true when the fd is ready within the timeout.
bool wait_readable(int fd, int timeout_ms) {
  return wait_for(fd, POLLIN, timeout_ms);
}

}  // namespace

// --- TcpConn ---------------------------------------------------------------

TcpConn TcpConn::connect(const std::string& host, int port,
                         int connect_timeout_ms) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket()");
  const std::string where = host + ":" + std::to_string(port);
  const auto fail_with = [&](int err, const std::string& what) -> void {
    ::close(fd);
    errno = err;
    fail_errno(what + " " + where);
  };
  // Non-blocking connect + poll: ::connect on a blocking socket has no
  // timeout knob, and a blackholed peer would park the dialer for the
  // kernel's full SYN retry ladder (minutes).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    fail_with(errno, "fcntl(O_NONBLOCK) dialing");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      fail_with(errno, "cannot connect to");
    }
    if (!wait_for(fd, POLLOUT, connect_timeout_ms)) {
      ::close(fd);
      throw InternalError("connect to " + where + " timed out after " +
                          std::to_string(connect_timeout_ms) + "ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      fail_with(errno, "getsockopt(SO_ERROR) dialing");
    }
    if (err != 0) {
      fail_with(err, "cannot connect to");
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    fail_with(errno, "fcntl(restore flags) dialing");
  }
  return TcpConn(fd);
}

TcpConn::TcpConn(TcpConn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

TcpConn::~TcpConn() { close(); }

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

ReadStatus TcpConn::read_line(std::string& line, int timeout_ms) {
  if (fd_ < 0) return ReadStatus::kClosed;
  for (;;) {
    // A buffered full line is served without touching the socket, so
    // pipelined requests drain before the next recv.
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return ReadStatus::kLine;
    }
    if (buffer_.size() > max_line()) return ReadStatus::kClosed;
    if (!wait_readable(fd_, timeout_ms)) return ReadStatus::kTimeout;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadStatus::kClosed;
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kClosed;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

ReadStatus TcpConn::read_exact(std::string& out, std::size_t total,
                               int timeout_ms) {
  if (out.size() >= total) return ReadStatus::kLine;
  // Bytes already received past the last returned line belong to the
  // payload — a header line and its payload often share a segment.
  if (!buffer_.empty()) {
    const std::size_t take = std::min(buffer_.size(), total - out.size());
    out.append(buffer_, 0, take);
    buffer_.erase(0, take);
    if (out.size() == total) return ReadStatus::kLine;
  }
  if (fd_ < 0) return ReadStatus::kClosed;
  while (out.size() < total) {
    if (!wait_readable(fd_, timeout_ms)) return ReadStatus::kTimeout;
    char chunk[16384];
    const std::size_t want =
        std::min(total - out.size(), sizeof(chunk));
    const ssize_t n = ::recv(fd_, chunk, want, 0);
    if (n == 0) return ReadStatus::kClosed;
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kClosed;
    }
    out.append(chunk, static_cast<std::size_t>(n));
  }
  return ReadStatus::kLine;
}

bool TcpConn::write_all(std::string_view data) {
  if (fd_ < 0) return false;
  while (!data.empty()) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET: the peer is gone
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool TcpConn::write_line(std::string_view line) {
  std::string out;
  out.reserve(line.size() + 1);
  out.append(line);
  out.push_back('\n');
  return write_all(out);
}

// --- TcpListener -----------------------------------------------------------

TcpListener TcpListener::listen(const std::string& host, int port) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket()");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, 128) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("listen()");
  }
  TcpListener l;
  l.fd_ = fd;
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    l.port_ = ntohs(bound.sin_port);
  } else {
    l.port_ = port;
  }
  return l;
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = other.port_;
  }
  return *this;
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpConn> TcpListener::accept(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  if (!wait_readable(fd_, timeout_ms)) return std::nullopt;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  return TcpConn(fd);
}

}  // namespace wdag::util

#else  // non-POSIX

namespace wdag::util {

void ignore_sigpipe() {}

TcpConn TcpConn::connect(const std::string&, int, int) {
  throw InternalError("TCP sockets require a POSIX platform");
}
TcpConn::TcpConn(TcpConn&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {}
TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  fd_ = other.fd_;
  buffer_ = std::move(other.buffer_);
  return *this;
}
TcpConn::~TcpConn() = default;
void TcpConn::close() { fd_ = -1; }
ReadStatus TcpConn::read_line(std::string&, int) { return ReadStatus::kClosed; }
ReadStatus TcpConn::read_exact(std::string&, std::size_t, int) {
  return ReadStatus::kClosed;
}
bool TcpConn::write_all(std::string_view) { return false; }
bool TcpConn::write_line(std::string_view) { return false; }

TcpListener TcpListener::listen(const std::string&, int) {
  throw InternalError("TCP sockets require a POSIX platform");
}
TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {}
TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  fd_ = other.fd_;
  port_ = other.port_;
  return *this;
}
TcpListener::~TcpListener() = default;
void TcpListener::close() { fd_ = -1; }
std::optional<TcpConn> TcpListener::accept(int) { return std::nullopt; }

}  // namespace wdag::util

#endif
