#pragma once
// Minimal TCP primitives for the serve subsystem (serve/server.hpp,
// serve/client.hpp): a listener with a poll-based interruptible accept,
// and a connection wrapper speaking newline-delimited lines. POSIX-only,
// like util/subprocess.hpp — the serve layer is the only consumer, and
// everything degrades with a clear wdag::InternalError elsewhere.
//
// Blocking calls take a timeout so loops stay interruptible: the server's
// accept and read loops poll in short ticks and check their stop flags
// between ticks, which is how SIGINT/SIGTERM drain cleanly without
// async-signal trickery.
//
// SIGPIPE discipline: ignore_sigpipe() flips the process-wide disposition
// (the CLI entry point calls it first thing), and every send additionally
// passes MSG_NOSIGNAL where available — a client that disconnects
// mid-response turns into a failed write, never a dead process.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace wdag::util {

/// Ignores SIGPIPE process-wide (idempotent; no-op on platforms without
/// it). After this, writing to a closed pipe or socket fails with EPIPE
/// instead of killing the process.
void ignore_sigpipe();

/// Outcome of a line read with a timeout.
enum class ReadStatus {
  kLine,     ///< a full line was read into the out parameter
  kTimeout,  ///< no full line arrived within the timeout
  kClosed,   ///< the peer closed (or the connection errored) mid-stream
};

/// One TCP connection speaking '\n'-delimited lines (plus raw
/// length-prefixed payloads via read_exact). Move-only; the destructor
/// closes the socket.
class TcpConn {
 public:
  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1") with a
  /// bounded dial: non-blocking connect + poll, so a blackholed peer
  /// costs at most `connect_timeout_ms` instead of the kernel's
  /// minutes-long SYN retry ladder. Throws wdag::InternalError when the
  /// connection cannot be made (including on timeout).
  static TcpConn connect(const std::string& host, int port,
                         int connect_timeout_ms = 10'000);

  TcpConn() = default;
  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;
  ~TcpConn();

  /// Reads until '\n' (consumed, not returned) or `timeout_ms` elapses.
  /// Lines longer than max_line() count as kClosed — a peer that streams
  /// an unbounded "line" must not buffer unbounded memory here (the same
  /// bounded-buffering discipline as the admission queue).
  ReadStatus read_line(std::string& line, int timeout_ms);

  /// Appends raw bytes to `out` until it holds `total` bytes, draining
  /// any bytes already buffered past the last read_line first (a header
  /// line and its payload may arrive in one segment). Returns kLine once
  /// out.size() == total, kTimeout when one poll wait expires with the
  /// payload still short (partial progress is kept in `out`, so callers
  /// tick in a loop and stay cancellable), kClosed when the peer closes
  /// mid-payload.
  ReadStatus read_exact(std::string& out, std::size_t total, int timeout_ms);

  /// Writes all of `data`; returns false when the peer is gone
  /// (EPIPE/ECONNRESET) instead of throwing — a vanished client is an
  /// expected event for a server, not an error.
  bool write_all(std::string_view data);

  /// Writes `line` plus '\n'.
  bool write_line(std::string_view line);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  void close();

  /// Longest accepted input line in bytes.
  [[nodiscard]] static constexpr std::size_t max_line() { return 1 << 20; }

 private:
  friend class TcpListener;
  explicit TcpConn(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

/// A listening TCP socket. Move-only; the destructor closes it.
class TcpListener {
 public:
  /// Binds and listens on host:port; port 0 picks an ephemeral port
  /// (read it back with port()). Throws wdag::InternalError on failure
  /// (address in use, no such address, non-POSIX platform).
  static TcpListener listen(const std::string& host, int port);

  TcpListener() = default;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// Accepts one connection, waiting at most `timeout_ms`; nullopt on
  /// timeout so callers can check their stop flag and come back.
  std::optional<TcpConn> accept(int timeout_ms);

  /// The bound port (the real one when listen() was given port 0).
  [[nodiscard]] int port() const { return port_; }

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace wdag::util
