#include "util/subprocess.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string_view>
#include <utility>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define WDAG_HAVE_SUBPROCESS 1
#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

extern char** environ;
#endif

namespace wdag::util {

#if WDAG_HAVE_SUBPROCESS

namespace {

/// The child environment: the parent's, minus unset_env, with the
/// options' pairs overriding. Returns owning storage plus the char*
/// vector posix_spawn wants.
std::vector<std::string> build_env(const SubprocessOptions& options) {
  std::vector<std::string> env;
  const auto removed = [&options](std::string_view name) {
    for (const auto& u : options.unset_env) {
      if (name == u) return true;
    }
    for (const auto& [k, v] : options.env) {
      if (name == k) return true;  // overridden below
    }
    return false;
  };
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string_view entry(*e);
    const std::size_t eq = entry.find('=');
    if (eq != std::string_view::npos && removed(entry.substr(0, eq))) {
      continue;
    }
    env.emplace_back(entry);
  }
  for (const auto& [k, v] : options.env) {
    env.push_back(k + "=" + v);
  }
  return env;
}

int code_from_status(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 128;  // stopped/continued never reach here (no WUNTRACED)
}

}  // namespace

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             const SubprocessOptions& options) {
  WDAG_REQUIRE(!argv.empty(), "Subprocess: argv must not be empty");

  std::vector<std::string> env = build_env(options);
  std::vector<char*> argv_ptrs;
  argv_ptrs.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    argv_ptrs.push_back(const_cast<char*>(a.c_str()));
  }
  argv_ptrs.push_back(nullptr);
  std::vector<char*> env_ptrs;
  env_ptrs.reserve(env.size() + 1);
  for (const std::string& e : env) {
    env_ptrs.push_back(const_cast<char*>(e.c_str()));
  }
  env_ptrs.push_back(nullptr);

  pid_t pid = -1;
  const bool use_path = argv[0].find('/') == std::string::npos;
  const int rc =
      use_path ? ::posix_spawnp(&pid, argv[0].c_str(), nullptr, nullptr,
                                argv_ptrs.data(), env_ptrs.data())
               : ::posix_spawn(&pid, argv[0].c_str(), nullptr, nullptr,
                               argv_ptrs.data(), env_ptrs.data());
  if (rc != 0) {
    throw InternalError("Subprocess: cannot spawn '" + argv[0] +
                        "': " + std::strerror(rc));
  }
  Subprocess p;
  p.pid_ = pid;
  return p;
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), exit_code_(other.exit_code_) {
  other.pid_ = -1;
  other.exit_code_.reset();
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    pid_ = other.pid_;
    exit_code_ = other.exit_code_;
    other.pid_ = -1;
    other.exit_code_.reset();
  }
  return *this;
}

std::optional<int> Subprocess::poll() {
  if (exit_code_.has_value()) return exit_code_;
  if (pid_ < 0) return std::nullopt;
  int status = 0;
  const pid_t r = ::waitpid(static_cast<pid_t>(pid_), &status, WNOHANG);
  if (r == 0) return std::nullopt;  // still running
  if (r < 0) {
    throw InternalError("Subprocess: waitpid(" + std::to_string(pid_) +
                        ") failed: " + std::strerror(errno));
  }
  exit_code_ = code_from_status(status);
  return exit_code_;
}

int Subprocess::wait() {
  if (exit_code_.has_value()) return *exit_code_;
  WDAG_REQUIRE(pid_ >= 0, "Subprocess: wait() on an empty process handle");
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(static_cast<pid_t>(pid_), &status, 0);
  } while (r < 0 && errno == EINTR);
  if (r < 0) {
    throw InternalError("Subprocess: waitpid(" + std::to_string(pid_) +
                        ") failed: " + std::strerror(errno));
  }
  exit_code_ = code_from_status(status);
  return *exit_code_;
}

void Subprocess::kill() {
  if (pid_ < 0 || exit_code_.has_value()) return;
  ::kill(static_cast<pid_t>(pid_), SIGKILL);
}

long current_process_id() { return static_cast<long>(::getpid()); }

namespace {

/// Loop write(2) until every byte of `data` is written; returns false
/// (with errno set) on a non-EINTR failure.
bool write_fully(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync the directory holding `path` so a rename into it survives a
/// crash. Best effort: some filesystems refuse to open or fsync a
/// directory — the rename is still atomic, just not power-loss durable.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw InternalError("write_file_atomic: cannot open '" + tmp +
                        "': " + std::strerror(errno));
  }
  std::string why;
  if (!write_fully(fd, content)) {
    why = std::string("write failed: ") + std::strerror(errno);
  } else if (::fsync(fd) != 0) {
    why = std::string("fsync failed: ") + std::strerror(errno);
  }
  ::close(fd);
  if (why.empty() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    why = std::string("rename to '") + path + "' failed: " +
          std::strerror(errno);
  }
  if (!why.empty()) {
    ::unlink(tmp.c_str());
    throw InternalError("write_file_atomic: '" + tmp + "': " + why);
  }
  fsync_parent_dir(path);
}

void commit_file(const std::string& tmp_path, const std::string& final_path) {
  const int fd = ::open(tmp_path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw InternalError("commit_file: cannot open '" + tmp_path +
                        "': " + std::strerror(errno));
  }
  const int frc = ::fsync(fd);
  const int ferr = errno;
  ::close(fd);
  if (frc != 0) {
    throw InternalError("commit_file: fsync('" + tmp_path +
                        "') failed: " + std::strerror(ferr));
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw InternalError("commit_file: rename('" + tmp_path + "' -> '" +
                        final_path + "') failed: " + std::strerror(errno));
  }
  fsync_parent_dir(final_path);
}

DurableAppendFile::DurableAppendFile(const std::string& path, bool truncate)
    : path_(path) {
  // O_RDWR (not O_WRONLY): the torn-tail check below preads the last byte.
  const int flags =
      O_RDWR | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw InternalError("DurableAppendFile: cannot open '" + path +
                        "': " + std::strerror(errno));
  }
  if (!truncate) {
    // Self-heal a torn tail: if a crash interrupted the previous owner's
    // last append, terminate that fragment so the next line starts
    // clean (the fragment itself stays unparsable and is skipped by
    // readers — it never swallows a valid neighbour).
    struct stat st{};
    char last = '\n';
    if (::fstat(fd_, &st) == 0 && st.st_size > 0 &&
        ::pread(fd_, &last, 1, st.st_size - 1) == 1 && last != '\n') {
      (void)write_fully(fd_, "\n");
    }
  }
}

void DurableAppendFile::append_line(std::string_view line) {
  WDAG_REQUIRE(fd_ >= 0, "DurableAppendFile: append_line on a closed file");
  std::string buf;
  buf.reserve(line.size() + 1);
  buf.append(line);
  buf += '\n';
  if (!write_fully(fd_, buf)) {
    throw InternalError("DurableAppendFile: write to '" + path_ +
                        "' failed: " + std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    throw InternalError("DurableAppendFile: fsync('" + path_ +
                        "') failed: " + std::strerror(errno));
  }
}

void DurableAppendFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

#else  // !WDAG_HAVE_SUBPROCESS

Subprocess Subprocess::spawn(const std::vector<std::string>&,
                             const SubprocessOptions&) {
  throw InternalError("Subprocess: unsupported on this platform");
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), exit_code_(other.exit_code_) {}
Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  pid_ = other.pid_;
  exit_code_ = other.exit_code_;
  return *this;
}
std::optional<int> Subprocess::poll() { return exit_code_; }
int Subprocess::wait() { return exit_code_.value_or(-1); }
void Subprocess::kill() {}

long current_process_id() { return 0; }

// Without fsync the atomic-write helpers degrade to plain
// write-then-rename: still atomic against a process crash, not against
// power loss (the documented best effort).
void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (!out.good()) {
      std::remove(tmp.c_str());
      throw InternalError("write_file_atomic: cannot write '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw InternalError("write_file_atomic: rename to '" + path +
                        "' failed");
  }
}

void commit_file(const std::string& tmp_path, const std::string& final_path) {
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw InternalError("commit_file: rename('" + tmp_path + "' -> '" +
                        final_path + "') failed");
  }
}

DurableAppendFile::DurableAppendFile(const std::string& path, bool) {
  throw InternalError("DurableAppendFile: unsupported on this platform ('" +
                      path + "')");
}
void DurableAppendFile::append_line(std::string_view) {
  throw InternalError("DurableAppendFile: unsupported on this platform");
}
void DurableAppendFile::close() { fd_ = -1; }

#endif

DurableAppendFile::DurableAppendFile(DurableAppendFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

DurableAppendFile& DurableAppendFile::operator=(
    DurableAppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

DurableAppendFile::~DurableAppendFile() { close(); }

}  // namespace wdag::util
