#include "util/subprocess.hpp"

#include <cerrno>
#include <cstring>
#include <string_view>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define WDAG_HAVE_SUBPROCESS 1
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

extern char** environ;
#endif

namespace wdag::util {

#if WDAG_HAVE_SUBPROCESS

namespace {

/// The child environment: the parent's, minus unset_env, with the
/// options' pairs overriding. Returns owning storage plus the char*
/// vector posix_spawn wants.
std::vector<std::string> build_env(const SubprocessOptions& options) {
  std::vector<std::string> env;
  const auto removed = [&options](std::string_view name) {
    for (const auto& u : options.unset_env) {
      if (name == u) return true;
    }
    for (const auto& [k, v] : options.env) {
      if (name == k) return true;  // overridden below
    }
    return false;
  };
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string_view entry(*e);
    const std::size_t eq = entry.find('=');
    if (eq != std::string_view::npos && removed(entry.substr(0, eq))) {
      continue;
    }
    env.emplace_back(entry);
  }
  for (const auto& [k, v] : options.env) {
    env.push_back(k + "=" + v);
  }
  return env;
}

int code_from_status(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 128;  // stopped/continued never reach here (no WUNTRACED)
}

}  // namespace

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             const SubprocessOptions& options) {
  WDAG_REQUIRE(!argv.empty(), "Subprocess: argv must not be empty");

  std::vector<std::string> env = build_env(options);
  std::vector<char*> argv_ptrs;
  argv_ptrs.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    argv_ptrs.push_back(const_cast<char*>(a.c_str()));
  }
  argv_ptrs.push_back(nullptr);
  std::vector<char*> env_ptrs;
  env_ptrs.reserve(env.size() + 1);
  for (const std::string& e : env) {
    env_ptrs.push_back(const_cast<char*>(e.c_str()));
  }
  env_ptrs.push_back(nullptr);

  pid_t pid = -1;
  const bool use_path = argv[0].find('/') == std::string::npos;
  const int rc =
      use_path ? ::posix_spawnp(&pid, argv[0].c_str(), nullptr, nullptr,
                                argv_ptrs.data(), env_ptrs.data())
               : ::posix_spawn(&pid, argv[0].c_str(), nullptr, nullptr,
                               argv_ptrs.data(), env_ptrs.data());
  if (rc != 0) {
    throw InternalError("Subprocess: cannot spawn '" + argv[0] +
                        "': " + std::strerror(rc));
  }
  Subprocess p;
  p.pid_ = pid;
  return p;
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), exit_code_(other.exit_code_) {
  other.pid_ = -1;
  other.exit_code_.reset();
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    pid_ = other.pid_;
    exit_code_ = other.exit_code_;
    other.pid_ = -1;
    other.exit_code_.reset();
  }
  return *this;
}

std::optional<int> Subprocess::poll() {
  if (exit_code_.has_value()) return exit_code_;
  if (pid_ < 0) return std::nullopt;
  int status = 0;
  const pid_t r = ::waitpid(static_cast<pid_t>(pid_), &status, WNOHANG);
  if (r == 0) return std::nullopt;  // still running
  if (r < 0) {
    throw InternalError("Subprocess: waitpid(" + std::to_string(pid_) +
                        ") failed: " + std::strerror(errno));
  }
  exit_code_ = code_from_status(status);
  return exit_code_;
}

int Subprocess::wait() {
  if (exit_code_.has_value()) return *exit_code_;
  WDAG_REQUIRE(pid_ >= 0, "Subprocess: wait() on an empty process handle");
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(static_cast<pid_t>(pid_), &status, 0);
  } while (r < 0 && errno == EINTR);
  if (r < 0) {
    throw InternalError("Subprocess: waitpid(" + std::to_string(pid_) +
                        ") failed: " + std::strerror(errno));
  }
  exit_code_ = code_from_status(status);
  return *exit_code_;
}

void Subprocess::kill() {
  if (pid_ < 0 || exit_code_.has_value()) return;
  ::kill(static_cast<pid_t>(pid_), SIGKILL);
}

#else  // !WDAG_HAVE_SUBPROCESS

Subprocess Subprocess::spawn(const std::vector<std::string>&,
                             const SubprocessOptions&) {
  throw InternalError("Subprocess: unsupported on this platform");
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), exit_code_(other.exit_code_) {}
Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  pid_ = other.pid_;
  exit_code_ = other.exit_code_;
  return *this;
}
std::optional<int> Subprocess::poll() { return exit_code_; }
int Subprocess::wait() { return exit_code_.value_or(-1); }
void Subprocess::kill() {}

#endif

}  // namespace wdag::util
