#pragma once
// Minimal child-process management for the shard driver (core/driver.cpp):
// spawn an argv with optional environment edits, poll for exit without
// blocking, and kill stragglers. POSIX-only — the driver is the only
// consumer, and it degrades with a clear error elsewhere.
//
// No pipes: driver children write their results to files named in their
// argv, so the parent only needs liveness, exit codes and kill.

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace wdag::util {

/// Environment edits applied to a spawned child (on top of the parent's
/// inherited environment).
struct SubprocessOptions {
  /// Variables to set (overriding inherited values of the same name).
  std::vector<std::pair<std::string, std::string>> env;
  /// Variables to remove from the inherited environment.
  std::vector<std::string> unset_env;
};

/// One spawned child process. Movable, not copyable; the destructor does
/// NOT kill or reap — call kill()/wait() explicitly (the driver owns the
/// lifecycle decisions).
class Subprocess {
 public:
  /// Spawns `argv` (argv[0] is the executable, resolved via PATH when it
  /// contains no '/'). Throws wdag::InternalError when the spawn fails
  /// or on non-POSIX platforms.
  static Subprocess spawn(const std::vector<std::string>& argv,
                          const SubprocessOptions& options = {});

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess() = default;

  /// Non-blocking: the exit code once the child has exited, else nullopt.
  /// A child killed by signal N reports 128 + N (shell convention).
  /// Idempotent after exit (the code is cached at reap time).
  [[nodiscard]] std::optional<int> poll();

  /// Blocks until the child exits; returns its exit code (as poll()).
  int wait();

  /// Sends SIGKILL. Safe to call repeatedly or after exit; the child
  /// still must be reaped via poll()/wait().
  void kill();

  /// OS process id (for diagnostics/logging).
  [[nodiscard]] long pid() const { return pid_; }

 private:
  Subprocess() = default;

  long pid_ = -1;
  std::optional<int> exit_code_;
};

}  // namespace wdag::util
