#pragma once
// Minimal child-process management for the shard driver (core/driver.cpp):
// spawn an argv with optional environment edits, poll for exit without
// blocking, and kill stragglers. POSIX-only — the driver is the only
// consumer, and it degrades with a clear error elsewhere.
//
// No pipes: driver children write their results to files named in their
// argv, so the parent only needs liveness, exit codes and kill.
//
// Also home to the file-durability helpers (write_file_atomic,
// commit_file, DurableAppendFile) the driver's crash-safe commit and
// journal layers are built on — they share this file's POSIX guard.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wdag::util {

/// Environment edits applied to a spawned child (on top of the parent's
/// inherited environment).
struct SubprocessOptions {
  /// Variables to set (overriding inherited values of the same name).
  std::vector<std::pair<std::string, std::string>> env;
  /// Variables to remove from the inherited environment.
  std::vector<std::string> unset_env;
};

/// One spawned child process. Movable, not copyable; the destructor does
/// NOT kill or reap — call kill()/wait() explicitly (the driver owns the
/// lifecycle decisions).
class Subprocess {
 public:
  /// Spawns `argv` (argv[0] is the executable, resolved via PATH when it
  /// contains no '/'). Throws wdag::InternalError when the spawn fails
  /// or on non-POSIX platforms.
  static Subprocess spawn(const std::vector<std::string>& argv,
                          const SubprocessOptions& options = {});

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess() = default;

  /// Non-blocking: the exit code once the child has exited, else nullopt.
  /// A child killed by signal N reports 128 + N (shell convention).
  /// Idempotent after exit (the code is cached at reap time).
  [[nodiscard]] std::optional<int> poll();

  /// Blocks until the child exits; returns its exit code (as poll()).
  int wait();

  /// Sends SIGKILL. Safe to call repeatedly or after exit; the child
  /// still must be reaped via poll()/wait().
  void kill();

  /// OS process id (for diagnostics/logging).
  [[nodiscard]] long pid() const { return pid_; }

 private:
  Subprocess() = default;

  long pid_ = -1;
  std::optional<int> exit_code_;
};

/// Numeric id of the CURRENT process. Used to make scratch file names
/// crash-unique (an orphan of a dead driver can never collide with a
/// live one's paths). Returns 0 where the platform has no notion of one.
[[nodiscard]] long current_process_id();

// ---------------------------------------------------------------------------
// File durability (the drive's commit layer): a file that exists under
// its final name is always complete, because every writer goes through
// tmp-write -> fsync -> rename -> fsync(parent dir). On platforms
// without fsync the helpers still write-and-rename (best effort,
// documented) — atomicity survives process crashes, not power loss.
// ---------------------------------------------------------------------------

/// Writes `content` to `path` atomically: the bytes go to `path + ".tmp"`,
/// are fsync'd, and the tmp file is renamed over `path` (then the parent
/// directory is fsync'd so the rename itself is durable). On failure
/// `path` is untouched and the tmp file is removed; throws
/// wdag::InternalError.
void write_file_atomic(const std::string& path, std::string_view content);

/// Durably promotes an existing, fully written file to its final name:
/// fsyncs `tmp_path`'s bytes, renames it over `final_path`, fsyncs the
/// parent directory. After this returns, `final_path` is complete even
/// across a crash. Throws wdag::InternalError when `tmp_path` cannot be
/// opened or renamed.
void commit_file(const std::string& tmp_path, const std::string& final_path);

/// Append-only line writer with per-line durability: every append_line()
/// writes `line` plus '\n' in ONE write(2) and fsyncs before returning —
/// the drive journal's writer. Opening an existing file whose last byte
/// is not '\n' (a torn tail from a crash mid-append) first restores the
/// newline so the torn line stays isolated instead of corrupting the
/// next append. Move-only; the destructor closes without throwing.
class DurableAppendFile {
 public:
  DurableAppendFile() = default;
  /// Opens `path` for appending, creating it if missing; `truncate`
  /// starts the file empty instead (a fresh journal). Throws
  /// wdag::InternalError when the file cannot be opened.
  explicit DurableAppendFile(const std::string& path, bool truncate = false);
  DurableAppendFile(DurableAppendFile&& other) noexcept;
  DurableAppendFile& operator=(DurableAppendFile&& other) noexcept;
  DurableAppendFile(const DurableAppendFile&) = delete;
  DurableAppendFile& operator=(const DurableAppendFile&) = delete;
  ~DurableAppendFile();

  /// Appends `line` + '\n', then fsyncs. Throws wdag::InternalError on a
  /// short write, fsync failure, or a closed file.
  void append_line(std::string_view line);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  std::string path_;  ///< for diagnostics only
};

}  // namespace wdag::util
