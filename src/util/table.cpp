#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace wdag::util {

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  WDAG_REQUIRE(!header_.empty(), "Table: header must not be empty");
}

void Table::add_row(std::vector<Cell> row) {
  WDAG_REQUIRE(row.size() == header_.size(),
               "Table::add_row: row width must match header width");
  rows_.push_back(std::move(row));
}

std::string cell_to_string(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  const double d = std::get<double>(c);
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << d;
  std::string out = os.str();
  // Trim trailing zeros but keep at least one decimal digit.
  while (out.size() > 1 && out.back() == '0' &&
         out[out.size() - 2] != '.') {
    out.pop_back();
  }
  return out;
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(cell_to_string(row[c]));
      width[c] = std::max(width[c], r.back().size());
    }
    cells.push_back(std::move(r));
  }

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto rule = [&] {
    for (auto w : width) os << '+' << std::string(w + 2, '-');
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c])) << r[c] << ' ';
    }
    os << "|\n";
  };
  rule();
  emit(header_);
  rule();
  for (const auto& r : cells) emit(r);
  rule();
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cell_to_string(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  if (!title_.empty()) os << "**" << title_ << "**\n\n";
  os << '|';
  for (const auto& h : header_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (const auto& cell : row) os << ' ' << cell_to_string(cell) << " |";
    os << '\n';
  }
  return os.str();
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}
}  // namespace

std::string Table::to_json_rows() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) os << ',';
    os << '{';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c) os << ',';
      os << '"' << json_escape(header_[c]) << "\":";
      const Cell& cell = rows_[r][c];
      if (const auto* s = std::get_if<std::string>(&cell)) {
        os << '"' << json_escape(*s) << '"';
      } else {
        // Integers print exactly; doubles reuse the table formatting so
        // every rendering of a cell agrees.
        os << cell_to_string(cell);
      }
    }
    os << '}';
  }
  os << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_text();
}

}  // namespace wdag::util
