#pragma once
// Tabular output for the benchmark harness: the benches print
// paper-shaped rows both as aligned text (for the console) and CSV
// (for EXPERIMENTS.md regeneration).

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace wdag::util {

/// A cell is a string, an integer, or a double.
using Cell = std::variant<std::string, long long, double>;

/// Column-aligned results table with a title and header row.
class Table {
 public:
  Table(std::string title, std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<Cell> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders as an aligned, boxed text table.
  [[nodiscard]] std::string to_text() const;

  /// Renders as CSV (header included, no title).
  [[nodiscard]] std::string to_csv() const;

  /// Renders as a GitHub-flavored markdown table.
  [[nodiscard]] std::string to_markdown() const;

  /// Renders as a JSON array of objects keyed by the header (one object
  /// per row, numbers unquoted) — the row format of the BENCH_*.json
  /// records tracked across PRs.
  [[nodiscard]] std::string to_json_rows() const;

  /// Convenience: stream the text rendering.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

/// Formats a Cell as a display string (doubles with 4 significant digits
/// after the decimal point trimmed).
std::string cell_to_string(const Cell& c);

}  // namespace wdag::util
