#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "util/check.hpp"

namespace wdag::util {

namespace {
/// Which worker of its owning pool the current thread is; -1 off-pool.
thread_local int tl_worker_index = -1;

/// CPUs requested by WDAG_AFFINITY (see the class comment): empty means
/// pinning is off; "on"/"1" expands to the identity list; otherwise a
/// comma-separated CPU id list. Malformed values disable pinning rather
/// than aborting the process.
std::vector<int> affinity_cpus() {
  const char* env = std::getenv("WDAG_AFFINITY");
  if (env == nullptr || *env == '\0') return {};
  const std::string value(env);
  if (value == "off" || value == "0") return {};
  std::vector<int> cpus;
  if (value == "on" || value == "1") {
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned c = 0; c < n; ++c) cpus.push_back(static_cast<int>(c));
    return cpus;
  }
  std::size_t pos = 0;
  while (pos < value.size()) {
    std::size_t used = 0;
    int cpu;
    try {
      cpu = std::stoi(value.substr(pos), &used);
    } catch (const std::exception&) {
      return {};
    }
    if (cpu < 0) return {};
    cpus.push_back(cpu);
    pos += used;
    if (pos < value.size()) {
      if (value[pos] != ',') return {};
      ++pos;
    }
  }
  return cpus;
}

/// Best-effort worker pinning; silently a no-op when unsupported or when
/// the CPU id is outside the process's allowed set.
void pin_thread(std::thread& thread, int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  (void)pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)cpu;
#endif
}
}  // namespace

int ThreadPool::current_worker_index() { return tl_worker_index; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  const std::vector<int> cpus = affinity_cpus();
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      tl_worker_index = static_cast<int>(i);
      worker_loop();
    });
    if (!cpus.empty()) pin_thread(workers_.back(), cpus[i % cpus.size()]);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    WDAG_REQUIRE(!stop_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::for_each_worker(const std::function<void(std::size_t)>& fn) {
  const std::size_t n = size();
  std::mutex mu;
  std::condition_variable cv;
  std::size_t arrived = 0;
  std::size_t done = 0;
  std::exception_ptr first_error;
  for (std::size_t t = 0; t < n; ++t) {
    submit([&, n] {
      // Barrier first: a worker holds its task at the barrier until all
      // n tasks have started. Since a worker runs one task at a time, n
      // simultaneously-parked tasks occupy n DISTINCT workers — only
      // then may fn run, guaranteeing exactly-once-per-worker placement.
      {
        std::unique_lock<std::mutex> lk(mu);
        ++arrived;
        if (arrived == n) cv.notify_all();
        cv.wait(lk, [&] { return arrived == n; });
      }
      try {
        fn(static_cast<std::size_t>(tl_worker_index));
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!first_error) first_error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lk(mu);
        ++done;
        if (done == n) cv.notify_all();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done == n; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool* pool = new ThreadPool();  // intentionally leaked
  return *pool;
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t total = end - begin;
  ThreadPool& pool = global_pool();
  const std::size_t target_chunks =
      std::max<std::size_t>(1, std::min(total / grain, pool.size() * 4));
  const std::size_t chunk = (total + target_chunks - 1) / target_chunks;

  if (target_chunks == 1) {
    body(begin, end);
    return;
  }
  parallel_fixed_chunks(pool, begin, end, chunk,
                        [&body](std::size_t, std::size_t lo, std::size_t hi) {
                          body(lo, hi);
                        });
}

void parallel_fixed_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  WDAG_REQUIRE(chunk >= 1, "parallel_fixed_chunks: chunk must be >= 1");
  if (begin >= end) return;

  std::atomic<std::size_t> remaining{0};
  std::exception_ptr first_error;
  std::mutex err_mu;
  std::mutex done_mu;
  std::condition_variable done_cv;
  const std::size_t total = end - begin;
  // Overflow-proof ceil-div: `total + chunk - 1` wraps for huge chunk
  // values (e.g. a size_t-cast -1), which would start `remaining` at 0
  // and let the waiter unwind this frame while chunk tasks still
  // reference it.
  remaining.store(total / chunk + (total % chunk != 0 ? 1 : 0));

  std::size_t chunk_index = 0;
  for (std::size_t lo = begin; lo < end; lo += chunk, ++chunk_index) {
    const std::size_t hi = std::min(end, lo + chunk);
    pool.submit([&, chunk_index, lo, hi] {
      try {
        body(chunk_index, lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      // Same mutex-serialized completion protocol as parallel_for_chunks:
      // the waiter cannot observe zero and unwind while a worker still
      // holds the stack-allocated mutex/cv.
      {
        std::lock_guard<std::mutex> lk(done_mu);
        if (remaining.fetch_sub(1) == 1) done_cv.notify_all();
      }
    });
  }

  {
    std::unique_lock<std::mutex> lk(done_mu);
    done_cv.wait(lk, [&] { return remaining.load() == 0; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

}  // namespace wdag::util
