#pragma once
// Fixed-size thread pool plus a blocking parallel_for, used to fan out
// benchmark sweeps and the per-source UPP dynamic program.
//
// Design notes (per the HPC guides): parallelism is explicit and
// deterministic — work is partitioned by index range and all randomness
// is seeded by index, so results never depend on thread scheduling. The
// dynamic counterpart (per-worker deques + stealing, same determinism
// contract) lives in util/work_stealing.hpp.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wdag::util {

/// A fixed pool of worker threads executing submitted tasks FIFO.
/// Threads are joined in the destructor; submitting after shutdown throws.
///
/// Worker pinning (Linux): when the WDAG_AFFINITY environment variable is
/// set, workers are pinned to CPUs at construction — "on" (or "1") pins
/// worker i to CPU i mod ncpu; a comma-separated CPU list ("0,2,4") pins
/// worker i to list[i mod len]. Unset, empty, "off" or "0" leaves the OS
/// scheduler free. Pinning is best-effort and a no-op off Linux; it is
/// the first step toward the ROADMAP's NUMA-aware chunking (a pinned
/// worker keeps its SolveScratch arena hot in its own cache/node).
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Index of the calling thread within its owning pool (0..size()-1), or
  /// -1 when the caller is not a pool worker. Lets batch drivers map a
  /// worker to a caller-owned per-worker arena (see core/batch.cpp).
  [[nodiscard]] static int current_worker_index();

  /// Enqueue a task. Tasks must not throw through the pool; wrap and store
  /// exceptions yourself (parallel_for below does this for you).
  void submit(std::function<void()> task);

  /// Runs `fn(worker_index)` exactly once ON each worker thread, blocking
  /// until all have finished; the first exception is rethrown here. The
  /// per-worker placement is what makes this the NUMA first-touch hook:
  /// memory a worker allocates-and-touches inside `fn` lands on that
  /// worker's NUMA node under Linux's default first-touch policy, which
  /// combined with WDAG_AFFINITY pinning keeps a worker's arena local
  /// (api::Engine warms its SolveScratch arenas this way). Uses an
  /// internal barrier, so it must not run concurrently with other
  /// submitted work (intended for initialization, e.g. right after
  /// construction).
  void for_each_worker(const std::function<void(std::size_t)>& fn);

  /// Block until every submitted task has finished executing.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Shared process-wide pool (lazily constructed, never destroyed before
/// main exits). Use for ad-hoc parallel_for calls.
ThreadPool& global_pool();

/// Runs body(i) for i in [begin, end) across the pool, blocking until done.
/// Work is split into contiguous chunks (at most 4 per worker) to keep
/// per-chunk state (e.g. RNGs) cheap. The first exception thrown by any
/// chunk is rethrown in the calling thread.
///
/// `grain` caps how small a chunk may be; use it when body(i) is tiny.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Chunked variant: body(lo, hi) receives a contiguous index range.
/// Prefer this when per-chunk setup (RNG, scratch buffers) matters.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t grain = 1);

/// Deterministic-partition variant on a caller-owned pool: the range is
/// split into FIXED chunks of exactly `chunk` indices (the last may be
/// short), and body(chunk_index, lo, hi) runs once per chunk. Because the
/// partition depends only on `chunk` — never on the pool size — a
/// chunk_index always covers the same indices no matter how many workers
/// execute it, so index-seeded RNG streams stay reproducible across
/// machines (see core/batch.cpp). Blocks until every
/// chunk finishes; the first exception thrown by any chunk is rethrown.
void parallel_fixed_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

}  // namespace wdag::util
