#pragma once
// Lightweight wall-clock timing used by the benchmark harness and examples.

#include <chrono>
#include <cstdint>

namespace wdag::util {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction / last reset.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Elapsed time in microseconds.
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace wdag::util
