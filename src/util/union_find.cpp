#include "util/union_find.hpp"

#include "util/check.hpp"

namespace wdag::util {

UnionFind::UnionFind(std::size_t n) { reset(n); }

void UnionFind::reset(std::size_t n) {
  WDAG_REQUIRE(n <= UINT32_MAX, "UnionFind supports up to 2^32-1 elements");
  parent_.resize(n);
  rank_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::uint32_t>(i);
  num_sets_ = n;
}

std::size_t UnionFind::find(std::size_t x) {
  WDAG_REQUIRE(x < parent_.size(), "UnionFind::find: index out of range");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a), rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = static_cast<std::uint32_t>(ra);
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return true;
}

bool UnionFind::same(std::size_t a, std::size_t b) { return find(a) == find(b); }

}  // namespace wdag::util
