#pragma once
// Disjoint-set forest with union by rank and path halving.
//
// Used by the internal-cycle detector: restricting the underlying
// multigraph of a DAG to its internal vertices, a repeated union is exactly
// the witness that an internal cycle exists (DESIGN.md §4).

#include <cstdint>
#include <vector>

namespace wdag::util {

/// Classic disjoint-set (union–find) structure over {0, ..., n-1}.
class UnionFind {
 public:
  /// Creates n singleton sets.
  explicit UnionFind(std::size_t n = 0);

  /// Resets to n singleton sets.
  void reset(std::size_t n);

  /// Number of elements.
  [[nodiscard]] std::size_t size() const { return parent_.size(); }

  /// Number of disjoint sets currently.
  [[nodiscard]] std::size_t num_sets() const { return num_sets_; }

  /// Representative of x's set (with path halving).
  [[nodiscard]] std::size_t find(std::size_t x);

  /// Merge the sets of a and b. Returns false when they were already in the
  /// same set (i.e. this union closes a cycle).
  bool unite(std::size_t a, std::size_t b);

  /// True when a and b are in the same set.
  [[nodiscard]] bool same(std::size_t a, std::size_t b);

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t num_sets_ = 0;
};

}  // namespace wdag::util
