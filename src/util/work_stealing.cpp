#include "util/work_stealing.hpp"

#include <algorithm>
#include <bit>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wdag::util {

ChaseLevDeque::ChaseLevDeque(std::size_t capacity)
    : buffer_(std::bit_ceil(std::max<std::size_t>(1, capacity))),
      mask_(buffer_.size() - 1) {}

void ChaseLevDeque::push(std::size_t item) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  WDAG_ASSERT(
      b - top_.load(std::memory_order_acquire) <
          static_cast<std::int64_t>(buffer_.size()),
      "ChaseLevDeque::push past capacity");
  buffer_[static_cast<std::size_t>(b) & mask_].store(
      item, std::memory_order_relaxed);
  // Publish the slot before the new bottom becomes visible to thieves.
  bottom_.store(b + 1, std::memory_order_release);
}

bool ChaseLevDeque::pop(std::size_t& out) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  bottom_.store(b, std::memory_order_relaxed);
  // The fence orders the bottom decrement against the top read: a thief
  // and the owner cannot both miss each other's claim on the last item.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);
  if (t <= b) {
    out = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last item: race the thieves for it via top.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }
  bottom_.store(b + 1, std::memory_order_relaxed);
  return false;
}

bool ChaseLevDeque::steal(std::size_t& out) {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t < b) {
    // Read the slot before claiming it: after the CAS the owner may
    // legitimately overwrite (the capacity contract forbids that here,
    // but the canonical order costs nothing).
    out = buffer_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    return top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
  }
  return false;
}

void parallel_stealing_chunks(
    ThreadPool& pool, std::span<const ChunkRange> chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::vector<std::size_t>* worker_chunks) {
  const std::size_t workers = pool.size();
  if (worker_chunks != nullptr) worker_chunks->assign(workers, 0);
  if (chunks.empty()) return;

  // Shared region state; lives on this stack frame until every driver
  // task has signalled drivers_done, so drivers never dangle.
  struct Region {
    std::vector<std::unique_ptr<ChaseLevDeque>> deques;
    std::atomic<std::size_t> published{0};
    std::atomic<std::size_t> drivers_done{0};
    std::exception_ptr first_error;
    std::mutex err_mu;
    std::mutex done_mu;
    std::condition_variable done_cv;
  } region;

  // Worker w owns chunks w, w+W, w+2W, ... — `assigned[w]` of them; its
  // deque is sized for that share (the reserved first chunk never enters
  // it, so the capacity is one more than strictly needed).
  const std::size_t total = chunks.size();
  std::vector<std::size_t> assigned(workers, 0);
  region.deques.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    assigned[w] = w < total ? (total - w - 1) / workers + 1 : 0;
    region.deques.push_back(std::make_unique<ChaseLevDeque>(assigned[w]));
  }

  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&region, &chunks, &body, worker_chunks, w, workers, total,
                 own_share = assigned[w]] {
      ChaseLevDeque& own = *region.deques[w];
      // Push own chunks highest-first so pops come out in ascending
      // order (low instance indices first keeps the batch engine's
      // reorder window shallow); thieves then steal the farthest-out
      // chunks, which they would reach last anyway.
      for (std::size_t k = own_share; k-- > 1;) own.push(w + k * workers);
      region.published.fetch_add(1, std::memory_order_release);

      std::size_t executed = 0;
      auto run = [&](std::size_t ci) {
        const ChunkRange& c = chunks[ci];
        try {
          body(c.index, c.lo, c.hi);
        } catch (...) {
          const std::lock_guard<std::mutex> lk(region.err_mu);
          if (!region.first_error) {
            region.first_error = std::current_exception();
          }
        }
        ++executed;
      };

      // The first assigned chunk never enters the deque: every logical
      // worker is guaranteed at least one chunk of real work, however
      // fast its neighbours steal.
      if (w < total) run(w);

      SplitMix64 mix(0x9E3779B97F4A7C15ULL * (w + 1));
      std::size_t item = 0;
      for (;;) {
        if (own.pop(item)) {
          run(item);
          continue;
        }
        // Own deque dry: sweep the victims from a random start.
        bool found = false;
        if (workers > 1) {
          const std::size_t start =
              static_cast<std::size_t>(mix.next() % workers);
          for (std::size_t off = 0; off < workers && !found; ++off) {
            const std::size_t v = (start + off) % workers;
            if (v == w) continue;
            found = region.deques[v]->steal(item);
          }
        }
        if (found) {
          run(item);
          continue;
        }
        if (region.published.load(std::memory_order_acquire) == workers) {
          // Every deque was observably empty after all pushes landed.
          // Whatever remains is in flight on its owner (a failed steal
          // can mask a race, but the raced item went to another worker
          // and unstolen items are always drained by their owner), so
          // there is nothing left for this worker to take.
          break;
        }
        std::this_thread::yield();  // a neighbour is still publishing
      }

      if (worker_chunks != nullptr) (*worker_chunks)[w] = executed;
      // Mutex-serialized completion (same protocol as the fixed
      // scheduler): the waiter cannot observe the final count and unwind
      // while a driver still holds the stack-allocated mutex/cv.
      {
        const std::lock_guard<std::mutex> lk(region.done_mu);
        region.drivers_done.fetch_add(1, std::memory_order_release);
        // Notify while holding the mutex: the waiter then cannot re-check
        // the predicate, return and destroy the region until this driver
        // has released it — its last touch of the shared state.
        region.done_cv.notify_all();
      }
    });
  }

  {
    std::unique_lock<std::mutex> lk(region.done_mu);
    region.done_cv.wait(lk, [&region, workers] {
      return region.drivers_done.load(std::memory_order_acquire) == workers;
    });
  }
  if (region.first_error) std::rethrow_exception(region.first_error);
}

}  // namespace wdag::util
