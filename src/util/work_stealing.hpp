#pragma once
// Work-stealing execution of a chunked index range on a ThreadPool.
//
// parallel_fixed_chunks (thread_pool.hpp) hands every worker a static
// share of the chunk list up front; one straggler chunk then leaves the
// other workers idle behind it. This header adds the dynamic counterpart:
// each pool worker owns a Chase-Lev-style deque of chunk ordinals, pops
// its own work LIFO from the bottom, and steals FIFO from the top of a
// random victim when it runs dry — so a straggler only ever pins the one
// worker executing it while the rest of the range rebalances itself.
//
// Determinism: the scheduler moves WHERE a chunk runs, never WHAT a chunk
// is. Chunk ranges are fixed by the caller before execution starts, and
// the batch engine derives all randomness from instance indices and
// reorders rows by chunk ordinal (core/batch.cpp), so output bytes are
// independent of which worker executed what and in which order.

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <functional>
#include <span>
#include <vector>

namespace wdag::util {

class ThreadPool;

/// One contiguous work item of a stealing region: `index` is the reorder
/// key (chunks are created in ascending `lo` order), [lo, hi) the
/// instance range it covers.
struct ChunkRange {
  std::size_t index = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;
};

/// A fixed-capacity Chase-Lev work-stealing deque of size_t items.
///
/// Single owner, many thieves: push() and pop() may only be called by the
/// owning worker (bottom end, LIFO); steal() may be called by any thread
/// (top end, FIFO). The memory ordering follows the weak-memory-model
/// formulation of Le, Pop, Cohen & Zappa Nardelli (PPoPP'13). Capacity is
/// fixed at construction — the scheduler below sizes each deque to its
/// worker's full assignment, so the buffer never wraps live items.
class ChaseLevDeque {
 public:
  /// Room for `capacity` items (rounded up to a power of two, minimum 1).
  explicit ChaseLevDeque(std::size_t capacity);

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Undefined behavior past the constructed capacity.
  void push(std::size_t item);

  /// Owner only: take the most recently pushed item. False when empty.
  bool pop(std::size_t& out);

  /// Any thread: take the oldest item. False when empty or when another
  /// thief (or the owner, on the last item) won the race — callers retry
  /// or move to the next victim.
  bool steal(std::size_t& out);

 private:
  std::vector<std::atomic<std::size_t>> buffer_;
  std::size_t mask_;
  // Owner and thieves hammer different ends; keep them off one line.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

/// Runs body(chunk.index, chunk.lo, chunk.hi) once for every chunk on the
/// pool's workers with work stealing, blocking until all chunks finished.
///
/// Chunks are dealt round-robin to one logical worker (deque) per pool
/// worker; each logical worker executes its first assigned chunk outside
/// the deque (so no worker can be starved by fast thieves), drains its own
/// deque bottom-up, then steals from random victims until no stealable
/// work remains. Exceptions thrown by chunks are captured; the first one
/// is rethrown here after every chunk has run (matching
/// parallel_fixed_chunks).
///
/// `worker_chunks`, when non-null, is resized to pool.size() and filled
/// with the number of chunks each logical worker executed.
///
/// RESTRICTION: one call per pool at a time. The drivers rendezvous (all
/// pool.size() of them must be running before any proceeds), so a second
/// concurrent call on the same pool queues its drivers behind the first
/// call's and both spin forever — the same exactly-once-per-worker
/// barrier ThreadPool::for_each_worker documents. api::Engine already
/// serializes run_batch per engine, and parallel_fixed_chunks has no
/// such restriction.
void parallel_stealing_chunks(
    ThreadPool& pool, std::span<const ChunkRange> chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::vector<std::size_t>* worker_chunks = nullptr);

}  // namespace wdag::util
