#pragma once
// wdag/wdag.hpp — the public umbrella header.
//
// This is the ONLY header applications need: it pulls in the session API
// (Engine, requests, strategies, sinks), the graph/dipath model it speaks,
// the structural classification of the paper, the named workload
// generators, and the small utility layer (CLI flags, RNG, tables) the
// examples use. Everything it exposes is installed by the `install`
// target and compile-checked against internal-header leaks by the
// api-surface CI job — headers under src/ that are NOT reachable from
// here are internal and may change without notice.
//
// Quickstart:
//
//   #include "wdag/wdag.hpp"
//
//   wdag::Engine engine;
//   auto response = engine.submit(
//       wdag::SolveRequest::generated("random-upp"));
//   std::cout << response.strategy_name << ": "
//             << response.wavelengths << " wavelengths\n";

// --- The session API ------------------------------------------------------
#include "api/engine.hpp"
#include "api/request.hpp"
#include "api/sink.hpp"
#include "api/strategy.hpp"

// --- Solvers (RWA + batch + sharding + the shard drive) -------------------
#include "core/batch.hpp"
#include "core/driver.hpp"
#include "core/rwa.hpp"
#include "core/shard.hpp"
#include "core/solver.hpp"

// --- Structural classification (the paper's taxonomy) ---------------------
#include "dag/classify.hpp"
#include "dag/internal_cycle.hpp"
#include "dag/upp.hpp"

// --- Graphs and dipath families -------------------------------------------
#include "graph/digraph.hpp"
#include "graph/graphio.hpp"
#include "graph/reachability.hpp"
#include "paths/dipath.hpp"
#include "paths/family.hpp"
#include "paths/familyio.hpp"
#include "paths/load.hpp"
#include "paths/route.hpp"

// --- Instance generators --------------------------------------------------
#include "gen/instance.hpp"
#include "gen/random_dag.hpp"
#include "gen/workloads.hpp"

// --- The serve subsystem (persistent solve service + client) --------------
#include "serve/admission.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"

// --- Utilities used by the examples ---------------------------------------
#include "util/build_info.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace wdag {

// Top-level convenience aliases: `wdag::Engine`, `wdag::SolveRequest`, ...
using api::AggregateSink;
using api::BatchRequest;
using api::BatchStreamInfo;
using api::CsvStreamSink;
using api::Engine;
using api::EngineOptions;
using api::GeneratorSpec;
using api::JsonSink;
using api::ResultSink;
using api::SolveRequest;
using api::SolveResponse;
using api::SolverStrategy;
using api::StrategyContext;
using api::StrategyRegistry;
using api::StrategyResult;
using core::DriveEvent;
using core::DriveOptions;
using core::DriveReport;
using core::ShardCsv;
using core::ShardJson;
using core::ShardLayout;
using core::ShardManifest;
using core::ShardPlan;
using core::ShardRange;
using core::ShardSpec;
using core::StrategyId;
using serve::ServeOptions;
using serve::Server;
using serve::ServeStats;

}  // namespace wdag
