#pragma once
// Shared fixtures for the wdag test suite: small canonical graphs used
// across modules, plus the mixed-regime instance stream the randomized
// cross-check tiers sample from.

#include <optional>
#include <vector>

#include "api/strategy.hpp"
#include "core/solver.hpp"
#include "gen/family_gen.hpp"
#include "gen/instance.hpp"
#include "gen/random_dag.hpp"
#include "gen/upp_gen.hpp"
#include "graph/digraph.hpp"
#include "paths/family.hpp"
#include "util/rng.hpp"

namespace wdag::test {

/// One-instance solve against the built-in registry — the test-suite
/// shorthand since the pre-registry core::solve shim was removed in 0.2.
inline api::SolveResponse solve_builtin(
    const paths::DipathFamily& family,
    const core::SolveOptions& options = {},
    std::optional<core::StrategyId> force = std::nullopt) {
  return api::solve_with(api::builtin_registry(), family, options, force);
}

/// Chain 0 -> 1 -> ... -> n-1.
inline graph::Digraph chain(std::size_t n) {
  graph::DigraphBuilder b(n);
  for (graph::VertexId v = 0; v + 1 < n; ++v) b.add_arc(v, v + 1);
  return b.build();
}

/// Diamond: 0 -> 1 -> 3, 0 -> 2 -> 3. The smallest non-UPP DAG; its only
/// cycle touches the source 0 and sink 3, so it is NOT internal.
inline graph::Digraph diamond() {
  graph::DigraphBuilder b(4);
  b.add_arc(0, 1);
  b.add_arc(0, 2);
  b.add_arc(1, 3);
  b.add_arc(2, 3);
  return b.build();
}

/// Guarded diamond: s -> 0 -> {1,2} -> 3 -> t. The inner diamond cycle is
/// internal (all four vertices have both a predecessor and a successor).
inline graph::Digraph guarded_diamond() {
  graph::DigraphBuilder b(6);
  // 4 = s (guard source), 5 = t (guard sink)
  b.add_arc(4, 0);
  b.add_arc(0, 1);
  b.add_arc(0, 2);
  b.add_arc(1, 3);
  b.add_arc(2, 3);
  b.add_arc(3, 5);
  return b.build();
}

/// Binary out-tree of given depth (root 0); 2^(depth+1) - 1 vertices.
inline graph::Digraph binary_out_tree(std::size_t depth) {
  graph::DigraphBuilder b;
  const std::size_t n = (std::size_t{1} << (depth + 1)) - 1;
  for (std::size_t v = 0; v < n; ++v) b.add_vertex();
  for (std::size_t v = 1; v < n; ++v) {
    b.add_arc(static_cast<graph::VertexId>((v - 1) / 2),
              static_cast<graph::VertexId>(v));
  }
  return b.build();
}

/// Directed triangle 0 -> 1 -> 2 -> 0 (not a DAG).
inline graph::Digraph directed_triangle() {
  graph::DigraphBuilder b(3);
  b.add_arc(0, 1);
  b.add_arc(1, 2);
  b.add_arc(2, 0);
  return b.build();
}

/// A small instance touching every dispatch regime: index i rotates
/// through trees (Theorem 1), UPP one-cycle skeletons (split-merge),
/// repaired random DAGs (Theorem 1 at density) and general random DAGs
/// (heuristic/exact). Deterministic in (rng state, index) — the workhorse
/// of the randomized cross-check tiers.
inline gen::Instance mixed_regime_instance(util::Xoshiro256& rng,
                                           std::size_t index) {
  switch (index % 4) {
    case 0: {
      gen::Instance inst = gen::Instance::over(gen::random_out_tree(rng, 14));
      inst.family = gen::random_request_family(rng, *inst.graph, 10);
      return inst;
    }
    case 1: {
      gen::UppCycleParams params;
      params.k = 2 + static_cast<std::size_t>(rng.below(2));
      return gen::random_upp_one_cycle_instance(rng, params, 8);
    }
    case 2: {
      gen::Instance inst = gen::Instance::over(
          gen::random_no_internal_cycle_dag(rng, 16, 0.2));
      if (inst.graph->num_arcs() > 0) {
        inst.family = gen::random_walk_family(rng, *inst.graph, 12, 1, 5);
      }
      return inst;
    }
    default: {
      gen::Instance inst = gen::Instance::over(gen::random_dag(rng, 14, 0.25));
      if (inst.graph->num_arcs() > 0) {
        inst.family = gen::random_walk_family(rng, *inst.graph, 10, 1, 4);
      }
      return inst;
    }
  }
}

}  // namespace wdag::test
